#pragma once

/// \file generator.hpp
/// Random task-set generation following the paper's recipe (§5.1):
///   * period drawn uniformly from {10, 20, ..., 100};
///   * relative deadline = period;
///   * per-job worst-case *energy* e ~ Uniform[0, P̄_S · p] where P̄_S is the
///     mean harvested power, converted to WCET as w = e / P_max;
///   * all WCETs then rescaled by a common factor to hit the target
///     utilization U (redrawing the set if the scale would make any task
///     infeasible, i.e. w > p).

#include <cstdint>
#include <vector>

#include "task/task_set.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace eadvfs::task {

struct GeneratorConfig {
  std::size_t n_tasks = 5;          ///< tasks per set (paper's figures use 5).
  double target_utilization = 0.4;
  Power mean_harvest_power = 3.99;  ///< P̄_S; eq. 13's analytic mean by default.
  Power p_max = 3.2;                ///< processor max power (XScale table).
  std::vector<Time> period_choices =  ///< the paper's {10, 20, ..., 100}.
      {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  std::size_t max_redraws = 1000;   ///< attempts before giving up.
};

class TaskSetGenerator {
 public:
  explicit TaskSetGenerator(const GeneratorConfig& config);

  /// Generate one task set; each call consumes randomness from `rng`.
  /// Throws std::runtime_error if `max_redraws` sets in a row cannot be
  /// scaled to the target utilization (only possible for U near 1 with few
  /// tasks).
  [[nodiscard]] TaskSet generate(util::Xoshiro256ss& rng) const;

  [[nodiscard]] const GeneratorConfig& config() const { return config_; }

 private:
  GeneratorConfig config_;

  /// One unscaled draw (may fail scaling).
  [[nodiscard]] TaskSet draw(util::Xoshiro256ss& rng) const;
};

}  // namespace eadvfs::task
