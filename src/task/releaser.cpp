#include "task/releaser.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace eadvfs::task {

JobReleaser::JobReleaser(const TaskSet& task_set, Time horizon,
                         const ExecutionTimeModel& execution) {
  if (horizon <= 0.0)
    throw std::invalid_argument("JobReleaser: horizon must be positive");
  if (execution.bcet_fraction <= 0.0 || execution.bcet_fraction > 1.0)
    throw std::invalid_argument("JobReleaser: bcet_fraction outside (0, 1]");
  util::Xoshiro256ss rng(execution.seed);
  std::size_t expected = 0;
  for (const Task& t : task_set) {
    if (t.phase < horizon && t.period > 0.0)
      expected += static_cast<std::size_t>((horizon - t.phase) / t.period) + 1;
  }
  jobs_.reserve(expected);
  JobId next_id = 0;
  for (const Task& t : task_set) {
    std::uint32_t seq = 0;
    for (Time a = t.phase; a < horizon; a += t.period, ++seq) {
      Job job;
      job.id = next_id++;
      job.task_id = t.id;
      job.sequence = seq;
      job.arrival = a;
      job.absolute_deadline = a + t.relative_deadline;
      job.wcet = t.wcet;
      job.remaining = t.wcet;
      job.actual_work =
          execution.bcet_fraction >= 1.0
              ? t.wcet
              : rng.uniform(execution.bcet_fraction * t.wcet, t.wcet);
      job.actual_remaining = job.actual_work;
      jobs_.push_back(job);
    }
  }
  sort_arena();
}

JobReleaser::JobReleaser(std::vector<Job> jobs) : jobs_(std::move(jobs)) {
  JobId next_id = 0;
  for (Job& job : jobs_) {
    if (job.wcet < 0.0)
      throw std::invalid_argument("JobReleaser: negative WCET");
    if (job.absolute_deadline < job.arrival)
      throw std::invalid_argument("JobReleaser: deadline before arrival");
    if (job.actual_work < 0.0 || job.actual_work > job.wcet)
      throw std::invalid_argument(
          "JobReleaser: actual work outside [0, wcet]");
    job.id = next_id++;
    job.remaining = job.wcet;
    job.actual_work = job.actual_work > 0.0 ? job.actual_work : job.wcet;
    job.actual_remaining = job.actual_work;
  }
  sort_arena();
}

void JobReleaser::sort_arena() {
  // (arrival, id) ascending — the exact pop order of the old min-heap, so
  // release order (and therefore every downstream artifact) is unchanged.
  std::sort(jobs_.begin(), jobs_.end(), [](const Job& a, const Job& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.id < b.id;
  });
}

}  // namespace eadvfs::task
