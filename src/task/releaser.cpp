#include "task/releaser.hpp"

#include <stdexcept>

#include "util/math.hpp"
#include "util/rng.hpp"

namespace eadvfs::task {

JobReleaser::JobReleaser(const TaskSet& task_set, Time horizon,
                         const ExecutionTimeModel& execution) {
  if (horizon <= 0.0)
    throw std::invalid_argument("JobReleaser: horizon must be positive");
  if (execution.bcet_fraction <= 0.0 || execution.bcet_fraction > 1.0)
    throw std::invalid_argument("JobReleaser: bcet_fraction outside (0, 1]");
  util::Xoshiro256ss rng(execution.seed);
  JobId next_id = 0;
  for (const Task& t : task_set) {
    std::uint32_t seq = 0;
    for (Time a = t.phase; a < horizon; a += t.period, ++seq) {
      Job job;
      job.id = next_id++;
      job.task_id = t.id;
      job.sequence = seq;
      job.arrival = a;
      job.absolute_deadline = a + t.relative_deadline;
      job.wcet = t.wcet;
      job.remaining = t.wcet;
      job.actual_work =
          execution.bcet_fraction >= 1.0
              ? t.wcet
              : rng.uniform(execution.bcet_fraction * t.wcet, t.wcet);
      job.actual_remaining = job.actual_work;
      pending_.push(job);
    }
  }
  total_jobs_ = pending_.size();
}

JobReleaser::JobReleaser(std::vector<Job> jobs) {
  JobId next_id = 0;
  for (Job& job : jobs) {
    if (job.wcet < 0.0)
      throw std::invalid_argument("JobReleaser: negative WCET");
    if (job.absolute_deadline < job.arrival)
      throw std::invalid_argument("JobReleaser: deadline before arrival");
    if (job.actual_work < 0.0 || job.actual_work > job.wcet)
      throw std::invalid_argument(
          "JobReleaser: actual work outside [0, wcet]");
    job.id = next_id++;
    job.remaining = job.wcet;
    job.actual_work = job.actual_work > 0.0 ? job.actual_work : job.wcet;
    job.actual_remaining = job.actual_work;
    pending_.push(job);
  }
  total_jobs_ = pending_.size();
}

Time JobReleaser::next_arrival() const {
  return pending_.empty() ? kHuge : pending_.top().arrival;
}

std::vector<Job> JobReleaser::release_due(Time now) {
  std::vector<Job> released;
  while (!pending_.empty() &&
         pending_.top().arrival <= now + util::kEps) {
    released.push_back(pending_.top());
    pending_.pop();
  }
  return released;
}

bool JobReleaser::exhausted() const { return pending_.empty(); }

}  // namespace eadvfs::task
