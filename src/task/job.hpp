#pragma once

/// \file job.hpp
/// One released task instance: the (a, d, w) triple of the paper plus the
/// execution-progress state the engine maintains.  Work is measured in
/// f_max-time: running at speed S for dt completes S·dt work.

#include <cstdint>

#include "task/task.hpp"
#include "util/types.hpp"

namespace eadvfs::task {

using JobId = std::uint64_t;

struct Job {
  JobId id = 0;
  TaskId task_id = 0;
  std::uint32_t sequence = 0;      ///< which release of the task (0-based).
  Time arrival = 0.0;              ///< a_m.
  Time absolute_deadline = 0.0;    ///< a_m + d_m.
  Work wcet = 0.0;                 ///< w_m at f_max — what schedulers budget.
  Work remaining = 0.0;            ///< *budgeted* work left (wcet-based);
                                   ///< this is the value schedulers see.
  /// True execution demand at f_max.  Real jobs often finish below their
  /// worst case; schedulers must not peek at this (they only know the WCET
  /// budget), but the engine completes the job once `actual_remaining`
  /// reaches zero — the resulting early-completion slack is what dynamic
  /// policies can reclaim.  Defaults to the WCET (the paper's model).
  Work actual_work = 0.0;
  Work actual_remaining = 0.0;

  [[nodiscard]] bool finished() const { return actual_remaining <= 0.0; }

  /// Work already executed (true progress).
  [[nodiscard]] Work completed() const { return actual_work - actual_remaining; }

  /// Time left until the deadline from `now` (may be negative when late).
  [[nodiscard]] Time laxity_window(Time now) const {
    return absolute_deadline - now;
  }
};

/// EDF ordering: earlier absolute deadline = higher priority; ties broken by
/// arrival then id so the order is total and deterministic.
struct EdfBefore {
  bool operator()(const Job& a, const Job& b) const {
    if (a.absolute_deadline != b.absolute_deadline)
      return a.absolute_deadline < b.absolute_deadline;
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.id < b.id;
  }
};

}  // namespace eadvfs::task
