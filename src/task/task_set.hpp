#pragma once

/// \file task_set.hpp
/// A validated collection of periodic tasks with the utilization operations
/// the paper's experiment setup needs (eq. 14 and the uniform WCET rescale
/// used to hit a target utilization).

#include <initializer_list>
#include <string>
#include <vector>

#include "task/task.hpp"

namespace eadvfs::task {

class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<Task> tasks);
  TaskSet(std::initializer_list<Task> tasks);

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] bool empty() const { return tasks_.empty(); }
  [[nodiscard]] const Task& at(std::size_t index) const { return tasks_.at(index); }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }

  [[nodiscard]] auto begin() const { return tasks_.begin(); }
  [[nodiscard]] auto end() const { return tasks_.end(); }

  /// Total utilization Σ w_m / p_m (paper eq. 14).
  [[nodiscard]] double utilization() const;

  /// Scale every WCET by the same factor so that utilization() == target
  /// (paper §5.1: "we scale the worst case execution time of each task in a
  /// task set in the same ratio").  Throws if the scale would push any
  /// task's WCET above its effective window (min(deadline, period)) — such
  /// a set could never meet deadlines even with infinite energy.
  void scale_to_utilization(double target);

  /// Largest scale factor that keeps every wcet <= min(deadline, period);
  /// the corresponding utilization bounds what scale_to_utilization accepts.
  [[nodiscard]] double max_feasible_utilization() const;

  [[nodiscard]] std::string describe() const;

 private:
  std::vector<Task> tasks_;

  void validate() const;
};

}  // namespace eadvfs::task
