#include "task/task_set.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace eadvfs::task {

TaskSet::TaskSet(std::vector<Task> tasks) : tasks_(std::move(tasks)) { validate(); }

TaskSet::TaskSet(std::initializer_list<Task> tasks) : tasks_(tasks) { validate(); }

void TaskSet::validate() const {
  for (const Task& t : tasks_) {
    if (t.period <= 0.0)
      throw std::invalid_argument("TaskSet: task period must be positive");
    if (t.relative_deadline <= 0.0)
      throw std::invalid_argument("TaskSet: relative deadline must be positive");
    if (t.wcet < 0.0)
      throw std::invalid_argument("TaskSet: negative WCET");
    if (t.phase < 0.0)
      throw std::invalid_argument("TaskSet: negative phase");
    if (t.wcet > std::min(t.relative_deadline, t.period))
      throw std::invalid_argument(
          "TaskSet: WCET exceeds min(deadline, period); infeasible at any speed");
  }
}

double TaskSet::utilization() const {
  double total = 0.0;
  for (const Task& t : tasks_) total += t.utilization();
  return total;
}

double TaskSet::max_feasible_utilization() const {
  if (tasks_.empty()) return 0.0;
  double max_scale = 1e308;
  for (const Task& t : tasks_) {
    if (t.wcet <= 0.0) continue;
    const Time window = std::min(t.relative_deadline, t.period);
    max_scale = std::min(max_scale, window / t.wcet);
  }
  return utilization() * max_scale;
}

void TaskSet::scale_to_utilization(double target) {
  if (target <= 0.0)
    throw std::invalid_argument("scale_to_utilization: target must be positive");
  const double current = utilization();
  if (current <= 0.0)
    throw std::logic_error("scale_to_utilization: task set has zero utilization");
  const double scale = target / current;
  // Validate before mutating so failure leaves the set unchanged.
  for (const Task& t : tasks_) {
    const Time window = std::min(t.relative_deadline, t.period);
    if (t.wcet * scale > window + 1e-12)
      throw std::invalid_argument(
          "scale_to_utilization: target utilization makes a task infeasible");
  }
  for (Task& t : tasks_) t.wcet *= scale;
}

std::string TaskSet::describe() const {
  std::ostringstream out;
  out << tasks_.size() << " tasks, U=" << utilization() << ":";
  for (const Task& t : tasks_) {
    out << " (id=" << t.id << " p=" << t.period << " d=" << t.relative_deadline
        << " w=" << t.wcet << ")";
  }
  return out.str();
}

}  // namespace eadvfs::task
