#pragma once

/// \file task.hpp
/// Periodic task model (paper §3.3): every `period` time units the task
/// releases a job with the given relative deadline and worst-case execution
/// time (WCET, measured at maximum frequency).

#include <cstdint>

#include "util/types.hpp"

namespace eadvfs::task {

using TaskId = std::uint32_t;

struct Task {
  TaskId id = 0;
  Time period = 0.0;
  Time relative_deadline = 0.0;  ///< the paper sets this equal to period.
  Work wcet = 0.0;               ///< w_m at f_max.
  Time phase = 0.0;              ///< first release time.

  /// Utilization contribution w_m / p_m (paper eq. 14).
  [[nodiscard]] double utilization() const { return wcet / period; }
};

}  // namespace eadvfs::task
