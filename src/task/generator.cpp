#include "task/generator.hpp"

#include <algorithm>
#include <stdexcept>

namespace eadvfs::task {

TaskSetGenerator::TaskSetGenerator(const GeneratorConfig& config) : config_(config) {
  if (config_.n_tasks == 0)
    throw std::invalid_argument("TaskSetGenerator: need at least one task");
  if (config_.target_utilization <= 0.0 || config_.target_utilization > 1.0)
    throw std::invalid_argument("TaskSetGenerator: utilization must be in (0, 1]");
  if (config_.mean_harvest_power <= 0.0)
    throw std::invalid_argument("TaskSetGenerator: mean harvest power must be positive");
  if (config_.p_max <= 0.0)
    throw std::invalid_argument("TaskSetGenerator: p_max must be positive");
  if (config_.period_choices.empty())
    throw std::invalid_argument("TaskSetGenerator: no period choices");
  for (Time p : config_.period_choices)
    if (p <= 0.0)
      throw std::invalid_argument("TaskSetGenerator: non-positive period choice");
}

TaskSet TaskSetGenerator::generate(util::Xoshiro256ss& rng) const {
  for (std::size_t attempt = 0; attempt < config_.max_redraws; ++attempt) {
    // Draw raw (unscaled) tasks.  The raw WCET can exceed the period (the
    // paper's energy draw allows w up to P̄_S·p/P_max = 1.25·p for the
    // defaults), so feasibility is only checked after scaling.
    std::vector<Task> tasks;
    tasks.reserve(config_.n_tasks);
    double raw_utilization = 0.0;
    for (std::size_t i = 0; i < config_.n_tasks; ++i) {
      Task t;
      t.id = static_cast<TaskId>(i);
      const auto choice = rng.uniform_int(0, config_.period_choices.size() - 1);
      t.period = config_.period_choices[choice];
      t.relative_deadline = t.period;  // paper: deadline = period
      const Energy e = rng.uniform(0.0, config_.mean_harvest_power * t.period);
      t.wcet = e / config_.p_max;
      t.phase = 0.0;  // synchronous release, as in the paper's examples
      raw_utilization += t.wcet / t.period;
      tasks.push_back(t);
    }
    if (raw_utilization <= 0.0) continue;  // degenerate all-zero draw

    const double scale = config_.target_utilization / raw_utilization;
    bool feasible = true;
    for (Task& t : tasks) {
      t.wcet *= scale;
      if (t.wcet > std::min(t.relative_deadline, t.period)) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    return TaskSet(std::move(tasks));
  }
  throw std::runtime_error(
      "TaskSetGenerator: exceeded max_redraws without a feasible set");
}

}  // namespace eadvfs::task
