#pragma once

/// \file releaser.hpp
/// Turns a task set (or an explicit job list) into the time-ordered arrival
/// stream the engine consumes.  Job parameters are unknown before release
/// (paper §3.3) — the engine only ever asks for the *next* arrival instant
/// and pops jobs whose time has come.

#include <queue>
#include <vector>

#include "task/job.hpp"
#include "task/task_set.hpp"

namespace eadvfs::task {

/// How a job's *actual* execution demand relates to its WCET budget.
/// The paper assumes every job runs for its full WCET (`bcet_fraction = 1`);
/// setting it below 1 draws each job's actual work uniformly from
/// [bcet_fraction · wcet, wcet], modelling early completions whose slack
/// dynamic policies can reclaim.
struct ExecutionTimeModel {
  double bcet_fraction = 1.0;  ///< in (0, 1].
  std::uint64_t seed = 0;      ///< draw stream for the actual times.
};

class JobReleaser {
 public:
  /// Periodic mode: releases every job of every task with arrival < horizon.
  JobReleaser(const TaskSet& task_set, Time horizon,
              const ExecutionTimeModel& execution = {});

  /// Explicit mode: the given one-shot jobs (used by the paper's worked
  /// examples and by tests).  Jobs may be passed in any order; `remaining`
  /// is initialized to `wcet` (and `actual_*` to `actual_work`, or the WCET
  /// when unset) and ids are reassigned to be unique.
  explicit JobReleaser(std::vector<Job> jobs);

  /// Arrival instant of the next unreleased job, or kHuge when exhausted.
  [[nodiscard]] Time next_arrival() const;

  /// Pop every job with arrival <= now (within epsilon).
  [[nodiscard]] std::vector<Job> release_due(Time now);

  [[nodiscard]] bool exhausted() const;

  /// Total number of jobs this releaser will ever produce.
  [[nodiscard]] std::size_t total_jobs() const { return total_jobs_; }

 private:
  struct ArrivalAfter {
    bool operator()(const Job& a, const Job& b) const {
      if (a.arrival != b.arrival) return a.arrival > b.arrival;  // min-heap
      return a.id > b.id;
    }
  };

  std::priority_queue<Job, std::vector<Job>, ArrivalAfter> pending_;
  std::size_t total_jobs_ = 0;
};

}  // namespace eadvfs::task
