#pragma once

/// \file releaser.hpp
/// Turns a task set (or an explicit job list) into the time-ordered arrival
/// stream the engine consumes.  Job parameters are unknown before release
/// (paper §3.3) — the engine only ever asks for the *next* arrival instant
/// and pops jobs whose time has come.
///
/// Storage is a flat arena: every release the horizon will ever see is
/// materialized once at construction into a single contiguous vector, sorted
/// by (arrival, id), and consumed through a cursor.  Compared with the
/// previous priority_queue representation this removes the per-release heap
/// sift (which copied whole Job values) and the per-call vector the engine
/// used to receive releases in — `for_each_due` hands out jobs in place.

#include <vector>

#include "task/job.hpp"
#include "task/task_set.hpp"
#include "util/math.hpp"

namespace eadvfs::task {

/// How a job's *actual* execution demand relates to its WCET budget.
/// The paper assumes every job runs for its full WCET (`bcet_fraction = 1`);
/// setting it below 1 draws each job's actual work uniformly from
/// [bcet_fraction · wcet, wcet], modelling early completions whose slack
/// dynamic policies can reclaim.
struct ExecutionTimeModel {
  double bcet_fraction = 1.0;  ///< in (0, 1].
  std::uint64_t seed = 0;      ///< draw stream for the actual times.
};

class JobReleaser {
 public:
  /// Periodic mode: releases every job of every task with arrival < horizon.
  JobReleaser(const TaskSet& task_set, Time horizon,
              const ExecutionTimeModel& execution = {});

  /// Explicit mode: the given one-shot jobs (used by the paper's worked
  /// examples and by tests).  Jobs may be passed in any order; `remaining`
  /// is initialized to `wcet` (and `actual_*` to `actual_work`, or the WCET
  /// when unset) and ids are reassigned to be unique.
  explicit JobReleaser(std::vector<Job> jobs);

  /// Arrival instant of the next unreleased job, or kHuge when exhausted.
  [[nodiscard]] Time next_arrival() const {
    return cursor_ < jobs_.size() ? jobs_[cursor_].arrival : kHuge;
  }

  /// Invoke `fn(job)` for every job with arrival <= now (within epsilon), in
  /// (arrival, id) order, advancing the cursor past each.  The job is passed
  /// by const reference into the arena — no copy is made here; the engine
  /// copies it into the ready set itself.
  template <typename Fn>
  void for_each_due(Time now, Fn&& fn) {
    while (cursor_ < jobs_.size() &&
           jobs_[cursor_].arrival <= now + util::kEps)
      fn(jobs_[cursor_++]);
  }

  /// Pop every job with arrival <= now (within epsilon).
  [[nodiscard]] std::vector<Job> release_due(Time now) {
    std::vector<Job> released;
    for_each_due(now, [&released](const Job& job) { released.push_back(job); });
    return released;
  }

  [[nodiscard]] bool exhausted() const { return cursor_ >= jobs_.size(); }

  /// Total number of jobs this releaser will ever produce.
  [[nodiscard]] std::size_t total_jobs() const { return jobs_.size(); }

 private:
  void sort_arena();

  std::vector<Job> jobs_;     ///< arena: all releases, (arrival, id)-sorted.
  std::size_t cursor_ = 0;    ///< first unreleased entry.
};

}  // namespace eadvfs::task
