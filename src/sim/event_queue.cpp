#include "sim/event_queue.hpp"

#include <stdexcept>

#include "util/math.hpp"

namespace eadvfs::sim {

void EventQueue::push(const Event& event) { heap_.push(event); }

Time EventQueue::next_time() const {
  return heap_.empty() ? kHuge : heap_.top().time;
}

const Event& EventQueue::peek() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::peek: empty");
  return heap_.top();
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  Event e = heap_.top();
  heap_.pop();
  return e;
}

std::vector<Event> EventQueue::pop_due(Time now) {
  std::vector<Event> due;
  while (!heap_.empty() && heap_.top().time <= now + util::kEps) {
    due.push_back(heap_.top());
    heap_.pop();
  }
  return due;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace eadvfs::sim
