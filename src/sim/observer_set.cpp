#include "sim/observer_set.hpp"

#include <stdexcept>

namespace eadvfs::sim {

SimObserver& ObserverSet::add(std::unique_ptr<SimObserver> observer) {
  if (observer == nullptr)
    throw std::invalid_argument("ObserverSet::add: null observer");
  SimObserver& ref = *observer;
  owned_.push_back(std::move(observer));
  order_.push_back(&ref);
  return ref;
}

}  // namespace eadvfs::sim
