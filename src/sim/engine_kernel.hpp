#pragma once

/// \file engine_kernel.hpp
/// Template definitions for the Engine run loop (declared in engine.hpp —
/// always include that header; it pulls this one in at the bottom).
///
/// The kernel is parameterized twice:
///
///   * `SchedulerT` — the scheduler's static type.  Instantiated with the
///     base `Scheduler` it reproduces the classic virtual-dispatch engine
///     (Engine::run()); instantiated with one of the `final` built-in
///     scheduler classes every decide()/on_fault()/reset() call resolves at
///     compile time and inlines into the loop (sched/fast_path.cpp holds
///     those instantiations so regular includers of engine.hpp don't pay the
///     compile cost six times over).
///
///   * `kObserved` — whether any observer is registered.  The false
///     instantiation (chosen by run_as only when observers().empty()) strips
///     every SegmentRecord/DecisionRecord construction and notify_* call out
///     of the binary; schedulers see a null trace pointer, which they
///     already handle.  SimulationResult is computed identically.
///
/// Correctness contract: both instantiations execute the *same* arithmetic
/// expressions in the same order — the only `if constexpr` differences are
/// record bookkeeping that never feeds back into the physics.  This is what
/// lets the fast-path equivalence tests demand bit-identical results, and
/// what keeps the golden artifacts valid for every dispatch mode.

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/engine.hpp"
#include "util/math.hpp"

namespace eadvfs::sim {

template <typename SchedulerT>
SimulationResult Engine::run_as(SchedulerT& scheduler) {
  if (static_cast<Scheduler*>(&scheduler) != &scheduler_)
    throw std::logic_error(
        "Engine::run_as: scheduler is not the one this engine was built with");
  if (ran_)
    throw std::logic_error("Engine::run: single-shot; create a new Engine");
  ran_ = true;
  return observers_.empty() ? run_loop<SchedulerT, false>(scheduler)
                            : run_loop<SchedulerT, true>(scheduler);
}

template <typename SchedulerT, bool kObserved>
SimulationResult Engine::run_loop(SchedulerT& scheduler) {
  result_ = SimulationResult{};
  result_.storage_initial = storage_.level();
  result_.time_at_op.assign(processor_.table().size(), 0.0);
  now_ = 0.0;
  src_power_ = 0.0;
  src_piece_end_ = -kHuge;  // invalid: first segment refreshes the cursor
  scheduler.reset();

  while (true) {
    release_arrivals<kObserved>();
    process_deadlines<kObserved>();
    apply_due_faults<SchedulerT, kObserved>(scheduler);
    if (now_ >= config_.horizon - util::kEps) break;
    if (++result_.segments > config_.max_segments)
      throw std::runtime_error(
          "Engine: segment budget exceeded (runaway loop?)");

    const Decision decision =
        ready_.empty() ? Decision::idle_until(kHuge)
                       : decide<SchedulerT, kObserved>(scheduler);
    execute_segment<SchedulerT, kObserved>(scheduler, decision);
  }

  for (const task::Job& job : ready_) {
    if (!missed_ids_.contains(job.id)) ++result_.jobs_unresolved;
  }
  result_.end_time = now_;
  result_.storage_final = storage_.level();
  result_.leaked = storage_.total_leaked();
  result_.frequency_switches = processor_.switch_count();
  if (audit_) {
    audit_->finalize(result_);
    if (!audit_->ok()) throw AuditError(audit_->report());
  }
  return result_;
}

template <bool kObserved>
void Engine::release_arrivals() {
  releaser_.for_each_due(now_, [this](const task::Job& due) {
    task::Job job = due;
    job.arrival = std::min(job.arrival, now_);  // normalize epsilon-early pops
    ++result_.jobs_released;
    if constexpr (kObserved) observers_.notify_release(job);
    if (job.actual_remaining <= util::kEps) {
      // Degenerate zero-work job: complete on the spot (a zero-length
      // execution segment would stall the engine's progress guarantee).
      job.remaining = 0.0;
      job.actual_remaining = 0.0;
      ++result_.jobs_completed;
      if constexpr (kObserved) observers_.notify_complete(job, now_);
      return;
    }
    events_.push({job.absolute_deadline, EventType::kDeadline, job.id, 0});
    insert_ready(job);
  });
}

template <bool kObserved>
void Engine::process_deadlines() {
  events_.for_each_due(now_, [this](const Event& e) {
    if (e.type != EventType::kDeadline) return;
    auto it = find_ready(e.job);
    if (it == ready_.end()) return;            // completed earlier
    if (missed_ids_.contains(e.job)) return;   // already counted (late mode)
    ++result_.jobs_missed;
    if constexpr (kObserved) observers_.notify_miss(*it, e.time);
    if (config_.miss_policy == MissPolicy::kDropAtDeadline) {
      result_.work_dropped += it->remaining;
      ready_.erase(it);
    } else {
      missed_ids_.insert(e.job);
    }
  });
}

template <bool kObserved>
void Engine::emit_fault_record(Energy level_before, Energy drained) {
  ++result_.segments;
  if constexpr (kObserved) {
    SegmentRecord rec;
    rec.start = now_;
    rec.end = now_;
    rec.level_start = level_before;
    rec.level_end = storage_.level();
    rec.fault_drained = drained;
    observers_.notify_segment(rec);
  } else {
    (void)level_before;
    (void)drained;
  }
}

template <typename SchedulerT, bool kObserved>
void Engine::apply_due_faults(SchedulerT& scheduler) {
  if (fault_ == nullptr) return;
  const auto& events = fault_->events();
  while (fault_index_ < events.size() &&
         events[fault_index_].time <= now_ + util::kEps) {
    const fault::FaultEvent& e = events[fault_index_++];
    switch (e.kind) {
      case FaultNotice::Kind::kStorageDrop: {
        const Energy before = storage_.level();
        const Energy drained = storage_.fault_drain(before * e.magnitude);
        result_.fault_drained += drained;
        ++result_.storage_faults_injected;
        if (drained > 0.0) emit_fault_record<kObserved>(before, drained);
        break;
      }
      case FaultNotice::Kind::kCapacityDerate: {
        const Energy before = storage_.level();
        const Energy spilled = storage_.set_capacity_derate(e.magnitude);
        result_.fault_drained += spilled;
        ++result_.storage_faults_injected;
        if (spilled > 0.0) emit_fault_record<kObserved>(before, spilled);
        break;
      }
      case FaultNotice::Kind::kCapacityRestore:
        storage_.set_capacity_derate(1.0);
        break;
      default:
        // Harvest-window edges: the power change already lives inside the
        // (wrapped) source; only the scheduler notification below matters.
        break;
    }
    scheduler.on_fault({now_, e.kind});
  }
}

template <bool kObserved>
void Engine::abort_job(std::vector<task::Job>::iterator it) {
  const task::Job job = *it;
  ++result_.jobs_aborted;
  result_.work_dropped += job.remaining;
  missed_ids_.erase(job.id);
  ready_.erase(it);
  // The job's deadline event may still be queued; process_deadlines skips
  // ids absent from the ready set, so no miss is counted for aborted jobs.
  if constexpr (kObserved) observers_.notify_abort(job, now_);
}

template <bool kObserved>
void Engine::apply_switch_overhead(const proc::SwitchOverhead& overhead) {
  // Model: the transition stalls the processor for `overhead.time` while
  // drawing `overhead.energy` from the storage (clamped at empty), with
  // harvesting continuing.  Deadlines/arrivals crossed during the stall are
  // processed at the next loop iteration (the stall is not interruptible,
  // which is the physically conservative choice).  A stall truncated by the
  // horizon only draws the elapsed fraction of the transition energy, and a
  // zero-duration transition (time == 0, energy > 0) is emitted as an
  // instantaneous segment record so the observer stream still balances.
  const Time t_end = std::min(now_ + overhead.time, config_.horizon);
  const Time dt = t_end - now_;
  const Energy level_start = storage_.level();
  const double fraction = overhead.time > 0.0 ? dt / overhead.time : 1.0;
  Energy harvested = 0.0;
  Energy overflow = 0.0;
  if (dt > 0.0) {
    harvested = source_.energy_between(now_, t_end);
    result_.harvested += harvested;
    overflow = storage_.charge(harvested);
    result_.overflow += overflow;
    processor_.note_stall(dt);
    result_.stall_time += dt;
  }
  const Energy drawn = std::min(storage_.level(), overhead.energy * fraction);
  storage_.discharge(drawn);
  result_.consumed += drawn;
  const Energy leaked_before = storage_.total_leaked();
  storage_.leak(dt);
  const Energy leaked = storage_.total_leaked() - leaked_before;

  if (dt > 0.0) predictor_.observe(now_, t_end, harvested);

  if constexpr (kObserved) {
    SegmentRecord rec;
    rec.start = now_;
    rec.end = t_end;
    rec.harvest_power = dt > 0.0 ? harvested / dt : 0.0;
    rec.consume_power = dt > 0.0 ? drawn / dt : 0.0;
    rec.harvested = harvested;
    rec.consumed = drawn;
    rec.overflow = overflow;
    rec.leaked = leaked;
    rec.level_start = level_start;
    rec.level_end = storage_.level();
    rec.stalled = true;
    observers_.notify_segment(rec);
  } else {
    (void)level_start;
    (void)leaked;
  }
  now_ = t_end;
}

template <bool kObserved>
void Engine::complete_job(std::vector<task::Job>::iterator it) {
  task::Job job = *it;
  job.remaining = util::snap_nonnegative(job.remaining);
  job.actual_remaining = 0.0;
  result_.work_completed += job.actual_work;
  if (now_ <= job.absolute_deadline + util::kEps) {
    ++result_.jobs_completed;
  } else {
    ++result_.jobs_completed_late;  // miss was already counted at deadline
  }
  missed_ids_.erase(job.id);
  ready_.erase(it);
  if constexpr (kObserved) observers_.notify_complete(job, now_);
}

template <typename SchedulerT, bool kObserved>
Decision Engine::decide(SchedulerT& scheduler) {
  if constexpr (kObserved) {
    DecisionRecord rec;
    rec.index = result_.decisions;
    rec.time = now_;
    const task::Job& front = ready_.front();
    rec.job = front.id;
    rec.task_id = front.task_id;
    rec.deadline = front.absolute_deadline;
    rec.remaining = front.remaining;
    rec.stored = storage_.level();

    SchedulingContext ctx = make_context();
    ctx.trace = &rec;
    const Decision decision = scheduler.decide(ctx);

    rec.run = decision.kind == Decision::Kind::kRun;
    rec.chosen_op = rec.run ? decision.op_index : 0;
    // When running, execution starts now; when idling, the scheduler's wake
    // bound is the planned start instant.
    rec.start = rec.run ? now_ : decision.recheck_at;
    rec.recheck_at = decision.recheck_at;
    ++result_.decisions;
    observers_.notify_decision(rec);
    return decision;
  } else {
    const SchedulingContext ctx = make_context();  // ctx.trace stays null
    const Decision decision = scheduler.decide(ctx);
    ++result_.decisions;
    return decision;
  }
}

template <typename SchedulerT, bool kObserved>
void Engine::execute_segment(SchedulerT& scheduler, const Decision& decision) {
  // Source cursor: power is constant on [t, piece_end(t)) by the source
  // contract, so the two virtual source queries only run when a segment
  // actually starts a new piece.
  if (!(now_ < src_piece_end_)) {
    src_power_ = source_.power_at(now_);
    src_piece_end_ = source_.piece_end(now_);
  }
  const Power ps = src_power_;

  // --- resolve what will actually happen this segment -------------------
  bool running = false;
  bool stalled = false;
  std::vector<task::Job>::iterator job_it = ready_.end();
  std::size_t op_index = 0;
  Power consume = 0.0;
  double speed = 0.0;

  if (decision.kind == Decision::Kind::kRun) {
    job_it = find_ready(decision.job);
    if (job_it == ready_.end())
      throw std::logic_error(
          "Engine: scheduler chose a job not in the ready set");
    op_index = decision.op_index;
    const proc::OperatingPoint& op = processor_.table().at(op_index);
    if (storage_.level() <= util::kEps && op.power > ps + util::kEps) {
      // Physically impossible: no stored energy and harvest below demand.
      stalled = true;
    } else {
      if (fault_ != nullptr && fault_->profile().affects_switches() &&
          op_index != processor_.current()) {
        const fault::SwitchFault sf = fault_->switch_fault(switch_attempts_++);
        const fault::FaultProfile& fp = fault_->profile();
        if (sf.kind == fault::SwitchFault::Kind::kReject) {
          // The transition is refused: the processor stays at its old point
          // and the attempt costs a stall (floored at switch_min_stall so a
          // zero-overhead model cannot retry at the same instant forever).
          ++result_.switch_faults_injected;
          scheduler.on_fault({now_, FaultNotice::Kind::kSwitchReject});
          proc::SwitchOverhead cost = processor_.overhead_model();
          cost.time = std::max(cost.time, fp.switch_min_stall);
          apply_switch_overhead<kObserved>(cost);
          return;  // re-decide from the unchanged operating point
        }
        if (sf.kind == fault::SwitchFault::Kind::kStall) {
          // The transition succeeds but takes k× the nominal overhead.
          ++result_.switch_faults_injected;
          scheduler.on_fault({now_, FaultNotice::Kind::kSwitchStall});
          proc::SwitchOverhead cost = processor_.switch_to(op_index);
          cost.time = std::max(cost.time * fp.switch_stall_factor,
                               fp.switch_min_stall);
          cost.energy *= fp.switch_stall_factor;
          apply_switch_overhead<kObserved>(cost);
          return;  // re-decide after the slow transition
        }
      }
      const proc::SwitchOverhead overhead = processor_.switch_to(op_index);
      if (overhead.time > 0.0 || overhead.energy > 0.0) {
        apply_switch_overhead<kObserved>(overhead);
        return;  // re-decide after the transition stall
      }
      running = true;
      consume = op.power;
      speed = op.speed;
    }
  }

  // --- choose the segment end -------------------------------------------
  Time t_next = config_.horizon;
  t_next = std::min(t_next, releaser_.next_arrival());
  t_next = std::min(t_next, events_.next_time());
  t_next = std::min(t_next, src_piece_end_);
  {
    // Fault instants are decision points: the segment must end there so the
    // drop/derate applies at its exact time (apply_due_faults consumed
    // everything <= now_, so this bound is always in the future).
    const Time t_fault = next_fault_time();
    if (t_fault > now_) t_next = std::min(t_next, t_fault);
  }
  if (decision.recheck_at > now_ + util::kEps)
    t_next = std::min(t_next, decision.recheck_at);
  if (stalled) t_next = std::min(t_next, now_ + config_.stall_wakeup);

  const Energy level = storage_.level();
  // Power drawn this segment: the operating point when running, the idle
  // draw otherwise (the processor is powered even while waiting).  With an
  // empty storage and harvest below the idle draw the device *browns out*:
  // it consumes only what arrives and the unmet remainder is tracked.
  const Power draw = running ? consume : processor_.idle_power();
  const bool brownout = !running && level <= util::kEps && draw > ps + util::kEps;
  const Power net = brownout ? 0.0 : ps - draw;
  if (running) {
    // The job physically completes when its *actual* demand is done, which
    // may be earlier than the WCET budget the scheduler planned with.
    const Time t_complete = now_ + job_it->actual_remaining / speed;
    t_next = std::min(t_next, t_complete);
  }
  if (net < -util::kEps) {
    const Time t_empty = now_ + level / (draw - ps);
    t_next = std::min(t_next, t_empty);
  }
  if (net > util::kEps && !storage_.full()) {
    // The storage banks only charge_efficiency of the surplus, so the level
    // rises at net * efficiency.  Predicting the crossing with the raw net
    // would end the segment before the storage is actually full, and the
    // shrinking headroom would spawn a Zeno-like cascade of segments — each
    // a spurious decision point perturbing DVFS choices.
    const Power fill = net * storage_.config().charge_efficiency;
    if (fill > util::kEps) {
      const Time t_full = now_ + storage_.headroom() / fill;
      if (t_full > now_ + util::kEps) t_next = std::min(t_next, t_full);
    }
  }

  if (!(t_next > now_))
    throw std::logic_error("Engine: zero-progress segment (engine bug)");

  // --- integrate ----------------------------------------------------------
  const Time dt = t_next - now_;
  const Energy level_start = storage_.level();
  const Energy harvested = ps * dt;
  result_.harvested += harvested;
  Energy overflow = 0.0;
  Energy consumed_energy = 0.0;
  if (running) {
    const Energy consumed = consume * dt;
    consumed_energy = consumed;
    result_.consumed += consumed;
    const Energy net_energy = harvested - consumed;
    if (net_energy >= 0.0) {
      overflow = storage_.charge(net_energy);
    } else {
      storage_.discharge(-net_energy);
    }
    job_it->remaining = util::snap_nonnegative(job_it->remaining - speed * dt);
    job_it->actual_remaining =
        util::snap_nonnegative(job_it->actual_remaining - speed * dt);
    if (job_it->actual_remaining <= util::kEps) job_it->actual_remaining = 0.0;
    processor_.note_busy(dt);
    result_.busy_time += dt;
    result_.time_at_op[op_index] += dt;
  } else {
    if (brownout) {
      // Harvest feeds the idle draw directly; nothing reaches the storage
      // and the shortfall (draw - ps) goes unmet.
      consumed_energy = harvested;
      result_.consumed += harvested;
      result_.brownout_time += dt;
    } else {
      const Energy idle_draw = draw * dt;
      consumed_energy = idle_draw;
      result_.consumed += idle_draw;
      const Energy net_energy = harvested - idle_draw;
      if (net_energy >= 0.0) {
        overflow = storage_.charge(net_energy);
      } else {
        storage_.discharge(-net_energy);
      }
    }
    if (stalled) {
      processor_.note_stall(dt);
      result_.stall_time += dt;
    } else {
      processor_.note_idle(dt);
      result_.idle_time += dt;
    }
  }
  const Energy leaked_before = storage_.total_leaked();
  storage_.leak(dt);
  const Energy leaked = storage_.total_leaked() - leaked_before;
  result_.overflow += overflow;
  predictor_.observe(now_, t_next, harvested);

  if constexpr (kObserved) {
    SegmentRecord rec;
    rec.start = now_;
    rec.end = t_next;
    if (running) {
      rec.job = job_it->id;
      rec.op_index = op_index;
    }
    rec.harvest_power = ps;
    rec.consume_power = running ? consume : (brownout ? ps : draw);
    rec.level_start = level_start;
    rec.level_end = storage_.level();
    rec.harvested = harvested;
    rec.consumed = consumed_energy;
    rec.overflow = overflow;
    rec.leaked = leaked;
    rec.stalled = stalled;
    rec.brownout = brownout;
    observers_.notify_segment(rec);
  } else {
    (void)level_start;
    (void)consumed_energy;
    (void)leaked;
  }

  now_ = t_next;
  if (running && job_it->finished()) {
    complete_job<kObserved>(job_it);
  } else if (running && net < -util::kEps && storage_.level() <= util::kEps) {
    // The segment drained the storage dry with the job unfinished — the
    // depletion decision point.  Under suspend-and-resume the job simply
    // stays ready: the next decide() re-enters EDF order and the physics
    // guard above forces a stall until harvest accumulates (EA-DVFS then
    // re-derives the minimum feasible frequency from the remaining work).
    // Under abort-and-charge the computation is lost with the power.
    if (config_.depletion_policy == DepletionPolicy::kAbortAndCharge) {
      abort_job<kObserved>(job_it);
    } else {
      ++result_.suspensions;
    }
  }
}

}  // namespace eadvfs::sim
