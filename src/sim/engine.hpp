#pragma once

/// \file engine.hpp
/// The discrete-event simulation engine (paper §3's system model made
/// executable).  The engine owns the *physics* and defers all *policy* to a
/// Scheduler:
///
///   * time advances in segments of constant dynamics — constant harvest
///     power (sources are piecewise constant), constant consumption, linear
///     storage level — whose boundaries are the earliest of: next job
///     arrival, next deadline, energy-source piece boundary, running job's
///     completion, storage-empty/full crossing, scheduler recheck instant,
///     and the horizon;
///   * within a segment every energy quantity is integrated exactly (no
///     time-stepping error anywhere in the simulator);
///   * the engine enforces physical feasibility: a scheduler that asks to
///     run with an empty storage and insufficient instantaneous harvest is
///     overridden into a stall (the processor cannot draw energy that does
///     not exist — paper ineq. 3).
///
/// One Engine instance performs one run over externally-owned mutable
/// components (storage, processor, predictor, scheduler, releaser), so
/// experiment harnesses control construction cost and seeding precisely.

#include <memory>
#include <set>
#include <vector>

#include "energy/predictor.hpp"
#include "energy/source.hpp"
#include "energy/storage.hpp"
#include "proc/processor.hpp"
#include "sim/audit.hpp"
#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault/schedule.hpp"
#include "sim/observer.hpp"
#include "sim/observer_set.hpp"
#include "sim/result.hpp"
#include "sim/scheduler.hpp"
#include "task/releaser.hpp"

namespace eadvfs::sim {

class Engine {
 public:
  Engine(const SimulationConfig& config, const energy::EnergySource& source,
         energy::EnergyStorage& storage, proc::Processor& processor,
         energy::EnergyPredictor& predictor, Scheduler& scheduler,
         task::JobReleaser& releaser);

  /// The engine's observer registry: register borrowed observers with
  /// `observers().add(obs)` or transfer ownership with
  /// `observers().add(std::move(ptr))` / `observers().emplace<T>(...)`.
  /// When auditing is enabled the AuditObserver is already registered first.
  [[nodiscard]] ObserverSet& observers() { return observers_; }
  [[nodiscard]] const ObserverSet& observers() const { return observers_; }

  /// Deprecated pre-ObserverSet spelling of `observers().add(observer)`
  /// (borrowed registration).  Kept as a shim for one release; migrate to
  /// the ObserverSet front door.
  [[deprecated("use observers().add(observer)")]]
  void add_observer(SimObserver& observer) { observers_.add(observer); }

  /// Attach a fault-injection schedule (not owned; must outlive run(); may
  /// be nullptr).  The engine applies storage/capacity events at their exact
  /// instants, bounds segments at upcoming fault times, consults the
  /// schedule for DVFS switch outcomes, and forwards every applied fault to
  /// the scheduler's on_fault hook.  Harvest windows and predictor error are
  /// NOT applied here — wrap the source/predictor in fault::FaultedSource /
  /// fault::FaultedPredictor (exp::run_once does both); the engine only
  /// forwards their window-edge notifications.
  void set_fault_schedule(const fault::FaultSchedule* schedule);

  /// Execute the simulation from t = 0 to the horizon.  Single-shot: create
  /// a fresh Engine (and fresh mutable components) for each run.
  SimulationResult run();

 private:
  const SimulationConfig& config_;
  const energy::EnergySource& source_;
  energy::EnergyStorage& storage_;
  proc::Processor& processor_;
  energy::EnergyPredictor& predictor_;
  Scheduler& scheduler_;
  task::JobReleaser& releaser_;
  ObserverSet observers_;
  /// Present when config.audit: owned by observers_, registered first,
  /// finalized after the run; a non-clean report becomes an AuditError.
  AuditObserver* audit_ = nullptr;
  const fault::FaultSchedule* fault_ = nullptr;

  // --- per-run state ----------------------------------------------------
  Time now_ = 0.0;
  std::vector<task::Job> ready_;      ///< EDF-sorted.
  std::set<task::JobId> missed_ids_;  ///< kContinueLate: already-missed jobs.
  EventQueue events_;
  SimulationResult result_;
  bool ran_ = false;
  std::size_t fault_index_ = 0;     ///< next unapplied fault event.
  std::size_t switch_attempts_ = 0; ///< DVFS transitions attempted so far.

  void release_arrivals();
  void process_deadlines();

  /// Apply every fault event due at now_ (storage drops, capacity derates)
  /// and forward the notices to the scheduler.
  void apply_due_faults();
  [[nodiscard]] Time next_fault_time() const;
  /// Emit the instantaneous record documenting `drained` energy destroyed
  /// by a storage fault (level_before -> current level).
  void emit_fault_record(Energy level_before, Energy drained);
  /// Abort the running job under DepletionPolicy::kAbortAndCharge.
  void abort_job(std::vector<task::Job>::iterator it);

  /// Perform one segment according to `decision`; advances now_.
  void execute_segment(const Decision& decision);

  /// Apply a non-zero DVFS transition cost as a mini stall segment.
  void apply_switch_overhead(const proc::SwitchOverhead& overhead);

  void complete_job(std::vector<task::Job>::iterator it);

  [[nodiscard]] SchedulingContext make_context() const;

  /// Ask the scheduler for a decision with a DecisionRecord threaded through
  /// the context: fills the world-state fields, lets the scheduler fill its
  /// internals, completes the outcome fields, counts it, and dispatches
  /// on_decision before the segment executes.
  [[nodiscard]] Decision decide_traced();
  [[nodiscard]] std::vector<task::Job>::iterator find_ready(task::JobId id);
  void insert_ready(const task::Job& job);

  void notify_segment(const SegmentRecord& record);
};

}  // namespace eadvfs::sim
