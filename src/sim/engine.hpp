#pragma once

/// \file engine.hpp
/// The discrete-event simulation engine (paper §3's system model made
/// executable).  The engine owns the *physics* and defers all *policy* to a
/// Scheduler:
///
///   * time advances in segments of constant dynamics — constant harvest
///     power (sources are piecewise constant), constant consumption, linear
///     storage level — whose boundaries are the earliest of: next job
///     arrival, next deadline, energy-source piece boundary, running job's
///     completion, storage-empty/full crossing, scheduler recheck instant,
///     and the horizon;
///   * within a segment every energy quantity is integrated exactly (no
///     time-stepping error anywhere in the simulator);
///   * the engine enforces physical feasibility: a scheduler that asks to
///     run with an empty storage and insufficient instantaneous harvest is
///     overridden into a stall (the processor cannot draw energy that does
///     not exist — paper ineq. 3).
///
/// One Engine instance performs one run over externally-owned mutable
/// components (storage, processor, predictor, scheduler, releaser), so
/// experiment harnesses control construction cost and seeding precisely.
///
/// Dispatch: the run loop is a template over the scheduler's static type and
/// over whether any observer is attached (engine_kernel.hpp).  `run()` is the
/// virtual-dispatch reference path; `run_as<S>()` instantiates the kernel for
/// a concrete scheduler type so every decide()/on_fault() call devirtualizes
/// (sched/fast_path.hpp maps the built-in schedulers onto it).  When the
/// observer set is empty the `kObserved = false` instantiation elides every
/// record construction and notification — the pure-physics kernel that
/// `micro_engine --engine-baseline` measures.  Both instantiations share one
/// set of arithmetic expressions, so results are bit-identical across paths.

#include <algorithm>
#include <memory>
#include <vector>

#include "energy/predictor.hpp"
#include "energy/source.hpp"
#include "energy/storage.hpp"
#include "proc/processor.hpp"
#include "sim/audit.hpp"
#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault/schedule.hpp"
#include "sim/observer.hpp"
#include "sim/observer_set.hpp"
#include "sim/result.hpp"
#include "sim/scheduler.hpp"
#include "task/releaser.hpp"
#include "util/flat_set.hpp"

namespace eadvfs::sim {

class Engine {
 public:
  Engine(const SimulationConfig& config, const energy::EnergySource& source,
         energy::EnergyStorage& storage, proc::Processor& processor,
         energy::EnergyPredictor& predictor, Scheduler& scheduler,
         task::JobReleaser& releaser);

  /// The engine's observer registry: register borrowed observers with
  /// `observers().add(obs)` or transfer ownership with
  /// `observers().add(std::move(ptr))` / `observers().emplace<T>(...)`.
  /// When auditing is enabled the AuditObserver is already registered first.
  [[nodiscard]] ObserverSet& observers() { return observers_; }
  [[nodiscard]] const ObserverSet& observers() const { return observers_; }

  /// Attach a fault-injection schedule (not owned; must outlive run(); may
  /// be nullptr).  The engine applies storage/capacity events at their exact
  /// instants, bounds segments at upcoming fault times, consults the
  /// schedule for DVFS switch outcomes, and forwards every applied fault to
  /// the scheduler's on_fault hook.  Harvest windows and predictor error are
  /// NOT applied here — wrap the source/predictor in fault::FaultedSource /
  /// fault::FaultedPredictor (exp::run_once does both); the engine only
  /// forwards their window-edge notifications.
  void set_fault_schedule(const fault::FaultSchedule* schedule);

  /// Execute the simulation from t = 0 to the horizon.  Single-shot: create
  /// a fresh Engine (and fresh mutable components) for each run.  This is
  /// the virtual-dispatch path; `run_as<S>()` / sched::run_fast() produce
  /// identical results through the devirtualized kernel.
  SimulationResult run();

  /// Devirtualized entry point: run the loop with the scheduler statically
  /// typed as `SchedulerT`, so decide()/on_fault()/reset() resolve at
  /// compile time (every built-in scheduler is `final`).  `scheduler` must
  /// be the same object the engine was constructed with; throws
  /// std::logic_error otherwise.  Results are identical to run().
  template <typename SchedulerT>
  SimulationResult run_as(SchedulerT& scheduler);

 private:
  const SimulationConfig& config_;
  const energy::EnergySource& source_;
  energy::EnergyStorage& storage_;
  proc::Processor& processor_;
  energy::EnergyPredictor& predictor_;
  Scheduler& scheduler_;
  task::JobReleaser& releaser_;
  ObserverSet observers_;
  /// Present when config.audit: owned by observers_, registered first,
  /// finalized after the run; a non-clean report becomes an AuditError.
  AuditObserver* audit_ = nullptr;
  const fault::FaultSchedule* fault_ = nullptr;

  // --- per-run state ----------------------------------------------------
  Time now_ = 0.0;
  std::vector<task::Job> ready_;           ///< EDF-sorted.
  util::FlatSet<task::JobId> missed_ids_;  ///< kContinueLate: already-missed.
  EventQueue events_;
  SimulationResult result_;
  bool ran_ = false;
  std::size_t fault_index_ = 0;     ///< next unapplied fault event.
  std::size_t switch_attempts_ = 0; ///< DVFS transitions attempted so far.
  /// Source cursor: the source contract (power constant on [t, piece_end(t)),
  /// piece_end(t) > t) lets the kernel cache the current piece's power and
  /// end instead of making two virtual calls per segment.  Refreshed exactly
  /// at piece boundaries, so the cached values equal the direct calls.
  Power src_power_ = 0.0;
  Time src_piece_end_ = -kHuge;

  // --- the templated kernel (definitions in engine_kernel.hpp) ----------
  /// One full run loop for a statically-typed scheduler; `kObserved = false`
  /// (only ever chosen when observers_ is empty) skips every record
  /// construction and notification while computing the same SimulationResult.
  template <typename SchedulerT, bool kObserved>
  SimulationResult run_loop(SchedulerT& scheduler);

  template <bool kObserved>
  void release_arrivals();

  template <bool kObserved>
  void process_deadlines();

  /// Apply every fault event due at now_ (storage drops, capacity derates)
  /// and forward the notices to the scheduler.
  template <typename SchedulerT, bool kObserved>
  void apply_due_faults(SchedulerT& scheduler);

  // The helpers below run on every segment or decision; they are defined
  // inline so the kernel instantiations in other translation units (e.g.
  // sched/fast_path.cpp) can fold them into the loop — without LTO an
  // engine.cpp definition would cost a call per use.
  [[nodiscard]] Time next_fault_time() const {
    if (fault_ == nullptr) return kHuge;
    const auto& events = fault_->events();
    return fault_index_ < events.size() ? events[fault_index_].time : kHuge;
  }

  /// Emit the instantaneous record documenting `drained` energy destroyed
  /// by a storage fault (level_before -> current level).
  template <bool kObserved>
  void emit_fault_record(Energy level_before, Energy drained);

  /// Abort the running job under DepletionPolicy::kAbortAndCharge.
  template <bool kObserved>
  void abort_job(std::vector<task::Job>::iterator it);

  /// Perform one segment according to `decision`; advances now_.
  template <typename SchedulerT, bool kObserved>
  void execute_segment(SchedulerT& scheduler, const Decision& decision);

  /// Apply a non-zero DVFS transition cost as a mini stall segment.
  template <bool kObserved>
  void apply_switch_overhead(const proc::SwitchOverhead& overhead);

  template <bool kObserved>
  void complete_job(std::vector<task::Job>::iterator it);

  [[nodiscard]] SchedulingContext make_context() const {
    SchedulingContext ctx;
    ctx.now = now_;
    ctx.ready = &ready_;
    ctx.stored = storage_.level();
    ctx.predictor = &predictor_;
    ctx.table = &processor_.table();
    return ctx;
  }

  /// Ask the scheduler for a decision.  When observed, a DecisionRecord is
  /// threaded through the context (the engine fills the world-state fields,
  /// the scheduler its internals, the engine the outcome fields) and
  /// dispatched before the segment executes; when unobserved the scheduler
  /// sees a null trace and no record exists at all.
  template <typename SchedulerT, bool kObserved>
  [[nodiscard]] Decision decide(SchedulerT& scheduler);

  [[nodiscard]] std::vector<task::Job>::iterator find_ready(task::JobId id) {
    return std::find_if(ready_.begin(), ready_.end(),
                        [id](const task::Job& j) { return j.id == id; });
  }

  void insert_ready(const task::Job& job) {
    const auto pos =
        std::upper_bound(ready_.begin(), ready_.end(), job, task::EdfBefore{});
    ready_.insert(pos, job);
  }
};

}  // namespace eadvfs::sim

#include "sim/engine_kernel.hpp"  // template definitions for the run loop
