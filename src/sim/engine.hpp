#pragma once

/// \file engine.hpp
/// The discrete-event simulation engine (paper §3's system model made
/// executable).  The engine owns the *physics* and defers all *policy* to a
/// Scheduler:
///
///   * time advances in segments of constant dynamics — constant harvest
///     power (sources are piecewise constant), constant consumption, linear
///     storage level — whose boundaries are the earliest of: next job
///     arrival, next deadline, energy-source piece boundary, running job's
///     completion, storage-empty/full crossing, scheduler recheck instant,
///     and the horizon;
///   * within a segment every energy quantity is integrated exactly (no
///     time-stepping error anywhere in the simulator);
///   * the engine enforces physical feasibility: a scheduler that asks to
///     run with an empty storage and insufficient instantaneous harvest is
///     overridden into a stall (the processor cannot draw energy that does
///     not exist — paper ineq. 3).
///
/// One Engine instance performs one run over externally-owned mutable
/// components (storage, processor, predictor, scheduler, releaser), so
/// experiment harnesses control construction cost and seeding precisely.

#include <memory>
#include <set>
#include <vector>

#include "energy/predictor.hpp"
#include "energy/source.hpp"
#include "energy/storage.hpp"
#include "proc/processor.hpp"
#include "sim/audit.hpp"
#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/observer.hpp"
#include "sim/result.hpp"
#include "sim/scheduler.hpp"
#include "task/releaser.hpp"

namespace eadvfs::sim {

class Engine {
 public:
  Engine(const SimulationConfig& config, const energy::EnergySource& source,
         energy::EnergyStorage& storage, proc::Processor& processor,
         energy::EnergyPredictor& predictor, Scheduler& scheduler,
         task::JobReleaser& releaser);

  /// Register an observer (not owned; must outlive run()).
  void add_observer(SimObserver& observer);

  /// Execute the simulation from t = 0 to the horizon.  Single-shot: create
  /// a fresh Engine (and fresh mutable components) for each run.
  SimulationResult run();

 private:
  const SimulationConfig& config_;
  const energy::EnergySource& source_;
  energy::EnergyStorage& storage_;
  proc::Processor& processor_;
  energy::EnergyPredictor& predictor_;
  Scheduler& scheduler_;
  task::JobReleaser& releaser_;
  std::vector<SimObserver*> observers_;
  /// Present when config.audit: registered first, finalized after the run,
  /// and a non-clean report becomes an AuditError.
  std::unique_ptr<AuditObserver> audit_;

  // --- per-run state ----------------------------------------------------
  Time now_ = 0.0;
  std::vector<task::Job> ready_;      ///< EDF-sorted.
  std::set<task::JobId> missed_ids_;  ///< kContinueLate: already-missed jobs.
  EventQueue events_;
  SimulationResult result_;
  bool ran_ = false;

  void release_arrivals();
  void process_deadlines();

  /// Perform one segment according to `decision`; advances now_.
  void execute_segment(const Decision& decision);

  /// Apply a non-zero DVFS transition cost as a mini stall segment.
  void apply_switch_overhead(const proc::SwitchOverhead& overhead);

  void complete_job(std::vector<task::Job>::iterator it);

  [[nodiscard]] SchedulingContext make_context() const;
  [[nodiscard]] std::vector<task::Job>::iterator find_ready(task::JobId id);
  void insert_ready(const task::Job& job);

  void notify_segment(const SegmentRecord& record);
};

}  // namespace eadvfs::sim
