#pragma once

/// \file gantt.hpp
/// ASCII Gantt rendering of a recorded schedule — the debugging view for
/// "what did the scheduler actually do": one row per job, one column per
/// time bucket, the glyph showing the operating point in use.
///
///     t=[0, 20)  each column = 0.5 time units
///     job 0 |000000000000000044          |  arr=0 dl=16
///     job 1 |                  44        |  arr=5 dl=17
///
/// Glyphs: '0'..'9' = operating-point index (capped at '9'), ' ' = not
/// executing.  The dominant operating point within a bucket wins the glyph.

#include <string>

#include "proc/frequency_table.hpp"
#include "sim/trace.hpp"

namespace eadvfs::sim {

struct GanttOptions {
  Time start = 0.0;
  Time end = 0.0;          ///< <= start means "span of the recording".
  std::size_t width = 64;  ///< columns.
  bool show_outcomes = true;  ///< append "done@t" / "MISS@t" per row.
};

/// Render the execution slices of `schedule` between the requested times.
/// Jobs are rows in first-execution order; jobs with no slices in range are
/// omitted.  Returns a multi-line string ending in '\n'.
[[nodiscard]] std::string render_gantt(const ScheduleRecorder& schedule,
                                       const GanttOptions& options = {});

}  // namespace eadvfs::sim
