#include "sim/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

namespace eadvfs::sim {

std::string render_gantt(const ScheduleRecorder& schedule,
                         const GanttOptions& options) {
  const auto& slices = schedule.slices();
  GanttOptions opts = options;
  if (opts.width == 0) opts.width = 64;
  if (opts.end <= opts.start) {
    Time lo = 0.0, hi = 0.0;
    if (!slices.empty()) {
      lo = slices.front().start;
      hi = slices.front().end;
      for (const auto& s : slices) {
        lo = std::min(lo, s.start);
        hi = std::max(hi, s.end);
      }
    }
    opts.start = lo;
    opts.end = hi > lo ? hi : lo + 1.0;
  }
  const double bucket = (opts.end - opts.start) / static_cast<double>(opts.width);

  // Rows in first-execution order.
  std::vector<task::JobId> row_order;
  std::map<task::JobId, std::vector<double>> rows;  // per-bucket op time (enc)
  auto row_of = [&](task::JobId id) -> std::vector<double>& {
    auto it = rows.find(id);
    if (it == rows.end()) {
      row_order.push_back(id);
      it = rows.emplace(id, std::vector<double>(opts.width * 16, 0.0)).first;
    }
    return it->second;
  };

  // Accumulate executed time per (bucket, op) pair; op capped at 15.
  for (const auto& s : slices) {
    const Time lo = std::max(s.start, opts.start);
    const Time hi = std::min(s.end, opts.end);
    if (hi <= lo) continue;
    auto& row = row_of(s.job);
    const std::size_t op = std::min<std::size_t>(s.op_index, 15);
    Time t = lo;
    while (t < hi) {
      auto b = static_cast<std::size_t>((t - opts.start) / bucket);
      // Boundary guard: when t sits on a bucket edge but the division
      // rounded down, step to the bucket whose interior contains t.
      if (opts.start + (static_cast<double>(b) + 1) * bucket <= t) ++b;
      b = std::min(b, opts.width - 1);
      const Time bucket_end =
          std::max(opts.start + (static_cast<double>(b) + 1) * bucket,
                   std::nextafter(t, kHuge));
      const Time sub_end = std::min(bucket_end, hi);
      row[b * 16 + op] += sub_end - t;
      t = sub_end;
    }
  }

  // Outcome lookup.
  std::map<task::JobId, const JobOutcome*> outcomes;
  for (const auto& o : schedule.outcomes()) outcomes[o.job.id] = &o;
  std::map<task::JobId, const task::Job*> releases;
  for (const auto& r : schedule.releases()) releases[r.id] = &r;

  std::ostringstream out;
  out << "t=[" << opts.start << ", " << opts.end << ")  each column = "
      << bucket << " time units\n";
  for (task::JobId id : row_order) {
    out << "job ";
    out.width(3);
    out << id << " |";
    const auto& row = rows[id];
    for (std::size_t b = 0; b < opts.width; ++b) {
      std::size_t best_op = 0;
      double best_time = 0.0;
      for (std::size_t op = 0; op < 16; ++op) {
        if (row[b * 16 + op] > best_time) {
          best_time = row[b * 16 + op];
          best_op = op;
        }
      }
      out << (best_time <= 0.0
                  ? ' '
                  : static_cast<char>(best_op < 10 ? '0' + best_op
                                                   : 'a' + (best_op - 10)));
    }
    out << '|';
    if (const auto rel = releases.find(id); rel != releases.end()) {
      out << "  arr=" << rel->second->arrival
          << " dl=" << rel->second->absolute_deadline;
    }
    if (opts.show_outcomes) {
      if (const auto it = outcomes.find(id); it != outcomes.end()) {
        out << (it->second->missed ? "  MISS@" : "  done@") << it->second->time;
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace eadvfs::sim
