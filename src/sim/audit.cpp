#include "sim/audit.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "energy/storage.hpp"
#include "proc/processor.hpp"
#include "sim/scheduler.hpp"
#include "util/math.hpp"

namespace eadvfs::sim {

using util::kEps;

AuditConfig AuditConfig::for_run(const SimulationConfig& sim,
                                 const energy::EnergyStorage& storage,
                                 const proc::Processor& processor,
                                 const Scheduler& scheduler) {
  AuditConfig cfg;
  cfg.horizon = sim.horizon;
  cfg.miss_policy = sim.miss_policy;
  cfg.capacity = storage.capacity();
  cfg.table = &processor.table();
  cfg.check_edf_order = scheduler.guarantees_edf_order();
  cfg.check_min_frequency = scheduler.guarantees_min_feasible_frequency();
  return cfg;
}

AuditObserver::AuditObserver(AuditConfig config) : cfg_(config) {
  if (cfg_.check_min_frequency && cfg_.table == nullptr)
    throw std::invalid_argument(
        "AuditObserver: check_min_frequency requires a frequency table");
}

bool AuditObserver::near(double a, double b, double tol) const {
  return std::abs(a - b) <= tol + 1e-9 * std::max(std::abs(a), std::abs(b));
}

void AuditObserver::violate(Time time, const char* invariant,
                            const std::string& message) {
  ++violation_count_;
  if (violations_.size() < cfg_.max_recorded)
    violations_.push_back({time, invariant, message});
}

void AuditObserver::on_release(const task::Job& job) {
  ++releases_;
  if (job.arrival > last_end_ + cfg_.tolerance)
    violate(last_end_, "events",
            "job " + std::to_string(job.id) + " released before its arrival (a=" +
                std::to_string(job.arrival) + ", now=" + std::to_string(last_end_) +
                ")");
  if (!ready_.emplace(job.id, PendingJob{job.arrival, job.absolute_deadline,
                                         job.wcet})
           .second)
    violate(last_end_, "events",
            "job " + std::to_string(job.id) + " released twice");
}

void AuditObserver::on_complete(const task::Job& job, Time finish) {
  // The engine mirrors its own comparison (kEps, not the audit tolerance) so
  // the on-time/late classification below matches result counters exactly.
  if (finish <= job.absolute_deadline + kEps)
    ++completions_ontime_;
  else
    ++completions_late_;
  if (!near(finish, last_end_, cfg_.tolerance))
    violate(finish, "events",
            "job " + std::to_string(job.id) +
                " completed between segments (finish=" + std::to_string(finish) +
                ", stream at " + std::to_string(last_end_) + ")");
  if (ready_.erase(job.id) == 0)
    violate(finish, "events",
            "completion of job " + std::to_string(job.id) +
                " that is not pending");
  missed_.erase(job.id);
}

void AuditObserver::on_abort(const task::Job& job, Time when) {
  ++aborts_;
  if (!near(when, last_end_, cfg_.tolerance))
    violate(when, "events",
            "job " + std::to_string(job.id) +
                " aborted between segments (when=" + std::to_string(when) +
                ", stream at " + std::to_string(last_end_) + ")");
  if (ready_.erase(job.id) == 0)
    violate(when, "events",
            "abort of job " + std::to_string(job.id) + " that is not pending");
  missed_.erase(job.id);
}

void AuditObserver::on_miss(const task::Job& job, Time deadline) {
  ++misses_;
  const auto it = ready_.find(job.id);
  if (it == ready_.end()) {
    violate(deadline, "events",
            "miss of job " + std::to_string(job.id) + " that is not pending");
    return;
  }
  if (!near(deadline, it->second.deadline, cfg_.tolerance))
    violate(deadline, "events",
            "job " + std::to_string(job.id) + " missed at " +
                std::to_string(deadline) + " but its deadline is " +
                std::to_string(it->second.deadline));
  if (cfg_.miss_policy == MissPolicy::kDropAtDeadline) {
    ready_.erase(it);
  } else if (!missed_.insert(job.id).second) {
    violate(deadline, "events",
            "job " + std::to_string(job.id) + " missed twice");
  }
}

void AuditObserver::check_running(const SegmentRecord& s) {
  const Time dt = s.end - s.start;
  const auto it = ready_.find(*s.job);
  if (it == ready_.end()) {
    violate(s.start, "ready",
            "segment executes job " + std::to_string(*s.job) +
                " which is not in the ready set");
    return;
  }

  if (cfg_.check_edf_order) {
    Time min_deadline = it->second.deadline;
    for (const auto& [id, pending] : ready_)
      min_deadline = std::min(min_deadline, pending.deadline);
    if (it->second.deadline > min_deadline + kEps)
      violate(s.start, "edf-order",
              "job " + std::to_string(*s.job) + " (d=" +
                  std::to_string(it->second.deadline) +
                  ") ran while an earlier deadline (" +
                  std::to_string(min_deadline) + ") was ready");
  }

  // Paper ineq. 3 made operational: the engine must stall, never run, when
  // the storage is empty and the harvest cannot cover the requested power.
  // Mirrors the engine's own comparison (kEps) so legitimate draining of a
  // sub-tolerance residue is not flagged.
  if (s.level_start <= kEps && s.consume_power > s.harvest_power + kEps)
    violate(s.start, "physics",
            "execution from an empty storage with harvest " +
                std::to_string(s.harvest_power) + " below demand " +
                std::to_string(s.consume_power));

  if (cfg_.table != nullptr) {
    if (s.op_index >= cfg_.table->size()) {
      violate(s.start, "ready",
              "segment uses operating point " + std::to_string(s.op_index) +
                  " outside the table");
      return;
    }
    if (cfg_.check_min_frequency) {
      const Time window = it->second.deadline - s.start;
      if (window > cfg_.tolerance) {
        // Slack both operands so reconstruction round-off can only relax
        // the bound, never fabricate a violation.
        const Work work =
            std::max(it->second.remaining - cfg_.tolerance, 0.0);
        const auto min_op =
            cfg_.table->min_feasible(work, window + cfg_.tolerance);
        if (!min_op) {
          if (s.op_index != cfg_.table->max_index())
            violate(s.start, "min-frequency",
                    "deadline-infeasible job " + std::to_string(*s.job) +
                        " not run at f_max (op " + std::to_string(s.op_index) +
                        ")");
        } else if (s.op_index < *min_op) {
          violate(s.start, "min-frequency",
                  "job " + std::to_string(*s.job) + " ran at op " +
                      std::to_string(s.op_index) +
                      " below the ineq. (6) minimum op " +
                      std::to_string(*min_op));
        }
      }
    }
    it->second.remaining = util::snap_nonnegative(
        it->second.remaining - cfg_.table->at(s.op_index).speed * dt,
        cfg_.tolerance);
  }
}

void AuditObserver::on_decision(const DecisionRecord& d) {
  // Emission-order invariant: records arrive with consecutive 0-based
  // indices, and every record names a non-empty rule.
  if (d.index != decisions_)
    violate(d.time, "decision",
            "record index " + std::to_string(d.index) + " but " +
                std::to_string(decisions_) + " decisions observed so far");
  if (d.rule == nullptr || d.rule[0] == '\0')
    violate(d.time, "decision",
            "decision " + std::to_string(d.index) + " fired no named rule");
  ++decisions_;
}

void AuditObserver::on_segment(const SegmentRecord& s) {
  const Time dt = s.end - s.start;

  // (a) gapless monotone coverage and storage-level continuity.
  if (dt < -cfg_.tolerance)
    violate(s.start, "coverage", "segment with negative duration");
  const Time expected_start = any_segment_ ? last_end_ : 0.0;
  if (!near(s.start, expected_start, cfg_.tolerance))
    violate(s.start, "coverage",
            "segment starts at " + std::to_string(s.start) +
                " but the stream is at " + std::to_string(expected_start));
  if (last_level_ >= 0.0 && !near(s.level_start, last_level_, cfg_.tolerance))
    violate(s.start, "continuity",
            "storage level jumped between segments: " +
                std::to_string(last_level_) + " -> " +
                std::to_string(s.level_start) +
                " (energy moved without a record)");

  // (b) per-segment energy conservation and bounds.
  const Energy expected_end = s.level_start + s.harvested - s.consumed -
                              s.overflow - s.leaked - s.fault_drained;
  if (!near(s.level_end, expected_end, cfg_.tolerance))
    violate(s.start, "energy",
            "segment [" + std::to_string(s.start) + ", " +
                std::to_string(s.end) + ") violates conservation: level " +
                std::to_string(s.level_start) + " + harvest " +
                std::to_string(s.harvested) + " - consume " +
                std::to_string(s.consumed) + " - overflow " +
                std::to_string(s.overflow) + " - leak " +
                std::to_string(s.leaked) + " - fault " +
                std::to_string(s.fault_drained) + " != " +
                std::to_string(s.level_end));
  for (const Energy level : {s.level_start, s.level_end}) {
    if (level < -cfg_.tolerance || level > cfg_.capacity + cfg_.tolerance)
      violate(s.start, "bounds",
              "storage level " + std::to_string(level) + " outside [0, " +
                  std::to_string(cfg_.capacity) + "]");
  }
  if (s.harvested < -cfg_.tolerance || s.consumed < -cfg_.tolerance ||
      s.overflow < -cfg_.tolerance || s.leaked < -cfg_.tolerance ||
      s.fault_drained < -cfg_.tolerance)
    violate(s.start, "bounds", "negative energy quantity on segment");

  // (c) scheduling invariants for running segments.
  if (s.job.has_value()) {
    if (s.instantaneous())
      violate(s.start, "coverage", "zero-duration execution segment");
    check_running(s);
  }

  // (d) accumulate the stream aggregates for finalize().
  harvested_ += s.harvested;
  consumed_ += s.consumed;
  overflow_ += s.overflow;
  leaked_ += s.leaked;
  fault_drained_ += s.fault_drained;
  if (s.job.has_value()) {
    busy_ += dt;
    if (time_at_op_.size() <= s.op_index) time_at_op_.resize(s.op_index + 1, 0.0);
    time_at_op_[s.op_index] += dt;
  } else if (!s.instantaneous()) {
    if (s.stalled)
      stall_ += dt;
    else
      idle_ += dt;
    if (s.brownout) brownout_ += dt;
  }
  ++segments_;
  any_segment_ = true;
  last_end_ = s.end;
  last_level_ = s.level_end;
}

void AuditObserver::finalize(const SimulationResult& result) {
  if (finalized_) throw std::logic_error("AuditObserver::finalize: called twice");
  finalized_ = true;
  const double tol = cfg_.aggregate_tolerance;

  // (a) the stream covers [0, horizon) completely.
  if (!any_segment_ && cfg_.horizon > cfg_.tolerance) {
    violate(0.0, "coverage", "run produced no segments");
  } else if (!near(last_end_, cfg_.horizon, cfg_.tolerance)) {
    violate(last_end_, "coverage",
            "stream ends at " + std::to_string(last_end_) +
                ", horizon is " + std::to_string(cfg_.horizon));
  }
  if (!near(result.end_time, last_end_, cfg_.tolerance))
    violate(last_end_, "coverage",
            "result.end_time " + std::to_string(result.end_time) +
                " != last segment end " + std::to_string(last_end_));

  // (d) segment-stream sums must reproduce the result aggregates.
  const auto check = [&](const char* what, double stream, double aggregate) {
    if (!near(stream, aggregate, tol))
      violate(last_end_, "aggregate",
              std::string(what) + ": stream sum " + std::to_string(stream) +
                  " != result " + std::to_string(aggregate));
  };
  check("harvested", harvested_, result.harvested);
  check("consumed", consumed_, result.consumed);
  check("overflow", overflow_, result.overflow);
  check("leaked", leaked_, result.leaked);
  check("fault_drained", fault_drained_, result.fault_drained);
  check("busy_time", busy_, result.busy_time);
  check("idle_time", idle_, result.idle_time);
  check("stall_time", stall_, result.stall_time);
  check("brownout_time", brownout_, result.brownout_time);
  const std::size_t n_ops =
      std::max(time_at_op_.size(), result.time_at_op.size());
  for (std::size_t op = 0; op < n_ops; ++op) {
    const Time stream = op < time_at_op_.size() ? time_at_op_[op] : 0.0;
    const Time agg = op < result.time_at_op.size() ? result.time_at_op[op] : 0.0;
    check(("time_at_op[" + std::to_string(op) + "]").c_str(), stream, agg);
  }
  if (segments_ != result.segments)
    violate(last_end_, "aggregate",
            "observed " + std::to_string(segments_) +
                " segment records but result counts " +
                std::to_string(result.segments));
  if (decisions_ != result.decisions)
    violate(last_end_, "aggregate",
            "observed " + std::to_string(decisions_) +
                " decision records but result counts " +
                std::to_string(result.decisions));
  // Compare inflows against outflows (not the subtracted error against 0) so
  // the relative term of near() absorbs the unavoidable cancellation when
  // the storage level dwarfs the flows (e.g. the 1e15 "infinite energy"
  // scenarios, where one ULP of the level is ~0.1).
  const Energy inflow = result.storage_initial + result.harvested;
  const Energy outflow = result.storage_final + result.consumed +
                         result.overflow + result.leaked +
                         result.fault_drained;
  if (!near(inflow, outflow, tol))
    violate(last_end_, "energy",
            "whole-run conservation error " +
                std::to_string(result.conservation_error()));

  // Job bookkeeping balances against the observed event stream.
  const auto check_count = [&](const char* what, std::size_t stream,
                               std::size_t aggregate) {
    if (stream != aggregate)
      violate(last_end_, "aggregate",
              std::string(what) + ": observed " + std::to_string(stream) +
                  " events but result counts " + std::to_string(aggregate));
  };
  check_count("jobs_released", releases_, result.jobs_released);
  check_count("jobs_completed", completions_ontime_, result.jobs_completed);
  check_count("jobs_completed_late", completions_late_,
              result.jobs_completed_late);
  check_count("jobs_missed", misses_, result.jobs_missed);
  check_count("jobs_aborted", aborts_, result.jobs_aborted);
  std::size_t unresolved = 0;
  for (const auto& [id, pending] : ready_)
    if (missed_.count(id) == 0) ++unresolved;
  check_count("jobs_unresolved", unresolved, result.jobs_unresolved);
}

std::string AuditObserver::report() const {
  if (ok()) return "audit: clean";
  std::ostringstream out;
  out << "audit: " << violation_count_ << " violation(s)";
  for (const auto& v : violations_)
    out << "\n  [t=" << v.time << "] " << v.invariant << ": " << v.message;
  if (violation_count_ > violations_.size())
    out << "\n  ... " << (violation_count_ - violations_.size())
        << " further violation(s) not recorded";
  return out.str();
}

}  // namespace eadvfs::sim
