#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/log.hpp"
#include "util/math.hpp"

namespace eadvfs::sim {

using util::kEps;

Engine::Engine(const SimulationConfig& config, const energy::EnergySource& source,
               energy::EnergyStorage& storage, proc::Processor& processor,
               energy::EnergyPredictor& predictor, Scheduler& scheduler,
               task::JobReleaser& releaser)
    : config_(config),
      source_(source),
      storage_(storage),
      processor_(processor),
      predictor_(predictor),
      scheduler_(scheduler),
      releaser_(releaser) {
  config_.validate();
  if (config_.audit) {
    audit_ = &observers_.emplace<AuditObserver>(
        AuditConfig::for_run(config_, storage_, processor_, scheduler_));
  }
}

void Engine::set_fault_schedule(const fault::FaultSchedule* schedule) {
  if (ran_)
    throw std::logic_error("Engine::set_fault_schedule: run already started");
  fault_ = schedule;
}

Time Engine::next_fault_time() const {
  if (fault_ == nullptr) return kHuge;
  const auto& events = fault_->events();
  return fault_index_ < events.size() ? events[fault_index_].time : kHuge;
}

void Engine::emit_fault_record(Energy level_before, Energy drained) {
  SegmentRecord rec;
  rec.start = now_;
  rec.end = now_;
  rec.level_start = level_before;
  rec.level_end = storage_.level();
  rec.fault_drained = drained;
  ++result_.segments;
  notify_segment(rec);
}

void Engine::apply_due_faults() {
  if (fault_ == nullptr) return;
  const auto& events = fault_->events();
  while (fault_index_ < events.size() &&
         events[fault_index_].time <= now_ + kEps) {
    const fault::FaultEvent& e = events[fault_index_++];
    switch (e.kind) {
      case FaultNotice::Kind::kStorageDrop: {
        const Energy before = storage_.level();
        const Energy drained = storage_.fault_drain(before * e.magnitude);
        result_.fault_drained += drained;
        ++result_.storage_faults_injected;
        if (drained > 0.0) emit_fault_record(before, drained);
        break;
      }
      case FaultNotice::Kind::kCapacityDerate: {
        const Energy before = storage_.level();
        const Energy spilled = storage_.set_capacity_derate(e.magnitude);
        result_.fault_drained += spilled;
        ++result_.storage_faults_injected;
        if (spilled > 0.0) emit_fault_record(before, spilled);
        break;
      }
      case FaultNotice::Kind::kCapacityRestore:
        storage_.set_capacity_derate(1.0);
        break;
      default:
        // Harvest-window edges: the power change already lives inside the
        // (wrapped) source; only the scheduler notification below matters.
        break;
    }
    scheduler_.on_fault({now_, e.kind});
  }
}

void Engine::abort_job(std::vector<task::Job>::iterator it) {
  const task::Job job = *it;
  ++result_.jobs_aborted;
  result_.work_dropped += job.remaining;
  missed_ids_.erase(job.id);
  ready_.erase(it);
  // The job's deadline event may still be queued; process_deadlines skips
  // ids absent from the ready set, so no miss is counted for aborted jobs.
  observers_.notify_abort(job, now_);
}

void Engine::notify_segment(const SegmentRecord& record) {
  observers_.notify_segment(record);
}

std::vector<task::Job>::iterator Engine::find_ready(task::JobId id) {
  return std::find_if(ready_.begin(), ready_.end(),
                      [id](const task::Job& j) { return j.id == id; });
}

void Engine::insert_ready(const task::Job& job) {
  const auto pos =
      std::upper_bound(ready_.begin(), ready_.end(), job, task::EdfBefore{});
  ready_.insert(pos, job);
}

SchedulingContext Engine::make_context() const {
  SchedulingContext ctx;
  ctx.now = now_;
  ctx.ready = &ready_;
  ctx.stored = storage_.level();
  ctx.predictor = &predictor_;
  ctx.table = &processor_.table();
  return ctx;
}

void Engine::release_arrivals() {
  for (task::Job& job : releaser_.release_due(now_)) {
    job.arrival = std::min(job.arrival, now_);  // normalize epsilon-early pops
    ++result_.jobs_released;
    observers_.notify_release(job);
    if (job.actual_remaining <= kEps) {
      // Degenerate zero-work job: complete on the spot (a zero-length
      // execution segment would stall the engine's progress guarantee).
      job.remaining = 0.0;
      job.actual_remaining = 0.0;
      ++result_.jobs_completed;
      observers_.notify_complete(job, now_);
      continue;
    }
    events_.push({job.absolute_deadline, EventType::kDeadline, job.id, 0});
    insert_ready(job);
  }
}

void Engine::process_deadlines() {
  for (const Event& e : events_.pop_due(now_)) {
    if (e.type != EventType::kDeadline) continue;
    auto it = find_ready(e.job);
    if (it == ready_.end()) continue;            // completed earlier
    if (missed_ids_.count(e.job) != 0) continue; // already counted (late mode)
    ++result_.jobs_missed;
    observers_.notify_miss(*it, e.time);
    if (config_.miss_policy == MissPolicy::kDropAtDeadline) {
      result_.work_dropped += it->remaining;
      ready_.erase(it);
    } else {
      missed_ids_.insert(e.job);
    }
  }
}

void Engine::apply_switch_overhead(const proc::SwitchOverhead& overhead) {
  // Model: the transition stalls the processor for `overhead.time` while
  // drawing `overhead.energy` from the storage (clamped at empty), with
  // harvesting continuing.  Deadlines/arrivals crossed during the stall are
  // processed at the next loop iteration (the stall is not interruptible,
  // which is the physically conservative choice).  A stall truncated by the
  // horizon only draws the elapsed fraction of the transition energy, and a
  // zero-duration transition (time == 0, energy > 0) is emitted as an
  // instantaneous segment record so the observer stream still balances.
  const Time t_end = std::min(now_ + overhead.time, config_.horizon);
  const Time dt = t_end - now_;
  const Energy level_start = storage_.level();
  const double fraction = overhead.time > 0.0 ? dt / overhead.time : 1.0;
  Energy harvested = 0.0;
  Energy overflow = 0.0;
  if (dt > 0.0) {
    harvested = source_.energy_between(now_, t_end);
    result_.harvested += harvested;
    overflow = storage_.charge(harvested);
    result_.overflow += overflow;
    processor_.note_stall(dt);
    result_.stall_time += dt;
  }
  const Energy drawn = std::min(storage_.level(), overhead.energy * fraction);
  storage_.discharge(drawn);
  result_.consumed += drawn;
  const Energy leaked_before = storage_.total_leaked();
  storage_.leak(dt);
  const Energy leaked = storage_.total_leaked() - leaked_before;

  if (dt > 0.0) predictor_.observe(now_, t_end, harvested);

  SegmentRecord rec;
  rec.start = now_;
  rec.end = t_end;
  rec.harvest_power = dt > 0.0 ? harvested / dt : 0.0;
  rec.consume_power = dt > 0.0 ? drawn / dt : 0.0;
  rec.harvested = harvested;
  rec.consumed = drawn;
  rec.overflow = overflow;
  rec.leaked = leaked;
  rec.level_start = level_start;
  rec.level_end = storage_.level();
  rec.stalled = true;
  notify_segment(rec);
  now_ = t_end;
}

void Engine::complete_job(std::vector<task::Job>::iterator it) {
  task::Job job = *it;
  job.remaining = util::snap_nonnegative(job.remaining);
  job.actual_remaining = 0.0;
  result_.work_completed += job.actual_work;
  if (now_ <= job.absolute_deadline + kEps) {
    ++result_.jobs_completed;
  } else {
    ++result_.jobs_completed_late;  // miss was already counted at deadline
  }
  missed_ids_.erase(job.id);
  ready_.erase(it);
  observers_.notify_complete(job, now_);
}

Decision Engine::decide_traced() {
  DecisionRecord rec;
  rec.index = result_.decisions;
  rec.time = now_;
  const task::Job& front = ready_.front();
  rec.job = front.id;
  rec.task_id = front.task_id;
  rec.deadline = front.absolute_deadline;
  rec.remaining = front.remaining;
  rec.stored = storage_.level();

  SchedulingContext ctx = make_context();
  ctx.trace = &rec;
  const Decision decision = scheduler_.decide(ctx);

  rec.run = decision.kind == Decision::Kind::kRun;
  rec.chosen_op = rec.run ? decision.op_index : 0;
  // When running, execution starts now; when idling, the scheduler's wake
  // bound is the planned start instant.
  rec.start = rec.run ? now_ : decision.recheck_at;
  rec.recheck_at = decision.recheck_at;
  ++result_.decisions;
  observers_.notify_decision(rec);
  return decision;
}

void Engine::execute_segment(const Decision& decision) {
  const Power ps = source_.power_at(now_);

  // --- resolve what will actually happen this segment -------------------
  bool running = false;
  bool stalled = false;
  std::vector<task::Job>::iterator job_it = ready_.end();
  std::size_t op_index = 0;
  Power consume = 0.0;
  double speed = 0.0;

  if (decision.kind == Decision::Kind::kRun) {
    job_it = find_ready(decision.job);
    if (job_it == ready_.end())
      throw std::logic_error("Engine: scheduler chose a job not in the ready set");
    op_index = decision.op_index;
    const proc::OperatingPoint& op = processor_.table().at(op_index);
    if (storage_.level() <= kEps && op.power > ps + kEps) {
      // Physically impossible: no stored energy and harvest below demand.
      stalled = true;
    } else {
      if (fault_ != nullptr && fault_->profile().affects_switches() &&
          op_index != processor_.current()) {
        const fault::SwitchFault sf = fault_->switch_fault(switch_attempts_++);
        const fault::FaultProfile& fp = fault_->profile();
        if (sf.kind == fault::SwitchFault::Kind::kReject) {
          // The transition is refused: the processor stays at its old point
          // and the attempt costs a stall (floored at switch_min_stall so a
          // zero-overhead model cannot retry at the same instant forever).
          ++result_.switch_faults_injected;
          scheduler_.on_fault({now_, FaultNotice::Kind::kSwitchReject});
          proc::SwitchOverhead cost = processor_.overhead_model();
          cost.time = std::max(cost.time, fp.switch_min_stall);
          apply_switch_overhead(cost);
          return;  // re-decide from the unchanged operating point
        }
        if (sf.kind == fault::SwitchFault::Kind::kStall) {
          // The transition succeeds but takes k× the nominal overhead.
          ++result_.switch_faults_injected;
          scheduler_.on_fault({now_, FaultNotice::Kind::kSwitchStall});
          proc::SwitchOverhead cost = processor_.switch_to(op_index);
          cost.time = std::max(cost.time * fp.switch_stall_factor,
                               fp.switch_min_stall);
          cost.energy *= fp.switch_stall_factor;
          apply_switch_overhead(cost);
          return;  // re-decide after the slow transition
        }
      }
      const proc::SwitchOverhead overhead = processor_.switch_to(op_index);
      if (overhead.time > 0.0 || overhead.energy > 0.0) {
        apply_switch_overhead(overhead);
        return;  // re-decide after the transition stall
      }
      running = true;
      consume = op.power;
      speed = op.speed;
    }
  }

  // --- choose the segment end -------------------------------------------
  Time t_next = config_.horizon;
  t_next = std::min(t_next, releaser_.next_arrival());
  t_next = std::min(t_next, events_.next_time());
  t_next = std::min(t_next, source_.piece_end(now_));
  {
    // Fault instants are decision points: the segment must end there so the
    // drop/derate applies at its exact time (apply_due_faults consumed
    // everything <= now_, so this bound is always in the future).
    const Time t_fault = next_fault_time();
    if (t_fault > now_) t_next = std::min(t_next, t_fault);
  }
  if (decision.recheck_at > now_ + kEps)
    t_next = std::min(t_next, decision.recheck_at);
  if (stalled) t_next = std::min(t_next, now_ + config_.stall_wakeup);

  const Energy level = storage_.level();
  // Power drawn this segment: the operating point when running, the idle
  // draw otherwise (the processor is powered even while waiting).  With an
  // empty storage and harvest below the idle draw the device *browns out*:
  // it consumes only what arrives and the unmet remainder is tracked.
  const Power draw = running ? consume : processor_.idle_power();
  const bool brownout = !running && level <= kEps && draw > ps + kEps;
  const Power net = brownout ? 0.0 : ps - draw;
  if (running) {
    // The job physically completes when its *actual* demand is done, which
    // may be earlier than the WCET budget the scheduler planned with.
    const Time t_complete = now_ + job_it->actual_remaining / speed;
    t_next = std::min(t_next, t_complete);
  }
  if (net < -kEps) {
    const Time t_empty = now_ + level / (draw - ps);
    t_next = std::min(t_next, t_empty);
  }
  if (net > kEps && !storage_.full()) {
    // The storage banks only charge_efficiency of the surplus, so the level
    // rises at net * efficiency.  Predicting the crossing with the raw net
    // would end the segment before the storage is actually full, and the
    // shrinking headroom would spawn a Zeno-like cascade of segments — each
    // a spurious decision point perturbing DVFS choices.
    const Power fill = net * storage_.config().charge_efficiency;
    if (fill > kEps) {
      const Time t_full = now_ + storage_.headroom() / fill;
      if (t_full > now_ + kEps) t_next = std::min(t_next, t_full);
    }
  }

  if (!(t_next > now_))
    throw std::logic_error("Engine: zero-progress segment (engine bug)");

  // --- integrate ----------------------------------------------------------
  const Time dt = t_next - now_;
  const Energy level_start = storage_.level();
  const Energy harvested = ps * dt;
  result_.harvested += harvested;
  Energy overflow = 0.0;
  Energy consumed_energy = 0.0;
  if (running) {
    const Energy consumed = consume * dt;
    consumed_energy = consumed;
    result_.consumed += consumed;
    const Energy net_energy = harvested - consumed;
    if (net_energy >= 0.0) {
      overflow = storage_.charge(net_energy);
    } else {
      storage_.discharge(-net_energy);
    }
    job_it->remaining = util::snap_nonnegative(job_it->remaining - speed * dt);
    job_it->actual_remaining =
        util::snap_nonnegative(job_it->actual_remaining - speed * dt);
    if (job_it->actual_remaining <= kEps) job_it->actual_remaining = 0.0;
    processor_.note_busy(dt);
    result_.busy_time += dt;
    result_.time_at_op[op_index] += dt;
  } else {
    if (brownout) {
      // Harvest feeds the idle draw directly; nothing reaches the storage
      // and the shortfall (draw - ps) goes unmet.
      consumed_energy = harvested;
      result_.consumed += harvested;
      result_.brownout_time += dt;
    } else {
      const Energy idle_draw = draw * dt;
      consumed_energy = idle_draw;
      result_.consumed += idle_draw;
      const Energy net_energy = harvested - idle_draw;
      if (net_energy >= 0.0) {
        overflow = storage_.charge(net_energy);
      } else {
        storage_.discharge(-net_energy);
      }
    }
    if (stalled) {
      processor_.note_stall(dt);
      result_.stall_time += dt;
    } else {
      processor_.note_idle(dt);
      result_.idle_time += dt;
    }
  }
  const Energy leaked_before = storage_.total_leaked();
  storage_.leak(dt);
  const Energy leaked = storage_.total_leaked() - leaked_before;
  result_.overflow += overflow;
  predictor_.observe(now_, t_next, harvested);

  SegmentRecord rec;
  rec.start = now_;
  rec.end = t_next;
  if (running) {
    rec.job = job_it->id;
    rec.op_index = op_index;
  }
  rec.harvest_power = ps;
  rec.consume_power = running ? consume : (brownout ? ps : draw);
  rec.level_start = level_start;
  rec.level_end = storage_.level();
  rec.harvested = harvested;
  rec.consumed = consumed_energy;
  rec.overflow = overflow;
  rec.leaked = leaked;
  rec.stalled = stalled;
  rec.brownout = brownout;
  notify_segment(rec);

  now_ = t_next;
  if (running && job_it->finished()) {
    complete_job(job_it);
  } else if (running && net < -kEps && storage_.level() <= kEps) {
    // The segment drained the storage dry with the job unfinished — the
    // depletion decision point.  Under suspend-and-resume the job simply
    // stays ready: the next decide() re-enters EDF order and the physics
    // guard above forces a stall until harvest accumulates (EA-DVFS then
    // re-derives the minimum feasible frequency from the remaining work).
    // Under abort-and-charge the computation is lost with the power.
    if (config_.depletion_policy == DepletionPolicy::kAbortAndCharge) {
      abort_job(job_it);
    } else {
      ++result_.suspensions;
    }
  }
}

SimulationResult Engine::run() {
  if (ran_) throw std::logic_error("Engine::run: single-shot; create a new Engine");
  ran_ = true;

  result_ = SimulationResult{};
  result_.storage_initial = storage_.level();
  result_.time_at_op.assign(processor_.table().size(), 0.0);
  now_ = 0.0;
  scheduler_.reset();

  while (true) {
    release_arrivals();
    process_deadlines();
    apply_due_faults();
    if (now_ >= config_.horizon - kEps) break;
    if (++result_.segments > config_.max_segments)
      throw std::runtime_error("Engine: segment budget exceeded (runaway loop?)");

    const Decision decision =
        ready_.empty() ? Decision::idle_until(kHuge) : decide_traced();
    execute_segment(decision);
  }

  for (const task::Job& job : ready_) {
    if (missed_ids_.count(job.id) == 0) ++result_.jobs_unresolved;
  }
  result_.end_time = now_;
  result_.storage_final = storage_.level();
  result_.leaked = storage_.total_leaked();
  result_.frequency_switches = processor_.switch_count();
  if (audit_) {
    audit_->finalize(result_);
    if (!audit_->ok()) throw AuditError(audit_->report());
  }
  return result_;
}

}  // namespace eadvfs::sim
