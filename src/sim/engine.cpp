#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/math.hpp"

namespace eadvfs::sim {

Engine::Engine(const SimulationConfig& config, const energy::EnergySource& source,
               energy::EnergyStorage& storage, proc::Processor& processor,
               energy::EnergyPredictor& predictor, Scheduler& scheduler,
               task::JobReleaser& releaser)
    : config_(config),
      source_(source),
      storage_(storage),
      processor_(processor),
      predictor_(predictor),
      scheduler_(scheduler),
      releaser_(releaser) {
  config_.validate();
  if (config_.audit) {
    audit_ = &observers_.emplace<AuditObserver>(
        AuditConfig::for_run(config_, storage_, processor_, scheduler_));
  }
}

void Engine::set_fault_schedule(const fault::FaultSchedule* schedule) {
  if (ran_)
    throw std::logic_error("Engine::set_fault_schedule: run already started");
  fault_ = schedule;
}

// The reference path: the kernel instantiated for the base class, so every
// scheduler call goes through the vtable exactly as the pre-kernel engine
// did.  sched::run_fast() and Engine::run_as<S>() provide the devirtualized
// instantiations; all paths produce bit-identical results.
SimulationResult Engine::run() { return run_as<Scheduler>(scheduler_); }

}  // namespace eadvfs::sim
