#include "sim/trace.hpp"

#include <stdexcept>

namespace eadvfs::sim {

EnergyTraceRecorder::EnergyTraceRecorder(Time interval, Time horizon) {
  if (interval <= 0.0)
    throw std::invalid_argument("EnergyTraceRecorder: interval must be positive");
  if (horizon < 0.0)
    throw std::invalid_argument("EnergyTraceRecorder: negative horizon");
  for (Time t = 0.0; t <= horizon + 1e-9; t += interval) times_.push_back(t);
  levels_.assign(times_.size(), 0.0);
}

void EnergyTraceRecorder::on_segment(const SegmentRecord& segment) {
  const Time dt = segment.end - segment.start;
  while (next_ < times_.size() && times_[next_] <= segment.end + 1e-9) {
    const Time t = times_[next_];
    if (t < segment.start - 1e-9) {
      // Grid point before any observed segment (can only be t=0 races);
      // take the segment's start level.
      levels_[next_] = segment.level_start;
    } else if (dt <= 0.0) {
      levels_[next_] = segment.level_end;
    } else {
      const double frac = (t - segment.start) / dt;
      levels_[next_] =
          segment.level_start + (segment.level_end - segment.level_start) * frac;
    }
    ++next_;
  }
}

void ScheduleRecorder::on_segment(const SegmentRecord& segment) {
  if (!segment.job.has_value()) return;
  if (segment.end <= segment.start) return;
  // Merge with the previous slice when it is a seamless continuation.
  if (!slices_.empty()) {
    ExecutionSlice& last = slices_.back();
    if (last.job == *segment.job && last.op_index == segment.op_index &&
        last.end == segment.start) {
      last.end = segment.end;
      return;
    }
  }
  slices_.push_back({*segment.job, segment.op_index, segment.start, segment.end});
}

void ScheduleRecorder::on_release(const task::Job& job) { releases_.push_back(job); }

void ScheduleRecorder::on_complete(const task::Job& job, Time finish) {
  outcomes_.push_back({job, finish, false});
}

void ScheduleRecorder::on_miss(const task::Job& job, Time deadline) {
  outcomes_.push_back({job, deadline, true});
}

Time ScheduleRecorder::executed_time(task::JobId job) const {
  Time total = 0.0;
  for (const auto& s : slices_)
    if (s.job == job) total += s.end - s.start;
  return total;
}

std::vector<ExecutionSlice> ScheduleRecorder::slices_of(task::JobId job) const {
  std::vector<ExecutionSlice> result;
  for (const auto& s : slices_)
    if (s.job == job) result.push_back(s);
  return result;
}

}  // namespace eadvfs::sim
