#pragma once

/// \file config.hpp
/// Engine-level simulation parameters (policy-independent).

#include <cmath>
#include <stdexcept>

#include "util/types.hpp"

namespace eadvfs::sim {

/// What happens to a job that is still unfinished at its deadline.
enum class MissPolicy {
  /// Count the miss and discard the remaining work (firm real-time
  /// semantics; the default, and what keeps LSA/EA-DVFS comparisons clean —
  /// no energy is spent on already-dead jobs).
  kDropAtDeadline,
  /// Count the miss but keep executing the job to completion (soft
  /// real-time semantics).
  kContinueLate,
};

/// What happens when the storage empties while a job is executing and the
/// instantaneous harvest cannot sustain the chosen operating point.
enum class DepletionPolicy {
  /// The job stays in the ready set and the engine stalls until harvest
  /// accumulates; execution resumes from the remaining work, re-entering the
  /// EDF order, and EA-DVFS recomputes the minimum feasible frequency from
  /// what is left.  This is the paper's implicit model and the default.
  kSuspendAndResume,
  /// The job is aborted (removed from the ready set, its remaining work
  /// discarded) and the device charges; models firmware that cannot
  /// checkpoint a computation through a power loss.
  kAbortAndCharge,
};

struct SimulationConfig {
  Time horizon = 10'000.0;  ///< paper §5.1: simulate 10,000 time units.
  MissPolicy miss_policy = MissPolicy::kDropAtDeadline;
  DepletionPolicy depletion_policy = DepletionPolicy::kSuspendAndResume;
  /// While stalled (scheduler wants to run but the storage is empty and the
  /// instantaneous harvest is below the requested power), the engine
  /// re-evaluates at least this often so accumulating harvest can restart
  /// execution even when no other event is pending.  Matches the solar
  /// source's noise step by default.
  Time stall_wakeup = 1.0;
  /// Safety valve: abort with an error after this many engine segments
  /// (guards against a zero-progress loop bug rather than hanging a sweep).
  std::size_t max_segments = 50'000'000;
  /// Self-audit: the engine attaches a sim::AuditObserver to its own run and
  /// throws sim::AuditError with the full violation report if any invariant
  /// (energy conservation, segment coverage, scheduling contracts, stream/
  /// result consistency) is broken.  Costs one extra observer per segment.
  bool audit = false;

  /// Construction-time sanity check.  NaN deliberately fails every
  /// comparison below (`!(x > 0)` is true for NaN), so a config assembled
  /// from unparsed user input cannot smuggle a NaN horizon into the engine.
  void validate() const {
    if (!(horizon > 0.0) || !std::isfinite(horizon))
      throw std::invalid_argument(
          "SimulationConfig: horizon must be positive and finite");
    if (!(stall_wakeup > 0.0) || !std::isfinite(stall_wakeup))
      throw std::invalid_argument(
          "SimulationConfig: stall_wakeup must be positive and finite");
    if (max_segments == 0)
      throw std::invalid_argument(
          "SimulationConfig: max_segments must be positive");
  }
};

}  // namespace eadvfs::sim
