#pragma once

/// \file config.hpp
/// Engine-level simulation parameters (policy-independent).

#include "util/types.hpp"

namespace eadvfs::sim {

/// What happens to a job that is still unfinished at its deadline.
enum class MissPolicy {
  /// Count the miss and discard the remaining work (firm real-time
  /// semantics; the default, and what keeps LSA/EA-DVFS comparisons clean —
  /// no energy is spent on already-dead jobs).
  kDropAtDeadline,
  /// Count the miss but keep executing the job to completion (soft
  /// real-time semantics).
  kContinueLate,
};

struct SimulationConfig {
  Time horizon = 10'000.0;  ///< paper §5.1: simulate 10,000 time units.
  MissPolicy miss_policy = MissPolicy::kDropAtDeadline;
  /// While stalled (scheduler wants to run but the storage is empty and the
  /// instantaneous harvest is below the requested power), the engine
  /// re-evaluates at least this often so accumulating harvest can restart
  /// execution even when no other event is pending.  Matches the solar
  /// source's noise step by default.
  Time stall_wakeup = 1.0;
  /// Safety valve: abort with an error after this many engine segments
  /// (guards against a zero-progress loop bug rather than hanging a sweep).
  std::size_t max_segments = 50'000'000;
  /// Self-audit: the engine attaches a sim::AuditObserver to its own run and
  /// throws sim::AuditError with the full violation report if any invariant
  /// (energy conservation, segment coverage, scheduling contracts, stream/
  /// result consistency) is broken.  Costs one extra observer per segment.
  bool audit = false;
};

}  // namespace eadvfs::sim
