#pragma once

/// \file result.hpp
/// Aggregate outcome of one simulation run: job bookkeeping (the paper's
/// deadline-miss metric), full energy accounting (conservation-checkable),
/// and processor utilization details.

#include <cstddef>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace eadvfs::sim {

struct SimulationResult {
  // --- job outcomes ----------------------------------------------------
  std::size_t jobs_released = 0;
  /// Completed no later than their deadline.
  std::size_t jobs_completed = 0;
  /// Unfinished at their deadline (paper's "deadline miss").
  std::size_t jobs_missed = 0;
  /// Released but neither completed nor past-deadline at the horizon.
  std::size_t jobs_unresolved = 0;
  /// Completed after their deadline (kContinueLate only; these jobs were
  /// already counted in jobs_missed at the deadline instant).
  std::size_t jobs_completed_late = 0;
  /// Abandoned mid-execution by DepletionPolicy::kAbortAndCharge when the
  /// storage emptied.  Aborted jobs never complete and are excluded from
  /// miss_rate() (they were killed by the energy system, not the scheduler).
  std::size_t jobs_aborted = 0;
  /// Times the storage ran dry mid-execution under
  /// DepletionPolicy::kSuspendAndResume: the job stays ready and either
  /// resumes when harvest accumulates or continues at a harvest-sustainable
  /// operating point.
  std::size_t suspensions = 0;

  /// Fraction of deadline-resolved jobs that missed (paper's y-axis in
  /// Figures 8/9).  0 when nothing resolved.
  [[nodiscard]] double miss_rate() const;

  // --- energy accounting ------------------------------------------------
  Energy harvested = 0.0;        ///< gross harvester output over the run.
  Energy consumed = 0.0;         ///< drawn by the processor (incl. overhead).
  Energy overflow = 0.0;         ///< harvested energy discarded (storage full).
  Energy leaked = 0.0;           ///< storage self-discharge (0 for the paper's
                                 ///< ideal model).
  Energy fault_drained = 0.0;    ///< energy destroyed by injected storage
                                 ///< faults (level drops, derate spills).
  Energy storage_initial = 0.0;
  Energy storage_final = 0.0;

  /// |initial + harvested − consumed − overflow − leaked − fault_drained −
  /// final| — should be ~0; exposed so tests can assert conservation on
  /// arbitrary workloads, faulted or not.
  [[nodiscard]] Energy conservation_error() const;

  // --- processor --------------------------------------------------------
  Time busy_time = 0.0;
  Time idle_time = 0.0;
  Time stall_time = 0.0;   ///< scheduler wanted to run, storage was empty.
  /// Idle/stall time during which the storage was empty and the harvest
  /// could not even cover the processor's idle draw (only possible with a
  /// non-zero idle-power model).  Subset of idle_time + stall_time.
  Time brownout_time = 0.0;
  std::size_t frequency_switches = 0;
  std::vector<Time> time_at_op;  ///< busy-time residency per operating point.

  Work work_completed = 0.0;
  Work work_dropped = 0.0;  ///< remaining work of jobs dropped at deadline.

  Time end_time = 0.0;
  std::size_t segments = 0;   ///< engine segments processed (diagnostics).
  std::size_t decisions = 0;  ///< Scheduler::decide() calls (= DecisionRecords
                              ///< emitted; the engine never decides with an
                              ///< empty ready set).

  // --- fault injection ---------------------------------------------------
  std::size_t storage_faults_injected = 0;  ///< drops + derates applied.
  std::size_t switch_faults_injected = 0;   ///< rejected + stalled switches.

  [[nodiscard]] std::string summary() const;

  /// Deterministic JSON object (every field above, fixed key order,
  /// util::format_double number formatting).  `indent` spaces prefix each
  /// line so the object can be embedded in a larger document; the result
  /// has no trailing newline.  Used by the metrics exporter (obs::) and by
  /// eadvfs-sim instead of ad-hoc field printing.
  [[nodiscard]] std::string to_json(int indent = 0) const;
};

}  // namespace eadvfs::sim
