#pragma once

/// \file stats_observer.hpp
/// Per-task and response-time statistics collected during a run.
///
/// The paper's only metric is the deadline miss rate; a deployment also
/// cares about *response times* — and stretching jobs (EA-DVFS's whole
/// mechanism) deliberately trades response time for energy.  This observer
/// measures that trade: per task it tracks release/completion/miss counts,
/// and per completed job the response time (completion − arrival) and the
/// normalized lateness margin ((deadline − completion) / relative
/// deadline, i.e. how much of the window was left).

#include <map>
#include <vector>

#include "sim/observer.hpp"
#include "util/stats.hpp"

namespace eadvfs::sim {

struct TaskStats {
  std::size_t released = 0;
  std::size_t completed = 0;   ///< on time.
  std::size_t completed_late = 0;
  std::size_t missed = 0;
  util::RunningStats response_time;   ///< completion − arrival (completions).
  util::RunningStats window_margin;   ///< (deadline − completion) / window.

  [[nodiscard]] double miss_rate() const {
    const std::size_t resolved = completed + missed;
    return resolved == 0 ? 0.0
                         : static_cast<double>(missed) /
                               static_cast<double>(resolved);
  }
};

class StatsObserver final : public SimObserver {
 public:
  void on_release(const task::Job& job) override;
  void on_complete(const task::Job& job, Time finish) override;
  void on_miss(const task::Job& job, Time deadline) override;

  [[nodiscard]] const std::map<task::TaskId, TaskStats>& per_task() const {
    return per_task_;
  }
  [[nodiscard]] const TaskStats& task(task::TaskId id) const {
    return per_task_.at(id);
  }

  /// Aggregate over all tasks.
  [[nodiscard]] TaskStats total() const;

  /// All completed jobs' response times (for quantiles).
  [[nodiscard]] const std::vector<double>& response_times() const {
    return response_times_;
  }

 private:
  std::map<task::TaskId, TaskStats> per_task_;
  std::vector<double> response_times_;
};

}  // namespace eadvfs::sim
