#pragma once

/// \file observer_set.hpp
/// The engine's observer registry.  Historically Engine kept raw
/// "not owned; must outlive run()" pointers, which pushed lifetime
/// bookkeeping onto every harness; ObserverSet supports both styles:
///
///   * `add(SimObserver&)`  — borrowed: the caller keeps ownership and must
///     keep the observer alive through run() (the old contract, still the
///     right one for observers the caller reads afterwards);
///   * `add(std::unique_ptr<T>)` / `emplace<T>(...)` — owned: the set keeps
///     the observer alive as long as the engine, and hands back a typed
///     reference for reading results after the run.
///
/// Dispatch is in registration order, which the engine makes deterministic:
/// the audit observer (when enabled) is registered first, then harness
/// observers in the order the harness added them.

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "sim/observer.hpp"

namespace eadvfs::sim {

class ObserverSet {
 public:
  /// Register a borrowed observer; the caller must keep it alive through
  /// Engine::run().
  void add(SimObserver& observer) { order_.push_back(&observer); }

  /// Register an owned observer (rejects nullptr); returns a reference valid
  /// for the lifetime of the set.
  SimObserver& add(std::unique_ptr<SimObserver> observer);

  /// Construct an observer in place and register it, keeping ownership.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto observer = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *observer;
    owned_.push_back(std::move(observer));
    order_.push_back(&ref);
    return ref;
  }

  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] bool empty() const { return order_.empty(); }

  // --- dispatch (registration order) -------------------------------------
  void notify_release(const task::Job& job) const {
    for (SimObserver* obs : order_) obs->on_release(job);
  }
  void notify_complete(const task::Job& job, Time finish) const {
    for (SimObserver* obs : order_) obs->on_complete(job, finish);
  }
  void notify_miss(const task::Job& job, Time deadline) const {
    for (SimObserver* obs : order_) obs->on_miss(job, deadline);
  }
  void notify_abort(const task::Job& job, Time when) const {
    for (SimObserver* obs : order_) obs->on_abort(job, when);
  }
  void notify_segment(const SegmentRecord& segment) const {
    for (SimObserver* obs : order_) obs->on_segment(segment);
  }
  void notify_decision(const DecisionRecord& decision) const {
    for (SimObserver* obs : order_) obs->on_decision(decision);
  }

 private:
  std::vector<SimObserver*> order_;                 ///< dispatch order.
  std::vector<std::unique_ptr<SimObserver>> owned_; ///< keep-alive storage.
};

}  // namespace eadvfs::sim
