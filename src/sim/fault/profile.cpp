#include "sim/fault/profile.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace eadvfs::sim::fault {

namespace {

void require(bool ok, const std::string& message) {
  if (!ok) throw std::invalid_argument("fault profile: " + message);
}

[[nodiscard]] bool finite(double v) { return std::isfinite(v); }

double parse_real(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != value.size())
    throw std::invalid_argument("fault profile: key '" + key +
                                "': not a number: '" + value + "'");
  return parsed;
}

std::uint64_t parse_uint(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  unsigned long long parsed = 0;
  try {
    parsed = std::stoull(value, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != value.size() || value.find('-') != std::string::npos)
    throw std::invalid_argument("fault profile: key '" + key +
                                "': not a non-negative integer: '" + value + "'");
  return parsed;
}

FaultProfile preset(const std::string& name) {
  FaultProfile p;
  if (name == "none" || name.empty()) return p;
  if (name == "blackout") {
    p.harvest_duty = 0.2;
    p.harvest_mean = 100.0;
    p.harvest_scale = 0.0;
    return p;
  }
  if (name == "brownout") {
    p.harvest_duty = 0.3;
    p.harvest_mean = 100.0;
    p.harvest_scale = 0.3;
    return p;
  }
  if (name == "storage") {
    p.storage_drops = 8;
    p.drop_fraction = 0.5;
    p.derate_factor = 0.4;
    p.derate_duty = 0.2;
    return p;
  }
  if (name == "predictor") {
    p.predict_bias = 1.5;
    p.predict_jitter = 0.5;
    return p;
  }
  if (name == "switch") {
    p.switch_reject_prob = 0.3;
    p.switch_stall_prob = 0.3;
    return p;
  }
  if (name == "mixed") {
    p.harvest_duty = 0.15;
    p.harvest_scale = 0.0;
    p.storage_drops = 4;
    p.drop_fraction = 0.4;
    p.predict_bias = 1.3;
    p.predict_jitter = 0.3;
    p.switch_reject_prob = 0.15;
    p.switch_stall_prob = 0.15;
    return p;
  }
  throw std::invalid_argument(
      "fault profile: unknown preset '" + name +
      "' (expected none|blackout|brownout|storage|predictor|switch|mixed)");
}

}  // namespace

bool FaultProfile::any() const {
  return affects_harvest() || affects_storage() || affects_predictor() ||
         affects_switches();
}

void FaultProfile::validate() const {
  require(finite(harvest_duty) && harvest_duty >= 0.0 && harvest_duty <= 1.0,
          "duty must be in [0, 1]");
  require(finite(harvest_mean) && harvest_mean > 0.0, "mean must be positive");
  require(finite(harvest_scale) && harvest_scale >= 0.0 && harvest_scale < 1.0,
          "scale must be in [0, 1)");
  require(finite(drop_fraction) && drop_fraction > 0.0 && drop_fraction <= 1.0,
          "drop-fraction must be in (0, 1]");
  require(finite(derate_factor) && derate_factor > 0.0 && derate_factor <= 1.0,
          "derate must be in (0, 1]");
  require(finite(derate_duty) && derate_duty >= 0.0 && derate_duty <= 1.0,
          "derate-duty must be in [0, 1]");
  require(finite(derate_mean) && derate_mean > 0.0,
          "derate-mean must be positive");
  require(derate_duty == 0.0 || derate_factor < 1.0,
          "derate-duty > 0 needs derate < 1 to have any effect");
  require(finite(predict_bias) && predict_bias >= 0.0,
          "bias must be >= 0");
  require(finite(predict_jitter) && predict_jitter >= 0.0,
          "jitter must be >= 0");
  require(finite(predict_slot) && predict_slot > 0.0,
          "slot must be positive");
  require(finite(switch_reject_prob) && switch_reject_prob >= 0.0 &&
              switch_reject_prob <= 1.0,
          "reject must be in [0, 1]");
  require(finite(switch_stall_prob) && switch_stall_prob >= 0.0 &&
              switch_stall_prob <= 1.0,
          "stall must be in [0, 1]");
  require(switch_reject_prob + switch_stall_prob <= 1.0 + 1e-12,
          "reject + stall must not exceed 1");
  require(finite(switch_stall_factor) && switch_stall_factor >= 1.0,
          "stall-factor must be >= 1");
  // A rejected transition with a zero-duration stall would let the scheduler
  // retry at the same instant forever; the floor guarantees progress.
  require(finite(switch_min_stall) && switch_min_stall > 0.0,
          "min-stall must be positive");
}

std::string FaultProfile::describe() const {
  if (!any()) return "no faults";
  std::ostringstream out;
  const char* sep = "";
  if (affects_harvest()) {
    out << sep << "harvest windows duty=" << harvest_duty
        << " mean=" << harvest_mean << " scale=" << harvest_scale;
    sep = "; ";
  }
  if (affects_storage()) {
    out << sep << "storage drops=" << storage_drops << "x" << drop_fraction;
    if (derate_duty > 0.0)
      out << " derate=" << derate_factor << " duty=" << derate_duty;
    sep = "; ";
  }
  if (affects_predictor()) {
    out << sep << "predictor bias=" << predict_bias
        << " jitter=" << predict_jitter << " slot=" << predict_slot;
    sep = "; ";
  }
  if (affects_switches()) {
    out << sep << "switch reject=" << switch_reject_prob
        << " stall=" << switch_stall_prob << "x" << switch_stall_factor;
    sep = "; ";
  }
  out << " (seed " << seed << ")";
  return out.str();
}

FaultProfile FaultProfile::parse(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  FaultProfile p = preset(name);

  if (colon != std::string::npos) {
    std::stringstream stream(spec.substr(colon + 1));
    std::string item;
    while (std::getline(stream, item, ',')) {
      if (item.empty()) continue;
      const auto eq = item.find('=');
      if (eq == std::string::npos)
        throw std::invalid_argument("fault profile: expected key=value, got '" +
                                    item + "'");
      const std::string key = item.substr(0, eq);
      const std::string value = item.substr(eq + 1);
      if (key == "seed") {
        p.seed = parse_uint(key, value);
        p.seed_provided = true;
      } else if (key == "duty") {
        p.harvest_duty = parse_real(key, value);
      } else if (key == "mean") {
        p.harvest_mean = parse_real(key, value);
      } else if (key == "scale") {
        p.harvest_scale = parse_real(key, value);
      } else if (key == "drops") {
        p.storage_drops = static_cast<std::size_t>(parse_uint(key, value));
      } else if (key == "drop-fraction") {
        p.drop_fraction = parse_real(key, value);
      } else if (key == "derate") {
        p.derate_factor = parse_real(key, value);
      } else if (key == "derate-duty") {
        p.derate_duty = parse_real(key, value);
      } else if (key == "derate-mean") {
        p.derate_mean = parse_real(key, value);
      } else if (key == "bias") {
        p.predict_bias = parse_real(key, value);
      } else if (key == "jitter") {
        p.predict_jitter = parse_real(key, value);
      } else if (key == "slot") {
        p.predict_slot = parse_real(key, value);
      } else if (key == "reject") {
        p.switch_reject_prob = parse_real(key, value);
      } else if (key == "stall") {
        p.switch_stall_prob = parse_real(key, value);
      } else if (key == "stall-factor") {
        p.switch_stall_factor = parse_real(key, value);
      } else if (key == "min-stall") {
        p.switch_min_stall = parse_real(key, value);
      } else {
        throw std::invalid_argument("fault profile: unknown key '" + key + "'");
      }
    }
  }
  p.validate();
  return p;
}

}  // namespace eadvfs::sim::fault
