#pragma once

/// \file faulted_predictor.hpp
/// EnergyPredictor decorator injecting multiplicative prediction error: the
/// inner predictor's estimate is scaled by a per-slot factor drawn
/// deterministically from the fault seed (PredictorFaultModel::factor_at).
/// Observations pass through unchanged — the *predictor* still learns from
/// the truth; only what the schedulers are told about the future is wrong,
/// which is exactly the mispredicted-energy regime of Xia et al.'s feedback
/// scheduling work.

#include <memory>
#include <string>

#include "energy/predictor.hpp"
#include "sim/fault/schedule.hpp"

namespace eadvfs::sim::fault {

class FaultedPredictor final : public energy::EnergyPredictor {
 public:
  FaultedPredictor(std::unique_ptr<energy::EnergyPredictor> inner,
                   PredictorFaultModel model);

  void observe(Time t0, Time t1, Energy harvested) override;
  [[nodiscard]] Energy predict(Time now, Time until) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::unique_ptr<energy::EnergyPredictor> inner_;
  PredictorFaultModel model_;
};

}  // namespace eadvfs::sim::fault
