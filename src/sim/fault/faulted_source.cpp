#include "sim/fault/faulted_source.hpp"

#include <algorithm>
#include <stdexcept>

namespace eadvfs::sim::fault {

FaultedSource::FaultedSource(std::shared_ptr<const energy::EnergySource> inner,
                             std::vector<HarvestWindow> windows)
    : inner_(std::move(inner)), windows_(std::move(windows)) {
  if (!inner_) throw std::invalid_argument("FaultedSource: null inner source");
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const HarvestWindow& w = windows_[i];
    if (!(w.begin < w.end))
      throw std::invalid_argument("FaultedSource: empty window");
    if (w.scale < 0.0 || w.scale >= 1.0)
      throw std::invalid_argument("FaultedSource: scale outside [0, 1)");
    if (i > 0 && w.begin < windows_[i - 1].end)
      throw std::invalid_argument("FaultedSource: overlapping windows");
  }
}

std::size_t FaultedSource::window_after(Time t) const {
  const auto it = std::upper_bound(
      windows_.begin(), windows_.end(), t,
      [](Time value, const HarvestWindow& w) { return value < w.end; });
  return static_cast<std::size_t>(it - windows_.begin());
}

Power FaultedSource::power_at(Time t) const {
  const Power inner_power = inner_->power_at(t);
  const std::size_t i = window_after(t);
  if (i < windows_.size() && windows_[i].begin <= t)
    return inner_power * windows_[i].scale;
  return inner_power;
}

Time FaultedSource::piece_end(Time t) const {
  Time end = inner_->piece_end(t);
  const std::size_t i = window_after(t);
  if (i < windows_.size()) {
    const HarvestWindow& w = windows_[i];
    // Next fault boundary strictly after t: the window's end when inside it,
    // its begin when still ahead.
    const Time boundary = (w.begin <= t) ? w.end : w.begin;
    if (boundary > t) end = std::min(end, boundary);
  }
  return end;
}

std::string FaultedSource::name() const {
  return inner_->name() + "+fault-windows(" + std::to_string(windows_.size()) +
         ")";
}

}  // namespace eadvfs::sim::fault
