#include "sim/fault/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace eadvfs::sim::fault {

namespace {

// Independent sub-streams per fault model so adding one model never
// perturbs another's realization (profiles stay comparable across sweeps).
constexpr std::uint64_t kHarvestSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kDropSalt = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kDerateSalt = 0x94d049bb133111ebULL;
constexpr std::uint64_t kSwitchSalt = 0xd6e8feb86659fd93ULL;
constexpr std::uint64_t kPredictSalt = 0xa5a5a5a55a5a5a5aULL;

/// Draw `duty · horizon / mean` windows of length ~ U[0.5, 1.5]·mean with
/// uniform starts, then sort and merge overlaps.  The realized duty is
/// approximate (merging can only lower it), which is fine: the knob sets the
/// *regime*, tests assert determinism, not the exact duty.
std::vector<HarvestWindow> draw_windows(std::uint64_t seed, Time horizon,
                                        double duty, Time mean, double scale) {
  std::vector<HarvestWindow> windows;
  if (duty <= 0.0 || horizon <= 0.0) return windows;
  const auto n = static_cast<std::size_t>(
      std::max(1.0, std::round(duty * horizon / mean)));
  util::Xoshiro256ss rng(seed);
  windows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Time length = std::min(horizon, mean * rng.uniform(0.5, 1.5));
    const Time begin = rng.uniform(0.0, std::max(horizon - length, 1e-9));
    windows.push_back({begin, std::min(begin + length, horizon), scale});
  }
  std::sort(windows.begin(), windows.end(),
            [](const HarvestWindow& a, const HarvestWindow& b) {
              return a.begin < b.begin;
            });
  std::vector<HarvestWindow> merged;
  for (const HarvestWindow& w : windows) {
    if (!merged.empty() && w.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, w.end);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

}  // namespace

double PredictorFaultModel::factor_at(Time now) const {
  if (bias == 1.0 && jitter <= 0.0) return 1.0;
  const auto index =
      static_cast<std::uint64_t>(std::max(0.0, std::floor(now / slot)));
  // One SplitMix64 step keyed by (seed, slot) gives an i.i.d.-quality
  // uniform per slot without storing a realization of unknown length.
  util::SplitMix64 sm(seed ^ (index * 0x2545F4914F6CDD1DULL) ^ kPredictSalt);
  const double u =
      static_cast<double>(sm.next() >> 11) * 0x1.0p-53;  // [0, 1)
  return std::max(0.0, bias * (1.0 + jitter * (2.0 * u - 1.0)));
}

FaultSchedule::FaultSchedule(const FaultProfile& profile, Time horizon)
    : profile_(profile), horizon_(horizon) {
  profile_.validate();
  if (!(horizon > 0.0) || !std::isfinite(horizon))
    throw std::invalid_argument("FaultSchedule: horizon must be positive");

  windows_ = draw_windows(profile_.seed ^ kHarvestSalt, horizon,
                          profile_.harvest_duty, profile_.harvest_mean,
                          profile_.harvest_scale);
  for (const HarvestWindow& w : windows_) {
    events_.push_back({w.begin, FaultNotice::Kind::kHarvestWindowStart, w.scale});
    if (w.end < horizon)
      events_.push_back({w.end, FaultNotice::Kind::kHarvestWindowEnd, 1.0});
  }

  if (profile_.storage_drops > 0) {
    util::Xoshiro256ss rng(profile_.seed ^ kDropSalt);
    for (std::size_t i = 0; i < profile_.storage_drops; ++i) {
      events_.push_back({rng.uniform(0.0, horizon),
                         FaultNotice::Kind::kStorageDrop,
                         profile_.drop_fraction});
    }
  }

  for (const HarvestWindow& w :
       draw_windows(profile_.seed ^ kDerateSalt, horizon, profile_.derate_duty,
                    profile_.derate_mean, profile_.derate_factor)) {
    events_.push_back({w.begin, FaultNotice::Kind::kCapacityDerate, w.scale});
    if (w.end < horizon)
      events_.push_back({w.end, FaultNotice::Kind::kCapacityRestore, 1.0});
  }

  // Time order with a deterministic tie-break (kind, then magnitude) so the
  // event sequence is a pure function of (profile, horizon).
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     return a.magnitude < b.magnitude;
                   });
}

SwitchFault FaultSchedule::switch_fault(std::size_t attempt) const {
  SwitchFault fault;
  if (!profile_.affects_switches()) return fault;
  util::SplitMix64 sm(profile_.seed ^ kSwitchSalt ^
                      (static_cast<std::uint64_t>(attempt) *
                       0x9E3779B97F4A7C15ULL));
  const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  if (u < profile_.switch_reject_prob) {
    fault.kind = SwitchFault::Kind::kReject;
  } else if (u < profile_.switch_reject_prob + profile_.switch_stall_prob) {
    fault.kind = SwitchFault::Kind::kStall;
  }
  return fault;
}

PredictorFaultModel FaultSchedule::predictor_model() const {
  PredictorFaultModel model;
  model.bias = profile_.predict_bias;
  model.jitter = profile_.predict_jitter;
  model.slot = profile_.predict_slot;
  model.seed = profile_.seed;
  return model;
}

}  // namespace eadvfs::sim::fault
