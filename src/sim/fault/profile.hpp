#pragma once

/// \file profile.hpp
/// Declarative description of the faults to inject into one simulation run.
///
/// A FaultProfile is pure configuration: which fault models are active and
/// how hard they bite.  It is expanded into a concrete, seeded realization
/// (windows, event instants, per-attempt switch outcomes) by
/// fault::FaultSchedule, so the profile itself stays cheap to copy into
/// sweep configs and to re-seed per replication.
///
/// Four composable models (docs/FAULTS.md has the full semantics):
///
///   * harvester windows  — intervals where the source output is scaled by
///     `harvest_scale` (0 = blackout, (0,1) = brownout);
///   * storage transients — instantaneous level drops (a fraction of the
///     current charge vanishes) and capacity-derate windows (the usable
///     capacity is temporarily capped at a fraction of nominal);
///   * predictor error    — per-slot multiplicative over/under-prediction
///     applied on top of whatever predictor the run uses;
///   * DVFS switch faults — a requested frequency transition stalls for
///     `switch_stall_factor` × the nominal overhead, or is rejected outright
///     (the processor stays at the old point and the scheduler re-decides).

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace eadvfs::sim::fault {

struct FaultProfile {
  /// Seed for the fault realization.  Sweeps re-derive it per replication
  /// (XOR-ing the replication sub-seed) so fault instants differ across
  /// replications while staying byte-reproducible for any --jobs count.
  std::uint64_t seed = 1;
  /// True when the spec pinned the seed explicitly (`seed=` key); front ends
  /// then keep it instead of deriving one from the master seed.
  bool seed_provided = false;

  // --- harvester blackout / brownout windows ----------------------------
  double harvest_duty = 0.0;   ///< fraction of the horizon under windows.
  Time harvest_mean = 100.0;   ///< mean window length (lengths ~ U[0.5, 1.5]×).
  double harvest_scale = 0.0;  ///< source power multiplier inside windows.

  // --- storage transients ------------------------------------------------
  std::size_t storage_drops = 0;  ///< instantaneous level-drop events.
  double drop_fraction = 0.5;     ///< fraction of the current level lost.
  double derate_factor = 1.0;     ///< usable-capacity factor inside windows.
  double derate_duty = 0.0;       ///< fraction of the horizon derated.
  Time derate_mean = 200.0;       ///< mean derate-window length.

  // --- predictor error injection ----------------------------------------
  double predict_bias = 1.0;    ///< multiplicative mean error (1 = unbiased).
  double predict_jitter = 0.0;  ///< per-slot factor ~ bias·(1 + U[-j, +j]).
  Time predict_slot = 50.0;     ///< slot length for the error stream.

  // --- DVFS switch failures ---------------------------------------------
  double switch_reject_prob = 0.0;  ///< per-attempt rejection probability.
  double switch_stall_prob = 0.0;   ///< per-attempt slow-transition probability.
  double switch_stall_factor = 4.0; ///< k: stall k× the nominal overhead.
  Time switch_min_stall = 0.5;      ///< stall floor when the nominal is zero.

  /// True when any model is active (an all-default profile injects nothing).
  [[nodiscard]] bool any() const;
  [[nodiscard]] bool affects_harvest() const { return harvest_duty > 0.0; }
  [[nodiscard]] bool affects_storage() const {
    return storage_drops > 0 || derate_duty > 0.0;
  }
  [[nodiscard]] bool affects_predictor() const {
    return predict_bias != 1.0 || predict_jitter > 0.0;
  }
  [[nodiscard]] bool affects_switches() const {
    return switch_reject_prob > 0.0 || switch_stall_prob > 0.0;
  }

  /// Throws std::invalid_argument (naming the offending knob) on NaN or
  /// out-of-range values.
  void validate() const;

  /// One-line human-readable summary of the active models.
  [[nodiscard]] std::string describe() const;

  /// Parse a `--fault-profile` spec: `preset[:key=value,...]`.
  ///
  /// Presets seed the knobs, keys override them:
  ///   none       — nothing active (the default profile);
  ///   blackout   — harvest windows at scale 0 (duty 0.2, mean 100);
  ///   brownout   — harvest windows at scale 0.3 (duty 0.3, mean 100);
  ///   storage    — 8 level drops of 50% + derate to 40% (duty 0.2);
  ///   predictor  — bias 1.5, jitter 0.5 (over-prediction with noise);
  ///   switch     — 30% rejected + 30% stalled transitions (factor 4);
  ///   mixed      — moderate settings of all four models.
  ///
  /// Keys: seed, duty, mean, scale, drops, drop-fraction, derate,
  /// derate-duty, derate-mean, bias, jitter, slot, reject, stall,
  /// stall-factor, min-stall.  Unknown keys and malformed values are
  /// rejected with a one-line error naming the key.
  [[nodiscard]] static FaultProfile parse(const std::string& spec);
};

}  // namespace eadvfs::sim::fault
