#include "sim/fault/faulted_predictor.hpp"

#include <stdexcept>

namespace eadvfs::sim::fault {

FaultedPredictor::FaultedPredictor(
    std::unique_ptr<energy::EnergyPredictor> inner, PredictorFaultModel model)
    : inner_(std::move(inner)), model_(model) {
  if (!inner_)
    throw std::invalid_argument("FaultedPredictor: null inner predictor");
}

void FaultedPredictor::observe(Time t0, Time t1, Energy harvested) {
  inner_->observe(t0, t1, harvested);
}

Energy FaultedPredictor::predict(Time now, Time until) const {
  return inner_->predict(now, until) * model_.factor_at(now);
}

std::string FaultedPredictor::name() const {
  return inner_->name() + "+error";
}

}  // namespace eadvfs::sim::fault
