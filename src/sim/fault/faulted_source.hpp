#pragma once

/// \file faulted_source.hpp
/// EnergySource decorator that applies a FaultSchedule's harvest windows:
/// inside a window the inner source's output is multiplied by the window's
/// scale (0 = blackout, (0, 1) = brownout).  Window edges become piece
/// boundaries, so the engine's exact-integration contract (piecewise-constant
/// power, `piece_end(t) > t`) is preserved and blackout onsets are engine
/// decision points automatically.

#include <memory>
#include <string>
#include <vector>

#include "energy/source.hpp"
#include "sim/fault/schedule.hpp"

namespace eadvfs::sim::fault {

class FaultedSource final : public energy::EnergySource {
 public:
  /// `windows` must be sorted by begin and non-overlapping (what
  /// FaultSchedule::harvest_windows provides); copied, so the schedule need
  /// not outlive the source.
  FaultedSource(std::shared_ptr<const energy::EnergySource> inner,
                std::vector<HarvestWindow> windows);

  [[nodiscard]] Power power_at(Time t) const override;
  [[nodiscard]] Time piece_end(Time t) const override;
  [[nodiscard]] std::string name() const override;

  /// The undecorated source (predictor construction unwraps through this to
  /// keep source-aware defaults, e.g. the slotted-EWMA cycle).
  [[nodiscard]] const std::shared_ptr<const energy::EnergySource>& inner() const {
    return inner_;
  }

 private:
  std::shared_ptr<const energy::EnergySource> inner_;
  std::vector<HarvestWindow> windows_;

  /// Index of the first window with end > t, or windows_.size().
  [[nodiscard]] std::size_t window_after(Time t) const;
};

}  // namespace eadvfs::sim::fault
