#pragma once

/// \file schedule.hpp
/// The concrete, seeded realization of a FaultProfile over one run's
/// horizon: harvest windows with explicit [begin, end) bounds, a time-sorted
/// event list (window edges, storage drops, derate windows) the engine
/// consumes at decision points, and a deterministic per-attempt outcome
/// stream for DVFS switch faults.
///
/// Determinism contract (docs/FAULTS.md): every quantity here is a pure
/// function of (profile, horizon).  Nothing depends on wall clock, thread
/// count, or the order in which replications execute, so fault runs satisfy
/// the same byte-reproducibility guarantee as the fault-free sweeps
/// (docs/EXPERIMENTS.md).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/fault/profile.hpp"
#include "sim/scheduler.hpp"
#include "util/types.hpp"

namespace eadvfs::sim::fault {

/// One harvester fault interval: source output × `scale` on [begin, end).
struct HarvestWindow {
  Time begin = 0.0;
  Time end = 0.0;
  double scale = 0.0;
};

/// One engine-visible fault instant.  `magnitude` is the drop fraction for
/// kStorageDrop and the capacity factor for kCapacityDerate/kCapacityRestore;
/// harvest-window edges carry the window scale (informational only — the
/// power change itself lives in FaultedSource).
struct FaultEvent {
  Time time = 0.0;
  FaultNotice::Kind kind = FaultNotice::Kind::kHarvestWindowStart;
  double magnitude = 0.0;
};

/// Outcome of one DVFS transition attempt.
struct SwitchFault {
  enum class Kind { kNone, kStall, kReject };
  Kind kind = Kind::kNone;
};

/// Per-slot multiplicative prediction-error model (consumed by
/// FaultedPredictor).
struct PredictorFaultModel {
  double bias = 1.0;
  double jitter = 0.0;
  Time slot = 50.0;
  std::uint64_t seed = 0;

  /// Error factor for the slot containing `now` (>= 0, deterministic).
  [[nodiscard]] double factor_at(Time now) const;
};

class FaultSchedule {
 public:
  /// Expand `profile` (validated here) over [0, horizon).
  FaultSchedule(const FaultProfile& profile, Time horizon);

  [[nodiscard]] const FaultProfile& profile() const { return profile_; }
  [[nodiscard]] Time horizon() const { return horizon_; }

  /// Harvest fault windows, sorted and non-overlapping (for FaultedSource).
  [[nodiscard]] const std::vector<HarvestWindow>& harvest_windows() const {
    return windows_;
  }

  /// All engine-visible fault instants in time order (ties broken
  /// deterministically).  The engine bounds every segment at the next event
  /// and applies/forwards due events before each decision.
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }

  /// Deterministic outcome of the `attempt`-th DVFS transition of the run
  /// (attempts are counted by the engine in decision order).
  [[nodiscard]] SwitchFault switch_fault(std::size_t attempt) const;

  [[nodiscard]] PredictorFaultModel predictor_model() const;

 private:
  FaultProfile profile_;
  Time horizon_ = 0.0;
  std::vector<HarvestWindow> windows_;
  std::vector<FaultEvent> events_;
};

}  // namespace eadvfs::sim::fault
