#pragma once

/// \file event.hpp
/// Timed events managed by the engine's event queue.  Arrivals come from the
/// JobReleaser; the queue carries everything whose *instant* is known in
/// advance once created — currently job deadlines (checked for misses) and
/// user-scheduled probes (tests/observers can request a wake-up).

#include <cstdint>

#include "task/job.hpp"
#include "util/types.hpp"

namespace eadvfs::sim {

enum class EventType : std::uint8_t {
  kDeadline,  ///< a job's absolute deadline; miss check fires here.
  kProbe,     ///< engine wake-up with no intrinsic meaning (forces a
              ///< scheduling decision at a chosen instant).
};

struct Event {
  Time time = 0.0;
  EventType type = EventType::kProbe;
  task::JobId job = 0;      ///< meaningful for kDeadline.
  std::uint64_t tag = 0;    ///< user payload for kProbe.
};

/// Min-heap order on time; ties broken deterministically (deadlines before
/// probes, then by job id / tag).
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.type != b.type) return a.type > b.type;
    if (a.job != b.job) return a.job > b.job;
    return a.tag > b.tag;
  }
};

}  // namespace eadvfs::sim
