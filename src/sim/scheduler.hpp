#pragma once

/// \file scheduler.hpp
/// The policy boundary between the engine (physics: time, energy, job
/// progress) and the scheduling algorithms (LSA, EA-DVFS, ...).
///
/// At every decision point the engine hands the scheduler a read-only view
/// of the world and receives a Decision: either idle (with a wake-up bound)
/// or run a specific ready job at a specific operating point (with a recheck
/// bound).  The engine re-invokes the scheduler at *every* state change —
/// arrival, completion, deadline, energy-source piece boundary, storage
/// full/empty crossing — so `recheck_at` only needs to encode the policy's
/// own planned switch instants (EA-DVFS's s1/s2).

#include <cstddef>
#include <string>
#include <vector>

#include "energy/predictor.hpp"
#include "proc/frequency_table.hpp"
#include "sim/observer.hpp"
#include "task/job.hpp"
#include "util/types.hpp"

namespace eadvfs::sim {

/// Read-only world view at a decision point.
struct SchedulingContext {
  Time now = 0.0;
  /// Ready (released, unfinished, not dropped) jobs, EDF-sorted: front has
  /// the earliest absolute deadline.  Never empty when decide() is called.
  const std::vector<task::Job>* ready = nullptr;
  /// Stored energy E_C(now).
  Energy stored = 0.0;
  /// Harvest predictor Ê_S (already updated with all past observations).
  const energy::EnergyPredictor* predictor = nullptr;
  /// The processor's DVFS menu.
  const proc::FrequencyTable* table = nullptr;
  /// Decision-trace slot, or nullptr when tracing is off.  The engine fills
  /// the world-state and outcome fields; the scheduler fills its internals
  /// (predicted, min_feasible_op, s1, s2, rule — see sim::DecisionRecord).
  /// Schedulers must treat it as write-only and optional.
  DecisionRecord* trace = nullptr;

  [[nodiscard]] const task::Job& edf_front() const { return ready->front(); }
};

/// A fault boundary the engine crossed (see src/sim/fault/).  Forwarded to
/// the scheduler via Scheduler::on_fault so stateful policies can invalidate
/// plans computed from the now-stale energy state; the engine itself always
/// re-decides at the boundary, so stateless policies need no handling.
struct FaultNotice {
  enum class Kind {
    kHarvestWindowStart,  ///< source output scaled down from here.
    kHarvestWindowEnd,    ///< source output restored.
    kStorageDrop,         ///< stored energy vanished instantaneously.
    kCapacityDerate,      ///< usable capacity temporarily reduced.
    kCapacityRestore,     ///< usable capacity back to nominal.
    kSwitchStall,         ///< a DVFS transition took k× the nominal overhead.
    kSwitchReject,        ///< a DVFS transition failed; old point kept.
  };
  Time time = 0.0;
  Kind kind = Kind::kHarvestWindowStart;
};

struct Decision {
  enum class Kind { kIdle, kRun };

  Kind kind = Kind::kIdle;
  task::JobId job = 0;          ///< job to run (kRun only).
  std::size_t op_index = 0;     ///< operating point to run at (kRun only).
  /// Engine must re-invoke decide() no later than this instant (the engine
  /// may re-invoke earlier on any event).  kHuge means "no planned switch".
  Time recheck_at = kHuge;

  static Decision idle_until(Time t) {
    Decision d;
    d.kind = Kind::kIdle;
    d.recheck_at = t;
    return d;
  }

  static Decision run(task::JobId job, std::size_t op_index, Time recheck_at = kHuge) {
    Decision d;
    d.kind = Kind::kRun;
    d.job = job;
    d.op_index = op_index;
    d.recheck_at = recheck_at;
    return d;
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Choose what to do now.  `ctx.ready` is non-empty; returning kRun for a
  /// job id not in the ready set is a logic error (engine throws).
  [[nodiscard]] virtual Decision decide(const SchedulingContext& ctx) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Clear any per-run internal state (default: stateless).
  virtual void reset() {}

  /// Recovery hook: the engine reports every injected-fault boundary it
  /// crosses (harvest window edges, storage drops/derates, switch failures)
  /// *before* asking for the next decision.  Policies that cache plans
  /// derived from the energy state (EA-DVFS-static) must invalidate them
  /// here; policies that re-derive everything per decision (EDF, LSA,
  /// EA-DVFS, Greedy-DVFS) inherit this no-op and re-plan naturally at the
  /// decision the engine forces at the boundary.
  virtual void on_fault(const FaultNotice& /*notice*/) {}

  // --- declared contracts (consumed by sim::AuditObserver) ---------------

  /// True when every kRun decision targets the EDF front of the ready set.
  /// All EDF-based policies (EDF, LSA, EA-DVFS, ...) satisfy this; a
  /// fixed-priority policy must override it to false.
  [[nodiscard]] virtual bool guarantees_edf_order() const { return true; }

  /// True when every kRun decision re-derives the operating point from the
  /// *current* remaining work and window, so execution never happens below
  /// the minimum feasible frequency of paper ineq. (6).  Policies that cache
  /// a plan (EA-DVFS-static) or ignore ineq. (6) entirely keep the default.
  [[nodiscard]] virtual bool guarantees_min_feasible_frequency() const {
    return false;
  }
};

}  // namespace eadvfs::sim
