#pragma once

/// \file observer.hpp
/// Engine instrumentation hooks.  The engine's state between two consecutive
/// decision points is one *segment* with constant harvest power, constant
/// consumption, and therefore a linear storage level — observers get the
/// exact segment record and can reconstruct any quantity without sampling
/// error.

#include <cstddef>
#include <optional>

#include "task/job.hpp"
#include "util/types.hpp"

namespace eadvfs::sim {

/// One engine segment [start, end) with constant dynamics.
struct SegmentRecord {
  Time start = 0.0;
  Time end = 0.0;
  /// Job being executed, or nullopt when idle/stalled.
  std::optional<task::JobId> job;
  /// Operating point in use (valid only when `job` is set).
  std::size_t op_index = 0;
  Power harvest_power = 0.0;   ///< P_S, constant on the segment.
  Power consume_power = 0.0;   ///< P_n when running, else 0.
  Energy level_start = 0.0;    ///< E_C at `start`.
  Energy level_end = 0.0;      ///< E_C at `end` (linear in between).
  Energy overflow = 0.0;       ///< harvested energy discarded (storage full).
  bool stalled = false;        ///< true when the scheduler wanted to run but
                               ///< the storage was empty (forced idle).
};

class SimObserver {
 public:
  virtual ~SimObserver() = default;

  virtual void on_release(const task::Job& /*job*/) {}
  virtual void on_complete(const task::Job& /*job*/, Time /*finish*/) {}
  virtual void on_miss(const task::Job& /*job*/, Time /*deadline*/) {}
  virtual void on_segment(const SegmentRecord& /*segment*/) {}
};

}  // namespace eadvfs::sim
