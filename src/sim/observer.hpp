#pragma once

/// \file observer.hpp
/// Engine instrumentation hooks.  The engine's state between two consecutive
/// decision points is one *segment* with constant harvest power, constant
/// consumption, and therefore a linear storage level — observers get the
/// exact segment record and can reconstruct any quantity without sampling
/// error.
///
/// Record semantics (the contract audited by sim::AuditObserver):
///
///   * Segments are emitted in time order and tile `[0, horizon)` without
///     gaps: each record's `start` equals the previous record's `end`.
///   * The energy fields are exact integrals over the segment, not sampled
///     powers: `harvested` is the gross harvester output, `consumed` the
///     processor/transition draw, `overflow` the harvested energy that did
///     not fit the storage (including charge-efficiency conversion loss),
///     `leaked` the storage self-discharge, `fault_drained` energy removed
///     by an injected storage fault.  Conservation holds per record:
///     `level_end = level_start + harvested − consumed − overflow − leaked −
///     fault_drained` (up to the engine's numerical snapping, ≤ 1e-6).
///   * A record may be *instantaneous* (`start == end`): a zero-duration
///     DVFS transition that draws `SwitchOverhead::energy` produces one, so
///     the observer stream still balances energy even though no time passes.
///     Instantaneous records carry their energy in `consumed`; the power
///     fields are 0 (a power over zero time is meaningless) and no time
///     accounting (busy/idle/stall) is attributed to them.  Injected storage
///     faults (sudden level drops, capacity-derate spills) likewise emit
///     instantaneous records carrying the lost energy in `fault_drained`,
///     so the level stays continuous across the observer stream even while
///     faults fire.
///   * `harvest_power`/`consume_power` are the segment-constant powers for
///     plotting convenience; on instantaneous records they are 0.

#include <cstddef>
#include <optional>

#include "task/job.hpp"
#include "util/types.hpp"

namespace eadvfs::sim {

/// One engine segment [start, end) with constant dynamics.
struct SegmentRecord {
  Time start = 0.0;
  Time end = 0.0;
  /// Job being executed, or nullopt when idle/stalled.
  std::optional<task::JobId> job;
  /// Operating point in use (valid only when `job` is set).
  std::size_t op_index = 0;
  Power harvest_power = 0.0;   ///< P_S, constant on the segment.
  Power consume_power = 0.0;   ///< P_n when running, else 0.
  Energy level_start = 0.0;    ///< E_C at `start`.
  Energy level_end = 0.0;      ///< E_C at `end` (linear in between).
  Energy harvested = 0.0;      ///< exact gross harvester output on the segment.
  Energy consumed = 0.0;       ///< exact processor/transition draw.
  Energy overflow = 0.0;       ///< harvested energy discarded (storage full).
  Energy leaked = 0.0;         ///< storage self-discharge on the segment.
  Energy fault_drained = 0.0;  ///< energy removed by an injected storage fault.
  bool stalled = false;        ///< true when the scheduler wanted to run but
                               ///< the storage was empty (forced idle), or
                               ///< during a DVFS transition stall.
  bool brownout = false;       ///< true when the storage was empty and the
                               ///< harvest could not cover the idle draw.

  /// True for zero-duration records (see file comment).
  [[nodiscard]] bool instantaneous() const { return end <= start; }
};

/// One scheduling decision, inputs and outputs together — the paper's
/// argument made visible.  The engine fills the world-state fields (time,
/// EDF-front job, stored energy) and the outcome fields (kind, operating
/// point, start, recheck); the scheduler fills its *internals* through
/// `SchedulingContext::trace`: the prediction Ê_S(t, D) it consulted, the
/// minimum feasible operating point of ineq. (6), the start instants
/// s1 = max(t, D − A/P_n) and s2 = max(t, D − A/P_max), and `rule` — the
/// name of the policy branch that fired (e.g. EA-DVFS's
/// "stretch-min-feasible" vs LSA's "procrastinate").
///
/// Semantics:
///   * Records are emitted in decision order; `index` is the 0-based
///     sequence number within the run.  One record per Scheduler::decide()
///     call — the engine decides only while the ready set is non-empty, so
///     an empty-system idle stretch produces no records.
///   * Fields a scheduler did not compute keep their defaults: `predicted`
///     is meaningful only when `used_prediction` is true, `min_feasible_op`
///     only when `has_min_feasible`, and `s1`/`s2` are kHuge when the policy
///     has no such instant (EDF, RM/DM).
///   * `rule` points at a string literal with static storage duration
///     (never null), so observers may keep the pointer without copying.
struct DecisionRecord {
  std::size_t index = 0;        ///< 0-based decision number within the run.
  Time time = 0.0;              ///< t, the decision instant.
  task::JobId job = 0;          ///< EDF-front job the decision is about.
  task::TaskId task_id = 0;     ///< its generating task.
  Time deadline = 0.0;          ///< its absolute deadline D.
  Work remaining = 0.0;         ///< budgeted (WCET-based) work left.
  Energy stored = 0.0;          ///< E_C(t).
  Energy predicted = 0.0;       ///< Ê_S(t, D) consulted by the scheduler.
  bool used_prediction = false; ///< true when `predicted` was computed.
  bool has_min_feasible = false;
  std::size_t min_feasible_op = 0;  ///< ineq. (6) operating point.
  Time s1 = kHuge;              ///< stretched start max(t, D − A/P_n).
  Time s2 = kHuge;              ///< full-speed start max(t, D − A/P_max).
  bool run = false;             ///< decision kind: run vs idle.
  std::size_t chosen_op = 0;    ///< operating point chosen (run only).
  Time start = 0.0;             ///< now when running; planned wake when idle.
  Time recheck_at = kHuge;      ///< scheduler-requested re-decision bound.
  const char* rule = "";        ///< policy branch that fired (static string).
};

class SimObserver {
 public:
  virtual ~SimObserver() = default;

  virtual void on_release(const task::Job& /*job*/) {}
  virtual void on_complete(const task::Job& /*job*/, Time /*finish*/) {}
  virtual void on_miss(const task::Job& /*job*/, Time /*deadline*/) {}
  /// The job was abandoned mid-execution because the storage emptied under
  /// DepletionPolicy::kAbortAndCharge; it will not complete or re-run.
  virtual void on_abort(const task::Job& /*job*/, Time /*when*/) {}
  virtual void on_segment(const SegmentRecord& /*segment*/) {}
  /// One record per Scheduler::decide() call, emitted before the resulting
  /// segment executes (see DecisionRecord for the field contract).
  virtual void on_decision(const DecisionRecord& /*decision*/) {}
};

}  // namespace eadvfs::sim
