#include "sim/result.hpp"

#include <cmath>
#include <sstream>

namespace eadvfs::sim {

double SimulationResult::miss_rate() const {
  const std::size_t resolved = jobs_completed + jobs_missed;
  if (resolved == 0) return 0.0;
  return static_cast<double>(jobs_missed) / static_cast<double>(resolved);
}

Energy SimulationResult::conservation_error() const {
  return std::abs(storage_initial + harvested - consumed - overflow - leaked -
                  storage_final);
}

std::string SimulationResult::summary() const {
  std::ostringstream out;
  out << "jobs: released=" << jobs_released << " completed=" << jobs_completed
      << " missed=" << jobs_missed << " unresolved=" << jobs_unresolved
      << " (miss rate " << miss_rate() << ")\n";
  out << "energy: harvested=" << harvested << " consumed=" << consumed
      << " overflow=" << overflow << " storage " << storage_initial << " -> "
      << storage_final << "\n";
  out << "processor: busy=" << busy_time << " idle=" << idle_time
      << " stall=" << stall_time << " switches=" << frequency_switches;
  return out.str();
}

}  // namespace eadvfs::sim
