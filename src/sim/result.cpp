#include "sim/result.hpp"

#include <cmath>
#include <sstream>

#include "util/format.hpp"

namespace eadvfs::sim {

double SimulationResult::miss_rate() const {
  const std::size_t resolved = jobs_completed + jobs_missed;
  if (resolved == 0) return 0.0;
  return static_cast<double>(jobs_missed) / static_cast<double>(resolved);
}

Energy SimulationResult::conservation_error() const {
  return std::abs(storage_initial + harvested - consumed - overflow - leaked -
                  fault_drained - storage_final);
}

std::string SimulationResult::summary() const {
  std::ostringstream out;
  out << "jobs: released=" << jobs_released << " completed=" << jobs_completed
      << " missed=" << jobs_missed << " unresolved=" << jobs_unresolved;
  if (jobs_aborted > 0) out << " aborted=" << jobs_aborted;
  out << " (miss rate " << miss_rate() << ")\n";
  out << "energy: harvested=" << harvested << " consumed=" << consumed
      << " overflow=" << overflow;
  if (fault_drained > 0.0) out << " fault_drained=" << fault_drained;
  out << " storage " << storage_initial << " -> " << storage_final << "\n";
  out << "processor: busy=" << busy_time << " idle=" << idle_time
      << " stall=" << stall_time << " switches=" << frequency_switches;
  if (storage_faults_injected + switch_faults_injected > 0 || suspensions > 0)
    out << "\nfaults: storage=" << storage_faults_injected
        << " switch=" << switch_faults_injected
        << " suspensions=" << suspensions;
  return out.str();
}

std::string SimulationResult::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent), ' ');
  const std::string field = pad + "  ";
  std::ostringstream out;
  const auto num = [&](const char* key, double value, bool comma = true) {
    out << field << "\"" << key << "\": " << util::format_double(value)
        << (comma ? ",\n" : "\n");
  };
  const auto count = [&](const char* key, std::size_t value) {
    out << field << "\"" << key << "\": " << value << ",\n";
  };
  out << "{\n";
  count("jobs_released", jobs_released);
  count("jobs_completed", jobs_completed);
  count("jobs_missed", jobs_missed);
  count("jobs_unresolved", jobs_unresolved);
  count("jobs_completed_late", jobs_completed_late);
  count("jobs_aborted", jobs_aborted);
  count("suspensions", suspensions);
  num("miss_rate", miss_rate());
  num("harvested", harvested);
  num("consumed", consumed);
  num("overflow", overflow);
  num("leaked", leaked);
  num("fault_drained", fault_drained);
  num("storage_initial", storage_initial);
  num("storage_final", storage_final);
  num("conservation_error", conservation_error());
  num("busy_time", busy_time);
  num("idle_time", idle_time);
  num("stall_time", stall_time);
  num("brownout_time", brownout_time);
  count("frequency_switches", frequency_switches);
  out << field << "\"time_at_op\": [";
  for (std::size_t i = 0; i < time_at_op.size(); ++i)
    out << (i > 0 ? ", " : "") << util::format_double(time_at_op[i]);
  out << "],\n";
  num("work_completed", work_completed);
  num("work_dropped", work_dropped);
  num("end_time", end_time);
  count("segments", segments);
  count("decisions", decisions);
  count("storage_faults_injected", storage_faults_injected);
  out << field << "\"switch_faults_injected\": " << switch_faults_injected
      << "\n";
  out << pad << "}";
  return out.str();
}

}  // namespace eadvfs::sim
