#include "sim/result.hpp"

#include <cmath>
#include <sstream>

namespace eadvfs::sim {

double SimulationResult::miss_rate() const {
  const std::size_t resolved = jobs_completed + jobs_missed;
  if (resolved == 0) return 0.0;
  return static_cast<double>(jobs_missed) / static_cast<double>(resolved);
}

Energy SimulationResult::conservation_error() const {
  return std::abs(storage_initial + harvested - consumed - overflow - leaked -
                  fault_drained - storage_final);
}

std::string SimulationResult::summary() const {
  std::ostringstream out;
  out << "jobs: released=" << jobs_released << " completed=" << jobs_completed
      << " missed=" << jobs_missed << " unresolved=" << jobs_unresolved;
  if (jobs_aborted > 0) out << " aborted=" << jobs_aborted;
  out << " (miss rate " << miss_rate() << ")\n";
  out << "energy: harvested=" << harvested << " consumed=" << consumed
      << " overflow=" << overflow;
  if (fault_drained > 0.0) out << " fault_drained=" << fault_drained;
  out << " storage " << storage_initial << " -> " << storage_final << "\n";
  out << "processor: busy=" << busy_time << " idle=" << idle_time
      << " stall=" << stall_time << " switches=" << frequency_switches;
  if (storage_faults_injected + switch_faults_injected > 0 || suspensions > 0)
    out << "\nfaults: storage=" << storage_faults_injected
        << " switch=" << switch_faults_injected
        << " suspensions=" << suspensions;
  return out.str();
}

}  // namespace eadvfs::sim
