#pragma once

/// \file event_queue.hpp
/// Deterministic time-ordered event queue on a flat binary heap laid out as
/// a structure of arrays: the Time keys the engine compares on every segment
/// live in their own contiguous array, separate from the (colder) event
/// payloads.  `next_time()` is a single load, `push`/`pop` are classic
/// sift operations over both arrays in lockstep, and `for_each_due` drains
/// due events through a callback with no per-segment heap allocation (the
/// vector-returning `pop_due` remains as a convenience for tests).
///
/// Ordering is identical to the previous std::priority_queue implementation:
/// min-heap on time, ties broken deterministically (deadlines before probes,
/// then by job id, then by tag — the EventAfter order).

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/event.hpp"
#include "util/math.hpp"

namespace eadvfs::sim {

class EventQueue {
 public:
  void push(const Event& event) {
    time_.push_back(event.time);
    payload_.push_back({event.type, event.job, event.tag});
    sift_up(time_.size() - 1);
  }

  [[nodiscard]] bool empty() const { return time_.empty(); }
  [[nodiscard]] std::size_t size() const { return time_.size(); }

  /// Pre-size the backing arrays (e.g. to the expected number of pending
  /// deadlines) so mid-run pushes never reallocate.
  void reserve(std::size_t n) {
    time_.reserve(n);
    payload_.reserve(n);
  }

  /// Time of the earliest pending event; kHuge when empty.
  [[nodiscard]] Time next_time() const {
    return time_.empty() ? kHuge : time_[0];
  }

  /// Earliest pending event; queue must not be empty.
  [[nodiscard]] Event peek() const {
    if (time_.empty()) throw std::logic_error("EventQueue::peek: empty");
    return assemble(0);
  }

  /// Remove and return the earliest event; queue must not be empty.
  Event pop() {
    if (time_.empty()) throw std::logic_error("EventQueue::pop: empty");
    const Event front = assemble(0);
    const std::size_t last = time_.size() - 1;
    time_[0] = time_[last];
    payload_[0] = payload_[last];
    time_.pop_back();
    payload_.pop_back();
    if (!time_.empty()) sift_down(0);
    return front;
  }

  /// Invoke `fn(event)` for every event with time <= now (within epsilon),
  /// in deterministic order, removing each as it is delivered.  This is the
  /// engine's hot path: no container is built or returned.
  template <typename Fn>
  void for_each_due(Time now, Fn&& fn) {
    while (!time_.empty() && time_[0] <= now + util::kEps) fn(pop());
  }

  /// Pop every event with time <= now (within epsilon), in order.
  [[nodiscard]] std::vector<Event> pop_due(Time now) {
    std::vector<Event> due;
    for_each_due(now, [&due](const Event& e) { due.push_back(e); });
    return due;
  }

  void clear() {
    time_.clear();
    payload_.clear();
  }

 private:
  /// Event minus its time key (the array split of the SoA layout).
  struct Payload {
    EventType type = EventType::kProbe;
    task::JobId job = 0;
    std::uint64_t tag = 0;
  };

  [[nodiscard]] Event assemble(std::size_t i) const {
    return {time_[i], payload_[i].type, payload_[i].job, payload_[i].tag};
  }

  /// Strict-weak order matching EventAfter: ascending (time, type, job, tag).
  [[nodiscard]] bool before(std::size_t a, std::size_t b) const {
    if (time_[a] != time_[b]) return time_[a] < time_[b];
    const Payload& pa = payload_[a];
    const Payload& pb = payload_[b];
    if (pa.type != pb.type) return pa.type < pb.type;
    if (pa.job != pb.job) return pa.job < pb.job;
    return pa.tag < pb.tag;
  }

  void swap_at(std::size_t a, std::size_t b) {
    std::swap(time_[a], time_[b]);
    std::swap(payload_[a], payload_[b]);
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(i, parent)) break;
      swap_at(i, parent);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = time_.size();
    while (true) {
      const std::size_t left = 2 * i + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = i;
      if (left < n && before(left, smallest)) smallest = left;
      if (right < n && before(right, smallest)) smallest = right;
      if (smallest == i) break;
      swap_at(i, smallest);
      i = smallest;
    }
  }

  std::vector<Time> time_;        ///< hot heap keys (one cache line ≈ 8 keys).
  std::vector<Payload> payload_;  ///< cold per-event data, index-paired.
};

}  // namespace eadvfs::sim
