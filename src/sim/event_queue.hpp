#pragma once

/// \file event_queue.hpp
/// Deterministic time-ordered event queue.  A thin, well-tested wrapper over
/// a binary heap with the two operations the engine needs beyond push/pop:
/// "when is the next event?" and "pop everything due at/before t".

#include <queue>
#include <vector>

#include "sim/event.hpp"

namespace eadvfs::sim {

class EventQueue {
 public:
  void push(const Event& event);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; kHuge when empty.
  [[nodiscard]] Time next_time() const;

  /// Earliest pending event; queue must not be empty.
  [[nodiscard]] const Event& peek() const;

  /// Remove and return the earliest event; queue must not be empty.
  Event pop();

  /// Pop every event with time <= now (within epsilon), in order.
  [[nodiscard]] std::vector<Event> pop_due(Time now);

  void clear();

 private:
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
};

}  // namespace eadvfs::sim
