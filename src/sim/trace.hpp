#pragma once

/// \file trace.hpp
/// Ready-made observers:
///   * EnergyTraceRecorder — samples the storage level E_C(t) on a fixed
///     grid by exact linear interpolation within segments (this is how the
///     remaining-energy curves of paper Figures 6/7 are produced);
///   * ScheduleRecorder — full execution log (who ran when at which speed,
///     completions, misses), used by the schedule-validity property tests
///     and by the worked-example binaries to print Gantt-style output.

#include <vector>

#include "sim/observer.hpp"

namespace eadvfs::sim {

class EnergyTraceRecorder final : public SimObserver {
 public:
  /// Samples at t = 0, interval, 2*interval, ... up to `horizon` inclusive.
  EnergyTraceRecorder(Time interval, Time horizon);

  void on_segment(const SegmentRecord& segment) override;

  /// Sample instants (fixed grid).
  [[nodiscard]] const std::vector<Time>& times() const { return times_; }
  /// E_C at each grid instant (levels_[i] corresponds to times_[i]).
  /// Valid once the run has covered the grid; trailing entries stay at the
  /// last observed level if the run ended early.
  [[nodiscard]] const std::vector<Energy>& levels() const { return levels_; }

 private:
  std::vector<Time> times_;
  std::vector<Energy> levels_;
  std::size_t next_ = 0;  ///< first grid index not yet filled.
};

/// One executed slice of a job.
struct ExecutionSlice {
  task::JobId job = 0;
  std::size_t op_index = 0;
  Time start = 0.0;
  Time end = 0.0;
};

/// Outcome notice for a job.
struct JobOutcome {
  task::Job job;
  Time time = 0.0;
  bool missed = false;  ///< true: deadline miss; false: completion.
};

class ScheduleRecorder final : public SimObserver {
 public:
  void on_segment(const SegmentRecord& segment) override;
  void on_release(const task::Job& job) override;
  void on_complete(const task::Job& job, Time finish) override;
  void on_miss(const task::Job& job, Time deadline) override;

  [[nodiscard]] const std::vector<ExecutionSlice>& slices() const { return slices_; }
  [[nodiscard]] const std::vector<task::Job>& releases() const { return releases_; }
  [[nodiscard]] const std::vector<JobOutcome>& outcomes() const { return outcomes_; }

  /// Total executed time of one job across all slices.
  [[nodiscard]] Time executed_time(task::JobId job) const;

  /// Total executed *work* (slice length × slice speed requires the table;
  /// recorder stores speeds are not known here, so this sums wall time —
  /// see tests which combine it with the frequency table via op_index).
  [[nodiscard]] std::vector<ExecutionSlice> slices_of(task::JobId job) const;

 private:
  std::vector<ExecutionSlice> slices_;
  std::vector<task::Job> releases_;
  std::vector<JobOutcome> outcomes_;
};

}  // namespace eadvfs::sim
