#pragma once

/// \file audit.hpp
/// Runtime invariant auditing for simulation runs.
///
/// Every reproduced figure and table is an integral over the SegmentRecord
/// stream, so a silent accounting bug in the engine corrupts the whole
/// evaluation.  AuditObserver re-derives, from nothing but the observer
/// stream and the run's static configuration, every property the engine is
/// supposed to guarantee, and cross-checks the stream against the final
/// SimulationResult:
///
///   (a) coverage  — segments tile [0, horizon) gaplessly in time order, and
///       the storage level is continuous across segment boundaries (energy
///       cannot change between segments);
///   (b) energy    — per segment, `level_end = level_start + harvested −
///       consumed − overflow − leaked − fault_drained` within tolerance, and
///       the level stays inside [0, C]; injected faults must therefore be
///       *accounted*, never silently destroy energy;
///   (c) scheduling — the running job was released, not yet finished and not
///       dropped; it is the EDF front of the ready set (when the scheduler
///       declares `guarantees_edf_order`); execution never happens from an
///       empty storage with harvest below demand (paper ineq. 3); and the
///       operating point never falls below the minimum feasible frequency of
///       paper ineq. (6) (when the scheduler declares
///       `guarantees_min_feasible_frequency`);
///   (d) aggregates — the segment-stream sums reproduce the
///       SimulationResult fields (harvested / consumed / overflow / busy /
///       idle / stall / brownout / time_at_op / segments) and the job
///       counters balance.
///
/// Violations are collected, not thrown, so one run reports every broken
/// invariant at once; `Engine` (with `SimulationConfig::audit = true`)
/// converts a non-empty report into an AuditError after the run.

#include <cstddef>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "proc/frequency_table.hpp"
#include "sim/config.hpp"
#include "sim/observer.hpp"
#include "sim/result.hpp"
#include "util/types.hpp"

namespace eadvfs::energy {
class EnergyStorage;
}
namespace eadvfs::proc {
class Processor;
}

namespace eadvfs::sim {

class Scheduler;

struct AuditConfig {
  Time horizon = 0.0;
  MissPolicy miss_policy = MissPolicy::kDropAtDeadline;
  Energy capacity = 0.0;
  /// Check that every running segment executes the EDF front (disable for
  /// fixed-priority policies).
  bool check_edf_order = true;
  /// Check ineq. (6): execution never below the minimum feasible frequency.
  /// Requires `table`; only meaningful for schedulers that re-derive the
  /// operating point at every decision (EA-DVFS, Greedy-DVFS).
  bool check_min_frequency = false;
  /// Frequency table (not owned; required when check_min_frequency).
  const proc::FrequencyTable* table = nullptr;
  /// Per-segment absolute tolerance.  Default absorbs the engine's numeric
  /// snapping (snap_nonnegative at 1e-6).
  double tolerance = 2e-6;
  /// Tolerance for whole-run sums (conservation over many segments).
  double aggregate_tolerance = 1e-5;
  /// Violations stored verbatim; further ones are counted only.
  std::size_t max_recorded = 64;

  /// Derive the config for a concrete run: capacity from the storage, table
  /// from the processor, check flags from the scheduler's declared
  /// contracts.
  [[nodiscard]] static AuditConfig for_run(const SimulationConfig& sim,
                                           const energy::EnergyStorage& storage,
                                           const proc::Processor& processor,
                                           const Scheduler& scheduler);
};

struct AuditViolation {
  Time time = 0.0;          ///< segment/event time the violation surfaced at.
  std::string invariant;    ///< short category: "coverage", "energy", ...
  std::string message;
};

/// Thrown by Engine::run() when self-auditing finds violations.
class AuditError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class AuditObserver final : public SimObserver {
 public:
  explicit AuditObserver(AuditConfig config);

  void on_release(const task::Job& job) override;
  void on_complete(const task::Job& job, Time finish) override;
  void on_miss(const task::Job& job, Time deadline) override;
  void on_abort(const task::Job& job, Time when) override;
  void on_segment(const SegmentRecord& segment) override;
  void on_decision(const DecisionRecord& decision) override;

  /// End-of-run checks: horizon coverage and the stream-vs-result
  /// cross-check.  Call exactly once, after Engine::run() returned.
  void finalize(const SimulationResult& result);

  [[nodiscard]] bool ok() const { return violation_count_ == 0; }
  [[nodiscard]] std::size_t violation_count() const { return violation_count_; }
  [[nodiscard]] const std::vector<AuditViolation>& violations() const {
    return violations_;
  }
  /// Human-readable multi-line report ("audit: clean" when ok()).
  [[nodiscard]] std::string report() const;

 private:
  /// What the auditor knows about a released, still-pending job.
  struct PendingJob {
    Time arrival = 0.0;
    Time deadline = 0.0;
    Work remaining = 0.0;  ///< WCET-budgeted remaining (what schedulers see).
  };

  void violate(Time time, const char* invariant, const std::string& message);
  void check_running(const SegmentRecord& s);
  [[nodiscard]] bool near(double a, double b, double tol) const;

  AuditConfig cfg_;

  // --- stream state -----------------------------------------------------
  bool any_segment_ = false;
  bool finalized_ = false;
  Time last_end_ = 0.0;
  Energy last_level_ = -1.0;  ///< < 0 until the first segment.
  std::map<task::JobId, PendingJob> ready_;
  std::set<task::JobId> missed_;  ///< kContinueLate: missed but still live.

  // --- accumulated aggregates -------------------------------------------
  Energy harvested_ = 0.0;
  Energy consumed_ = 0.0;
  Energy overflow_ = 0.0;
  Energy leaked_ = 0.0;
  Energy fault_drained_ = 0.0;
  Time busy_ = 0.0;
  Time idle_ = 0.0;
  Time stall_ = 0.0;
  Time brownout_ = 0.0;
  std::vector<Time> time_at_op_;
  std::size_t segments_ = 0;
  std::size_t decisions_ = 0;
  std::size_t releases_ = 0;
  std::size_t completions_ontime_ = 0;
  std::size_t completions_late_ = 0;
  std::size_t misses_ = 0;
  std::size_t aborts_ = 0;

  std::vector<AuditViolation> violations_;
  std::size_t violation_count_ = 0;
};

}  // namespace eadvfs::sim
