#include "sim/stats_observer.hpp"

namespace eadvfs::sim {

void StatsObserver::on_release(const task::Job& job) {
  ++per_task_[job.task_id].released;
}

void StatsObserver::on_complete(const task::Job& job, Time finish) {
  TaskStats& stats = per_task_[job.task_id];
  const bool on_time = finish <= job.absolute_deadline + 1e-9;
  if (on_time) {
    ++stats.completed;
  } else {
    ++stats.completed_late;
  }
  const double response = finish - job.arrival;
  stats.response_time.add(response);
  response_times_.push_back(response);
  const double window = job.absolute_deadline - job.arrival;
  if (window > 0.0)
    stats.window_margin.add((job.absolute_deadline - finish) / window);
}

void StatsObserver::on_miss(const task::Job& job, Time /*deadline*/) {
  ++per_task_[job.task_id].missed;
}

TaskStats StatsObserver::total() const {
  TaskStats aggregate;
  for (const auto& [id, stats] : per_task_) {
    aggregate.released += stats.released;
    aggregate.completed += stats.completed;
    aggregate.completed_late += stats.completed_late;
    aggregate.missed += stats.missed;
    aggregate.response_time.merge(stats.response_time);
    aggregate.window_margin.merge(stats.window_margin);
  }
  return aggregate;
}

}  // namespace eadvfs::sim
