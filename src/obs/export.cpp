#include "obs/export.hpp"

#include <ostream>

#include "obs/decision_trace.hpp"
#include "util/atomic_file.hpp"
#include "util/format.hpp"

namespace eadvfs::obs {

void write_metrics_json(std::ostream& out, const std::vector<RunSummary>& runs,
                        const MetricsRegistry& registry) {
  out << "{\n  \"schema\": \"eadvfs.metrics.v1\",\n  \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    out << (i > 0 ? ",\n" : "\n") << "    {\"scheduler\": \""
        << util::json_escape(runs[i].scheduler) << "\", \"capacity\": "
        << util::format_double(runs[i].capacity) << ",\n     \"result\": "
        << runs[i].result.to_json(5) << "}";
  }
  out << (runs.empty() ? "],\n" : "\n  ],\n") << "  \"metrics\": ";
  registry.write_json(out, 2);
  out << "\n}\n";
}

void export_metrics_json(const std::string& path,
                         const std::vector<RunSummary>& runs,
                         const MetricsRegistry& registry) {
  util::write_file_atomic(path, [&](std::ostream& out) {
    write_metrics_json(out, runs, registry);
  });
}

void RunObservability::record_run(
    const std::string& scheduler, double capacity,
    const sim::SimulationResult& result,
    const std::vector<sim::DecisionRecord>& decisions) {
  runs_.push_back(RunSummary{scheduler, capacity, result});
  for (const sim::DecisionRecord& r : decisions)
    decision_rows_.push_back(decision_csv_row(scheduler, capacity, r));
}

void RunObservability::export_metrics(const std::string& path) const {
  export_metrics_json(path, runs_, registry_);
}

void RunObservability::export_decisions(const std::string& path) const {
  util::write_file_atomic(path, [&](std::ostream& out) {
    out << decision_csv_header() << "\n";
    for (const std::string& row : decision_rows_) out << row << "\n";
  });
}

}  // namespace eadvfs::obs
