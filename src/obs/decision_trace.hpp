#pragma once

/// \file decision_trace.hpp
/// Structured capture of the scheduler's reasoning: one sim::DecisionRecord
/// per Scheduler::decide() call, collected in decision order and exportable
/// as a deterministic CSV — the artifact behind `--decisions-out`.
///
/// The CSV answers "why did the scheduler slow down / wait here": each row
/// carries the decision's inputs (stored energy E_C, predicted Ê_S(t, D),
/// remaining work, deadline), the scheduler's internals (ineq. (6) minimum
/// feasible operating point, the start instants s1/s2), the outcome (run or
/// idle, chosen operating point, start time) and the *rule* that fired —
/// e.g. EA-DVFS's "stretch-min-feasible" vs LSA's "procrastinate" on the
/// paper's motivational example.  Rows lead with the run's scheduler and
/// capacity so one file can hold several runs (a bench sweep's trace
/// replication) under a single schema.  Column semantics:
/// docs/OBSERVABILITY.md.

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/observer.hpp"

namespace eadvfs::obs {

/// Collects every DecisionRecord of a run (storage grows by one record per
/// engine decision; a 10k-horizon paper run makes a few thousand).
class DecisionTraceObserver final : public sim::SimObserver {
 public:
  void on_decision(const sim::DecisionRecord& decision) override {
    records_.push_back(decision);
  }

  [[nodiscard]] const std::vector<sim::DecisionRecord>& records() const {
    return records_;
  }
  [[nodiscard]] bool empty() const { return records_.empty(); }

 private:
  std::vector<sim::DecisionRecord> records_;
};

/// Header line of the decision CSV (without trailing newline).
[[nodiscard]] std::string decision_csv_header();

/// One record as a CSV row (without trailing newline): numbers via
/// util::format_double, kHuge instants and not-computed fields as empty
/// cells, decision kind as "run"/"idle".
[[nodiscard]] std::string decision_csv_row(const std::string& scheduler,
                                           double capacity,
                                           const sim::DecisionRecord& record);

/// Full deterministic CSV for a single run (header + one row per record).
void write_decision_csv(std::ostream& out, const std::string& scheduler,
                        double capacity,
                        const std::vector<sim::DecisionRecord>& records);

}  // namespace eadvfs::obs
