#include "obs/metrics.hpp"

#include <memory>
#include <ostream>
#include <stdexcept>

#include "util/format.hpp"

namespace eadvfs::obs {

std::string labels_to_string(const Labels& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ',';
    out += key + "=" + value;
  }
  return out;
}

MetricsRegistry::Series& MetricsRegistry::find_or_create(
    const std::string& name, const Labels& labels, Type type) {
  auto [it, inserted] = series_.try_emplace({name, labels});
  if (inserted) {
    it->second.type = type;
  } else if (it->second.type != type) {
    throw std::logic_error("MetricsRegistry: series '" + name + "' (" +
                           labels_to_string(labels) +
                           ") already registered with a different type");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  return find_or_create(name, labels, Type::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return find_or_create(name, labels, Type::kGauge).gauge;
}

util::Histogram& MetricsRegistry::histogram(const std::string& name,
                                            const Labels& labels, double lo,
                                            double hi, std::size_t bins) {
  Series& series = find_or_create(name, labels, Type::kHistogram);
  if (series.histogram == nullptr)
    series.histogram = std::make_unique<util::Histogram>(lo, hi, bins);
  return *series.histogram;
}

namespace {

const char* type_name(bool counter, bool gauge) {
  return counter ? "counter" : (gauge ? "gauge" : "histogram");
}

void write_labels_json(std::ostream& out, const Labels& labels) {
  out << "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << util::json_escape(key) << "\": \""
        << util::json_escape(value) << "\"";
  }
  out << "}";
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent), ' ');
  out << "[";
  bool first = true;
  for (const auto& [key, series] : series_) {
    out << (first ? "\n" : ",\n") << pad << "  {\"name\": \""
        << util::json_escape(key.first) << "\", \"type\": \""
        << type_name(series.type == Type::kCounter,
                     series.type == Type::kGauge)
        << "\", \"labels\": ";
    write_labels_json(out, key.second);
    first = false;
    switch (series.type) {
      case Type::kCounter:
        out << ", \"value\": " << util::format_double(series.counter.value())
            << "}";
        break;
      case Type::kGauge:
        out << ", \"value\": " << util::format_double(series.gauge.value())
            << "}";
        break;
      case Type::kHistogram: {
        const util::Histogram& h = *series.histogram;
        out << ", \"lo\": " << util::format_double(h.bin_lo(0))
            << ", \"hi\": " << util::format_double(h.bin_hi(h.bins() - 1))
            << ", \"underflow\": " << h.underflow()
            << ", \"overflow\": " << h.overflow() << ", \"total\": "
            << h.total() << ", \"buckets\": [";
        for (std::size_t bin = 0; bin < h.bins(); ++bin)
          out << (bin > 0 ? ", " : "") << h.count(bin);
        out << "]}";
        break;
      }
    }
  }
  out << (first ? "]" : "\n" + pad + "]");
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  out << "name,type,labels,field,value\n";
  const auto row = [&out](const std::string& name, const char* type,
                          const Labels& labels, const std::string& field,
                          const std::string& value) {
    out << name << ',' << type << ",\"" << labels_to_string(labels) << "\","
        << field << ',' << value << "\n";
  };
  for (const auto& [key, series] : series_) {
    switch (series.type) {
      case Type::kCounter:
        row(key.first, "counter", key.second, "value",
            util::format_double(series.counter.value()));
        break;
      case Type::kGauge:
        row(key.first, "gauge", key.second, "value",
            util::format_double(series.gauge.value()));
        break;
      case Type::kHistogram: {
        const util::Histogram& h = *series.histogram;
        row(key.first, "histogram", key.second, "underflow",
            std::to_string(h.underflow()));
        for (std::size_t bin = 0; bin < h.bins(); ++bin)
          row(key.first, "histogram", key.second,
              "bucket:" + util::format_double(h.bin_lo(bin)) + ":" +
                  util::format_double(h.bin_hi(bin)),
              std::to_string(h.count(bin)));
        row(key.first, "histogram", key.second, "overflow",
            std::to_string(h.overflow()));
        break;
      }
    }
  }
}

}  // namespace eadvfs::obs
