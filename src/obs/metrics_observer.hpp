#pragma once

/// \file metrics_observer.hpp
/// Bridges the engine's observer hooks into a MetricsRegistry: per-scheduler
/// counters for job outcomes / energy flows / decision rules, per-task job
/// counters, and scale-free histograms (normalized response time, stored
/// energy at decision points).  Everything it records is a pure function of
/// the simulated run, so the resulting snapshot obeys the observability
/// determinism contract.

#include <string>

#include "obs/metrics.hpp"
#include "sim/observer.hpp"

namespace eadvfs::obs {

struct MetricsObserverConfig {
  /// Scheduler name, attached as the "scheduler" label on every series.
  std::string scheduler;
  /// Storage capacity C; when > 0, stored energy at decision points is
  /// recorded as the normalized fraction E_C/C in [0, 1).
  double capacity = 0.0;
  /// Also emit per-task series (label "task") for job counters.  Off for
  /// sweeps over thousands of task sets where per-task series would bloat
  /// the registry without meaning.
  bool per_task = true;
  /// Extra labels merged onto every series, e.g. {"capacity": "50"} when
  /// several runs of the same scheduler share one registry.
  Labels extra;
};

class MetricsObserver final : public sim::SimObserver {
 public:
  /// `registry` is borrowed and must outlive the observer.
  MetricsObserver(MetricsRegistry& registry, MetricsObserverConfig config);

  void on_release(const task::Job& job) override;
  void on_complete(const task::Job& job, Time finish) override;
  void on_miss(const task::Job& job, Time deadline) override;
  void on_abort(const task::Job& job, Time when) override;
  void on_segment(const sim::SegmentRecord& segment) override;
  void on_decision(const sim::DecisionRecord& decision) override;

 private:
  void count_job_event(const char* name, const task::Job& job);

  MetricsRegistry& registry_;
  MetricsObserverConfig cfg_;
  Labels base_;  ///< cfg_.extra plus {"scheduler": cfg_.scheduler}.
};

}  // namespace eadvfs::obs
