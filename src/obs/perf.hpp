#pragma once

/// \file perf.hpp
/// Lightweight per-phase wall-clock timers for runners and benches
/// (generation / simulate / aggregate).  Wall-clock is inherently
/// non-deterministic, so these values go to stdout and BENCH_*.json only —
/// never into the metrics/decision artifacts covered by the determinism
/// contract (docs/OBSERVABILITY.md).

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace eadvfs::obs {

class PhaseTimers {
 public:
  /// Start (or resume) accumulating into `phase`, ending the current phase
  /// if one is running.  Phases may be re-entered; time accumulates.
  void start(const std::string& phase);

  /// Stop the current phase (no-op when none is running).
  void stop();

  /// Accumulated seconds in `phase` (0 for unknown phases; includes the
  /// in-flight span when `phase` is currently running).
  [[nodiscard]] double seconds(const std::string& phase) const;

  /// Sum over all phases.
  [[nodiscard]] double total_seconds() const;

  /// One-line human summary in first-start order, e.g.
  /// "generation 0.12s | simulate 3.41s | aggregate 0.02s".
  [[nodiscard]] std::string summary() const;

 private:
  using Clock = std::chrono::steady_clock;

  std::map<std::string, double> totals_;
  std::vector<std::string> order_;  ///< first-start order for summary().
  std::string current_;
  Clock::time_point started_{};
};

/// RAII phase span: starts `phase` on construction, stops on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimers& timers, const std::string& phase) : timers_(timers) {
    timers_.start(phase);
  }
  ~ScopedPhase() { timers_.stop(); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimers& timers_;
};

}  // namespace eadvfs::obs
