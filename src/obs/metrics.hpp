#pragma once

/// \file metrics.hpp
/// Deterministic metrics registry: named, labeled counters / gauges /
/// fixed-bucket histograms with snapshot export to JSON and CSV.
///
/// Determinism contract (docs/OBSERVABILITY.md): a snapshot is a pure
/// function of the simulated run — series are stored in a std::map keyed on
/// (name, labels), so export order is canonical regardless of registration
/// order, and every number is formatted with util::format_double (shortest
/// round-trip via std::to_chars, locale-independent).  Two runs that make
/// the same decisions produce byte-identical exports, which is what lets
/// ctest diff metrics files across --jobs values and checkpoint-resume.
///
/// This is deliberately not a live telemetry system: no locks, no
/// background flushing — the registry is filled by observers during a run
/// and snapshotted once at the end through util::write_file_atomic.

#include <cstddef>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "util/histogram.hpp"

namespace eadvfs::obs {

/// Label set attached to a series, e.g. {{"scheduler","EA-DVFS"},
/// {"task","2"}}.  std::map so equal label sets compare equal and export
/// order is canonical.
using Labels = std::map<std::string, std::string>;

/// "k1=v1,k2=v2" — the canonical single-cell rendering used by the CSV
/// exporter and useful in test assertions.
[[nodiscard]] std::string labels_to_string(const Labels& labels);

/// Monotone accumulator (events, energy totals).
class Counter {
 public:
  void inc(double amount = 1.0) { value_ += amount; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Last-write-wins sample (levels, rates).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Find-or-create.  The same (name, labels) always returns the same
  /// instance; a name registered as one type cannot be re-registered as
  /// another (std::logic_error).
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// Histogram bucket layout is fixed at first registration; later calls
  /// with the same (name, labels) ignore lo/hi/bins and return the existing
  /// instance.
  util::Histogram& histogram(const std::string& name, const Labels& labels,
                             double lo, double hi, std::size_t bins);

  [[nodiscard]] std::size_t size() const { return series_.size(); }

  /// The canonical JSON array of series (no surrounding document), each
  /// line prefixed with `indent` spaces.  See docs/OBSERVABILITY.md for the
  /// element schema.
  void write_json(std::ostream& out, int indent = 0) const;

  /// CSV snapshot: header `name,type,labels,field,value`; scalars emit one
  /// row (field "value"), histograms one row per bucket (field
  /// "bucket:<lo>:<hi>") plus "underflow"/"overflow".
  void write_csv(std::ostream& out) const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Series {
    Type type = Type::kCounter;
    Counter counter;
    Gauge gauge;
    /// Engaged only for histograms (std::optional needs a default ctor
    /// workaround, so a pointer keeps Series movable and simple).
    std::unique_ptr<util::Histogram> histogram;
  };

  using Key = std::pair<std::string, Labels>;

  Series& find_or_create(const std::string& name, const Labels& labels,
                         Type type);

  std::map<Key, Series> series_;
};

}  // namespace eadvfs::obs
