#include "obs/decision_trace.hpp"

#include <ostream>

#include "util/format.hpp"

namespace eadvfs::obs {

namespace {

/// kHuge marks "no such instant" — exported as an empty cell, not 1e300.
std::string time_cell(Time t) {
  return t >= kHuge ? std::string{} : util::format_double(t);
}

}  // namespace

std::string decision_csv_header() {
  return "scheduler,capacity,index,time,job,task,deadline,remaining,stored,"
         "predicted,min_feasible_op,s1,s2,decision,chosen_op,start,recheck_at,"
         "rule";
}

std::string decision_csv_row(const std::string& scheduler, double capacity,
                             const sim::DecisionRecord& r) {
  std::string row = scheduler;
  row += ',' + util::format_double(capacity);
  row += ',' + std::to_string(r.index);
  row += ',' + util::format_double(r.time);
  row += ',' + std::to_string(r.job);
  row += ',' + std::to_string(r.task_id);
  row += ',' + util::format_double(r.deadline);
  row += ',' + util::format_double(r.remaining);
  row += ',' + util::format_double(r.stored);
  row += ',';
  if (r.used_prediction) row += util::format_double(r.predicted);
  row += ',';
  if (r.has_min_feasible) row += std::to_string(r.min_feasible_op);
  row += ',' + time_cell(r.s1);
  row += ',' + time_cell(r.s2);
  row += ',';
  row += r.run ? "run" : "idle";
  row += ',';
  if (r.run) row += std::to_string(r.chosen_op);
  row += ',' + util::format_double(r.start);
  row += ',' + time_cell(r.recheck_at);
  row += ',';
  row += r.rule;
  return row;
}

void write_decision_csv(std::ostream& out, const std::string& scheduler,
                        double capacity,
                        const std::vector<sim::DecisionRecord>& records) {
  out << decision_csv_header() << "\n";
  for (const sim::DecisionRecord& r : records)
    out << decision_csv_row(scheduler, capacity, r) << "\n";
}

}  // namespace eadvfs::obs
