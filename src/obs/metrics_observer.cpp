#include "obs/metrics_observer.hpp"

#include <utility>

namespace eadvfs::obs {

MetricsObserver::MetricsObserver(MetricsRegistry& registry,
                                 MetricsObserverConfig config)
    : registry_(registry), cfg_(std::move(config)) {
  base_ = cfg_.extra;
  base_["scheduler"] = cfg_.scheduler;
}

void MetricsObserver::count_job_event(const char* name, const task::Job& job) {
  registry_.counter(name, base_).inc();
  if (cfg_.per_task) {
    Labels labels = base_;
    labels["task"] = std::to_string(job.task_id);
    registry_.counter(name, labels).inc();
  }
}

void MetricsObserver::on_release(const task::Job& job) {
  count_job_event("jobs_released", job);
}

void MetricsObserver::on_complete(const task::Job& job, Time finish) {
  count_job_event("jobs_completed", job);
  const Time relative_deadline = job.absolute_deadline - job.arrival;
  if (relative_deadline > 0.0) {
    // Response time normalized by the relative deadline: 1.0 = finished
    // exactly at the deadline; > 1 only under kContinueLate.
    registry_
        .histogram("normalized_response_time", base_, 0.0, 2.0, 20)
        .add((finish - job.arrival) / relative_deadline);
  }
}

void MetricsObserver::on_miss(const task::Job& job, Time /*deadline*/) {
  count_job_event("jobs_missed", job);
}

void MetricsObserver::on_abort(const task::Job& job, Time /*when*/) {
  count_job_event("jobs_aborted", job);
}

void MetricsObserver::on_segment(const sim::SegmentRecord& s) {
  registry_.counter("segments", base_).inc();
  registry_.counter("energy_harvested", base_).inc(s.harvested);
  registry_.counter("energy_consumed", base_).inc(s.consumed);
  registry_.counter("energy_overflow", base_).inc(s.overflow);
  registry_.counter("energy_leaked", base_).inc(s.leaked);
  registry_.counter("energy_fault_drained", base_).inc(s.fault_drained);
  const Time dt = s.end - s.start;
  if (dt <= 0.0) return;
  if (s.job) {
    registry_.counter("time_busy", base_).inc(dt);
    Labels labels = base_;
    labels["op"] = std::to_string(s.op_index);
    registry_.counter("time_at_op", labels).inc(dt);
  } else if (s.stalled) {
    registry_.counter("time_stalled", base_).inc(dt);
  } else {
    registry_.counter("time_idle", base_).inc(dt);
  }
  if (s.brownout) registry_.counter("time_brownout", base_).inc(dt);
}

void MetricsObserver::on_decision(const sim::DecisionRecord& d) {
  Labels labels = base_;
  labels["rule"] = d.rule;
  registry_.counter("decisions", labels).inc();
  if (d.run) {
    Labels op_labels = base_;
    op_labels["op"] = std::to_string(d.chosen_op);
    registry_.counter("decisions_run_at_op", op_labels).inc();
  } else {
    registry_.counter("decisions_idle", base_).inc();
  }
  if (cfg_.capacity > 0.0) {
    // Normalized stored energy at the decision instant; 20 buckets over
    // [0, 1) with a full storage landing in the overflow bucket by design.
    registry_.histogram("decision_stored_fraction", base_, 0.0, 1.0, 20)
        .add(d.stored / cfg_.capacity);
  }
}

}  // namespace eadvfs::obs
