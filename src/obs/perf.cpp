#include "obs/perf.hpp"

#include <algorithm>
#include <sstream>

namespace eadvfs::obs {

void PhaseTimers::start(const std::string& phase) {
  stop();
  current_ = phase;
  started_ = Clock::now();
  if (totals_.try_emplace(phase, 0.0).second) order_.push_back(phase);
}

void PhaseTimers::stop() {
  if (current_.empty()) return;
  totals_[current_] +=
      std::chrono::duration<double>(Clock::now() - started_).count();
  current_.clear();
}

double PhaseTimers::seconds(const std::string& phase) const {
  double value = 0.0;
  if (const auto it = totals_.find(phase); it != totals_.end())
    value = it->second;
  if (phase == current_)
    value += std::chrono::duration<double>(Clock::now() - started_).count();
  return value;
}

double PhaseTimers::total_seconds() const {
  double sum = 0.0;
  for (const auto& [phase, seconds] : totals_) sum += seconds;
  if (!current_.empty())
    sum += std::chrono::duration<double>(Clock::now() - started_).count();
  return sum;
}

std::string PhaseTimers::summary() const {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  bool first = true;
  for (const std::string& phase : order_) {
    if (!first) out << " | ";
    first = false;
    out << phase << " " << seconds(phase) << "s";
  }
  return out.str();
}

}  // namespace eadvfs::obs
