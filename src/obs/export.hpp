#pragma once

/// \file export.hpp
/// The top-level metrics document written by `--metrics-out`
/// ("eadvfs.metrics.v1"): per-run result summaries (via
/// SimulationResult::to_json) plus the registry's series array.  Format
/// documented in docs/OBSERVABILITY.md; written through
/// util::write_file_atomic so a crash never leaves a torn artifact.

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/observer.hpp"
#include "sim/result.hpp"

namespace eadvfs::obs {

/// One simulated run contributing to the document.
struct RunSummary {
  std::string scheduler;
  double capacity = 0.0;
  sim::SimulationResult result;
};

void write_metrics_json(std::ostream& out, const std::vector<RunSummary>& runs,
                        const MetricsRegistry& registry);

/// write_metrics_json routed through util::write_file_atomic.
void export_metrics_json(const std::string& path,
                         const std::vector<RunSummary>& runs,
                         const MetricsRegistry& registry);

/// Accumulates observability output across one or more runs and writes the
/// two `--metrics-out` / `--decisions-out` artifacts.  A single-run tool
/// records one run; a bench sweep's trace replication records one run per
/// (scheduler, capacity) cell into the same sink, so both produce files
/// with identical schemas.  Recording order is the export order — callers
/// must record runs in a deterministic sequence for the byte-identical
/// artifact contract to hold.
class RunObservability {
 public:
  /// Shared registry; attach a MetricsObserver per run with labels that
  /// distinguish the runs (see MetricsObserverConfig::extra).
  [[nodiscard]] MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const { return registry_; }

  /// Appends one run's result summary and decision rows.
  void record_run(const std::string& scheduler, double capacity,
                  const sim::SimulationResult& result,
                  const std::vector<sim::DecisionRecord>& decisions);

  [[nodiscard]] const std::vector<RunSummary>& runs() const { return runs_; }

  /// Writes the eadvfs.metrics.v1 JSON document (atomic).
  void export_metrics(const std::string& path) const;
  /// Writes the decision CSV: header + rows of every recorded run (atomic).
  void export_decisions(const std::string& path) const;

 private:
  MetricsRegistry registry_;
  std::vector<RunSummary> runs_;
  std::vector<std::string> decision_rows_;
};

}  // namespace eadvfs::obs
