#include "exp/predictor_error.hpp"

#include <memory>
#include <stdexcept>

#include "energy/solar_source.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/setup.hpp"
#include "util/math.hpp"

namespace eadvfs::exp {

const PredictorErrorCell& PredictorErrorResult::cell(const std::string& predictor,
                                                     Time window) const {
  for (const auto& c : cells) {
    if (c.predictor == predictor && util::approx_equal(c.window, window))
      return c;
  }
  throw std::out_of_range("PredictorErrorResult: no such cell");
}

PredictorErrorResult run_predictor_error(const PredictorErrorConfig& config) {
  if (config.predictors.empty() || config.windows.empty())
    throw std::invalid_argument("run_predictor_error: empty axes");
  if (config.query_interval <= 0.0)
    throw std::invalid_argument("run_predictor_error: bad query interval");

  PredictorErrorResult result;
  result.config = config;
  for (const auto& name : config.predictors) {
    for (Time window : config.windows) {
      PredictorErrorCell cell;
      cell.predictor = name;
      cell.window = window;
      result.cells.push_back(std::move(cell));
    }
  }
  auto cell_at = [&](std::size_t p, std::size_t w) -> PredictorErrorCell& {
    return result.cells[p * config.windows.size() + w];
  };

  const double mean_power = energy::SolarSource::analytic_mean_power(
      config.solar.amplitude);
  const auto seeds = derive_seeds(config.seed, config.n_sources);

  Time max_window = 0.0;
  for (Time w : config.windows) max_window = std::max(max_window, w);

  // One replication = one source realization with its own freshly trained
  // predictor instances (predictors are stateful, so each worker clones its
  // own set — nothing mutable is shared across threads).  The per-cell error
  // sample sequences are recorded in query order and folded into the Welford
  // accumulators in replication order afterwards; each cell therefore sees
  // exactly the sequential add() stream at any job count.
  struct ErrorSample {
    double absolute = 0.0;
    double bias = 0.0;
  };
  using RepRecord = std::vector<std::vector<ErrorSample>>;  // per cell

  const auto records = parallel_map<RepRecord>(
      config.n_sources, config.parallel,
      [&](std::size_t rep) {
        energy::SolarSourceConfig solar = config.solar;
        solar.seed = seeds[rep];
        solar.horizon = config.horizon + max_window + 1.0;
        const auto source = std::make_shared<const energy::SolarSource>(solar);

        std::vector<std::unique_ptr<energy::EnergyPredictor>> predictors;
        predictors.reserve(config.predictors.size());
        for (const auto& name : config.predictors)
          predictors.push_back(make_predictor(name, source));

        RepRecord record(config.predictors.size() * config.windows.size());
        Time next_query = config.warmup;
        for (Time t = 0.0; t < config.horizon; t += config.solar.step) {
          // Score *before* observing [t, t+step): predictions may only use
          // the past, exactly like a scheduler at time t.
          if (t >= next_query) {
            next_query += config.query_interval;
            for (std::size_t p = 0; p < predictors.size(); ++p) {
              for (std::size_t w = 0; w < config.windows.size(); ++w) {
                const Time window = config.windows[w];
                const Energy predicted = predictors[p]->predict(t, t + window);
                const Energy actual = source->energy_between(t, t + window);
                const double scale = mean_power * window;
                record[p * config.windows.size() + w].push_back(
                    {std::abs(predicted - actual) / scale,
                     (predicted - actual) / scale});
              }
            }
          }
          const Time t1 = t + config.solar.step;
          const Energy harvested = source->energy_between(t, t1);
          for (auto& predictor : predictors) predictor->observe(t, t1, harvested);
        }
        return record;
      },
      &result.report);

  for (const RepRecord& record : records) {
    for (std::size_t p = 0; p < config.predictors.size(); ++p) {
      for (std::size_t w = 0; w < config.windows.size(); ++w) {
        for (const ErrorSample& sample : record[p * config.windows.size() + w]) {
          cell_at(p, w).absolute_error.add(sample.absolute);
          cell_at(p, w).bias.add(sample.bias);
        }
      }
    }
  }
  return result;
}

}  // namespace eadvfs::exp
