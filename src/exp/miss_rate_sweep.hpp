#pragma once

/// \file miss_rate_sweep.hpp
/// The experiment behind paper Figures 8/9: deadline miss rate as a function
/// of storage capacity, for several schedulers, averaged over many random
/// task sets (paired across schedulers and capacities).  Replications run on
/// the worker pool configured by `MissRateSweepConfig::parallel`; results are
/// identical for any job count.
///
/// This sweep is checkpoint-aware: set `MissRateSweepConfig::checkpoint.dir`
/// and every completed replication is journaled durably, so a killed sweep
/// resumes from where it stopped with a byte-identical final aggregate (see
/// exp/checkpoint.hpp and docs/EXPERIMENTS.md §"Crash safety").

#include <cstdint>
#include <string>
#include <vector>

#include "energy/solar_source.hpp"
#include "exp/checkpoint.hpp"
#include "exp/parallel_runner.hpp"
#include "proc/frequency_table.hpp"
#include "proc/processor.hpp"
#include "sim/config.hpp"
#include "sim/fault/profile.hpp"
#include "task/generator.hpp"
#include "task/releaser.hpp"
#include "util/stats.hpp"

namespace eadvfs::exp {

struct MissRateSweepConfig {
  /// Paper §5.2 capacity set.
  std::vector<double> capacities = {200, 300, 500, 1000, 2000, 3000, 5000};
  std::vector<std::string> schedulers = {"lsa", "ea-dvfs"};
  std::string predictor = "slotted-ewma";
  std::size_t n_task_sets = 200;  ///< paper uses 5000; see DESIGN.md §3.
  std::uint64_t seed = 42;
  task::GeneratorConfig generator;      ///< utilization, task count, ...
  sim::SimulationConfig sim;            ///< horizon etc.
  energy::SolarSourceConfig solar;      ///< seed field is overridden per set.
  proc::FrequencyTable table = proc::FrequencyTable::xscale();
  proc::SwitchOverhead overhead;        ///< per-transition cost (ablation).
  /// Actual-vs-worst-case execution model (ablation; 1.0 = paper's model).
  task::ExecutionTimeModel execution;
  /// Fault injection (robustness ablation; inactive by default).  Unless the
  /// profile pins a seed explicitly, each replication re-seeds it from its
  /// sub-seed so fault realizations vary across task sets while staying
  /// byte-reproducible for any --jobs count.
  sim::fault::FaultProfile fault;
  ParallelConfig parallel;              ///< replication worker pool +
                                        ///< supervision (retries, watchdog,
                                        ///< keep-going, cancellation).
  CheckpointConfig checkpoint;          ///< crash-safe journaling; disabled
                                        ///< while `dir` is empty.
  /// Manifest experiment id — distinct per sweep kind (e.g. "fig8",
  /// "fault-resilience:duty=0.2") so a checkpoint directory can never be
  /// resumed by a different experiment.
  std::string experiment_id = "miss-rate";
  /// Observability artifacts (empty = off).  When either is set, the sweep
  /// re-simulates replication 0 for every (scheduler, capacity) cell after
  /// aggregation — the "trace replication" — with a metrics/decision-trace
  /// observer attached, and writes the requested files.  Pure function of
  /// the config, so the artifacts are byte-identical for any `parallel.jobs`
  /// and across checkpoint resume.  Deliberately NOT fingerprinted into the
  /// manifest: like `checkpoint`, outputs never change results.
  std::string metrics_out;
  std::string decisions_out;

  /// Canonical single-line description of every determinism-relevant field
  /// (everything above except `parallel`/`checkpoint` — --jobs and the
  /// supervision knobs must not change results).  Fingerprinted into the
  /// checkpoint manifest.
  [[nodiscard]] std::string canonical_description() const;
};

/// Result cell: one (scheduler, capacity) pair aggregated over task sets.
struct MissRateCell {
  std::string scheduler;
  double capacity = 0.0;
  util::RunningStats miss_rate;          ///< per-task-set miss rates.
  util::RunningStats stall_time;         ///< diagnostics.
  util::RunningStats busy_time;
  util::RunningStats frequency_switches;
};

struct MissRateSweepResult {
  MissRateSweepConfig config;
  std::vector<MissRateCell> cells;  ///< schedulers × capacities, row-major by
                                    ///< scheduler then capacity.
  /// Execution outcome: resumed/retried/failed/interrupted replications.
  /// Failed indices (keep-going) and interrupt-skipped indices are excluded
  /// from every cell's statistics; callers must surface `report.failures`
  /// and exit nonzero (util::exit_code::kPartialResults / kInterrupted).
  RunReport report;
  std::size_t resumed = 0;  ///< replications loaded from the checkpoint
                            ///< journal instead of re-simulated.
  /// Wall-clock phase summary ("simulate 1.2s | aggregate 0.0s | ...") for
  /// the console; never part of any deterministic artifact.
  std::string wall_clock;

  [[nodiscard]] const MissRateCell& cell(const std::string& scheduler,
                                         double capacity) const;
};

/// Run the sweep.  Deterministic for a fixed config.
[[nodiscard]] MissRateSweepResult run_miss_rate_sweep(const MissRateSweepConfig& config);

}  // namespace eadvfs::exp
