#include "exp/energy_trace_experiment.hpp"

#include <memory>
#include <stdexcept>

#include "exp/setup.hpp"
#include "sched/factory.hpp"
#include "sim/trace.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace eadvfs::exp {

const EnergyTraceCurve& EnergyTraceResult::curve(const std::string& scheduler) const {
  for (const auto& c : curves)
    if (c.scheduler == scheduler) return c;
  throw std::out_of_range("EnergyTraceResult: no such curve");
}

EnergyTraceResult run_energy_trace(const EnergyTraceConfig& config) {
  if (config.capacities.empty() || config.schedulers.empty())
    throw std::invalid_argument("run_energy_trace: empty axes");

  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  task::TaskSetGenerator generator(config.generator);
  const auto seeds = derive_seeds(config.seed, config.n_task_sets);

  const auto n_points = static_cast<std::size_t>(
                            config.sim.horizon / config.sample_interval) +
                        1;
  std::vector<util::CurveAccumulator> accumulators(
      config.schedulers.size(), util::CurveAccumulator(n_points));
  std::vector<Time> grid;

  for (std::size_t rep = 0; rep < config.n_task_sets; ++rep) {
    util::Xoshiro256ss rng(seeds[rep]);
    const task::TaskSet task_set = generator.generate(rng);

    energy::SolarSourceConfig solar = config.solar;
    solar.seed = seeds[rep] ^ 0x5eed5eed5eed5eedULL;
    solar.horizon = std::max(solar.horizon, config.sim.horizon);
    const auto source = std::make_shared<const energy::SolarSource>(solar);

    for (std::size_t s = 0; s < config.schedulers.size(); ++s) {
      const auto scheduler = sched::make_scheduler(config.schedulers[s]);
      for (double capacity : config.capacities) {
        sim::EnergyTraceRecorder recorder(config.sample_interval,
                                          config.sim.horizon);
        (void)run_once(config.sim, source, capacity, table, *scheduler,
                       config.predictor, task_set, {&recorder});
        if (grid.empty()) grid = recorder.times();
        for (std::size_t i = 0; i < n_points && i < recorder.levels().size(); ++i)
          accumulators[s].add(i, recorder.levels()[i] / capacity);
      }
    }
    if ((rep + 1) % 10 == 0)
      EADVFS_LOG_INFO << "energy trace: " << (rep + 1) << "/" << config.n_task_sets
                      << " task sets";
  }

  EnergyTraceResult result;
  result.config = config;
  for (std::size_t s = 0; s < config.schedulers.size(); ++s) {
    EnergyTraceCurve curve;
    curve.scheduler = config.schedulers[s];
    curve.times = grid;
    curve.mean_normalized_level.reserve(n_points);
    curve.ci95.reserve(n_points);
    for (std::size_t i = 0; i < n_points; ++i) {
      curve.mean_normalized_level.push_back(accumulators[s].mean(i));
      curve.ci95.push_back(accumulators[s].at(i).ci95_halfwidth());
    }
    result.curves.push_back(std::move(curve));
  }
  return result;
}

}  // namespace eadvfs::exp
