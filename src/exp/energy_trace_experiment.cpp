#include "exp/energy_trace_experiment.hpp"

#include <memory>
#include <stdexcept>

#include "exp/parallel_runner.hpp"
#include "exp/setup.hpp"
#include "obs/export.hpp"
#include "obs/perf.hpp"
#include "sched/factory.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace eadvfs::exp {

const EnergyTraceCurve& EnergyTraceResult::curve(const std::string& scheduler) const {
  for (const auto& c : curves)
    if (c.scheduler == scheduler) return c;
  throw std::out_of_range("EnergyTraceResult: no such curve");
}

EnergyTraceResult run_energy_trace(const EnergyTraceConfig& config) {
  if (config.capacities.empty() || config.schedulers.empty())
    throw std::invalid_argument("run_energy_trace: empty axes");

  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  const auto seeds = derive_seeds(config.seed, config.n_task_sets);

  const auto n_points = static_cast<std::size_t>(
                            config.sim.horizon / config.sample_interval) +
                        1;
  std::vector<util::CurveAccumulator> accumulators(
      config.schedulers.size(), util::CurveAccumulator(n_points));
  std::vector<Time> grid;

  // Per replication: the normalized level series of every (scheduler,
  // capacity) run, plus the shared sample grid.  Folding the records in
  // replication order afterwards reproduces the sequential accumulation
  // bit-for-bit at any job count.
  struct RepRecord {
    std::vector<Time> times;
    std::vector<std::vector<double>> normalized;  // schedulers × capacities
  };

  obs::PhaseTimers timers;
  timers.start("simulate");
  RunReport report;
  const auto records = parallel_map<RepRecord>(
      config.n_task_sets,
      with_default_progress(config.parallel, "energy trace", 10),
      [&](std::size_t rep) {
        util::Xoshiro256ss rng(seeds[rep]);
        const task::TaskSetGenerator generator(config.generator);
        const task::TaskSet task_set = generator.generate(rng);

        energy::SolarSourceConfig solar = config.solar;
        solar.seed = seeds[rep] ^ 0x5eed5eed5eed5eedULL;
        solar.horizon = std::max(solar.horizon, config.sim.horizon);
        const auto source = std::make_shared<const energy::SolarSource>(solar);

        RepRecord record;
        for (std::size_t s = 0; s < config.schedulers.size(); ++s) {
          const auto scheduler = sched::make_scheduler(config.schedulers[s]);
          for (double capacity : config.capacities) {
            sim::EnergyTraceRecorder recorder(config.sample_interval,
                                              config.sim.horizon);
            (void)run_once(config.sim, source, capacity, table, *scheduler,
                           config.predictor, task_set, {&recorder});
            if (record.times.empty()) record.times = recorder.times();
            std::vector<double> series;
            series.reserve(std::min(n_points, recorder.levels().size()));
            for (std::size_t i = 0;
                 i < n_points && i < recorder.levels().size(); ++i)
              series.push_back(recorder.levels()[i] / capacity);
            record.normalized.push_back(std::move(series));
          }
        }
        return record;
      },
      &report);

  timers.start("aggregate");
  for (const RepRecord& record : records) {
    if (grid.empty()) grid = record.times;
    for (std::size_t s = 0; s < config.schedulers.size(); ++s) {
      for (std::size_t c = 0; c < config.capacities.size(); ++c) {
        const auto& series = record.normalized[s * config.capacities.size() + c];
        for (std::size_t i = 0; i < series.size(); ++i)
          accumulators[s].add(i, series[i]);
      }
    }
  }

  EnergyTraceResult result;
  result.config = config;
  result.report = std::move(report);
  for (std::size_t s = 0; s < config.schedulers.size(); ++s) {
    EnergyTraceCurve curve;
    curve.scheduler = config.schedulers[s];
    curve.times = grid;
    curve.mean_normalized_level.reserve(n_points);
    curve.ci95.reserve(n_points);
    for (std::size_t i = 0; i < n_points; ++i) {
      curve.mean_normalized_level.push_back(accumulators[s].mean(i));
      curve.ci95.push_back(accumulators[s].at(i).ci95_halfwidth());
    }
    result.curves.push_back(std::move(curve));
  }

  if ((!config.metrics_out.empty() || !config.decisions_out.empty()) &&
      config.n_task_sets > 0) {
    // Trace replication (same scheme as run_miss_rate_sweep): re-simulate
    // replication 0 per cell with observers attached; the reconstruction
    // mirrors the worker above, so each trace is what the worker simulated.
    timers.start("trace-replication");
    obs::RunObservability sink;
    util::Xoshiro256ss rng(seeds[0]);
    const task::TaskSetGenerator generator(config.generator);
    const task::TaskSet task_set = generator.generate(rng);
    energy::SolarSourceConfig solar = config.solar;
    solar.seed = seeds[0] ^ 0x5eed5eed5eed5eedULL;
    solar.horizon = std::max(solar.horizon, config.sim.horizon);
    const auto source = std::make_shared<const energy::SolarSource>(solar);
    for (const auto& sched_name : config.schedulers) {
      const auto scheduler = sched::make_scheduler(sched_name);
      for (double capacity : config.capacities) {
        RunOptions run;
        run.config = config.sim;
        run.source = source;
        run.tasks = &task_set;
        run.storage.capacity = capacity;
        run.table = table;
        run.scheduler_override = scheduler.get();
        run.predictor = config.predictor;
        run.observability = &sink;
        run.per_task_metrics = false;  // random task sets: ids are noise
        (void)run_with_options(run);
      }
    }
    if (!config.metrics_out.empty()) sink.export_metrics(config.metrics_out);
    if (!config.decisions_out.empty())
      sink.export_decisions(config.decisions_out);
  }
  timers.stop();
  result.wall_clock = timers.summary();
  return result;
}

}  // namespace eadvfs::exp
