#include "exp/harvester_sizing.hpp"

#include <stdexcept>

#include "energy/composite_source.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/setup.hpp"
#include "sched/factory.hpp"
#include "util/rng.hpp"

namespace eadvfs::exp {

double HarvesterSizingResult::ratio_of_means() const {
  if (min_scale.size() < 2 || min_scale[0].empty() || min_scale[1].empty())
    return 0.0;
  return min_scale[0].mean() / min_scale[1].mean();
}

namespace {

bool zero_miss_at_scale(const HarvesterSizingConfig& config,
                        sim::Scheduler& scheduler, const task::TaskSet& task_set,
                        const std::shared_ptr<const energy::EnergySource>& base,
                        const proc::FrequencyTable& table, double scale) {
  const auto scaled = std::make_shared<const energy::ScaledSource>(base, scale);
  const sim::SimulationResult run =
      run_once(config.sim, scaled, config.capacity, table, scheduler,
               config.predictor, task_set);
  return run.jobs_missed == 0;
}

}  // namespace

double find_min_harvester_scale(
    const HarvesterSizingConfig& config, const std::string& scheduler_name,
    const task::TaskSet& task_set,
    const std::shared_ptr<const energy::EnergySource>& base_source) {
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  const auto scheduler = sched::make_scheduler(scheduler_name);

  if (!zero_miss_at_scale(config, *scheduler, task_set, base_source, table,
                          config.scale_hi))
    return -1.0;
  if (zero_miss_at_scale(config, *scheduler, task_set, base_source, table,
                         config.scale_lo))
    return config.scale_lo;

  double lo = config.scale_lo;  // misses
  double hi = config.scale_hi;  // zero-miss
  while (hi - lo > config.rel_tolerance * hi) {
    const double mid = 0.5 * (lo + hi);
    if (zero_miss_at_scale(config, *scheduler, task_set, base_source, table,
                           mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

HarvesterSizingResult run_harvester_sizing(const HarvesterSizingConfig& config) {
  if (config.schedulers.empty())
    throw std::invalid_argument("run_harvester_sizing: no schedulers");
  if (config.scale_lo <= 0.0 || config.scale_hi <= config.scale_lo)
    throw std::invalid_argument("run_harvester_sizing: bad scale bracket");
  if (config.capacity <= 0.0)
    throw std::invalid_argument("run_harvester_sizing: bad capacity");

  HarvesterSizingResult result;
  result.config = config;
  result.min_scale.resize(config.schedulers.size());

  const auto seeds = derive_seeds(config.seed, config.n_task_sets);

  // Mirror of run_capacity_search: per-replication binary searches on the
  // pool, aggregation replayed in replication order.
  struct RepRecord {
    bool all_feasible = false;
    std::vector<double> scales;
  };

  const auto records = parallel_map<RepRecord>(
      config.n_task_sets,
      with_default_progress(config.parallel, "harvester sizing", 20),
      [&](std::size_t rep) {
        util::Xoshiro256ss rng(seeds[rep]);
        const task::TaskSetGenerator generator(config.generator);
        const task::TaskSet task_set = generator.generate(rng);

        energy::SolarSourceConfig solar = config.solar;
        solar.seed = seeds[rep] ^ 0x5eed5eed5eed5eedULL;
        solar.horizon = std::max(solar.horizon, config.sim.horizon);
        const auto base = std::make_shared<const energy::SolarSource>(solar);

        RepRecord record;
        record.all_feasible = true;
        record.scales.reserve(config.schedulers.size());
        for (const auto& name : config.schedulers) {
          const double scale =
              find_min_harvester_scale(config, name, task_set, base);
          if (scale < 0.0) {
            record.all_feasible = false;
            break;
          }
          record.scales.push_back(scale);
        }
        return record;
      },
      &result.report);

  for (const RepRecord& record : records) {
    if (!record.all_feasible) {
      ++result.sets_skipped;
      continue;
    }
    ++result.sets_evaluated;
    for (std::size_t s = 0; s < record.scales.size(); ++s)
      result.min_scale[s].add(record.scales[s]);
    if (record.scales.size() >= 2 && record.scales[1] > 0.0)
      result.ratio_first_over_second.add(record.scales[0] / record.scales[1]);
  }
  return result;
}

}  // namespace eadvfs::exp
