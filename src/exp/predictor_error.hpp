#pragma once

/// \file predictor_error.hpp
/// Direct measurement of harvest-prediction quality: every predictor is fed
/// the actual harvest stream segment by segment (exactly as the engine
/// feeds it) and queried for future windows of several lengths; the
/// predictions are scored against the true integral of the source.
///
/// This turns the predictor ablation's indirect evidence (miss rates) into
/// the underlying cause: which predictor is wrong, by how much, at which
/// horizon, and in which direction (over-prediction is what kills LSA and
/// EA-DVFS — they procrastinate on energy that never arrives).
///
/// Source realizations are scored independently on the worker pool
/// configured by `PredictorErrorConfig::parallel`; every worker trains its
/// own predictor instances, so no predictor state is shared across threads.

#include <cstdint>
#include <string>
#include <vector>

#include "energy/solar_source.hpp"
#include "exp/parallel_runner.hpp"
#include "util/stats.hpp"

namespace eadvfs::exp {

struct PredictorErrorConfig {
  std::vector<std::string> predictors = {"oracle", "slotted-ewma",
                                         "running-average", "persistence",
                                         "pessimistic"};
  /// Prediction horizons, in time units (task deadlines span 10..100).
  std::vector<Time> windows = {10.0, 50.0, 200.0};
  std::size_t n_sources = 20;   ///< independent source realizations.
  Time horizon = 5'000.0;       ///< observation span per realization.
  Time query_interval = 10.0;   ///< how often predictions are scored.
  Time warmup = 700.0;          ///< skip scoring during the first cycle.
  std::uint64_t seed = 42;
  energy::SolarSourceConfig solar;
  ParallelConfig parallel;      ///< worker pool over source realizations.
};

struct PredictorErrorCell {
  std::string predictor;
  Time window = 0.0;
  /// |predicted − actual| normalized by the mean window energy.
  util::RunningStats absolute_error;
  /// (predicted − actual) normalized the same way; > 0 = over-prediction.
  util::RunningStats bias;
};

struct PredictorErrorResult {
  PredictorErrorConfig config;
  std::vector<PredictorErrorCell> cells;  ///< predictors × windows.
  RunReport report;  ///< supervision outcome (retries; see parallel_runner.hpp).

  [[nodiscard]] const PredictorErrorCell& cell(const std::string& predictor,
                                               Time window) const;
};

[[nodiscard]] PredictorErrorResult run_predictor_error(
    const PredictorErrorConfig& config);

}  // namespace eadvfs::exp
