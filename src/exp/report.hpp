#pragma once

/// \file report.hpp
/// Console/table/CSV reporting shared by the bench binaries, so every
/// reproduced figure prints a consistent, paper-comparable layout and drops
/// a CSV for re-plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace eadvfs::exp {

/// A simple fixed-width text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience: format doubles with `precision` decimals.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 4);

  /// Render with column alignment and a separator under the header.
  [[nodiscard]] std::string render() const;

  /// Write the same data as CSV into `path` (best-effort; logs a warning on
  /// failure rather than aborting a long experiment).
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed decimals.
[[nodiscard]] std::string fmt(double value, int precision = 4);

/// Print the standard experiment banner (figure id, paper claim, config).
void print_banner(std::ostream& out, const std::string& experiment_id,
                  const std::string& paper_claim, const std::string& setup);

/// Directory for CSV outputs: $EADVFS_OUT_DIR or "." — created by callers'
/// shell, not here; returned path has no trailing slash.
[[nodiscard]] std::string output_dir();

}  // namespace eadvfs::exp
