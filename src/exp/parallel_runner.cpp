#include "exp/parallel_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/log.hpp"

namespace eadvfs::exp {

std::size_t hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t parse_jobs(long long requested) {
  if (requested <= 0)
    throw std::invalid_argument("--jobs must be a positive integer, got " +
                                std::to_string(requested));
  return static_cast<std::size_t>(requested);
}

std::size_t parse_retries(long long requested) {
  if (requested < 0)
    throw std::invalid_argument("--retries must be >= 0, got " +
                                std::to_string(requested));
  return static_cast<std::size_t>(requested) + 1;
}

double parse_watchdog_sec(double requested) {
  if (!(requested >= 0.0) || !std::isfinite(requested))
    throw std::invalid_argument("--timeout must be a finite value >= 0");
  return requested;
}

ParallelRunner::ParallelRunner(ParallelConfig config)
    : config_(std::move(config)) {
  if (config_.jobs == 0)
    throw std::invalid_argument("ParallelRunner: jobs must be >= 1");
  if (config_.max_attempts == 0)
    throw std::invalid_argument("ParallelRunner: max_attempts must be >= 1");
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

ParallelProgress make_progress(std::size_t completed, std::size_t total,
                               Clock::time_point start) {
  ParallelProgress p;
  p.completed = completed;
  p.total = total;
  p.elapsed_sec = seconds_since(start);
  p.rate_per_sec =
      p.elapsed_sec > 0.0 ? static_cast<double>(completed) / p.elapsed_sec : 0.0;
  return p;
}

/// Message of the exception currently being handled (call inside a catch
/// block only).
std::string current_exception_message() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// The default watchdog action: a hung replication cannot be cancelled
/// safely in-process (std::thread has no kill), so the only sound move is to
/// convert the hang into a crash that a checkpointed sweep can resume past.
[[noreturn]] void default_watchdog_abort(std::size_t index, double elapsed) {
  EADVFS_LOG_ERROR << "watchdog: replication " << index << " exceeded its "
                   << "deadline (" << elapsed << "s elapsed); aborting the "
                   << "process (exit " << util::exit_code::kWatchdogTimeout
                   << ") — resume the sweep from its checkpoint";
  std::_Exit(util::exit_code::kWatchdogTimeout);
}

/// Shared in-flight table the watchdog thread scans.  Entries are slots, one
/// per worker (slot 0 for the inline path).
class Watchdog {
 public:
  Watchdog(double deadline_sec,
           std::function<void(std::size_t, double)> abort_fn,
           std::size_t slots)
      : deadline_(deadline_sec),
        abort_(abort_fn ? std::move(abort_fn) : default_watchdog_abort),
        inflight_(slots) {
    if (deadline_ > 0.0) monitor_ = std::thread([this] { monitor_loop(); });
  }

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    if (monitor_.joinable()) monitor_.join();
  }

  void begin(std::size_t slot, std::size_t index) {
    if (deadline_ <= 0.0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_[slot] = {true, false, index, Clock::now()};
  }

  void end(std::size_t slot) {
    if (deadline_ <= 0.0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_[slot].active = false;
  }

 private:
  struct InFlight {
    bool active = false;
    bool reported = false;  // abort hook already invoked for this dispatch
    std::size_t index = 0;
    Clock::time_point start;
  };

  void monitor_loop() {
    // Poll at a fraction of the deadline so detection latency stays small
    // relative to the configured timeout.
    const auto poll = std::chrono::duration<double>(
        std::clamp(deadline_ / 8.0, 0.005, 0.25));
    std::unique_lock<std::mutex> lock(mutex_);
    while (!done_) {
      cv_.wait_for(lock, poll, [this] { return done_; });
      if (done_) return;
      for (InFlight& f : inflight_) {
        if (!f.active || f.reported) continue;
        const double elapsed = seconds_since(f.start);
        if (elapsed > deadline_) {
          f.reported = true;
          const std::size_t index = f.index;
          lock.unlock();
          abort_(index, elapsed);  // default never returns
          lock.lock();
        }
      }
    }
  }

  double deadline_;
  std::function<void(std::size_t, double)> abort_;
  std::vector<InFlight> inflight_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread monitor_;
};

void sort_report(RunReport& report) {
  std::sort(report.failures.begin(), report.failures.end(),
            [](const util::ReplicationFailure& a,
               const util::ReplicationFailure& b) { return a.index < b.index; });
  std::sort(report.retried.begin(), report.retried.end());
}

}  // namespace

RunReport ParallelRunner::run_inline(
    std::size_t count, const std::function<void(std::size_t)>& task) {
  RunReport report;
  const auto start = Clock::now();
  Watchdog watchdog(config_.watchdog_sec, config_.watchdog_abort, 1);
  std::exception_ptr first_error;

  for (std::size_t i = 0; i < count; ++i) {
    if (config_.cancel != nullptr &&
        config_.cancel->load(std::memory_order_relaxed)) {
      report.interrupted = true;
      break;
    }
    std::size_t attempt = 1;
    bool succeeded = false;
    for (;; ++attempt) {
      try {
        watchdog.begin(0, i);
        task(i);
        watchdog.end(0);
        succeeded = true;
        break;
      } catch (...) {
        watchdog.end(0);
        const std::string message = current_exception_message();
        if (attempt < config_.max_attempts) {
          EADVFS_LOG_WARN << "replication " << i << " failed (attempt "
                          << attempt << "/" << config_.max_attempts
                          << "): " << message << "; retrying with the same "
                          << "sub-seed";
          continue;
        }
        report.failures.push_back({i, attempt, message});
        if (!config_.keep_going) first_error = std::current_exception();
        break;
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    if (succeeded) {
      ++report.completed;
      if (attempt > 1) report.retried.emplace_back(i, attempt);
      if (config_.on_complete) config_.on_complete(i, attempt);
      if (config_.progress && config_.progress_every != 0 &&
          (report.completed % config_.progress_every == 0 ||
           report.completed == count)) {
        config_.progress(make_progress(report.completed, count, start));
      }
    }
  }
  sort_report(report);
  return report;
}

RunReport ParallelRunner::run(std::size_t count,
                              const std::function<void(std::size_t)>& task) {
  if (count == 0) return {};
  const std::size_t workers = std::min(config_.jobs, count);
  if (workers == 1) return run_inline(count, task);

  std::mutex mutex;
  std::condition_variable work_available;
  std::deque<std::size_t> queue;
  bool closed = false;  // no further indices will be pushed
  bool cancelled = false;
  RunReport report;
  // Lowest-index permanent failure's original exception: rethrown verbatim
  // when it is the *only* observed failure, so callers keep catching the
  // exact type their task threw (e.g. sim::AuditError).
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
  const auto start = Clock::now();
  Watchdog watchdog(config_.watchdog_sec, config_.watchdog_abort, workers);

  auto worker = [&](std::size_t slot) {
    for (;;) {
      std::size_t index;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_available.wait(lock,
                            [&] { return closed || cancelled || !queue.empty(); });
        if (cancelled || queue.empty()) return;
        if (config_.cancel != nullptr &&
            config_.cancel->load(std::memory_order_relaxed)) {
          // Cooperative interrupt: stop dispatching, drain in-flight peers.
          report.interrupted = true;
          queue.clear();
          work_available.notify_all();
          return;
        }
        index = queue.front();
        queue.pop_front();
      }
      std::size_t attempt = 1;
      bool succeeded = false;
      std::string failure_message;
      std::exception_ptr failure;
      for (;; ++attempt) {
        try {
          watchdog.begin(slot, index);
          task(index);
          watchdog.end(slot);
          succeeded = true;
          break;
        } catch (...) {
          watchdog.end(slot);
          failure_message = current_exception_message();
          failure = std::current_exception();
          if (attempt < config_.max_attempts) {
            EADVFS_LOG_WARN << "replication " << index << " failed (attempt "
                            << attempt << "/" << config_.max_attempts
                            << "): " << failure_message << "; retrying with "
                            << "the same sub-seed";
            continue;
          }
          break;
        }
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (succeeded) {
          ++report.completed;
          if (attempt > 1) report.retried.emplace_back(index, attempt);
          if (config_.on_complete) config_.on_complete(index, attempt);
          if (config_.progress && config_.progress_every != 0 && !cancelled &&
              (report.completed % config_.progress_every == 0 ||
               report.completed == count)) {
            // Serialized by the pool lock per the ProgressFn contract.
            config_.progress(make_progress(report.completed, count, start));
          }
          continue;
        }
        report.failures.push_back({index, attempt, failure_message});
        if (index < error_index) {
          error_index = index;
          error = failure;
        }
        if (!config_.keep_going) {
          // Cancel the remaining queue; in-flight peers finish and report.
          cancelled = true;
          work_available.notify_all();
        }
      }
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t i = 0; i < count; ++i) queue.push_back(i);
    closed = true;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    pool.emplace_back(worker, w);
  work_available.notify_all();
  for (std::thread& t : pool) t.join();

  if (!config_.keep_going && !report.failures.empty()) {
    if (report.failures.size() == 1) std::rethrow_exception(error);
    throw util::CompositeRunError(std::move(report.failures));
  }
  sort_report(report);
  return report;
}

ProgressFn log_progress(std::string label) {
  return [label = std::move(label)](const ParallelProgress& p) {
    std::ostringstream rate;
    rate.setf(std::ios::fixed);
    rate.precision(p.rate_per_sec < 10.0 ? 2 : 1);
    rate << p.rate_per_sec;
    EADVFS_LOG_INFO << label << ": " << p.completed << "/" << p.total
                    << " replications (" << rate.str() << "/s)";
  };
}

ParallelConfig with_default_progress(ParallelConfig config, std::string label,
                                     std::size_t every) {
  if (!config.progress) {
    config.progress = log_progress(std::move(label));
    if (config.progress_every == 0) config.progress_every = every;
  }
  return config;
}

}  // namespace eadvfs::exp
