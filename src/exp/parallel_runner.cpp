#include "exp/parallel_runner.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/log.hpp"

namespace eadvfs::exp {

std::size_t hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t parse_jobs(long long requested) {
  if (requested <= 0)
    throw std::invalid_argument("--jobs must be a positive integer, got " +
                                std::to_string(requested));
  return static_cast<std::size_t>(requested);
}

ParallelRunner::ParallelRunner(ParallelConfig config)
    : config_(std::move(config)) {
  if (config_.jobs == 0)
    throw std::invalid_argument("ParallelRunner: jobs must be >= 1");
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

ParallelProgress make_progress(std::size_t completed, std::size_t total,
                               Clock::time_point start) {
  ParallelProgress p;
  p.completed = completed;
  p.total = total;
  p.elapsed_sec = seconds_since(start);
  p.rate_per_sec =
      p.elapsed_sec > 0.0 ? static_cast<double>(completed) / p.elapsed_sec : 0.0;
  return p;
}

}  // namespace

void ParallelRunner::run_inline(std::size_t count,
                                const std::function<void(std::size_t)>& task) {
  const auto start = Clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    task(i);
    const std::size_t done = i + 1;
    if (config_.progress && config_.progress_every != 0 &&
        (done % config_.progress_every == 0 || done == count)) {
      config_.progress(make_progress(done, count, start));
    }
  }
}

void ParallelRunner::run(std::size_t count,
                         const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  const std::size_t workers = std::min(config_.jobs, count);
  if (workers == 1) {
    run_inline(count, task);
    return;
  }

  std::mutex mutex;
  std::condition_variable work_available;
  std::deque<std::size_t> queue;
  bool closed = false;  // no further indices will be pushed
  bool cancelled = false;
  std::size_t completed = 0;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
  const auto start = Clock::now();

  auto worker = [&] {
    for (;;) {
      std::size_t index;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_available.wait(lock,
                            [&] { return closed || cancelled || !queue.empty(); });
        if (cancelled || queue.empty()) return;
        index = queue.front();
        queue.pop_front();
      }
      try {
        task(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        // Keep the failure closest to the front of the replication range so
        // the caller sees a deterministic error regardless of scheduling.
        if (index < error_index) {
          error_index = index;
          error = std::current_exception();
        }
        cancelled = true;
        work_available.notify_all();
        continue;  // let in-flight peers finish; take no new work
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++completed;
        if (config_.progress && config_.progress_every != 0 && !cancelled &&
            (completed % config_.progress_every == 0 || completed == count)) {
          // Serialized by the pool lock per the ProgressFn contract.
          config_.progress(make_progress(completed, count, start));
        }
      }
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t i = 0; i < count; ++i) queue.push_back(i);
    closed = true;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  work_available.notify_all();
  for (std::thread& t : pool) t.join();

  if (error) std::rethrow_exception(error);
}

ProgressFn log_progress(std::string label) {
  return [label = std::move(label)](const ParallelProgress& p) {
    std::ostringstream rate;
    rate.setf(std::ios::fixed);
    rate.precision(p.rate_per_sec < 10.0 ? 2 : 1);
    rate << p.rate_per_sec;
    EADVFS_LOG_INFO << label << ": " << p.completed << "/" << p.total
                    << " replications (" << rate.str() << "/s)";
  };
}

ParallelConfig with_default_progress(ParallelConfig config, std::string label,
                                     std::size_t every) {
  if (!config.progress) {
    config.progress = log_progress(std::move(label));
    if (config.progress_every == 0) config.progress_every = every;
  }
  return config;
}

}  // namespace eadvfs::exp
