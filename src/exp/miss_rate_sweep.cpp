#include "exp/miss_rate_sweep.hpp"

#include <memory>
#include <stdexcept>

#include "exp/parallel_runner.hpp"
#include "exp/setup.hpp"
#include "sched/factory.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace eadvfs::exp {

const MissRateCell& MissRateSweepResult::cell(const std::string& scheduler,
                                              double capacity) const {
  for (const auto& c : cells) {
    if (c.scheduler == scheduler && util::approx_equal(c.capacity, capacity))
      return c;
  }
  throw std::out_of_range("MissRateSweepResult: no such cell");
}

MissRateSweepResult run_miss_rate_sweep(const MissRateSweepConfig& config) {
  if (config.capacities.empty() || config.schedulers.empty())
    throw std::invalid_argument("run_miss_rate_sweep: empty sweep axes");

  MissRateSweepResult result;
  result.config = config;
  for (const auto& sched_name : config.schedulers) {
    for (double capacity : config.capacities) {
      MissRateCell cell;
      cell.scheduler = sched_name;
      cell.capacity = capacity;
      result.cells.push_back(cell);
    }
  }
  auto cell_at = [&](std::size_t sched_i, std::size_t cap_i) -> MissRateCell& {
    return result.cells[sched_i * config.capacities.size() + cap_i];
  };

  const proc::FrequencyTable& table = config.table;
  const auto seeds = derive_seeds(config.seed, config.n_task_sets);

  // One replication = one (task set, source realization) pair simulated for
  // every (scheduler, capacity) cell.  Workers fill plain-data records which
  // are folded into the Welford accumulators afterwards in replication order,
  // so the aggregate is byte-identical for any job count.
  struct CellSample {
    double miss_rate = 0.0;
    double stall_time = 0.0;
    double busy_time = 0.0;
    double frequency_switches = 0.0;
  };
  using RepRecord = std::vector<CellSample>;  // schedulers × capacities

  const auto records = parallel_map<RepRecord>(
      config.n_task_sets,
      with_default_progress(config.parallel, "miss-rate sweep", 50),
      [&](std::size_t rep) {
        util::Xoshiro256ss rng(seeds[rep]);
        const task::TaskSetGenerator generator(config.generator);
        const task::TaskSet task_set = generator.generate(rng);

        energy::SolarSourceConfig solar = config.solar;
        solar.seed = seeds[rep] ^ 0x5eed5eed5eed5eedULL;
        solar.horizon = std::max(solar.horizon, config.sim.horizon);
        const auto source = std::make_shared<const energy::SolarSource>(solar);

        sim::fault::FaultProfile fault = config.fault;
        if (!fault.seed_provided)
          fault.seed = seeds[rep] ^ 0xfa017fa017fa017fULL;  // same faults per cell

        RepRecord record(config.schedulers.size() * config.capacities.size());
        for (std::size_t s = 0; s < config.schedulers.size(); ++s) {
          const auto scheduler = sched::make_scheduler(config.schedulers[s]);
          for (std::size_t c = 0; c < config.capacities.size(); ++c) {
            task::ExecutionTimeModel execution = config.execution;
            execution.seed = seeds[rep] ^ 0xac7ac7ac7ULL;  // same jobs per cell
            const sim::SimulationResult run = run_once(
                config.sim, source, config.capacities[c], table, *scheduler,
                config.predictor, task_set, {}, config.overhead, execution,
                fault.any() ? &fault : nullptr);
            CellSample& sample = record[s * config.capacities.size() + c];
            sample.miss_rate = run.miss_rate();
            sample.stall_time = run.stall_time;
            sample.busy_time = run.busy_time;
            sample.frequency_switches =
                static_cast<double>(run.frequency_switches);
          }
        }
        return record;
      });

  for (const RepRecord& record : records) {
    for (std::size_t s = 0; s < config.schedulers.size(); ++s) {
      for (std::size_t c = 0; c < config.capacities.size(); ++c) {
        const CellSample& sample = record[s * config.capacities.size() + c];
        MissRateCell& cell = cell_at(s, c);
        cell.miss_rate.add(sample.miss_rate);
        cell.stall_time.add(sample.stall_time);
        cell.busy_time.add(sample.busy_time);
        cell.frequency_switches.add(sample.frequency_switches);
      }
    }
  }
  return result;
}

}  // namespace eadvfs::exp
