#include "exp/miss_rate_sweep.hpp"

#include <memory>
#include <sstream>
#include <stdexcept>

#include "exp/checkpoint.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/setup.hpp"
#include "obs/export.hpp"
#include "obs/perf.hpp"
#include "sched/factory.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace eadvfs::exp {

const MissRateCell& MissRateSweepResult::cell(const std::string& scheduler,
                                              double capacity) const {
  for (const auto& c : cells) {
    if (c.scheduler == scheduler && util::approx_equal(c.capacity, capacity))
      return c;
  }
  throw std::out_of_range("MissRateSweepResult: no such cell");
}

std::string MissRateSweepConfig::canonical_description() const {
  // Every field a CLI flag or caller can vary that feeds the simulation;
  // deliberately NOT parallel/checkpoint (jobs and supervision must never
  // change results — that is the determinism contract being protected).
  std::ostringstream out;
  out.precision(17);
  out << "miss-rate;seed=" << seed << ";sets=" << n_task_sets << ";caps=";
  for (std::size_t i = 0; i < capacities.size(); ++i)
    out << (i ? "," : "") << capacities[i];
  out << ";scheds=";
  for (std::size_t i = 0; i < schedulers.size(); ++i)
    out << (i ? "," : "") << schedulers[i];
  out << ";predictor=" << predictor;
  out << ";tasks=" << generator.n_tasks << ";u=" << generator.target_utilization;
  out << ";horizon=" << sim.horizon;
  out << ";miss-policy="
      << (sim.miss_policy == sim::MissPolicy::kDropAtDeadline ? "drop"
                                                              : "continue");
  out << ";depletion="
      << (sim.depletion_policy == sim::DepletionPolicy::kSuspendAndResume
              ? "suspend"
              : "abort");
  out << ";solar-amp=" << solar.amplitude << ";solar-step=" << solar.step;
  out << ";overhead=" << overhead.time << "," << overhead.energy;
  out << ";bcet=" << execution.bcet_fraction;
  out << ";fault=" << (fault.any() ? fault.describe() : "none");
  return out.str();
}

MissRateSweepResult run_miss_rate_sweep(const MissRateSweepConfig& config) {
  if (config.capacities.empty() || config.schedulers.empty())
    throw std::invalid_argument("run_miss_rate_sweep: empty sweep axes");

  MissRateSweepResult result;
  result.config = config;
  for (const auto& sched_name : config.schedulers) {
    for (double capacity : config.capacities) {
      MissRateCell cell;
      cell.scheduler = sched_name;
      cell.capacity = capacity;
      result.cells.push_back(cell);
    }
  }
  auto cell_at = [&](std::size_t sched_i, std::size_t cap_i) -> MissRateCell& {
    return result.cells[sched_i * config.capacities.size() + cap_i];
  };

  const proc::FrequencyTable& table = config.table;
  const auto seeds = derive_seeds(config.seed, config.n_task_sets);

  // One replication = one (task set, source realization) pair simulated for
  // every (scheduler, capacity) cell.  Workers fill a flat row of plain
  // doubles — 4 per cell: miss rate, stall time, busy time, switches — which
  // is also the journal payload; rows are folded into the Welford
  // accumulators afterwards in replication order, so the aggregate is
  // byte-identical for any job count and across any crash/resume split.
  constexpr std::size_t kValuesPerCell = 4;
  const std::size_t row_width =
      config.schedulers.size() * config.capacities.size() * kValuesPerCell;

  ManifestInfo manifest;
  manifest.experiment = config.experiment_id;
  manifest.config = config.canonical_description();
  manifest.seed = config.seed;
  manifest.replications = config.n_task_sets;
  manifest.jobs = config.parallel.jobs;

  obs::PhaseTimers timers;
  timers.start("simulate");
  const CheckpointedMapOutcome outcome = checkpointed_map(
      config.n_task_sets,
      with_default_progress(config.parallel, "miss-rate sweep", 50),
      config.checkpoint, manifest, [&](std::size_t rep) {
        util::Xoshiro256ss rng(seeds[rep]);
        const task::TaskSetGenerator generator(config.generator);
        const task::TaskSet task_set = generator.generate(rng);

        energy::SolarSourceConfig solar = config.solar;
        solar.seed = seeds[rep] ^ 0x5eed5eed5eed5eedULL;
        solar.horizon = std::max(solar.horizon, config.sim.horizon);
        const auto source = std::make_shared<const energy::SolarSource>(solar);

        sim::fault::FaultProfile fault = config.fault;
        if (!fault.seed_provided)
          fault.seed = seeds[rep] ^ 0xfa017fa017fa017fULL;  // same faults per cell

        std::vector<double> row(row_width);
        for (std::size_t s = 0; s < config.schedulers.size(); ++s) {
          const auto scheduler = sched::make_scheduler(config.schedulers[s]);
          for (std::size_t c = 0; c < config.capacities.size(); ++c) {
            task::ExecutionTimeModel execution = config.execution;
            execution.seed = seeds[rep] ^ 0xac7ac7ac7ULL;  // same jobs per cell
            const sim::SimulationResult run = run_once(
                config.sim, source, config.capacities[c], table, *scheduler,
                config.predictor, task_set, {}, config.overhead, execution,
                fault.any() ? &fault : nullptr);
            double* cell =
                row.data() +
                (s * config.capacities.size() + c) * kValuesPerCell;
            cell[0] = run.miss_rate();
            cell[1] = run.stall_time;
            cell[2] = run.busy_time;
            cell[3] = static_cast<double>(run.frequency_switches);
          }
        }
        return row;
      });

  timers.start("aggregate");
  for (const std::vector<double>& row : outcome.rows) {
    if (row.empty()) continue;  // failed or interrupt-skipped replication
    if (row.size() != row_width)
      throw std::runtime_error(
          "miss-rate sweep: journaled row width mismatch (checkpoint from a "
          "different configuration?)");
    for (std::size_t s = 0; s < config.schedulers.size(); ++s) {
      for (std::size_t c = 0; c < config.capacities.size(); ++c) {
        const double* sample =
            row.data() + (s * config.capacities.size() + c) * kValuesPerCell;
        MissRateCell& cell = cell_at(s, c);
        cell.miss_rate.add(sample[0]);
        cell.stall_time.add(sample[1]);
        cell.busy_time.add(sample[2]);
        cell.frequency_switches.add(sample[3]);
      }
    }
  }
  result.report = outcome.report;
  result.resumed = outcome.resumed;

  const bool want_observability =
      !config.metrics_out.empty() || !config.decisions_out.empty();
  if (want_observability && !outcome.report.interrupted &&
      config.n_task_sets > 0 && !outcome.rows[0].empty()) {
    // Trace replication: the journal carries only the four aggregate numbers
    // per cell, so re-simulate replication 0 with observers attached for the
    // detailed artifacts.  The reconstruction mirrors the worker above
    // (same sub-seed derivation, same scheduler reuse across capacities), so
    // a cell's trace is exactly what the worker simulated.
    timers.start("trace-replication");
    obs::RunObservability sink;
    util::Xoshiro256ss rng(seeds[0]);
    const task::TaskSetGenerator generator(config.generator);
    const task::TaskSet task_set = generator.generate(rng);
    energy::SolarSourceConfig solar = config.solar;
    solar.seed = seeds[0] ^ 0x5eed5eed5eed5eedULL;
    solar.horizon = std::max(solar.horizon, config.sim.horizon);
    const auto source = std::make_shared<const energy::SolarSource>(solar);
    sim::fault::FaultProfile fault = config.fault;
    if (!fault.seed_provided) fault.seed = seeds[0] ^ 0xfa017fa017fa017fULL;
    for (const auto& sched_name : config.schedulers) {
      const auto scheduler = sched::make_scheduler(sched_name);
      for (double capacity : config.capacities) {
        RunOptions run;
        run.config = config.sim;
        run.source = source;
        run.tasks = &task_set;
        run.storage.capacity = capacity;
        run.table = table;
        run.scheduler_override = scheduler.get();
        run.predictor = config.predictor;
        run.overhead = config.overhead;
        run.execution = config.execution;
        run.execution.seed = seeds[0] ^ 0xac7ac7ac7ULL;
        run.fault = fault.any() ? &fault : nullptr;
        run.observability = &sink;
        run.per_task_metrics = false;  // random task sets: ids are noise
        (void)run_with_options(run);
      }
    }
    if (!config.metrics_out.empty()) sink.export_metrics(config.metrics_out);
    if (!config.decisions_out.empty())
      sink.export_decisions(config.decisions_out);
  }
  timers.stop();
  result.wall_clock = timers.summary();
  return result;
}

}  // namespace eadvfs::exp
