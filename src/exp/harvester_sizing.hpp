#pragma once

/// \file harvester_sizing.hpp
/// The dual of the paper's Table 1: instead of the smallest *storage* that
/// achieves zero misses at a fixed harvester, find the smallest *harvester*
/// (solar-panel scale factor) that achieves zero misses at a fixed storage.
/// A deployment usually fixes one and shops for the other; EA-DVFS's energy
/// efficiency shrinks both bills.  Replications run on the worker pool
/// configured by `HarvesterSizingConfig::parallel`.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "energy/solar_source.hpp"
#include "energy/source.hpp"
#include "exp/parallel_runner.hpp"
#include "sim/config.hpp"
#include "task/generator.hpp"
#include "util/stats.hpp"

namespace eadvfs::exp {

struct HarvesterSizingConfig {
  std::vector<std::string> schedulers = {"lsa", "ea-dvfs"};
  std::string predictor = "slotted-ewma";
  std::size_t n_task_sets = 50;
  std::uint64_t seed = 42;
  Energy capacity = 100.0;     ///< fixed storage.
  double scale_lo = 1e-3;      ///< search bracket on the source scale factor.
  double scale_hi = 10.0;
  double rel_tolerance = 0.01;
  task::GeneratorConfig generator;
  sim::SimulationConfig sim;
  energy::SolarSourceConfig solar;  ///< base (unit-scale) source.
  ParallelConfig parallel;          ///< replication worker pool.
};

struct HarvesterSizingResult {
  HarvesterSizingConfig config;
  /// Per-scheduler minimum scale factors over task sets feasible for all.
  std::vector<util::RunningStats> min_scale;  ///< parallel to schedulers.
  util::RunningStats ratio_first_over_second;
  std::size_t sets_evaluated = 0;
  std::size_t sets_skipped = 0;
  RunReport report;  ///< supervision outcome (retries; see parallel_runner.hpp).

  [[nodiscard]] double ratio_of_means() const;
};

/// Smallest source scale (binary search) with zero misses for one workload;
/// negative when even scale_hi misses.
[[nodiscard]] double find_min_harvester_scale(
    const HarvesterSizingConfig& config, const std::string& scheduler_name,
    const task::TaskSet& task_set,
    const std::shared_ptr<const energy::EnergySource>& base_source);

[[nodiscard]] HarvesterSizingResult run_harvester_sizing(
    const HarvesterSizingConfig& config);

}  // namespace eadvfs::exp
