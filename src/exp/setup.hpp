#pragma once

/// \file setup.hpp
/// Experiment plumbing: predictor construction by name, per-replication seed
/// derivation, and the single-run helper every experiment builds on.
///
/// Seeding discipline: one master seed expands (via SplitMix64) into one
/// sub-seed per replication; within a replication the *same* task set and
/// the *same* energy-source realization are used for every scheduler and
/// capacity — the paper's "for the fair comparison of LSA and EA-DVFS, all
/// simulations are performed under the same condition" (§5.2), i.e. paired
/// comparisons.
///
/// Because every replication's randomness descends from its own sub-seed and
/// run_once() builds storage/processor/predictor/engine fresh per call,
/// replications are independent and order-free: the sweeps execute them on
/// the parallel_runner.hpp worker pool and aggregate by replication index
/// (see docs/EXPERIMENTS.md for the full determinism contract).

#include <memory>
#include <string>
#include <vector>

#include "energy/predictor.hpp"
#include "energy/solar_source.hpp"
#include "energy/source.hpp"
#include "obs/export.hpp"
#include "proc/frequency_table.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/fault/profile.hpp"
#include "sim/result.hpp"
#include "sim/scheduler.hpp"
#include "task/releaser.hpp"
#include "task/task_set.hpp"

namespace eadvfs::exp {

/// Construct a predictor by name:
///   "oracle"           — perfect future knowledge of `source`;
///   "slotted-ewma"     — Kansal-style profile (cycle defaults to 70π², the
///                        eq. 13 cycle; the experiment default);
///   "running-average"  — long-run observed mean power;
///   "persistence"      — the most recently observed power persists;
///   "pessimistic"      — always predicts zero future harvest;
///   "constant:<P>"     — fixed mean power P.
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<energy::EnergyPredictor> make_predictor(
    const std::string& name, std::shared_ptr<const energy::EnergySource> source);

/// Names accepted by make_predictor (for help text).
[[nodiscard]] std::vector<std::string> predictor_names();

/// Expand a master seed into `count` replication sub-seeds.
[[nodiscard]] std::vector<std::uint64_t> derive_seeds(std::uint64_t master,
                                                      std::size_t count);

/// One full simulation run: builds storage (ideal, initially full, given
/// capacity), processor, predictor and engine around the supplied immutable
/// pieces, runs, and returns the result.  `observers` are registered before
/// the run.  `overhead` is the per-DVFS-transition cost (zero = the paper's
/// assumption).  `fault`, when non-null and active, is expanded into a
/// FaultSchedule over the config horizon: the source is wrapped in
/// fault::FaultedSource (blackout/brownout windows), the predictor in
/// fault::FaultedPredictor (error injection), and the engine applies
/// storage/switch faults at their scheduled instants.  The oracle predictor
/// sees the *faulted* harvest — perfect knowledge includes the blackouts;
/// only predict_bias/jitter make it lie.
[[nodiscard]] sim::SimulationResult run_once(
    const sim::SimulationConfig& config,
    const std::shared_ptr<const energy::EnergySource>& source,
    Energy capacity, const proc::FrequencyTable& table, sim::Scheduler& scheduler,
    const std::string& predictor_name, const task::TaskSet& task_set,
    const std::vector<sim::SimObserver*>& observers = {},
    const proc::SwitchOverhead& overhead = {},
    const task::ExecutionTimeModel& execution = {},
    const sim::fault::FaultProfile* fault = nullptr);

/// Variant with an explicit storage model (charge efficiency, leakage,
/// partial initial charge) for the non-ideality ablations.
[[nodiscard]] sim::SimulationResult run_once_with_storage(
    const sim::SimulationConfig& config,
    const std::shared_ptr<const energy::EnergySource>& source,
    const energy::StorageConfig& storage_config, const proc::FrequencyTable& table,
    sim::Scheduler& scheduler, const std::string& predictor_name,
    const task::TaskSet& task_set,
    const std::vector<sim::SimObserver*>& observers = {},
    const proc::SwitchOverhead& overhead = {},
    const task::ExecutionTimeModel& execution = {},
    const sim::fault::FaultProfile* fault = nullptr);

/// Everything one simulated run needs, gathered behind one builder so the
/// CLI tool, the benches and the sweeps assemble engines identically instead
/// of each repeating the storage/processor/predictor/fault/engine wiring.
/// Fill the fields, then call run_with_options().
///
/// Ownership: `source` is shared; `tasks`, `fault`, `scheduler_override`,
/// `observers` and `observability` are borrowed and must outlive the call.
/// Every run builds its engine fresh, so a RunOptions value can be reused —
/// including concurrently, as long as `scheduler_override` is null (a
/// pre-built scheduler is stateful) and each thread uses its own
/// `observability` sink.
struct RunOptions {
  sim::SimulationConfig config;
  std::shared_ptr<const energy::EnergySource> source;  ///< Required.
  const task::TaskSet* tasks = nullptr;                ///< Required.
  energy::StorageConfig storage;
  proc::FrequencyTable table = proc::FrequencyTable::xscale();
  /// Scheduler factory name (sched::make_scheduler); ignored when
  /// `scheduler_override` is set.
  std::string scheduler = "ea-dvfs";
  /// Pre-built scheduler to use instead of constructing one by name.
  sim::Scheduler* scheduler_override = nullptr;
  std::string predictor = "slotted-ewma";  ///< See make_predictor().
  proc::SwitchOverhead overhead;
  Power idle_power = 0.0;
  task::ExecutionTimeModel execution;
  const sim::fault::FaultProfile* fault = nullptr;
  /// Borrowed observers registered (in order) before the run.
  std::vector<sim::SimObserver*> observers;
  /// When set, the run also feeds a MetricsObserver + DecisionTraceObserver
  /// and records its summary/decisions into this sink (the machinery behind
  /// `--metrics-out` / `--decisions-out`).
  obs::RunObservability* observability = nullptr;
  /// Per-task metric series on/off (MetricsObserverConfig::per_task).
  bool per_task_metrics = true;
  /// Run through the devirtualized scheduler kernel (sched::run_fast) when
  /// the scheduler is one of the six built-ins; false forces the
  /// virtual-dispatch Engine::run() reference path.  Results are identical
  /// either way (see docs/PERFORMANCE.md); the switch exists for the
  /// equivalence tests and the benchmark's reference pass.
  bool devirtualize = true;
};

/// Assemble and run one simulation from `opts`.  Mirrors run_once_with_storage
/// (fault expansion, source/predictor wrapping, fresh engine) and is in fact
/// the implementation underneath it.  Throws std::invalid_argument when a
/// required field is missing.
[[nodiscard]] sim::SimulationResult run_with_options(const RunOptions& opts);

}  // namespace eadvfs::exp
