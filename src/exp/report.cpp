#include "exp/report.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"

namespace eadvfs::exp {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& label, const std::vector<double>& values,
                        int precision) {
  std::vector<std::string> cells;
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c > 0) out << "  ";
      out << std::setw(static_cast<int>(widths[c]))
          << (c < row.size() ? row[c] : "");
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  out << std::string(total + 2 * (header_.size() - 1), '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::write_csv(const std::string& path) const {
  // Atomic write-temp-then-rename: a crash mid-write never leaves a torn
  // CSV behind, and readers only ever observe the complete table.  Still
  // best-effort (warn, don't abort a long experiment) like before.
  try {
    util::write_file_atomic(path, [this](std::ostream& out) {
      util::CsvWriter writer(out);
      writer.write_row(header_);
      for (const auto& row : rows_) writer.write_row(row);
    });
  } catch (const std::exception& error) {
    EADVFS_LOG_WARN << "could not write CSV to " << path << ": " << error.what();
  }
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

void print_banner(std::ostream& out, const std::string& experiment_id,
                  const std::string& paper_claim, const std::string& setup) {
  out << "==============================================================\n";
  out << experiment_id << '\n';
  out << "paper: " << paper_claim << '\n';
  out << "setup: " << setup << '\n';
  out << "==============================================================\n";
}

std::string output_dir() {
  if (const char* dir = std::getenv("EADVFS_OUT_DIR"); dir != nullptr && *dir)
    return dir;
  return ".";
}

}  // namespace eadvfs::exp
