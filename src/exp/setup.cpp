#include "exp/setup.hpp"

#include <optional>
#include <stdexcept>

#include "energy/persistence_predictor.hpp"
#include "energy/running_average_predictor.hpp"
#include "energy/slotted_ewma_predictor.hpp"
#include "energy/storage.hpp"
#include "obs/decision_trace.hpp"
#include "obs/metrics_observer.hpp"
#include "sched/factory.hpp"
#include "sched/fast_path.hpp"
#include "sim/fault/faulted_predictor.hpp"
#include "sim/fault/faulted_source.hpp"
#include "sim/fault/schedule.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace eadvfs::exp {

std::unique_ptr<energy::EnergyPredictor> make_predictor(
    const std::string& name, std::shared_ptr<const energy::EnergySource> source) {
  if (name == "oracle")
    return std::make_unique<energy::OraclePredictor>(std::move(source));
  if (name == "slotted-ewma") {
    energy::SlottedEwmaConfig cfg;
    // Default cycle: eq. 13's 70π²; if the source actually is a SolarSource
    // with a non-default divisor, follow it.  A fault-wrapped source keeps
    // its inner source's cycle (the blackouts perturb the profile, not the
    // diurnal period), so unwrap before probing.
    std::shared_ptr<const energy::EnergySource> base = source;
    if (auto faulted =
            std::dynamic_pointer_cast<const sim::fault::FaultedSource>(base))
      base = faulted->inner();
    if (auto solar = std::dynamic_pointer_cast<const energy::SolarSource>(base))
      cfg.cycle = solar->cycle_period();
    return std::make_unique<energy::SlottedEwmaPredictor>(cfg);
  }
  if (name == "running-average")
    return std::make_unique<energy::RunningAveragePredictor>();
  if (name == "persistence")
    return std::make_unique<energy::PersistencePredictor>();
  if (name == "pessimistic")
    return std::make_unique<energy::ConstantPredictor>(0.0);
  if (name.rfind("constant:", 0) == 0) {
    const double p = std::stod(name.substr(9));
    return std::make_unique<energy::ConstantPredictor>(p);
  }
  throw std::invalid_argument("unknown predictor: " + name);
}

std::vector<std::string> predictor_names() {
  return {"oracle", "slotted-ewma", "running-average", "persistence",
          "pessimistic", "constant:<P>"};
}

std::vector<std::uint64_t> derive_seeds(std::uint64_t master, std::size_t count) {
  util::SplitMix64 sm(master);
  std::vector<std::uint64_t> seeds(count);
  for (auto& s : seeds) s = sm.next();
  return seeds;
}

sim::SimulationResult run_once(
    const sim::SimulationConfig& config,
    const std::shared_ptr<const energy::EnergySource>& source, Energy capacity,
    const proc::FrequencyTable& table, sim::Scheduler& scheduler,
    const std::string& predictor_name, const task::TaskSet& task_set,
    const std::vector<sim::SimObserver*>& observers,
    const proc::SwitchOverhead& overhead,
    const task::ExecutionTimeModel& execution,
    const sim::fault::FaultProfile* fault) {
  energy::StorageConfig storage_config;
  storage_config.capacity = capacity;
  return run_once_with_storage(config, source, storage_config, table, scheduler,
                               predictor_name, task_set, observers, overhead,
                               execution, fault);
}

sim::SimulationResult run_once_with_storage(
    const sim::SimulationConfig& config,
    const std::shared_ptr<const energy::EnergySource>& source,
    const energy::StorageConfig& storage_config, const proc::FrequencyTable& table,
    sim::Scheduler& scheduler, const std::string& predictor_name,
    const task::TaskSet& task_set, const std::vector<sim::SimObserver*>& observers,
    const proc::SwitchOverhead& overhead,
    const task::ExecutionTimeModel& execution,
    const sim::fault::FaultProfile* fault) {
  RunOptions opts;
  opts.config = config;
  opts.source = source;
  opts.tasks = &task_set;
  opts.storage = storage_config;
  opts.table = table;
  opts.scheduler_override = &scheduler;
  opts.predictor = predictor_name;
  opts.overhead = overhead;
  opts.execution = execution;
  opts.fault = fault;
  opts.observers = observers;
  return run_with_options(opts);
}

sim::SimulationResult run_with_options(const RunOptions& opts) {
  if (!opts.source)
    throw std::invalid_argument("run_with_options: source is required");
  if (opts.tasks == nullptr)
    throw std::invalid_argument("run_with_options: tasks is required");

  // Expand the fault profile (if any) into a concrete schedule and wrap the
  // source/predictor in their fault decorators.  Everything stays a pure
  // function of (profile, horizon), preserving the sweep determinism
  // contract.
  std::optional<sim::fault::FaultSchedule> schedule;
  if (opts.fault != nullptr && opts.fault->any())
    schedule.emplace(*opts.fault, opts.config.horizon);

  std::shared_ptr<const energy::EnergySource> effective_source = opts.source;
  if (schedule.has_value() && !schedule->harvest_windows().empty())
    effective_source = std::make_shared<sim::fault::FaultedSource>(
        opts.source, schedule->harvest_windows());

  energy::EnergyStorage storage(opts.storage);
  proc::Processor processor(opts.table, opts.overhead, opts.idle_power);
  auto predictor = make_predictor(opts.predictor, effective_source);
  if (schedule.has_value() && schedule->profile().affects_predictor())
    predictor = std::make_unique<sim::fault::FaultedPredictor>(
        std::move(predictor), schedule->predictor_model());

  std::unique_ptr<sim::Scheduler> owned_scheduler;
  sim::Scheduler* scheduler = opts.scheduler_override;
  if (scheduler == nullptr) {
    owned_scheduler = sched::make_scheduler(opts.scheduler);
    scheduler = owned_scheduler.get();
  }

  task::JobReleaser releaser(*opts.tasks, opts.config.horizon, opts.execution);
  sim::Engine engine(opts.config, *effective_source, storage, processor,
                     *predictor, *scheduler, releaser);
  if (schedule.has_value()) engine.set_fault_schedule(&*schedule);
  for (sim::SimObserver* obs : opts.observers) engine.observers().add(*obs);

  obs::DecisionTraceObserver* trace = nullptr;
  if (opts.observability != nullptr) {
    obs::MetricsObserverConfig mcfg;
    mcfg.scheduler = scheduler->name();
    mcfg.capacity = opts.storage.capacity;
    mcfg.per_task = opts.per_task_metrics;
    // Distinguish runs of the same scheduler at different capacities when
    // they share one registry (a sweep's trace replication).
    mcfg.extra = {{"capacity", util::format_double(opts.storage.capacity)}};
    engine.observers().emplace<obs::MetricsObserver>(
        opts.observability->registry(), mcfg);
    trace = &engine.observers().emplace<obs::DecisionTraceObserver>();
  }

  sim::SimulationResult result =
      opts.devirtualize ? sched::run_fast(engine, *scheduler) : engine.run();
  if (opts.observability != nullptr)
    opts.observability->record_run(scheduler->name(), opts.storage.capacity,
                                   result, trace->records());
  return result;
}

}  // namespace eadvfs::exp
