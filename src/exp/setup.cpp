#include "exp/setup.hpp"

#include <optional>
#include <stdexcept>

#include "energy/persistence_predictor.hpp"
#include "energy/running_average_predictor.hpp"
#include "energy/slotted_ewma_predictor.hpp"
#include "energy/storage.hpp"
#include "sim/fault/faulted_predictor.hpp"
#include "sim/fault/faulted_source.hpp"
#include "sim/fault/schedule.hpp"
#include "util/rng.hpp"

namespace eadvfs::exp {

std::unique_ptr<energy::EnergyPredictor> make_predictor(
    const std::string& name, std::shared_ptr<const energy::EnergySource> source) {
  if (name == "oracle")
    return std::make_unique<energy::OraclePredictor>(std::move(source));
  if (name == "slotted-ewma") {
    energy::SlottedEwmaConfig cfg;
    // Default cycle: eq. 13's 70π²; if the source actually is a SolarSource
    // with a non-default divisor, follow it.  A fault-wrapped source keeps
    // its inner source's cycle (the blackouts perturb the profile, not the
    // diurnal period), so unwrap before probing.
    std::shared_ptr<const energy::EnergySource> base = source;
    if (auto faulted =
            std::dynamic_pointer_cast<const sim::fault::FaultedSource>(base))
      base = faulted->inner();
    if (auto solar = std::dynamic_pointer_cast<const energy::SolarSource>(base))
      cfg.cycle = solar->cycle_period();
    return std::make_unique<energy::SlottedEwmaPredictor>(cfg);
  }
  if (name == "running-average")
    return std::make_unique<energy::RunningAveragePredictor>();
  if (name == "persistence")
    return std::make_unique<energy::PersistencePredictor>();
  if (name == "pessimistic")
    return std::make_unique<energy::ConstantPredictor>(0.0);
  if (name.rfind("constant:", 0) == 0) {
    const double p = std::stod(name.substr(9));
    return std::make_unique<energy::ConstantPredictor>(p);
  }
  throw std::invalid_argument("unknown predictor: " + name);
}

std::vector<std::string> predictor_names() {
  return {"oracle", "slotted-ewma", "running-average", "persistence",
          "pessimistic", "constant:<P>"};
}

std::vector<std::uint64_t> derive_seeds(std::uint64_t master, std::size_t count) {
  util::SplitMix64 sm(master);
  std::vector<std::uint64_t> seeds(count);
  for (auto& s : seeds) s = sm.next();
  return seeds;
}

sim::SimulationResult run_once(
    const sim::SimulationConfig& config,
    const std::shared_ptr<const energy::EnergySource>& source, Energy capacity,
    const proc::FrequencyTable& table, sim::Scheduler& scheduler,
    const std::string& predictor_name, const task::TaskSet& task_set,
    const std::vector<sim::SimObserver*>& observers,
    const proc::SwitchOverhead& overhead,
    const task::ExecutionTimeModel& execution,
    const sim::fault::FaultProfile* fault) {
  energy::StorageConfig storage_config;
  storage_config.capacity = capacity;
  return run_once_with_storage(config, source, storage_config, table, scheduler,
                               predictor_name, task_set, observers, overhead,
                               execution, fault);
}

sim::SimulationResult run_once_with_storage(
    const sim::SimulationConfig& config,
    const std::shared_ptr<const energy::EnergySource>& source,
    const energy::StorageConfig& storage_config, const proc::FrequencyTable& table,
    sim::Scheduler& scheduler, const std::string& predictor_name,
    const task::TaskSet& task_set, const std::vector<sim::SimObserver*>& observers,
    const proc::SwitchOverhead& overhead,
    const task::ExecutionTimeModel& execution,
    const sim::fault::FaultProfile* fault) {
  // Expand the fault profile (if any) into a concrete schedule and wrap the
  // source/predictor in their fault decorators.  Everything stays a pure
  // function of (profile, horizon), preserving the sweep determinism
  // contract.
  std::optional<sim::fault::FaultSchedule> schedule;
  if (fault != nullptr && fault->any())
    schedule.emplace(*fault, config.horizon);

  std::shared_ptr<const energy::EnergySource> effective_source = source;
  if (schedule.has_value() && !schedule->harvest_windows().empty())
    effective_source = std::make_shared<sim::fault::FaultedSource>(
        source, schedule->harvest_windows());

  energy::EnergyStorage storage(storage_config);
  proc::Processor processor(table, overhead);
  auto predictor = make_predictor(predictor_name, effective_source);
  if (schedule.has_value() && schedule->profile().affects_predictor())
    predictor = std::make_unique<sim::fault::FaultedPredictor>(
        std::move(predictor), schedule->predictor_model());
  task::JobReleaser releaser(task_set, config.horizon, execution);
  sim::Engine engine(config, *effective_source, storage, processor, *predictor,
                     scheduler, releaser);
  if (schedule.has_value()) engine.set_fault_schedule(&*schedule);
  for (sim::SimObserver* obs : observers) engine.add_observer(*obs);
  return engine.run();
}

}  // namespace eadvfs::exp
