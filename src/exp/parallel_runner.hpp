#pragma once

/// \file parallel_runner.hpp
/// Deterministic parallel execution of independent experiment replications,
/// with crash-safety supervision: bounded retries, a hang watchdog, graceful
/// keep-going degradation, and cooperative cancellation.
///
/// Every sweep in this harness maps a replication index range [0, count)
/// through a pure-ish task (each replication owns its RNG, task set, energy
/// source realization and engine — see setup.hpp) and aggregates the results.
/// The runner executes that map on a fixed-size worker pool and hands results
/// back *by replication index*, so callers aggregate in index order and the
/// output is byte-identical for any thread count or OS scheduling.  With
/// `jobs == 1` the map runs inline on the calling thread — exactly the
/// pre-parallelism sequential behavior.
///
/// Contract for tasks submitted here:
///   * a task for index i may read shared *immutable* state (configs,
///     frequency tables) but must create everything mutable — RNG, task set,
///     source, predictor, engine, observers — from the replication's sub-seed;
///   * tasks must not touch each other's results;
///   * a task must be safe to re-run for the same index (retries re-invoke it
///     with the same sub-seed and overwrite the same result slot);
///   * failures are reported per index: a single failing replication rethrows
///     its original exception, several throw one util::CompositeRunError
///     aggregating every observed (index, attempts, message) triple.

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace eadvfs::exp {

/// Snapshot passed to the progress callback (serialized: never concurrent).
struct ParallelProgress {
  std::size_t completed = 0;  ///< replications finished so far.
  std::size_t total = 0;      ///< replications in this run.
  double elapsed_sec = 0.0;   ///< wall-clock since run() started.
  double rate_per_sec = 0.0;  ///< completed / elapsed (0 until measurable).
};

using ProgressFn = std::function<void(const ParallelProgress&)>;

/// What actually happened during a run(): how much completed, which
/// replications were retried, which failed permanently (keep_going only —
/// without it failures throw), and whether the run was stopped early by the
/// cooperative cancel token before dispatching everything.
struct RunReport {
  std::size_t completed = 0;  ///< replications that finished successfully.
  /// Permanent failures, ascending by index.  Non-empty only under
  /// keep_going; otherwise run() throws instead.
  std::vector<util::ReplicationFailure> failures;
  /// (index, attempts) for replications that succeeded after >= 1 retry,
  /// ascending by index — the journal records the same counts.
  std::vector<std::pair<std::size_t, std::size_t>> retried;
  /// True when the cancel token stopped the run before all indices were
  /// dispatched (in-flight replications were drained, not abandoned).
  bool interrupted = false;

  [[nodiscard]] bool clean() const { return failures.empty() && !interrupted; }
};

/// Worker-pool + supervision configuration carried by every experiment
/// config.
struct ParallelConfig {
  /// Worker threads; must be >= 1.  1 (the default) runs inline on the
  /// calling thread.  Use hardware_jobs() for the machine's parallelism.
  std::size_t jobs = 1;
  /// Invoke `progress` every this many completed replications (and once at
  /// the end).  0 disables progress reporting.
  std::size_t progress_every = 0;
  /// Progress callback; invoked under the pool lock, so it needs no
  /// synchronization of its own but should be quick.
  ProgressFn progress;

  // --- supervision (see docs/EXPERIMENTS.md §"Crash safety") ---

  /// Total attempts per replication (>= 1).  A throwing task is re-run with
  /// the same index (hence the same sub-seed) up to this many times before
  /// counting as a permanent failure; retries are deterministic re-executions,
  /// not resampling.
  std::size_t max_attempts = 1;
  /// Per-replication wall-clock deadline in seconds; 0 disables the watchdog.
  /// A replication exceeding it triggers `watchdog_abort` — by default the
  /// process logs the stuck index and exits with
  /// util::exit_code::kWatchdogTimeout, because a hung thread cannot be
  /// cancelled safely in-process; a checkpointed sweep resumes past it.
  double watchdog_sec = 0.0;
  /// Keep running after permanent failures instead of cancelling the sweep;
  /// failed indices are reported in RunReport::failures and excluded from
  /// the results (the caller must aggregate accordingly).
  bool keep_going = false;
  /// Cooperative cancellation: when non-null and set, no further indices are
  /// dispatched; in-flight replications drain normally and RunReport marks
  /// the run interrupted.  Wire util::interrupt_flag() here for Ctrl-C.
  const std::atomic<bool>* cancel = nullptr;
  /// Invoked (serialized under the pool lock) after each successful
  /// replication with its attempt count — the checkpoint journal's hook.
  std::function<void(std::size_t index, std::size_t attempts)> on_complete;
  /// Override for the watchdog's abort action (tests).  Called off-lock with
  /// the stuck index and its elapsed seconds; invoked at most once per index.
  std::function<void(std::size_t index, double elapsed_sec)> watchdog_abort;
};

/// The machine's available parallelism: hardware_concurrency(), never 0.
[[nodiscard]] std::size_t hardware_jobs();

/// Validate a user-supplied `--jobs` value: throws std::invalid_argument for
/// zero or negative values, returns the value as std::size_t otherwise.
[[nodiscard]] std::size_t parse_jobs(long long requested);

/// Validate a user-supplied `--retries` value (>= 0) and convert it to the
/// ParallelConfig::max_attempts convention (retries + 1).
[[nodiscard]] std::size_t parse_retries(long long requested);

/// Validate a user-supplied `--timeout` (watchdog) value in seconds: >= 0,
/// finite; 0 disables.
[[nodiscard]] double parse_watchdog_sec(double requested);

/// Fixed-size worker pool (std::thread workers draining a mutex/condvar work
/// queue of replication indices).  The pool lives for one run() call; the
/// experiment harness creates one per sweep.
class ParallelRunner {
 public:
  /// Throws std::invalid_argument when config.jobs == 0 or
  /// config.max_attempts == 0.
  explicit ParallelRunner(ParallelConfig config);

  /// Execute task(i) for every i in [0, count), retrying each failing index
  /// up to config.max_attempts times.  Blocks until every index completed,
  /// failed permanently, or was skipped by cancellation; in-flight work is
  /// always drained.  Without keep_going a permanent failure cancels the
  /// remaining queue and throws — the original exception if it was the only
  /// observed failure, util::CompositeRunError listing all of them otherwise.
  /// With keep_going every index is attempted and failures are returned in
  /// the report instead.
  RunReport run(std::size_t count, const std::function<void(std::size_t)>& task);

 private:
  RunReport run_inline(std::size_t count,
                       const std::function<void(std::size_t)>& task);

  ParallelConfig config_;
};

/// Map [0, count) through `fn` on a pool configured by `config`, collecting
/// the results by replication index.  `Result` must be default-constructible
/// and movable.  This is the entry point every experiment sweep uses.
///
/// When `report` is non-null the run's RunReport is stored there; with
/// keep_going the slots of failed indices keep their default-constructed
/// value and `report->failures` says which ones — callers must exclude them
/// from aggregation.  keep_going without a report is a logic error (the
/// caller could not tell garbage from data) and throws.
template <typename Result, typename Fn>
[[nodiscard]] std::vector<Result> parallel_map(std::size_t count,
                                               const ParallelConfig& config,
                                               Fn&& fn,
                                               RunReport* report = nullptr) {
  if (config.keep_going && report == nullptr)
    throw std::logic_error(
        "parallel_map: keep_going requires a RunReport out-param so failed "
        "slots can be excluded from aggregation");
  std::vector<Result> results(count);
  ParallelRunner runner(config);
  RunReport r = runner.run(count, [&](std::size_t index) { results[index] = fn(index); });
  if (report != nullptr) *report = std::move(r);
  return results;
}

/// A ProgressFn that logs "<label>: <done>/<total> replications (<rate>/s)"
/// at INFO level — the default observer for long sweeps.
[[nodiscard]] ProgressFn log_progress(std::string label);

/// `config` with progress defaulted to log_progress(label) every `every`
/// completions when the caller installed no callback of their own.
[[nodiscard]] ParallelConfig with_default_progress(ParallelConfig config,
                                                   std::string label,
                                                   std::size_t every);

}  // namespace eadvfs::exp
