#pragma once

/// \file parallel_runner.hpp
/// Deterministic parallel execution of independent experiment replications.
///
/// Every sweep in this harness maps a replication index range [0, count)
/// through a pure-ish task (each replication owns its RNG, task set, energy
/// source realization and engine — see setup.hpp) and aggregates the results.
/// The runner executes that map on a fixed-size worker pool and hands results
/// back *by replication index*, so callers aggregate in index order and the
/// output is byte-identical for any thread count or OS scheduling.  With
/// `jobs == 1` the map runs inline on the calling thread — exactly the
/// pre-parallelism sequential behavior.
///
/// Contract for tasks submitted here:
///   * a task for index i may read shared *immutable* state (configs,
///     frequency tables) but must create everything mutable — RNG, task set,
///     source, predictor, engine, observers — from the replication's sub-seed;
///   * tasks must not touch each other's results;
///   * the first failing replication's exception (lowest index among observed
///     failures) is rethrown on the calling thread after the pool drains.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace eadvfs::exp {

/// Snapshot passed to the progress callback (serialized: never concurrent).
struct ParallelProgress {
  std::size_t completed = 0;  ///< replications finished so far.
  std::size_t total = 0;      ///< replications in this run.
  double elapsed_sec = 0.0;   ///< wall-clock since run() started.
  double rate_per_sec = 0.0;  ///< completed / elapsed (0 until measurable).
};

using ProgressFn = std::function<void(const ParallelProgress&)>;

/// Worker-pool configuration carried by every experiment config.
struct ParallelConfig {
  /// Worker threads; must be >= 1.  1 (the default) runs inline on the
  /// calling thread.  Use hardware_jobs() for the machine's parallelism.
  std::size_t jobs = 1;
  /// Invoke `progress` every this many completed replications (and once at
  /// the end).  0 disables progress reporting.
  std::size_t progress_every = 0;
  /// Progress callback; invoked under the pool lock, so it needs no
  /// synchronization of its own but should be quick.
  ProgressFn progress;
};

/// The machine's available parallelism: hardware_concurrency(), never 0.
[[nodiscard]] std::size_t hardware_jobs();

/// Validate a user-supplied `--jobs` value: throws std::invalid_argument for
/// zero or negative values, returns the value as std::size_t otherwise.
[[nodiscard]] std::size_t parse_jobs(long long requested);

/// Fixed-size worker pool (std::thread workers draining a mutex/condvar work
/// queue of replication indices).  The pool lives for one run() call; the
/// experiment harness creates one per sweep.
class ParallelRunner {
 public:
  /// Throws std::invalid_argument when config.jobs == 0.
  explicit ParallelRunner(ParallelConfig config);

  /// Execute task(i) for every i in [0, count).  Blocks until all indices
  /// completed or a task threw; in the latter case remaining queued indices
  /// are abandoned and the lowest-index observed exception is rethrown.
  void run(std::size_t count, const std::function<void(std::size_t)>& task);

 private:
  void run_inline(std::size_t count,
                  const std::function<void(std::size_t)>& task);

  ParallelConfig config_;
};

/// Map [0, count) through `fn` on a pool configured by `config`, collecting
/// the results by replication index.  `Result` must be default-constructible
/// and movable.  This is the entry point every experiment sweep uses.
template <typename Result, typename Fn>
[[nodiscard]] std::vector<Result> parallel_map(std::size_t count,
                                               const ParallelConfig& config,
                                               Fn&& fn) {
  std::vector<Result> results(count);
  ParallelRunner runner(config);
  runner.run(count, [&](std::size_t index) { results[index] = fn(index); });
  return results;
}

/// A ProgressFn that logs "<label>: <done>/<total> replications (<rate>/s)"
/// at INFO level — the default observer for long sweeps.
[[nodiscard]] ProgressFn log_progress(std::string label);

/// `config` with progress defaulted to log_progress(label) every `every`
/// completions when the caller installed no callback of their own.
[[nodiscard]] ParallelConfig with_default_progress(ParallelConfig config,
                                                   std::string label,
                                                   std::size_t every);

}  // namespace eadvfs::exp
