#pragma once

/// \file checkpoint.hpp
/// Crash-safe execution layer for experiment sweeps: a versioned run
/// manifest plus an append-only, fsync'd per-replication result journal, and
/// `checkpointed_map()` — the resumable counterpart of `parallel_map()`.
///
/// A checkpointed sweep writes two files into its checkpoint directory:
///
///   manifest.txt — who this run is (experiment id, canonical config string
///     and its fingerprint, master seed, replication count, build ref) and
///     how it ended (`status`, plus `failed` indices under --keep-going).
///     Rewritten atomically (util::write_file_atomic).
///
///   journal.txt — one line per finished replication: the index, the attempt
///     count, and the result values serialized as IEEE-754 bit patterns (so
///     they reload *exactly*, not to 17 digits).  Appended with a single
///     write(2) + fsync per record, so every journaled replication survives
///     SIGKILL; a torn tail line is detected and ignored on load.
///
/// Resume contract: relaunching the same configuration against the same
/// directory verifies the manifest (any mismatch throws
/// util::ManifestMismatchError — resuming a different experiment would
/// silently mix data), atomically rotates the journal down to its valid
/// records, re-runs only the missing indices, and hands back all rows in
/// replication-index order.  Because every replication is a pure function of
/// its sub-seed and aggregation replays rows in index order, the final CSV
/// is byte-identical to an uninterrupted run, at any `--jobs`, across any
/// number of crash/resume cycles.  See docs/EXPERIMENTS.md §"Crash safety".

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "exp/parallel_runner.hpp"
#include "util/atomic_file.hpp"

namespace eadvfs::exp {

/// Where (and whether) a sweep checkpoints.
struct CheckpointConfig {
  /// Checkpoint directory; empty disables checkpointing entirely.
  std::string dir;
  /// --resume semantics: require an existing manifest (throws
  /// std::runtime_error when the directory holds none) instead of starting a
  /// fresh run.
  bool require_existing = false;
  /// Crash-injection test hook: raise SIGKILL immediately after this many
  /// journal appends (0 disables).  Exercises the mid-run-kill path in the
  /// crash/resume determinism tests without racing a timer.
  std::size_t crash_after_appends = 0;

  [[nodiscard]] bool enabled() const { return !dir.empty(); }
};

/// Identity of a run, recorded in (and verified against) the manifest.
struct ManifestInfo {
  std::string experiment;      ///< e.g. "fig8" — one id per sweep kind.
  /// Canonical single-line description of every determinism-relevant config
  /// field (seed, axes, predictor, fault profile, ...).  Its FNV-1a hash is
  /// the manifest fingerprint; `jobs` must NOT be part of it (the contract
  /// is that --jobs never changes results).
  std::string config;
  std::uint64_t seed = 0;      ///< master seed (also in `config`; split out
                               ///< for the human reading the manifest).
  std::size_t replications = 0;
  std::size_t jobs = 1;        ///< informational only — never verified.
};

/// FNV-1a 64-bit hash of the canonical config string.
[[nodiscard]] std::uint64_t fingerprint(const std::string& canonical);

/// One journaled replication result.
struct JournalEntry {
  std::size_t attempts = 1;
  std::vector<double> values;
};

/// Open (or create) a checkpoint directory: manifest verification, journal
/// loading/rotation, and durable per-replication appends.  Thread-safe for
/// concurrent append() calls from pool workers.
class CheckpointSession {
 public:
  /// Creates the directory and a fresh manifest when none exists (unless
  /// config.require_existing); verifies an existing manifest against `info`
  /// (throwing util::ManifestMismatchError on any difference) and loads +
  /// rotates the journal otherwise.
  CheckpointSession(CheckpointConfig config, ManifestInfo info);

  /// Replications already journaled by previous processes, keyed by index.
  [[nodiscard]] const std::map<std::size_t, JournalEntry>& completed() const {
    return completed_;
  }

  /// Durably journal one finished replication (single write + fsync).
  void append(std::size_t index, std::size_t attempts,
              const std::vector<double>& values);

  /// Journal a permanent failure (diagnostic; failed indices are re-run on
  /// the next resume).
  void append_failure(std::size_t index, std::size_t attempts,
                      const std::string& message);

  /// Rewrite the manifest with the run's final status: "complete" for a
  /// clean report, "partial" (plus the failed index list) under keep-going
  /// failures, "interrupted" after a drained cancellation.
  void finalize(const RunReport& report);

  [[nodiscard]] const std::string& dir() const { return config_.dir; }

  [[nodiscard]] static std::string manifest_path(const std::string& dir);
  [[nodiscard]] static std::string journal_path(const std::string& dir);

 private:
  void write_manifest(const std::string& status,
                      const std::vector<std::size_t>& failed);
  void load_and_rotate_journal();
  void maybe_crash_after_append();

  CheckpointConfig config_;
  ManifestInfo info_;
  std::map<std::size_t, JournalEntry> completed_;
  util::AppendFile journal_;
  std::mutex mutex_;
  std::size_t appends_ = 0;
};

/// Result of a checkpointed (or plain, when checkpointing is disabled) map:
/// one row of doubles per replication index.  `rows[i].empty()` means index
/// i did not complete (permanent failure under keep-going, or skipped by an
/// interrupt) — `report.failures` / `report.interrupted` say which.
struct CheckpointedMapOutcome {
  std::vector<std::vector<double>> rows;
  RunReport report;        ///< failures/retries/interruption, in *replication*
                           ///< index terms; completed counts resumed rows too.
  std::size_t resumed = 0; ///< rows loaded from the journal instead of re-run.
};

/// The resumable parallel map every checkpoint-aware sweep uses: loads
/// already-journaled rows, runs only the missing indices through
/// ParallelRunner (journaling each as it completes), finalizes the manifest,
/// and returns all rows in index order.  With `checkpoint.enabled()` false
/// this degrades to exactly parallel_map semantics (plus the RunReport).
[[nodiscard]] CheckpointedMapOutcome checkpointed_map(
    std::size_t count, const ParallelConfig& parallel,
    const CheckpointConfig& checkpoint, const ManifestInfo& info,
    const std::function<std::vector<double>(std::size_t)>& fn);

}  // namespace eadvfs::exp
