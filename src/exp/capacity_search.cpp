#include "exp/capacity_search.hpp"

#include <stdexcept>

#include "exp/parallel_runner.hpp"
#include "exp/setup.hpp"
#include "sched/factory.hpp"
#include "util/rng.hpp"

namespace eadvfs::exp {

double CapacitySearchResult::ratio_of_means() const {
  if (cmin.size() < 2 || cmin[0].empty() || cmin[1].empty()) return 0.0;
  return cmin[0].mean() / cmin[1].mean();
}

namespace {

/// True when the workload meets every deadline at this capacity.
bool zero_miss(const CapacitySearchConfig& config, sim::Scheduler& scheduler,
               const task::TaskSet& task_set,
               const std::shared_ptr<const energy::EnergySource>& source,
               const proc::FrequencyTable& table, double capacity) {
  const sim::SimulationResult run = run_once(
      config.sim, source, capacity, table, scheduler, config.predictor, task_set);
  return run.jobs_missed == 0;
}

}  // namespace

double find_min_capacity(const CapacitySearchConfig& config,
                         const std::string& scheduler_name,
                         const task::TaskSet& task_set,
                         const std::shared_ptr<const energy::EnergySource>& source) {
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  const auto scheduler = sched::make_scheduler(scheduler_name);

  if (!zero_miss(config, *scheduler, task_set, source, table, config.capacity_hi))
    return -1.0;
  if (zero_miss(config, *scheduler, task_set, source, table, config.capacity_lo))
    return config.capacity_lo;

  double lo = config.capacity_lo;  // misses here
  double hi = config.capacity_hi;  // zero-miss here
  while (hi - lo > config.rel_tolerance * hi) {
    const double mid = 0.5 * (lo + hi);
    if (zero_miss(config, *scheduler, task_set, source, table, mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

CapacitySearchResult run_capacity_search(const CapacitySearchConfig& config) {
  if (config.schedulers.empty())
    throw std::invalid_argument("run_capacity_search: no schedulers");
  if (config.capacity_lo <= 0.0 || config.capacity_hi <= config.capacity_lo)
    throw std::invalid_argument("run_capacity_search: bad capacity bracket");

  CapacitySearchResult result;
  result.config = config;
  result.cmin.resize(config.schedulers.size());

  const auto seeds = derive_seeds(config.seed, config.n_task_sets);

  // One replication = one task set binary-searched for every scheduler.
  // Records are folded in replication order so the statistics (and the
  // evaluated/skipped counts) match the sequential run exactly.
  struct RepRecord {
    bool all_feasible = false;
    std::vector<double> cmins;
  };

  const auto records = parallel_map<RepRecord>(
      config.n_task_sets,
      with_default_progress(config.parallel, "capacity search", 20),
      [&](std::size_t rep) {
        util::Xoshiro256ss rng(seeds[rep]);
        const task::TaskSetGenerator generator(config.generator);
        const task::TaskSet task_set = generator.generate(rng);

        energy::SolarSourceConfig solar = config.solar;
        solar.seed = seeds[rep] ^ 0x5eed5eed5eed5eedULL;
        solar.horizon = std::max(solar.horizon, config.sim.horizon);
        const auto source = std::make_shared<const energy::SolarSource>(solar);

        RepRecord record;
        record.all_feasible = true;
        record.cmins.reserve(config.schedulers.size());
        for (const auto& name : config.schedulers) {
          const double cmin = find_min_capacity(config, name, task_set, source);
          if (cmin < 0.0) {
            record.all_feasible = false;
            break;
          }
          record.cmins.push_back(cmin);
        }
        return record;
      },
      &result.report);

  for (const RepRecord& record : records) {
    if (!record.all_feasible) {
      ++result.sets_skipped;
      continue;
    }
    ++result.sets_evaluated;
    for (std::size_t s = 0; s < record.cmins.size(); ++s)
      result.cmin[s].add(record.cmins[s]);
    if (record.cmins.size() >= 2 && record.cmins[1] > 0.0)
      result.ratio_first_over_second.add(record.cmins[0] / record.cmins[1]);
  }
  return result;
}

}  // namespace eadvfs::exp
