#pragma once

/// \file capacity_search.hpp
/// The experiment behind paper Table 1: the minimum storage capacity C_min
/// that achieves a zero deadline-miss rate over the simulated horizon, per
/// scheduler, and the ratio C_min,LSA / C_min,EA-DVFS as utilization varies.
/// Task-set replications (each a full binary search per scheduler) run on
/// the worker pool configured by `CapacitySearchConfig::parallel`.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "energy/solar_source.hpp"
#include "exp/parallel_runner.hpp"
#include "sim/config.hpp"
#include "task/generator.hpp"
#include "util/stats.hpp"

namespace eadvfs::exp {

struct CapacitySearchConfig {
  std::vector<std::string> schedulers = {"lsa", "ea-dvfs"};
  std::string predictor = "slotted-ewma";
  std::size_t n_task_sets = 100;
  std::uint64_t seed = 42;
  double capacity_lo = 1.0;       ///< search bracket lower edge.
  double capacity_hi = 50'000.0;  ///< upper edge; sets failing here are skipped.
  double rel_tolerance = 0.01;    ///< binary-search convergence (relative).
  task::GeneratorConfig generator;
  sim::SimulationConfig sim;
  energy::SolarSourceConfig solar;
  ParallelConfig parallel;        ///< replication worker pool.
};

struct CapacitySearchResult {
  CapacitySearchConfig config;
  /// Per-scheduler C_min statistics over the task sets that were feasible
  /// (zero-miss achievable within the bracket) for *all* schedulers.
  std::vector<util::RunningStats> cmin;      ///< parallel to config.schedulers.
  /// Statistics of the per-task-set ratio cmin[0] / cmin[1] (only defined
  /// when exactly two schedulers are compared, which is the paper's setup;
  /// empty otherwise).
  util::RunningStats ratio_first_over_second;
  std::size_t sets_evaluated = 0;
  std::size_t sets_skipped = 0;  ///< zero-miss unreachable within bracket.
  RunReport report;  ///< supervision outcome (retries; see parallel_runner.hpp).

  /// Ratio of mean C_mins (headline number, more robust than mean ratio).
  [[nodiscard]] double ratio_of_means() const;
};

/// Binary-search C_min for one prepared workload.  Returns a negative value
/// when even `capacity_hi` cannot reach zero misses.
[[nodiscard]] double find_min_capacity(
    const CapacitySearchConfig& config, const std::string& scheduler_name,
    const task::TaskSet& task_set,
    const std::shared_ptr<const energy::EnergySource>& source);

[[nodiscard]] CapacitySearchResult run_capacity_search(
    const CapacitySearchConfig& config);

}  // namespace eadvfs::exp
