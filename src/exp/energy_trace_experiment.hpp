#pragma once

/// \file energy_trace_experiment.hpp
/// The experiment behind paper Figures 6/7: the normalized remaining energy
/// E_C(t)/C over time, averaged with equal weight over the capacity set
/// {200, ..., 5000} and over many random task sets (paper §5.2).
/// Replications run on the worker pool configured by
/// `EnergyTraceConfig::parallel`; the averaged curves are identical for any
/// job count.

#include <cstdint>
#include <string>
#include <vector>

#include "energy/solar_source.hpp"
#include "exp/parallel_runner.hpp"
#include "sim/config.hpp"
#include "task/generator.hpp"
#include "util/stats.hpp"

namespace eadvfs::exp {

struct EnergyTraceConfig {
  std::vector<double> capacities = {200, 300, 500, 1000, 2000, 3000, 5000};
  std::vector<std::string> schedulers = {"lsa", "ea-dvfs"};
  std::string predictor = "slotted-ewma";
  std::size_t n_task_sets = 50;
  std::uint64_t seed = 42;
  Time sample_interval = 100.0;  ///< grid step of the averaged curve.
  task::GeneratorConfig generator;
  sim::SimulationConfig sim;
  energy::SolarSourceConfig solar;
  ParallelConfig parallel;  ///< replication worker pool.
  /// Observability artifacts (empty = off): after the averaged curves are
  /// folded, replication 0 is re-simulated per (scheduler, capacity) cell
  /// with metrics/decision-trace observers attached and the requested files
  /// written (same trace-replication scheme as MissRateSweepConfig).
  std::string metrics_out;
  std::string decisions_out;
};

struct EnergyTraceCurve {
  std::string scheduler;
  std::vector<Time> times;
  /// Mean over (task sets × capacities) of E_C(t)/C at each grid instant.
  std::vector<double> mean_normalized_level;
  /// 95% CI half-width at each grid instant.
  std::vector<double> ci95;
};

struct EnergyTraceResult {
  EnergyTraceConfig config;
  std::vector<EnergyTraceCurve> curves;  ///< one per scheduler.
  RunReport report;  ///< supervision outcome (retries; see parallel_runner.hpp).
  /// Wall-clock phase summary for the console; never part of any
  /// deterministic artifact.
  std::string wall_clock;

  [[nodiscard]] const EnergyTraceCurve& curve(const std::string& scheduler) const;
};

[[nodiscard]] EnergyTraceResult run_energy_trace(const EnergyTraceConfig& config);

}  // namespace eadvfs::exp
