#include "exp/fleet/runner.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "energy/solar_source.hpp"
#include "exp/setup.hpp"
#include "obs/perf.hpp"
#include "sim/fault/profile.hpp"
#include "task/generator.hpp"
#include "util/rng.hpp"

namespace eadvfs::exp::fleet {

namespace {

/// Doubles per RunningStats in a journal/artifact row: n, mean, M2, min, max
/// — the accumulator's full state (RunningStats::from_moments).
constexpr std::size_t kStatsWidth = 5;
constexpr std::size_t kMetricCount = 6;
constexpr const char* kMetricNames[kMetricCount] = {
    "miss_rate", "stall_time",        "busy_time",
    "harvested", "consumed",          "frequency_switches"};

void push_stats(std::vector<double>& row, const util::RunningStats& stats) {
  row.push_back(static_cast<double>(stats.count()));
  row.push_back(stats.mean());
  row.push_back(stats.sum_squared_deviations());
  row.push_back(stats.min());
  row.push_back(stats.max());
}

util::RunningStats read_stats(const double* p) {
  return util::RunningStats::from_moments(static_cast<std::size_t>(p[0]), p[1],
                                          p[2], p[3], p[4]);
}

util::RunningStats* metric_slot(FleetMetrics& metrics, std::size_t index) {
  // Must match kMetricNames order — the journal row and the artifact columns
  // are both laid out by this mapping.
  switch (index) {
    case 0: return &metrics.miss_rate;
    case 1: return &metrics.stall_time;
    case 2: return &metrics.busy_time;
    case 3: return &metrics.harvested;
    case 4: return &metrics.consumed;
    case 5: return &metrics.frequency_switches;
    default: return nullptr;
  }
}

sim::DepletionPolicy depletion_policy(const FleetSpec& spec) {
  return spec.depletion == "abort" ? sim::DepletionPolicy::kAbortAndCharge
                                   : sim::DepletionPolicy::kSuspendAndResume;
}

}  // namespace

std::size_t fleet_row_width(const FleetSpec& spec) {
  return 1 + kMetricCount * kStatsWidth + 3 + spec.hist_bins;
}

std::vector<std::string> fleet_columns(const FleetSpec& spec) {
  std::vector<std::string> names;
  names.reserve(fleet_row_width(spec));
  names.emplace_back("devices");
  for (const char* metric : kMetricNames) {
    const std::string base(metric);
    names.push_back(base + ".n");
    names.push_back(base + ".mean");
    names.push_back(base + ".m2");
    names.push_back(base + ".min");
    names.push_back(base + ".max");
  }
  names.emplace_back("hist.underflow");
  names.emplace_back("hist.overflow");
  names.emplace_back("hist.nan");
  for (std::size_t b = 0; b < spec.hist_bins; ++b)
    names.push_back("hist.bin" + std::to_string(b));
  return names;
}

FleetResult run_fleet(const FleetConfig& config) {
  const FleetSpec& spec = config.spec;
  spec.validate();

  FleetResult result;
  result.spec = spec;
  result.miss_rate_hist = util::Histogram(0.0, 1.0, spec.hist_bins);

  const std::size_t shards = spec.shards();
  const std::size_t row_width = fleet_row_width(spec);

  // Sub-seeds are indexed by *global* device id, so every device's sampled
  // configuration and simulation are independent of shard_size and --jobs.
  const std::vector<std::uint64_t> seeds = derive_seeds(spec.seed, spec.devices);

  // Parse fault profiles once; per-device copies only reseed.
  std::vector<sim::fault::FaultProfile> profiles;
  profiles.reserve(spec.fault_profiles.size());
  for (const std::string& text : spec.fault_profiles)
    profiles.push_back(sim::fault::FaultProfile::parse(text));

  ManifestInfo manifest;
  manifest.experiment = config.experiment_id;
  manifest.config = spec.canonical_description();
  manifest.seed = spec.seed;
  manifest.replications = shards;
  manifest.jobs = config.parallel.jobs;

  obs::PhaseTimers timers;
  timers.start("simulate");
  const CheckpointedMapOutcome outcome = checkpointed_map(
      shards, with_default_progress(config.parallel, "fleet", 1),
      config.checkpoint, manifest, [&](std::size_t shard) {
        FleetMetrics stats;
        util::Histogram hist(0.0, 1.0, spec.hist_bins);

        const std::size_t first = spec.shard_begin(shard);
        const std::size_t last = spec.shard_end(shard);
        for (std::size_t device = first; device < last; ++device) {
          util::Xoshiro256ss rng(seeds[device]);
          const DeviceSample sample = sample_device(spec, rng);

          task::GeneratorConfig generator_config;
          generator_config.n_tasks = sample.n_tasks;
          generator_config.target_utilization = sample.utilization;
          // The generator's harvest-aware draw must see the *scaled* panel.
          generator_config.mean_harvest_power =
              energy::SolarSource::analytic_mean_power(10.0 *
                                                       sample.panel_scale);
          const task::TaskSetGenerator generator(generator_config);
          const task::TaskSet task_set = generator.generate(rng);

          energy::SolarSourceConfig solar;
          solar.amplitude = 10.0 * sample.panel_scale;
          solar.horizon = spec.horizon;  // no point presampling past the run
          solar.seed = seeds[device] ^ 0x5eed5eed5eed5eedULL;

          sim::fault::FaultProfile fault;
          if (sample.fault != DeviceSample::kNoFault) {
            fault = profiles[sample.fault];
            if (!fault.seed_provided)
              fault.seed = seeds[device] ^ 0xfa017fa017fa017fULL;
          }

          RunOptions run;
          run.config.horizon = spec.horizon;
          run.config.depletion_policy = depletion_policy(spec);
          run.source = std::make_shared<const energy::SolarSource>(solar);
          run.tasks = &task_set;
          run.storage.capacity = sample.capacity;
          run.scheduler = spec.schedulers[sample.scheduler];
          run.predictor = spec.predictors[sample.predictor];
          run.execution.seed = seeds[device] ^ 0xac7ac7ac7ULL;
          run.fault = fault.any() ? &fault : nullptr;
          run.per_task_metrics = false;
          const sim::SimulationResult sim = run_with_options(run);

          stats.miss_rate.add(sim.miss_rate());
          stats.stall_time.add(sim.stall_time);
          stats.busy_time.add(sim.busy_time);
          stats.harvested.add(sim.harvested);
          stats.consumed.add(sim.consumed);
          stats.frequency_switches.add(
              static_cast<double>(sim.frequency_switches));
          hist.add(sim.miss_rate());
        }

        std::vector<double> row;
        row.reserve(row_width);
        row.push_back(static_cast<double>(last - first));
        push_stats(row, stats.miss_rate);
        push_stats(row, stats.stall_time);
        push_stats(row, stats.busy_time);
        push_stats(row, stats.harvested);
        push_stats(row, stats.consumed);
        push_stats(row, stats.frequency_switches);
        row.push_back(static_cast<double>(hist.underflow()));
        row.push_back(static_cast<double>(hist.overflow()));
        row.push_back(static_cast<double>(hist.nan()));
        for (std::size_t b = 0; b < hist.bins(); ++b)
          row.push_back(static_cast<double>(hist.count(b)));
        return row;
      });

  // Fold journal rows in shard order — merge order is part of the
  // byte-determinism contract, exactly like the sweeps' aggregation.
  timers.start("aggregate");
  bool all_rows = true;
  for (std::size_t shard = 0; shard < outcome.rows.size(); ++shard) {
    const std::vector<double>& row = outcome.rows[shard];
    if (row.empty()) {  // failed or interrupt-skipped shard
      all_rows = false;
      continue;
    }
    if (row.size() != row_width)
      throw std::runtime_error(
          "fleet: journaled row width mismatch (checkpoint from a different "
          "configuration?)");
    result.devices_simulated += static_cast<std::size_t>(row[0]);
    const double* cursor = row.data() + 1;
    for (std::size_t m = 0; m < kMetricCount; ++m, cursor += kStatsWidth)
      metric_slot(result.metrics, m)->merge(read_stats(cursor));
    const auto underflow = static_cast<std::size_t>(cursor[0]);
    const auto overflow = static_cast<std::size_t>(cursor[1]);
    const auto nan = static_cast<std::size_t>(cursor[2]);
    std::vector<std::size_t> counts(spec.hist_bins);
    for (std::size_t b = 0; b < spec.hist_bins; ++b)
      counts[b] = static_cast<std::size_t>(cursor[3 + b]);
    result.miss_rate_hist.merge(util::Histogram::from_parts(
        0.0, 1.0, counts, underflow, overflow, nan));
  }
  result.report = outcome.report;
  result.resumed = outcome.resumed;
  result.complete = all_rows && !outcome.report.interrupted;

  if (result.complete) {
    // The artifact grid is the journal rows transposed: column-major, one
    // value per (column, shard).
    result.artifact.spec = manifest.config;
    result.artifact.fingerprint = fingerprint(manifest.config);
    result.artifact.devices = spec.devices;
    result.artifact.shards = shards;
    result.artifact.hist_lo = 0.0;
    result.artifact.hist_hi = 1.0;
    result.artifact.hist_bins = spec.hist_bins;
    result.artifact.columns = fleet_columns(spec);
    result.artifact.data.assign(row_width, std::vector<double>(shards, 0.0));
    for (std::size_t shard = 0; shard < shards; ++shard)
      for (std::size_t c = 0; c < row_width; ++c)
        result.artifact.data[c][shard] = outcome.rows[shard][c];
  }
  timers.stop();
  result.wall_clock = timers.summary();
  return result;
}

}  // namespace eadvfs::exp::fleet
