#pragma once

/// \file runner.hpp
/// The fleet Monte Carlo runner: simulate a heterogeneous population of
/// 10^5–10^6 device-instances as one batched, sharded, crash-safe job
/// (ROADMAP item 2).
///
/// Execution model
/// ---------------
/// The unit of parallel work is a *shard* of `spec.shard_size` devices — one
/// checkpointed replication in exp::checkpointed_map terms.  Each device in a
/// shard gets its own sub-seed from derive_seeds(spec.seed, spec.devices)
/// (indexed by *global* device id, so the population is independent of how it
/// is sharded), samples its configuration via fleet::sample_device, and runs
/// one simulation through the same RunOptions/run_with_options path the CLI
/// and sweeps use.  The shard folds its devices into six streaming
/// util::RunningStats accumulators plus a miss-rate util::Histogram and
/// journals one row of plain doubles — moments and counters, never
/// per-device samples — so memory stays O(shards), not O(devices).
///
/// Aggregation replays journal rows in shard order, rebuilding each shard's
/// accumulators (RunningStats::from_moments, Histogram::from_parts) and
/// merging them left-to-right.  Every double crosses the journal as an
/// IEEE-754 bit pattern, so the merged population statistics and the
/// eadvfs.fleet.v1 artifact are byte-identical for any `--jobs` and across
/// any SIGKILL/resume split — the same determinism contract the sweeps
/// honor, now at fleet scale.

#include <cstddef>
#include <string>

#include "exp/checkpoint.hpp"
#include "exp/fleet/artifact.hpp"
#include "exp/fleet/spec.hpp"
#include "exp/parallel_runner.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace eadvfs::exp::fleet {

struct FleetConfig {
  FleetSpec spec;
  ParallelConfig parallel;
  CheckpointConfig checkpoint;
  /// Manifest experiment id (one id per sweep kind).
  std::string experiment_id = "fleet";
};

/// The six per-device metrics the fleet aggregates, in journal/artifact
/// column order.
struct FleetMetrics {
  util::RunningStats miss_rate;
  util::RunningStats stall_time;
  util::RunningStats busy_time;
  util::RunningStats harvested;
  util::RunningStats consumed;
  util::RunningStats frequency_switches;
};

struct FleetResult {
  FleetSpec spec;
  /// Population statistics merged across all shards (shard-index order).
  FleetMetrics metrics;
  /// Population miss-rate distribution over [0, 1); a device that missed
  /// every resolved deadline (rate exactly 1.0) lands in overflow.
  util::Histogram miss_rate_hist{0.0, 1.0, 1};
  /// Devices actually simulated (== spec.devices when complete).
  std::size_t devices_simulated = 0;
  /// All shards finished; false after an interrupt or keep-going failures,
  /// in which case `artifact` is not populated (a partial artifact would
  /// violate the byte-identical contract).
  bool complete = false;
  /// The columnar result (one row per shard); populated only when complete.
  FleetArtifact artifact;
  RunReport report;
  std::size_t resumed = 0;  ///< shards loaded from the journal.
  std::string wall_clock;   ///< obs::PhaseTimers summary.
};

/// Number of doubles in one shard's journal/artifact row for this spec.
[[nodiscard]] std::size_t fleet_row_width(const FleetSpec& spec);

/// Ordered artifact column names for this spec (matches fleet_row_width).
[[nodiscard]] std::vector<std::string> fleet_columns(const FleetSpec& spec);

/// Run the fleet.  Throws std::invalid_argument on an invalid spec,
/// util::ManifestMismatchError when resuming against a different
/// configuration.  Interrupts and keep-going failures are reported through
/// `result.report`, mirroring the sweeps.
[[nodiscard]] FleetResult run_fleet(const FleetConfig& config);

}  // namespace eadvfs::exp::fleet
