#include "exp/fleet/spec.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exp/setup.hpp"
#include "sched/factory.hpp"
#include "util/json.hpp"
#include "util/suggest.hpp"

namespace eadvfs::exp::fleet {

namespace {

[[noreturn]] void spec_error(const std::string& message) {
  throw std::invalid_argument("fleet spec: " + message);
}

void require_finite_range(const RealRange& range, const char* key) {
  if (!std::isfinite(range.lo) || !std::isfinite(range.hi))
    spec_error(std::string(key) + " must be finite");
  if (range.lo > range.hi)
    spec_error(std::string(key) + " range is inverted (lo > hi)");
}

bool is_known_predictor(const std::string& name) {
  if (name.rfind("constant:", 0) == 0) {
    // make_predictor parses the payload; pre-validate so a typo'd constant
    // dies at spec load, not a million devices into the run.
    try {
      const double value = std::stod(name.substr(9));
      return std::isfinite(value) && value >= 0.0;
    } catch (const std::exception&) {
      return false;
    }
  }
  const std::vector<std::string> names = predictor_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace

std::size_t FleetSpec::shards() const {
  return (devices + shard_size - 1) / shard_size;
}

std::size_t FleetSpec::shard_begin(std::size_t shard) const {
  return shard * shard_size;
}

std::size_t FleetSpec::shard_end(std::size_t shard) const {
  return std::min(devices, (shard + 1) * shard_size);
}

void FleetSpec::validate() const {
  if (name.empty()) spec_error("name must not be empty");
  if (devices == 0) spec_error("devices must be >= 1");
  if (shard_size == 0) spec_error("shard_size must be >= 1");
  if (!(horizon > 0.0) || !std::isfinite(horizon))
    spec_error("horizon must be positive and finite");
  if (schedulers.empty()) spec_error("schedulers must not be empty");
  const std::vector<std::string> known_schedulers = sched::scheduler_names();
  for (const std::string& s : schedulers) {
    if (std::find(known_schedulers.begin(), known_schedulers.end(), s) ==
        known_schedulers.end()) {
      const std::string hint = util::closest_match(s, known_schedulers);
      spec_error("unknown scheduler '" + s + "'" +
                 (hint.empty() ? "" : " (did you mean '" + hint + "'?)"));
    }
  }
  if (predictors.empty()) spec_error("predictors must not be empty");
  for (const std::string& p : predictors) {
    if (!is_known_predictor(p)) {
      const std::string hint = util::closest_match(p, predictor_names());
      spec_error("unknown predictor '" + p + "'" +
                 (hint.empty() ? "" : " (did you mean '" + hint + "'?)"));
    }
  }
  if (tasks.lo == 0) spec_error("tasks range must start at >= 1");
  if (tasks.lo > tasks.hi) spec_error("tasks range is inverted (lo > hi)");
  require_finite_range(utilization, "utilization");
  if (!(utilization.lo > 0.0) || !(utilization.hi < 1.0))
    spec_error("utilization range must lie inside (0, 1)");
  require_finite_range(capacity, "capacity");
  if (!(capacity.lo > 0.0)) spec_error("capacity range must be positive");
  require_finite_range(panel_scale, "panel_scale");
  if (!(panel_scale.lo > 0.0)) spec_error("panel_scale range must be positive");
  if (std::isnan(fault_fraction) || fault_fraction < 0.0 || fault_fraction > 1.0)
    spec_error("fault_fraction must lie in [0, 1]");
  if (fault_fraction > 0.0 && fault_profiles.empty())
    spec_error("fault_fraction > 0 requires a non-empty fault_profiles list");
  for (const std::string& profile : fault_profiles) {
    try {
      (void)sim::fault::FaultProfile::parse(profile);
    } catch (const std::exception& error) {
      spec_error("fault profile '" + profile + "': " + error.what());
    }
  }
  if (depletion != "suspend" && depletion != "abort")
    spec_error("depletion must be 'suspend' or 'abort', got '" + depletion + "'");
  if (hist_bins == 0) spec_error("hist_bins must be >= 1");
}

std::string FleetSpec::canonical_description() const {
  std::ostringstream out;
  out.precision(17);
  out << "fleet;name=" << name << ";devices=" << devices
      << ";shard=" << shard_size << ";seed=" << seed << ";horizon=" << horizon;
  out << ";scheds=";
  for (std::size_t i = 0; i < schedulers.size(); ++i)
    out << (i ? "," : "") << schedulers[i];
  out << ";preds=";
  for (std::size_t i = 0; i < predictors.size(); ++i)
    out << (i ? "," : "") << predictors[i];
  out << ";tasks=" << tasks.lo << "-" << tasks.hi;
  out << ";u=" << utilization.lo << "," << utilization.hi;
  out << ";cap=" << capacity.lo << "," << capacity.hi;
  out << ";panel=" << panel_scale.lo << "," << panel_scale.hi;
  out << ";faults=";
  for (std::size_t i = 0; i < fault_profiles.size(); ++i)
    out << (i ? "|" : "") << fault_profiles[i];
  out << ";ffrac=" << fault_fraction;
  out << ";depletion=" << depletion;
  out << ";histbins=" << hist_bins;
  return out.str();
}

namespace {

double number_field(const util::JsonValue& value, const char* key) {
  try {
    return value.as_number();
  } catch (const std::exception& error) {
    spec_error(std::string("key '") + key + "': " + error.what());
  }
}

std::size_t count_field(const util::JsonValue& value, const char* key) {
  const double raw = number_field(value, key);
  if (!(raw >= 0.0) || raw != std::floor(raw) || raw > 9.007199254740992e15)
    spec_error(std::string("key '") + key +
               "' must be a non-negative integer");
  return static_cast<std::size_t>(raw);
}

std::string string_field(const util::JsonValue& value, const char* key) {
  try {
    return value.as_string();
  } catch (const std::exception& error) {
    spec_error(std::string("key '") + key + "': " + error.what());
  }
}

std::vector<std::string> string_list_field(const util::JsonValue& value,
                                           const char* key) {
  std::vector<std::string> out;
  try {
    for (const util::JsonValue& element : value.as_array())
      out.push_back(element.as_string());
  } catch (const std::exception& error) {
    spec_error(std::string("key '") + key + "': " + error.what());
  }
  return out;
}

RealRange real_range_field(const util::JsonValue& value, const char* key) {
  try {
    const auto& elements = value.as_array();
    if (elements.size() != 2)
      spec_error(std::string("key '") + key + "' must be a [lo, hi] pair");
    return RealRange{elements[0].as_number(), elements[1].as_number()};
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception& error) {
    spec_error(std::string("key '") + key + "': " + error.what());
  }
}

IntRange int_range_field(const util::JsonValue& value, const char* key) {
  const RealRange raw = real_range_field(value, key);
  if (raw.lo != std::floor(raw.lo) || raw.hi != std::floor(raw.hi) ||
      raw.lo < 0.0 || raw.hi < 0.0)
    spec_error(std::string("key '") + key +
               "' must be a pair of non-negative integers");
  return IntRange{static_cast<std::size_t>(raw.lo),
                  static_cast<std::size_t>(raw.hi)};
}

}  // namespace

FleetSpec FleetSpec::parse_json(const std::string& text) {
  const util::JsonValue doc = util::json_parse(text);
  if (!doc.is_object())
    spec_error(std::string("top level must be an object, found ") +
               doc.type_name());

  static const std::vector<std::string> known_keys = {
      "name",         "devices",       "shard_size",  "seed",
      "horizon",      "schedulers",    "predictors",  "tasks",
      "utilization",  "capacity",      "panel_scale", "fault_profiles",
      "fault_fraction", "depletion",   "hist_bins"};

  FleetSpec spec;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "name") spec.name = string_field(value, "name");
    else if (key == "devices") spec.devices = count_field(value, "devices");
    else if (key == "shard_size") spec.shard_size = count_field(value, "shard_size");
    else if (key == "seed") spec.seed = count_field(value, "seed");
    else if (key == "horizon") spec.horizon = number_field(value, "horizon");
    else if (key == "schedulers") spec.schedulers = string_list_field(value, "schedulers");
    else if (key == "predictors") spec.predictors = string_list_field(value, "predictors");
    else if (key == "tasks") spec.tasks = int_range_field(value, "tasks");
    else if (key == "utilization") spec.utilization = real_range_field(value, "utilization");
    else if (key == "capacity") spec.capacity = real_range_field(value, "capacity");
    else if (key == "panel_scale") spec.panel_scale = real_range_field(value, "panel_scale");
    else if (key == "fault_profiles") spec.fault_profiles = string_list_field(value, "fault_profiles");
    else if (key == "fault_fraction") spec.fault_fraction = number_field(value, "fault_fraction");
    else if (key == "depletion") spec.depletion = string_field(value, "depletion");
    else if (key == "hist_bins") spec.hist_bins = count_field(value, "hist_bins");
    else {
      const std::string hint = util::closest_match(key, known_keys);
      spec_error("unknown key '" + key + "'" +
                 (hint.empty() ? "" : " (did you mean '" + hint + "'?)"));
    }
  }
  spec.validate();
  return spec;
}

FleetSpec FleetSpec::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("fleet spec: cannot open '" + path +
                             "' for reading");
  std::ostringstream content;
  content << in.rdbuf();
  if (in.bad())
    throw std::runtime_error("fleet spec: I/O error reading '" + path + "'");
  try {
    return parse_json(content.str());
  } catch (const std::invalid_argument& error) {
    throw std::invalid_argument(path + ": " + error.what());
  }
}

DeviceSample sample_device(const FleetSpec& spec, util::Xoshiro256ss& rng) {
  DeviceSample sample;
  // Draw order is fixed (see header): reordering would silently change
  // every device in every existing spec's population.
  sample.scheduler = rng.uniform_int(0, spec.schedulers.size() - 1);
  sample.predictor = rng.uniform_int(0, spec.predictors.size() - 1);
  sample.n_tasks = rng.uniform_int(spec.tasks.lo, spec.tasks.hi);
  sample.utilization = spec.utilization.lo == spec.utilization.hi
                           ? spec.utilization.lo
                           : rng.uniform(spec.utilization.lo, spec.utilization.hi);
  sample.panel_scale = spec.panel_scale.lo == spec.panel_scale.hi
                           ? spec.panel_scale.lo
                           : rng.uniform(spec.panel_scale.lo, spec.panel_scale.hi);
  // Capacities span decades; sample log-uniformly so small and large
  // devices are equally represented.
  sample.capacity =
      spec.capacity.lo == spec.capacity.hi
          ? spec.capacity.lo
          : std::exp(rng.uniform(std::log(spec.capacity.lo),
                                 std::log(spec.capacity.hi)));
  // The fault draw is always consumed, so enabling faults in a spec does
  // not shift any other per-device sample.
  const double fault_roll = rng.uniform01();
  if (!spec.fault_profiles.empty() && fault_roll < spec.fault_fraction)
    sample.fault = rng.uniform_int(0, spec.fault_profiles.size() - 1);
  return sample;
}

}  // namespace eadvfs::exp::fleet
