#pragma once

/// \file artifact.hpp
/// `eadvfs.fleet.v1` — the fleet runner's compact binary columnar result
/// format, plus its lossless CSV export.
///
/// Million-device results stop being CSV-bound: the artifact stores one row
/// per *shard* (streaming aggregation keeps per-device rows out of memory
/// entirely), column-major, with every double serialized as its IEEE-754
/// bit pattern — so the file is byte-identical for any `--jobs` count and
/// across checkpoint resume, and reloads *exactly*.
///
/// Layout (all integers little-endian):
///
///   bytes 0..15   magic "eadvfs.fleet.v1\n"
///   bytes 16..23  u64: length H of the header JSON
///   bytes 24..    H bytes of header JSON — spec description + fingerprint,
///                 device/shard counts, histogram shape, and the ordered
///                 column name list (self-describing: a reader needs no
///                 out-of-band schema)
///   then          per column, in header order: shards × u64 (the column's
///                 doubles as bit patterns)
///
/// The CSV export writes the same grid shard-major with
/// util::format_double (shortest round-trip decimal), so re-importing the
/// CSV reproduces every double bit for bit — lossless, just bigger.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace eadvfs::exp::fleet {

struct FleetArtifact {
  static constexpr char kMagic[] = "eadvfs.fleet.v1\n";  ///< 16 bytes.

  std::string spec;             ///< canonical spec description.
  std::uint64_t fingerprint = 0;  ///< FNV-1a of `spec` (exp::fingerprint).
  std::size_t devices = 0;      ///< device-instances the run covered.
  std::size_t shards = 0;       ///< rows in every column.
  double hist_lo = 0.0;         ///< miss-rate histogram shape, for readers
  double hist_hi = 1.0;         ///< that rebuild util::Histogram.
  std::size_t hist_bins = 0;

  std::vector<std::string> columns;           ///< ordered column names.
  std::vector<std::vector<double>> data;      ///< [column][shard].

  /// Column index by name; throws std::out_of_range naming the column.
  [[nodiscard]] std::size_t column(const std::string& name) const;

  /// Serialize to the binary layout above (deterministic bytes).
  [[nodiscard]] std::string serialize() const;

  /// Atomically write serialize() to `path` (util::write_file_atomic).
  void write(const std::string& path) const;

  /// Parse an artifact; throws std::runtime_error on bad magic, truncation,
  /// or a header/payload size mismatch.
  [[nodiscard]] static FleetArtifact deserialize(const std::string& bytes);
  [[nodiscard]] static FleetArtifact read(const std::string& path);

  /// Lossless CSV: header `shard,<columns...>`, one row per shard, values
  /// via util::format_double.  Written atomically.
  void export_csv(const std::string& path) const;
};

}  // namespace eadvfs::exp::fleet
