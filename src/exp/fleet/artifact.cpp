#include "exp/fleet/artifact.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/format.hpp"
#include "util/json.hpp"

namespace eadvfs::exp::fleet {

namespace {

void put_u64_le(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((value >> shift) & 0xff));
}

std::uint64_t get_u64_le(const std::string& bytes, std::size_t offset) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes[offset + i]))
             << (8 * i);
  return value;
}

// Column names are machine identifiers ("miss_rate.mean"); escaping is still
// required for a well-formed header, even though the names we emit never need
// it.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

[[noreturn]] void corrupt(const std::string& detail) {
  throw std::runtime_error("fleet artifact: " + detail);
}

}  // namespace

std::size_t FleetArtifact::column(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i)
    if (columns[i] == name) return i;
  throw std::out_of_range("fleet artifact: no column named '" + name + "'");
}

std::string FleetArtifact::serialize() const {
  if (columns.size() != data.size())
    throw std::logic_error("fleet artifact: column name/data count mismatch");
  for (const auto& col : data)
    if (col.size() != shards)
      throw std::logic_error(
          "fleet artifact: column length does not match shard count");

  // The header is JSON but written by hand so its bytes are fully under our
  // control — determinism of the artifact depends on it.  fingerprint and
  // seed-sized integers are emitted as decimal *strings*: a JSON number
  // would round-trip through double and lose bits above 2^53.
  std::ostringstream header;
  header << "{\"format\": \"eadvfs.fleet.v1\""
         << ", \"spec\": " << json_escape(spec)
         << ", \"fingerprint\": \"" << fingerprint << '"'
         << ", \"devices\": " << devices
         << ", \"shards\": " << shards
         << ", \"hist_lo\": " << util::format_double(hist_lo)
         << ", \"hist_hi\": " << util::format_double(hist_hi)
         << ", \"hist_bins\": " << hist_bins
         << ", \"columns\": [";
  for (std::size_t i = 0; i < columns.size(); ++i)
    header << (i ? ", " : "") << json_escape(columns[i]);
  header << "]}";
  const std::string header_json = header.str();

  std::string out;
  out.reserve(16 + 8 + header_json.size() + data.size() * shards * 8);
  out.append(kMagic, 16);
  put_u64_le(out, header_json.size());
  out += header_json;
  for (const auto& col : data)
    for (double value : col) put_u64_le(out, std::bit_cast<std::uint64_t>(value));
  return out;
}

void FleetArtifact::write(const std::string& path) const {
  util::write_file_atomic(path, serialize());
}

FleetArtifact FleetArtifact::deserialize(const std::string& bytes) {
  if (bytes.size() < 24) corrupt("truncated (shorter than magic + header length)");
  if (std::memcmp(bytes.data(), kMagic, 16) != 0)
    corrupt("bad magic (not an eadvfs.fleet.v1 file)");
  const std::uint64_t header_len = get_u64_le(bytes, 16);
  if (header_len > bytes.size() - 24) corrupt("header length exceeds file size");
  const std::string header = bytes.substr(24, header_len);

  // The header was emitted by serialize() above; parse it with the same
  // strict JSON front door the spec loader uses.
  FleetArtifact artifact;
  std::size_t payload_cols = 0;
  {
    // Local include-free parse: defer to util::json via spec.cpp would be
    // circular in spirit; the header is small and flat, so reuse the shared
    // parser directly.
    const auto doc = [&header] {
      try {
        return util::json_parse(header);
      } catch (const std::exception& error) {
        corrupt(std::string("header is not valid JSON: ") + error.what());
      }
    }();
    const util::JsonValue* format = doc.find("format");
    if (format == nullptr || format->as_string() != "eadvfs.fleet.v1")
      corrupt("header format field missing or mismatched");
    const auto require = [&doc](const char* key) -> const util::JsonValue& {
      const util::JsonValue* value = doc.find(key);
      if (value == nullptr)
        corrupt(std::string("header is missing key '") + key + "'");
      return *value;
    };
    artifact.spec = require("spec").as_string();
    artifact.fingerprint = std::stoull(require("fingerprint").as_string());
    artifact.devices = static_cast<std::size_t>(require("devices").as_number());
    artifact.shards = static_cast<std::size_t>(require("shards").as_number());
    artifact.hist_lo = require("hist_lo").as_number();
    artifact.hist_hi = require("hist_hi").as_number();
    artifact.hist_bins =
        static_cast<std::size_t>(require("hist_bins").as_number());
    for (const util::JsonValue& name : require("columns").as_array())
      artifact.columns.push_back(name.as_string());
    payload_cols = artifact.columns.size();
  }

  const std::size_t payload_offset = 24 + header_len;
  const std::size_t expected = payload_cols * artifact.shards * 8;
  if (bytes.size() - payload_offset != expected)
    corrupt("payload size mismatch: expected " + std::to_string(expected) +
            " bytes of column data, found " +
            std::to_string(bytes.size() - payload_offset));

  artifact.data.resize(payload_cols);
  std::size_t offset = payload_offset;
  for (std::size_t c = 0; c < payload_cols; ++c) {
    artifact.data[c].reserve(artifact.shards);
    for (std::size_t s = 0; s < artifact.shards; ++s, offset += 8)
      artifact.data[c].push_back(
          std::bit_cast<double>(get_u64_le(bytes, offset)));
  }
  return artifact;
}

FleetArtifact FleetArtifact::read(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("fleet artifact: cannot open '" + path +
                             "' for reading");
  std::ostringstream content;
  content << in.rdbuf();
  if (in.bad())
    throw std::runtime_error("fleet artifact: I/O error reading '" + path +
                             "'");
  try {
    return deserialize(content.str());
  } catch (const std::runtime_error& error) {
    throw std::runtime_error(path + ": " + error.what());
  }
}

void FleetArtifact::export_csv(const std::string& path) const {
  std::ostringstream out;
  out << "shard";
  for (const std::string& name : columns) out << ',' << name;
  out << '\n';
  for (std::size_t s = 0; s < shards; ++s) {
    out << s;
    for (const auto& col : data) out << ',' << util::format_double(col[s]);
    out << '\n';
  }
  util::write_file_atomic(path, out.str());
}

}  // namespace eadvfs::exp::fleet
