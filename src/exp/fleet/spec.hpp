#pragma once

/// \file spec.hpp
/// Fleet specification: the declarative description of a heterogeneous
/// device population for the fleet Monte Carlo runner (ROADMAP item 2,
/// "simulate a million devices").
///
/// A fleet spec says how many device-instances to simulate, how they are
/// sharded, and the *distributions* each device samples its configuration
/// from: scheduler and predictor (uniform over the given lists), task count
/// and utilization (uniform over a range), storage capacity (log-uniform —
/// device capacities in a deployed fleet span decades, not a linear band),
/// solar panel size (uniform amplitude scale), and an optional fault
/// profile assigned to a fraction of the population.
///
/// Specs are written as JSON (parsed by util/json.hpp) with the same
/// hardened-front-door rules as the INI scenario files: unknown keys are
/// rejected with a did-you-mean suggestion, malformed values throw with the
/// offending key named, and a validated spec cannot smuggle NaN or an
/// unknown scheduler name into a million simulations.  See
/// docs/EXPERIMENTS.md §"Fleet runs" for the full key reference.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault/profile.hpp"
#include "util/rng.hpp"

namespace eadvfs::exp::fleet {

/// Closed real interval [lo, hi] a device samples a value from (lo == hi
/// pins the value for the whole fleet).
struct RealRange {
  double lo = 0.0;
  double hi = 0.0;
};

/// Inclusive integer range.
struct IntRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
};

struct FleetSpec {
  std::string name = "default";
  /// Device-instances in the population (the fleet runner's unit of work is
  /// a *shard* of these, see shards()).
  std::size_t devices = 100'000;
  /// Devices per shard; the last shard may be short.  Part of the
  /// fingerprint: resharding changes journal rows, so a checkpoint cannot
  /// be resumed across a shard-size change.
  std::size_t shard_size = 1'000;
  std::uint64_t seed = 42;
  double horizon = 500.0;

  /// Per-device uniform draws.
  std::vector<std::string> schedulers = {"lsa", "ea-dvfs"};
  std::vector<std::string> predictors = {"slotted-ewma"};
  IntRange tasks{3, 8};
  RealRange utilization{0.2, 0.8};
  /// Storage capacity, sampled log-uniformly over [lo, hi].
  RealRange capacity{25.0, 500.0};
  /// Solar amplitude multiplier (panel sizing), uniform over [lo, hi].
  RealRange panel_scale{0.5, 2.0};

  /// Fault assignment: each device independently receives a fault profile
  /// with probability `fault_fraction`, drawn uniformly from
  /// `fault_profiles` (sim::fault::FaultProfile::parse syntax).
  std::vector<std::string> fault_profiles;
  double fault_fraction = 0.0;

  /// Mid-execution storage-depletion policy: "suspend" | "abort".
  std::string depletion = "suspend";

  /// Bins of the population miss-rate histogram over [0, 1); a device that
  /// misses *every* deadline (rate exactly 1.0) lands in the overflow
  /// counter.
  std::size_t hist_bins = 40;

  /// Shards covering `devices` at `shard_size` (ceiling division).
  [[nodiscard]] std::size_t shards() const;

  /// Device index range of one shard: [first, last).
  [[nodiscard]] std::size_t shard_begin(std::size_t shard) const;
  [[nodiscard]] std::size_t shard_end(std::size_t shard) const;

  /// Throws std::invalid_argument naming the offending field on any
  /// out-of-domain value (non-finite ranges, inverted intervals, unknown
  /// scheduler/predictor/depletion names, unparsable fault profiles, ...).
  void validate() const;

  /// Canonical single-line description of every determinism-relevant field,
  /// fingerprinted into the checkpoint manifest and the fleet artifact.
  [[nodiscard]] std::string canonical_description() const;

  /// Parse a spec from JSON text.  Missing keys keep their defaults;
  /// unknown keys throw with a did-you-mean suggestion; the result is
  /// validate()d before returning.
  [[nodiscard]] static FleetSpec parse_json(const std::string& text);

  /// parse_json() over a file (util::json_parse_file error reporting).
  [[nodiscard]] static FleetSpec load(const std::string& path);
};

/// What one device drew from the spec's distributions.
struct DeviceSample {
  std::size_t scheduler = 0;    ///< index into spec.schedulers.
  std::size_t predictor = 0;    ///< index into spec.predictors.
  std::size_t n_tasks = 0;
  double utilization = 0.0;
  double capacity = 0.0;
  double panel_scale = 1.0;
  /// Index into spec.fault_profiles, or npos for a healthy device.
  std::size_t fault = kNoFault;

  static constexpr std::size_t kNoFault = static_cast<std::size_t>(-1);
};

/// Draw one device's configuration.  The draw order is part of the
/// determinism contract (documented in docs/EXPERIMENTS.md): scheduler,
/// predictor, task count, utilization, panel scale, capacity, fault.  Each
/// device uses its own sub-seeded RNG, so samples are independent of
/// sharding and job count.
[[nodiscard]] DeviceSample sample_device(const FleetSpec& spec,
                                         util::Xoshiro256ss& rng);

}  // namespace eadvfs::exp::fleet
