#include "exp/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <optional>
#include <sstream>
#include <stdexcept>

#if !defined(_WIN32)
#include <signal.h>
#include <unistd.h>
#endif

#include "util/error.hpp"
#include "util/ini.hpp"
#include "util/log.hpp"

// Configure-time `git describe` (see the root CMakeLists.txt); recorded in
// the manifest so a resumed run can be traced back to the code that started
// it.  Informational only — never part of manifest verification, because a
// rebuilt binary with identical configuration must still be allowed to
// resume.
#ifndef EADVFS_BUILD_REF
#define EADVFS_BUILD_REF "unknown"
#endif

namespace eadvfs::exp {

namespace {

constexpr const char* kManifestFormat = "eadvfs-checkpoint";
constexpr int kManifestVersion = 1;
constexpr const char* kJournalHeader = "eadvfs-journal v1";

std::string hex64(std::uint64_t value) {
  std::ostringstream out;
  out << std::hex << std::setfill('0') << std::setw(16) << value;
  return out.str();
}

/// Exact (bit-pattern) double serialization: a journaled value reloads to
/// the identical IEEE-754 double, which is what makes a resumed aggregation
/// byte-identical to an uninterrupted one.
std::string encode_double(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return hex64(bits);
}

double decode_double(const std::string& hex) {
  std::size_t pos = 0;
  const std::uint64_t bits = std::stoull(hex, &pos, 16);
  if (pos != hex.size())
    throw std::runtime_error("journal: malformed value '" + hex + "'");
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string join_indices(const std::vector<std::size_t>& indices) {
  std::string out;
  for (std::size_t i : indices) {
    if (!out.empty()) out += ',';
    out += std::to_string(i);
  }
  return out;
}

[[noreturn]] void kill_self_for_test() {
  // The crash-injection hook simulates an operator SIGKILL / OOM kill: no
  // destructors, no atexit, no flushing beyond what already hit the disk.
#if defined(_WIN32)
  std::_Exit(137);
#else
  ::kill(::getpid(), SIGKILL);
  ::_exit(137);  // unreachable; SIGKILL cannot be handled
#endif
}

}  // namespace

std::uint64_t fingerprint(const std::string& canonical) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  for (const char c : canonical) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;  // FNV prime
  }
  return hash;
}

std::string CheckpointSession::manifest_path(const std::string& dir) {
  return dir + "/manifest.txt";
}

std::string CheckpointSession::journal_path(const std::string& dir) {
  return dir + "/journal.txt";
}

CheckpointSession::CheckpointSession(CheckpointConfig config, ManifestInfo info)
    : config_(std::move(config)), info_(std::move(info)) {
  if (!config_.enabled())
    throw std::invalid_argument("CheckpointSession: empty checkpoint dir");
  util::ensure_directory(config_.dir);

  const std::string manifest = manifest_path(config_.dir);
  const bool exists = std::filesystem::exists(manifest);
  if (!exists && config_.require_existing)
    throw std::runtime_error(
        "--resume: no checkpoint manifest in '" + config_.dir +
        "' (start the sweep with --checkpoint first, or drop --resume)");

  if (exists) {
    const util::IniFile stored = util::IniFile::load(manifest);
    auto field = [&](const std::string& key) {
      const auto value = stored.get("", key);
      if (!value)
        throw util::ManifestMismatchError(
            manifest + ": missing manifest field '" + key + "'");
      return *value;
    };
    auto verify = [&](const std::string& key, const std::string& expected) {
      const std::string actual = field(key);
      if (actual != expected)
        throw util::ManifestMismatchError(
            manifest + ": manifest " + key + " is '" + actual +
            "' but this run has '" + expected +
            "' — refusing to resume a different configuration (use a fresh "
            "checkpoint directory)");
    };
    verify("format", kManifestFormat);
    verify("version", std::to_string(kManifestVersion));
    verify("experiment", info_.experiment);
    verify("fingerprint", hex64(fingerprint(info_.config)));
    verify("seed", std::to_string(info_.seed));
    verify("replications", std::to_string(info_.replications));
    load_and_rotate_journal();
    EADVFS_LOG_INFO << "checkpoint: resuming '" << info_.experiment << "' from "
                    << config_.dir << " with " << completed_.size() << "/"
                    << info_.replications << " replications journaled";
  } else {
    write_manifest("running", {});
    // An empty journal with just the header, so a crash before the first
    // replication still leaves a loadable checkpoint.
    util::write_file_atomic(journal_path(config_.dir),
                            std::string(kJournalHeader) + "\n");
  }
  journal_ = util::AppendFile(journal_path(config_.dir));
}

void CheckpointSession::write_manifest(const std::string& status,
                                       const std::vector<std::size_t>& failed) {
  std::ostringstream out;
  out << "format = " << kManifestFormat << "\n";
  out << "version = " << kManifestVersion << "\n";
  out << "experiment = " << info_.experiment << "\n";
  out << "fingerprint = " << hex64(fingerprint(info_.config)) << "\n";
  out << "config = " << info_.config << "\n";
  out << "seed = " << info_.seed << "\n";
  out << "replications = " << info_.replications << "\n";
  out << "jobs = " << info_.jobs << "\n";
  out << "build = " << EADVFS_BUILD_REF << "\n";
  out << "status = " << status << "\n";
  if (!failed.empty())
    out << "failed_replications = " << join_indices(failed) << "\n";
  util::write_file_atomic(manifest_path(config_.dir), out.str());
}

void CheckpointSession::load_and_rotate_journal() {
  const std::string path = journal_path(config_.dir);
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    }
  }
  completed_.clear();
  if (!text.empty()) {
    // A crash can tear at most the final record (each append is one
    // write(2)); a line is complete only when its '\n' made it to disk.
    const bool torn_tail = text.back() != '\n';
    std::vector<std::string> lines;
    std::istringstream stream(text);
    for (std::string line; std::getline(stream, line);) lines.push_back(line);
    if (torn_tail && !lines.empty()) {
      EADVFS_LOG_WARN << "checkpoint: dropping torn journal tail in " << path;
      lines.pop_back();
    }
    if (!lines.empty() && lines.front() != kJournalHeader)
      throw std::runtime_error(path +
                               ": not a checkpoint journal (bad header); "
                               "delete the checkpoint directory to start over");
    for (std::size_t n = 1; n < lines.size(); ++n) {
      const std::string& line = lines[n];
      if (line.empty()) continue;
      std::istringstream fields(line);
      std::string tag;
      std::size_t index = 0, attempts = 0;
      if (!(fields >> tag >> index >> attempts))
        throw std::runtime_error(path + ": corrupt journal record '" + line +
                                 "'; delete the checkpoint directory to start "
                                 "over");
      if (tag == "R") {
        std::size_t n_values = 0;
        if (!(fields >> n_values))
          throw std::runtime_error(path + ": corrupt journal record '" + line +
                                   "'");
        JournalEntry entry;
        entry.attempts = attempts;
        entry.values.reserve(n_values);
        for (std::size_t v = 0; v < n_values; ++v) {
          std::string hex;
          if (!(fields >> hex))
            throw std::runtime_error(path + ": journal record for index " +
                                     std::to_string(index) +
                                     " is missing values");
          entry.values.push_back(decode_double(hex));
        }
        completed_[index] = std::move(entry);  // later records win
      } else if (tag == "F") {
        // Permanent failure from a previous attempt: diagnostic only, the
        // index is re-run on this resume.
        completed_.erase(index);
      } else {
        throw std::runtime_error(path + ": unknown journal record tag '" + tag +
                                 "'");
      }
    }
  }
  // Atomic rotation: rewrite the journal down to exactly the valid completed
  // records (dropping torn tails, superseded duplicates and failure lines),
  // so journal size stays bounded across many crash/resume cycles.
  util::write_file_atomic(path, [&](std::ostream& out) {
    out << kJournalHeader << "\n";
    for (const auto& [index, entry] : completed_) {
      out << "R " << index << " " << entry.attempts << " "
          << entry.values.size();
      for (const double value : entry.values) out << " " << encode_double(value);
      out << "\n";
    }
  });
}

void CheckpointSession::maybe_crash_after_append() {
  if (config_.crash_after_appends != 0 &&
      appends_ >= config_.crash_after_appends) {
    EADVFS_LOG_WARN << "checkpoint: crash-injection hook firing after "
                    << appends_ << " appends (SIGKILL)";
    kill_self_for_test();
  }
}

void CheckpointSession::append(std::size_t index, std::size_t attempts,
                               const std::vector<double>& values) {
  std::ostringstream line;
  line << "R " << index << " " << attempts << " " << values.size();
  for (const double value : values) line << " " << encode_double(value);
  line << "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  journal_.append(line.str());
  ++appends_;
  maybe_crash_after_append();
}

void CheckpointSession::append_failure(std::size_t index, std::size_t attempts,
                                       const std::string& message) {
  // Newlines would tear the record format; flatten them.
  std::string flat = message;
  std::replace(flat.begin(), flat.end(), '\n', ' ');
  std::ostringstream line;
  line << "F " << index << " " << attempts << " " << flat << "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  journal_.append(line.str());
  ++appends_;
  maybe_crash_after_append();
}

void CheckpointSession::finalize(const RunReport& report) {
  std::vector<std::size_t> failed;
  failed.reserve(report.failures.size());
  for (const auto& failure : report.failures) failed.push_back(failure.index);
  const std::string status = report.interrupted ? "interrupted"
                             : failed.empty()   ? "complete"
                                                : "partial";
  std::lock_guard<std::mutex> lock(mutex_);
  write_manifest(status, failed);
}

CheckpointedMapOutcome checkpointed_map(
    std::size_t count, const ParallelConfig& parallel,
    const CheckpointConfig& checkpoint, const ManifestInfo& info,
    const std::function<std::vector<double>(std::size_t)>& fn) {
  CheckpointedMapOutcome outcome;
  outcome.rows.resize(count);

  std::optional<CheckpointSession> session;
  std::vector<bool> have(count, false);
  if (checkpoint.enabled()) {
    session.emplace(checkpoint, info);
    for (const auto& [index, entry] : session->completed()) {
      if (index >= count) continue;  // manifest verification makes this moot
      outcome.rows[index] = entry.values;
      have[index] = true;
      ++outcome.resumed;
    }
  }

  std::vector<std::size_t> missing;
  missing.reserve(count - outcome.resumed);
  for (std::size_t i = 0; i < count; ++i)
    if (!have[i]) missing.push_back(i);

  RunReport report;
  if (!missing.empty()) {
    ParallelConfig cfg = parallel;
    // Journal every replication the moment it completes (serialized under
    // the pool lock), so a later crash loses at most in-flight work.
    cfg.on_complete = [&](std::size_t position, std::size_t attempts) {
      const std::size_t index = missing[position];
      if (session) session->append(index, attempts, outcome.rows[index]);
      if (parallel.on_complete) parallel.on_complete(index, attempts);
    };
    ParallelRunner runner(cfg);
    // On a permanent failure without keep-going the error propagates from
    // here; the manifest stays at status "running" and the journal already
    // holds every completed row, so the run is resumable as-is.
    report = runner.run(missing.size(), [&](std::size_t position) {
      outcome.rows[missing[position]] = fn(missing[position]);
    });
    // The runner reports in positions of `missing`; translate back to
    // replication indices before anyone reads them.
    for (auto& failure : report.failures) {
      if (session)
        session->append_failure(missing[failure.index], failure.attempts,
                                failure.message);
      failure.index = missing[failure.index];
    }
    for (auto& [position, attempts] : report.retried) position = missing[position];
  }
  report.completed += outcome.resumed;
  outcome.report = std::move(report);
  if (session) session->finalize(outcome.report);
  return outcome;
}

}  // namespace eadvfs::exp
