#pragma once

/// \file storage.hpp
/// Ideal energy storage (paper §3.2): chargeable to capacity C, dischargeable
/// to zero, with incoming energy discarded once full (paper ineq. 1/3/4).
/// Tracks full energy accounting (charged / overflowed / discharged) so the
/// engine's conservation invariant  ΔE_C = charged − discharged  is testable
/// to floating-point accuracy.
///
/// An optional non-ideality extension (charge efficiency < 1 and constant
/// leakage power) is provided for ablations; the paper's model is the
/// default (efficiency 1, leakage 0).

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/math.hpp"
#include "util/types.hpp"

namespace eadvfs::energy {

struct StorageConfig {
  Energy capacity = 1000.0;       ///< C; may be kHuge for "infinite".
  Energy initial = -1.0;          ///< initial level; < 0 means "full" (paper §5.1).
  double charge_efficiency = 1.0; ///< fraction of incoming energy stored.
  Power leakage = 0.0;            ///< constant self-discharge power.
};

class EnergyStorage {
 public:
  explicit EnergyStorage(const StorageConfig& config);

  /// Convenience: ideal storage at the given capacity, initially full.
  static EnergyStorage ideal(Energy capacity);

  /// Nominal (design) capacity; unaffected by a transient derate.
  [[nodiscard]] Energy capacity() const { return capacity_; }
  /// Capacity currently usable: nominal × the active derate factor.
  [[nodiscard]] Energy effective_capacity() const {
    return capacity_ * derate_;
  }
  [[nodiscard]] Energy level() const { return level_; }
  [[nodiscard]] Energy headroom() const { return effective_capacity() - level_; }
  // The level-update operations below run once or twice per engine segment,
  // so they are defined inline here: the devirtualized engine kernel folds
  // them into the segment integration instead of paying a cross-TU call.
  [[nodiscard]] bool full() const {
    const Energy cap = effective_capacity();
    return util::approx_equal(level_, cap) || level_ >= cap;
  }
  [[nodiscard]] bool empty() const {
    return util::approx_equal(level_, 0.0) || level_ <= 0.0;
  }

  /// Add harvested energy; returns the portion discarded as overflow.
  /// `amount` must be >= 0.
  Energy charge(Energy amount) {
    if (amount < 0.0)
      throw std::invalid_argument("EnergyStorage::charge: negative");
    const Energy stored_candidate = amount * config_.charge_efficiency;
    const Energy accepted = std::min(stored_candidate, headroom());
    level_ += accepted;
    total_charged_ += accepted;
    // Overflow is counted in *incoming* units: what the harvester produced
    // that did not end up in the storage (conversion loss + spill).
    const Energy overflow = amount - accepted;
    total_overflow_ += overflow;
    return overflow;
  }

  /// Remove energy consumed by the processor.  `amount` must not exceed the
  /// current level by more than a numerical epsilon (the engine computes
  /// exact crossing times, so larger overdraw is a logic error and throws).
  void discharge(Energy amount) {
    if (amount < 0.0)
      throw std::invalid_argument("EnergyStorage::discharge: negative");
    if (util::definitely_greater(amount, level_, 1e-6))
      throw std::logic_error("EnergyStorage::discharge: overdraw (engine bug)");
    level_ = util::snap_nonnegative(level_ - amount, 1e-6);
    total_discharged_ += amount;
  }

  /// Apply leakage over a duration (no-op for the paper's ideal model).
  void leak(Time duration) {
    if (duration < 0.0)
      throw std::invalid_argument("EnergyStorage::leak: negative duration");
    if (config_.leakage == 0.0) return;
    const Energy lost = std::min(level_, config_.leakage * duration);
    level_ -= lost;
    total_leaked_ += lost;
  }

  // --- fault injection --------------------------------------------------
  /// Remove up to `amount` instantly (injected transient fault: a cell
  /// glitch, a parasitic short).  Clamped at empty — a fault cannot drive
  /// the level negative.  Returns the energy actually removed; the caller
  /// (the engine) must account for it so conservation still audits.
  Energy fault_drain(Energy amount);

  /// Temporarily scale the usable capacity by `factor` in (0, 1]; 1 restores
  /// nominal.  If the current level exceeds the derated capacity the excess
  /// is spilled (returned, and added to the fault-drain total) — the cells
  /// holding it just became unusable.
  Energy set_capacity_derate(double factor);

  [[nodiscard]] double capacity_derate() const { return derate_; }

  // --- lifetime accounting --------------------------------------------
  [[nodiscard]] Energy total_charged() const { return total_charged_; }
  [[nodiscard]] Energy total_overflow() const { return total_overflow_; }
  [[nodiscard]] Energy total_discharged() const { return total_discharged_; }
  [[nodiscard]] Energy total_leaked() const { return total_leaked_; }
  [[nodiscard]] Energy total_fault_drained() const {
    return total_fault_drained_;
  }
  [[nodiscard]] Energy initial_level() const { return initial_; }

  [[nodiscard]] const StorageConfig& config() const { return config_; }

 private:
  StorageConfig config_;
  Energy capacity_;
  Energy initial_;
  Energy level_;
  Energy total_charged_ = 0.0;
  Energy total_overflow_ = 0.0;
  Energy total_discharged_ = 0.0;
  Energy total_leaked_ = 0.0;
  Energy total_fault_drained_ = 0.0;
  double derate_ = 1.0;  ///< active capacity-derate factor.
};

}  // namespace eadvfs::energy
