#pragma once

/// \file storage.hpp
/// Ideal energy storage (paper §3.2): chargeable to capacity C, dischargeable
/// to zero, with incoming energy discarded once full (paper ineq. 1/3/4).
/// Tracks full energy accounting (charged / overflowed / discharged) so the
/// engine's conservation invariant  ΔE_C = charged − discharged  is testable
/// to floating-point accuracy.
///
/// An optional non-ideality extension (charge efficiency < 1 and constant
/// leakage power) is provided for ablations; the paper's model is the
/// default (efficiency 1, leakage 0).

#include <string>

#include "util/types.hpp"

namespace eadvfs::energy {

struct StorageConfig {
  Energy capacity = 1000.0;       ///< C; may be kHuge for "infinite".
  Energy initial = -1.0;          ///< initial level; < 0 means "full" (paper §5.1).
  double charge_efficiency = 1.0; ///< fraction of incoming energy stored.
  Power leakage = 0.0;            ///< constant self-discharge power.
};

class EnergyStorage {
 public:
  explicit EnergyStorage(const StorageConfig& config);

  /// Convenience: ideal storage at the given capacity, initially full.
  static EnergyStorage ideal(Energy capacity);

  /// Nominal (design) capacity; unaffected by a transient derate.
  [[nodiscard]] Energy capacity() const { return capacity_; }
  /// Capacity currently usable: nominal × the active derate factor.
  [[nodiscard]] Energy effective_capacity() const {
    return capacity_ * derate_;
  }
  [[nodiscard]] Energy level() const { return level_; }
  [[nodiscard]] Energy headroom() const { return effective_capacity() - level_; }
  [[nodiscard]] bool full() const;
  [[nodiscard]] bool empty() const;

  /// Add harvested energy; returns the portion discarded as overflow.
  /// `amount` must be >= 0.
  Energy charge(Energy amount);

  /// Remove energy consumed by the processor.  `amount` must not exceed the
  /// current level by more than a numerical epsilon (the engine computes
  /// exact crossing times, so larger overdraw is a logic error and throws).
  void discharge(Energy amount);

  /// Apply leakage over a duration (no-op for the paper's ideal model).
  void leak(Time duration);

  // --- fault injection --------------------------------------------------
  /// Remove up to `amount` instantly (injected transient fault: a cell
  /// glitch, a parasitic short).  Clamped at empty — a fault cannot drive
  /// the level negative.  Returns the energy actually removed; the caller
  /// (the engine) must account for it so conservation still audits.
  Energy fault_drain(Energy amount);

  /// Temporarily scale the usable capacity by `factor` in (0, 1]; 1 restores
  /// nominal.  If the current level exceeds the derated capacity the excess
  /// is spilled (returned, and added to the fault-drain total) — the cells
  /// holding it just became unusable.
  Energy set_capacity_derate(double factor);

  [[nodiscard]] double capacity_derate() const { return derate_; }

  // --- lifetime accounting --------------------------------------------
  [[nodiscard]] Energy total_charged() const { return total_charged_; }
  [[nodiscard]] Energy total_overflow() const { return total_overflow_; }
  [[nodiscard]] Energy total_discharged() const { return total_discharged_; }
  [[nodiscard]] Energy total_leaked() const { return total_leaked_; }
  [[nodiscard]] Energy total_fault_drained() const {
    return total_fault_drained_;
  }
  [[nodiscard]] Energy initial_level() const { return initial_; }

  [[nodiscard]] const StorageConfig& config() const { return config_; }

 private:
  StorageConfig config_;
  Energy capacity_;
  Energy initial_;
  Energy level_;
  Energy total_charged_ = 0.0;
  Energy total_overflow_ = 0.0;
  Energy total_discharged_ = 0.0;
  Energy total_leaked_ = 0.0;
  Energy total_fault_drained_ = 0.0;
  double derate_ = 1.0;  ///< active capacity-derate factor.
};

}  // namespace eadvfs::energy
