#pragma once

/// \file running_average_predictor.hpp
/// The simplest realization of "trace the profile": predict that the future
/// window will deliver the long-run average power observed so far.  Ignores
/// the diurnal cycle, so it over-predicts during troughs and under-predicts
/// during peaks — the motivating weakness the slotted predictor fixes.

#include <string>

#include "energy/predictor.hpp"

namespace eadvfs::energy {

class RunningAveragePredictor final : public EnergyPredictor {
 public:
  /// `prior_mean_power` seeds the estimate before any observation, and
  /// `prior_weight` (in time units) controls how quickly observations take
  /// over: the estimate is (prior·w + observed_energy) / (w + observed_time).
  explicit RunningAveragePredictor(Power prior_mean_power = 0.0,
                                   Time prior_weight = 1.0);

  void observe(Time t0, Time t1, Energy harvested) override;
  [[nodiscard]] Energy predict(Time now, Time until) const override;
  [[nodiscard]] std::string name() const override;

  /// Current mean-power estimate.
  [[nodiscard]] Power estimate() const;

 private:
  Power prior_mean_;
  Time prior_weight_;
  Energy observed_energy_ = 0.0;
  Time observed_time_ = 0.0;
};

}  // namespace eadvfs::energy
