#include "energy/trace_source.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/csv.hpp"

namespace eadvfs::energy {

TraceSource::TraceSource(std::vector<TracePoint> points, EndBehavior end_behavior,
                         Time duration)
    : points_(std::move(points)), end_behavior_(end_behavior), duration_(duration) {
  if (points_.empty())
    throw std::invalid_argument("TraceSource: empty trace");
  if (points_.front().start != 0.0)
    throw std::invalid_argument("TraceSource: trace must start at t = 0");
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].power < 0.0)
      throw std::invalid_argument("TraceSource: negative power in trace");
    if (i > 0 && points_[i].start <= points_[i - 1].start)
      throw std::invalid_argument("TraceSource: breakpoints must strictly increase");
  }
  if (end_behavior_ == EndBehavior::kWrap && duration_ <= points_.back().start)
    throw std::invalid_argument(
        "TraceSource: wrap duration must exceed the last breakpoint");
}

TraceSource TraceSource::from_csv(const std::string& path, EndBehavior end_behavior,
                                  Time duration) {
  const auto rows = util::csv_read_file(path);
  std::vector<TracePoint> points;
  points.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() < 2)
      throw std::runtime_error("TraceSource: row with fewer than 2 columns in " + path);
    try {
      points.push_back({std::stod(row[0]), std::stod(row[1])});
    } catch (const std::exception&) {
      if (r == 0) continue;  // header row
      throw std::runtime_error("TraceSource: malformed number in " + path);
    }
  }
  return TraceSource(std::move(points), end_behavior, duration);
}

Time TraceSource::to_local(Time t) const {
  if (t < 0.0) throw std::invalid_argument("TraceSource: negative time");
  if (end_behavior_ == EndBehavior::kWrap)
    return t - std::floor(t / duration_) * duration_;
  return t;
}

std::size_t TraceSource::index_for(Time local) const {
  // Last breakpoint with start <= local.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), local,
      [](Time value, const TracePoint& p) { return value < p.start; });
  return static_cast<std::size_t>(std::distance(points_.begin(), it)) - 1;
}

Power TraceSource::power_at(Time t) const {
  return points_[index_for(to_local(t))].power;
}

Time TraceSource::piece_end(Time t) const {
  const Time local = to_local(t);
  const std::size_t i = index_for(local);
  if (i + 1 < points_.size()) return t + (points_[i + 1].start - local);
  // Final segment.
  if (end_behavior_ == EndBehavior::kWrap) return t + (duration_ - local);
  return kHuge;
}

std::string TraceSource::name() const {
  return "trace(" + std::to_string(points_.size()) + " points)";
}

}  // namespace eadvfs::energy
