#include "energy/slotted_ewma_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eadvfs::energy {

SlottedEwmaPredictor::SlottedEwmaPredictor(const SlottedEwmaConfig& config)
    : config_(config) {
  if (config_.cycle <= 0.0)
    throw std::invalid_argument("SlottedEwmaPredictor: cycle must be positive");
  if (config_.slots == 0)
    throw std::invalid_argument("SlottedEwmaPredictor: slots must be > 0");
  if (config_.alpha <= 0.0 || config_.alpha > 1.0)
    throw std::invalid_argument("SlottedEwmaPredictor: alpha must be in (0, 1]");
  if (config_.prior < 0.0)
    throw std::invalid_argument("SlottedEwmaPredictor: negative prior");
  slot_width_ = config_.cycle / static_cast<double>(config_.slots);
  slots_.resize(config_.slots);
}

long long SlottedEwmaPredictor::global_slot(Time t) const {
  auto g = static_cast<long long>(std::floor(t / slot_width_));
  // Floating-point guard: when t sits exactly on a slot boundary but the
  // division rounds down (t/width = k - ulp), floor returns k-1 and the
  // boundary walk would compute slot_end == t and never advance.  Nudge to
  // the slot whose interior (or exact start) contains t.
  if (static_cast<double>(g + 1) * slot_width_ <= t) ++g;
  return g;
}

long long SlottedEwmaPredictor::slot_of(Time t) const {
  if (t >= cached_start_ && t < cached_guard_end_) return cached_g_;
  if (t == cached_end_ && cached_end_ > cached_start_) {
    // Exactly on the cached slot's upper boundary: global_slot(t) for
    // t == (g+1)*width is provably g+1 (floor yields g or g+1 and the
    // boundary nudge compares against this very product), so the boundary
    // walk advances one slot without any division.
    ++cached_g_;
    cached_start_ = cached_end_;
    cached_end_ = static_cast<double>(cached_g_ + 1) * slot_width_;
    cached_guard_end_ =
        std::nextafter(std::nextafter(cached_end_, -kHuge), -kHuge);
    ++cached_index_;
    if (cached_index_ == config_.slots) cached_index_ = 0;
    return cached_g_;
  }
  const long long g = global_slot(t);
  cached_g_ = g;
  cached_start_ = static_cast<double>(g) * slot_width_;
  cached_end_ = static_cast<double>(g + 1) * slot_width_;
  // For t within an ulp or two below the upper boundary, global_slot's
  // division may round the quotient up to g+1 even though t < end.  The
  // cache must agree with global_slot bit-for-bit, so the topmost two
  // representable values below the boundary always take the slow path.
  cached_guard_end_ = std::nextafter(std::nextafter(cached_end_, -kHuge), -kHuge);
  cached_index_ =
      static_cast<std::size_t>(g % static_cast<long long>(config_.slots));
  return g;
}

void SlottedEwmaPredictor::finalize_slot(std::size_t slot) {
  Slot& s = slots_[slot];
  if (s.pending_time <= 0.0) return;
  const Power observed_mean = s.pending_energy / s.pending_time;
  if (s.seeded) {
    s.ewma = config_.alpha * observed_mean + (1.0 - config_.alpha) * s.ewma;
  } else {
    s.ewma = observed_mean;
    s.seeded = true;
  }
  s.pending_energy = 0.0;
  s.pending_time = 0.0;
}

void SlottedEwmaPredictor::observe(Time t0, Time t1, Energy harvested) {
  if (t1 < t0)
    throw std::invalid_argument("SlottedEwmaPredictor: t1 < t0");
  if (harvested < 0.0)
    throw std::invalid_argument("SlottedEwmaPredictor: negative harvest");
  if (t1 == t0) return;
  const Power mean_power = harvested / (t1 - t0);

  // Walk the segment slot by slot; power is attributed uniformly (engine
  // segments are much shorter than a slot in practice).  slot_of caches the
  // slot's end and ring index, so the common whole-segment-inside-one-slot
  // case runs without any division.
  Time t = t0;
  while (t < t1) {
    const long long g = slot_of(t);
    if (g != current_global_slot_) {
      // Entering a new slot: the slot we were filling is complete.
      if (current_global_slot_ >= 0) {
        finalize_slot(static_cast<std::size_t>(
            current_global_slot_ % static_cast<long long>(config_.slots)));
      }
      current_global_slot_ = g;
    }
    const Time sub_end = std::min(cached_end_, t1);
    Slot& s = slots_[cached_index_];
    s.pending_energy += mean_power * (sub_end - t);
    s.pending_time += (sub_end - t);
    t = sub_end;
  }
}

Power SlottedEwmaPredictor::slot_estimate(std::size_t slot) const {
  if (slot >= slots_.size())
    throw std::out_of_range("SlottedEwmaPredictor: slot index out of range");
  // First cycle: fall back to this slot's partial observation, then prior.
  return estimate_unchecked(slot);
}

Energy SlottedEwmaPredictor::predict(Time now, Time until) const {
  if (until < now)
    throw std::invalid_argument("SlottedEwmaPredictor: until < now");
  if (until <= now) return 0.0;
  // First slot through the shared cursor (predict is almost always asked
  // about the slot the engine is currently observing into), then a local
  // walk: each subsequent boundary is exactly the previous slot's end, so
  // the next global slot is deterministically g+1 (see slot_of) and the
  // shared cursor stays on `now`'s slot for the engine's next observe().
  Energy total = 0.0;
  Time t = now;
  long long g = slot_of(now);
  Time slot_end = cached_end_;
  std::size_t index = cached_index_;
  const std::size_t slot_count = config_.slots;
  while (true) {
    const Time sub_end = std::min(slot_end, until);
    total += estimate_unchecked(index) * (sub_end - t);
    t = sub_end;
    if (!(t < until)) break;
    ++g;
    slot_end = static_cast<double>(g + 1) * slot_width_;
    ++index;
    if (index == slot_count) index = 0;
  }
  return total;
}

std::string SlottedEwmaPredictor::name() const { return "slotted-ewma"; }

}  // namespace eadvfs::energy
