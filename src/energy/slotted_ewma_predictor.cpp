#include "energy/slotted_ewma_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eadvfs::energy {

SlottedEwmaPredictor::SlottedEwmaPredictor(const SlottedEwmaConfig& config)
    : config_(config) {
  if (config_.cycle <= 0.0)
    throw std::invalid_argument("SlottedEwmaPredictor: cycle must be positive");
  if (config_.slots == 0)
    throw std::invalid_argument("SlottedEwmaPredictor: slots must be > 0");
  if (config_.alpha <= 0.0 || config_.alpha > 1.0)
    throw std::invalid_argument("SlottedEwmaPredictor: alpha must be in (0, 1]");
  if (config_.prior < 0.0)
    throw std::invalid_argument("SlottedEwmaPredictor: negative prior");
  slot_width_ = config_.cycle / static_cast<double>(config_.slots);
  slots_.resize(config_.slots);
}

long long SlottedEwmaPredictor::global_slot(Time t) const {
  auto g = static_cast<long long>(std::floor(t / slot_width_));
  // Floating-point guard: when t sits exactly on a slot boundary but the
  // division rounds down (t/width = k - ulp), floor returns k-1 and the
  // boundary walk would compute slot_end == t and never advance.  Nudge to
  // the slot whose interior (or exact start) contains t.
  if (static_cast<double>(g + 1) * slot_width_ <= t) ++g;
  return g;
}

void SlottedEwmaPredictor::finalize_slot(std::size_t slot) {
  Slot& s = slots_[slot];
  if (s.pending_time <= 0.0) return;
  const Power observed_mean = s.pending_energy / s.pending_time;
  if (s.seeded) {
    s.ewma = config_.alpha * observed_mean + (1.0 - config_.alpha) * s.ewma;
  } else {
    s.ewma = observed_mean;
    s.seeded = true;
  }
  s.pending_energy = 0.0;
  s.pending_time = 0.0;
}

void SlottedEwmaPredictor::observe(Time t0, Time t1, Energy harvested) {
  if (t1 < t0)
    throw std::invalid_argument("SlottedEwmaPredictor: t1 < t0");
  if (harvested < 0.0)
    throw std::invalid_argument("SlottedEwmaPredictor: negative harvest");
  if (t1 == t0) return;
  const Power mean_power = harvested / (t1 - t0);

  // Walk the segment slot by slot; power is attributed uniformly (engine
  // segments are much shorter than a slot in practice).
  Time t = t0;
  while (t < t1) {
    const long long g = global_slot(t);
    if (g != current_global_slot_) {
      // Entering a new slot: the slot we were filling is complete.
      if (current_global_slot_ >= 0) {
        finalize_slot(static_cast<std::size_t>(
            current_global_slot_ % static_cast<long long>(config_.slots)));
      }
      current_global_slot_ = g;
    }
    const Time slot_end = static_cast<double>(g + 1) * slot_width_;
    const Time sub_end = std::min(slot_end, t1);
    Slot& s = slots_[static_cast<std::size_t>(
        g % static_cast<long long>(config_.slots))];
    s.pending_energy += mean_power * (sub_end - t);
    s.pending_time += (sub_end - t);
    t = sub_end;
  }
}

Power SlottedEwmaPredictor::slot_estimate(std::size_t slot) const {
  const Slot& s = slots_.at(slot);
  if (s.seeded) return s.ewma;
  // First cycle: fall back to this slot's partial observation, then prior.
  if (s.pending_time > 0.0) return s.pending_energy / s.pending_time;
  return config_.prior;
}

Energy SlottedEwmaPredictor::predict(Time now, Time until) const {
  if (until < now)
    throw std::invalid_argument("SlottedEwmaPredictor: until < now");
  Energy total = 0.0;
  Time t = now;
  while (t < until) {
    const long long g = global_slot(t);
    const Time slot_end = static_cast<double>(g + 1) * slot_width_;
    const Time sub_end = std::min(slot_end, until);
    const auto slot = static_cast<std::size_t>(
        g % static_cast<long long>(config_.slots));
    total += slot_estimate(slot) * (sub_end - t);
    t = sub_end;
  }
  return total;
}

std::string SlottedEwmaPredictor::name() const { return "slotted-ewma"; }

}  // namespace eadvfs::energy
