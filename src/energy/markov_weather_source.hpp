#pragma once

/// \file markov_weather_source.hpp
/// A solar source with *correlated* weather: the eq. 13 model multiplied by
/// a Markov-modulated attenuation (clear / cloudy / overcast ...).  The
/// paper's eq. 13 resamples its noise independently every time unit, so bad
/// luck never persists; real irradiance data (the paper's refs [6][9]) has
/// multi-hour cloud cover, which is what makes large storage banks matter.
/// This source reintroduces that correlation with a dwell-time Markov chain
/// while keeping the same deterministic diurnal cos² envelope.
///
/// Like every source in this simulator it is presampled per `step` from a
/// seeded generator: deterministic, replayable, piecewise constant.

#include <cstdint>
#include <string>
#include <vector>

#include "energy/source.hpp"

namespace eadvfs::energy {

/// One weather regime.
struct WeatherState {
  std::string name = "clear";
  double attenuation = 1.0;  ///< multiplies the clear-sky power, in [0, 1].
  Time mean_dwell = 300.0;   ///< expected time spent in the state per visit.
};

struct MarkovWeatherConfig {
  double amplitude = 10.0;  ///< clear-sky eq. 13 amplitude.
  double cos_divisor = 70.0 * 3.14159265358979323846;
  Time step = 1.0;
  Time horizon = 10'000.0;
  std::uint64_t seed = 1;
  bool per_step_noise = true;  ///< keep eq. 13's |N(t)| flicker on top.
  /// Default three-regime sky.  Transitions leave a state with probability
  /// step/mean_dwell per step and pick a successor uniformly among the
  /// other states.
  std::vector<WeatherState> states = {
      {"clear", 1.0, 400.0},
      {"cloudy", 0.35, 200.0},
      {"overcast", 0.08, 120.0},
  };
};

class MarkovWeatherSource final : public EnergySource {
 public:
  explicit MarkovWeatherSource(const MarkovWeatherConfig& config);

  [[nodiscard]] Power power_at(Time t) const override;
  [[nodiscard]] Time piece_end(Time t) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const MarkovWeatherConfig& config() const { return config_; }

  /// Stationary mean attenuation of the chain (dwell-weighted), exposed so
  /// experiments can rescale workloads for a fair energy budget.
  [[nodiscard]] double mean_attenuation() const;

  /// Weather-state index in effect at time t (for tests/inspection).
  [[nodiscard]] std::size_t state_at(Time t) const;

 private:
  MarkovWeatherConfig config_;
  std::vector<Power> samples_;
  std::vector<std::uint8_t> state_samples_;

  [[nodiscard]] std::size_t index_for(Time t) const;
};

}  // namespace eadvfs::energy
