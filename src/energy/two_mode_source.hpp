#pragma once

/// \file two_mode_source.hpp
/// The coarse day/night solar model of Rusu et al. (paper ref. [5]): the
/// source alternates between a "day" power and a "night" power with fixed
/// durations.  Included both as a substrate the paper's related work uses
/// and as a deterministic stress source for tests.

#include <string>

#include "energy/source.hpp"

namespace eadvfs::energy {

struct TwoModeSourceConfig {
  Power day_power = 8.0;
  Power night_power = 0.0;
  Time day_duration = 345.0;    ///< ≈ half of the eq. 13 cycle by default.
  Time night_duration = 345.0;
  Time phase = 0.0;             ///< time offset into the cycle at t = 0.
};

class TwoModeSource final : public EnergySource {
 public:
  explicit TwoModeSource(const TwoModeSourceConfig& config);

  [[nodiscard]] Power power_at(Time t) const override;
  [[nodiscard]] Time piece_end(Time t) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const TwoModeSourceConfig& config() const { return config_; }
  [[nodiscard]] Time cycle() const;

 private:
  TwoModeSourceConfig config_;

  /// Position within the cycle, in [0, cycle()).
  [[nodiscard]] Time cycle_offset(Time t) const;
};

}  // namespace eadvfs::energy
