#include "energy/markov_weather_source.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace eadvfs::energy {

MarkovWeatherSource::MarkovWeatherSource(const MarkovWeatherConfig& config)
    : config_(config) {
  if (config_.amplitude < 0.0)
    throw std::invalid_argument("MarkovWeatherSource: negative amplitude");
  if (config_.step <= 0.0)
    throw std::invalid_argument("MarkovWeatherSource: step must be positive");
  if (config_.horizon < config_.step)
    throw std::invalid_argument("MarkovWeatherSource: horizon < one step");
  if (config_.cos_divisor <= 0.0)
    throw std::invalid_argument("MarkovWeatherSource: bad cos divisor");
  if (config_.states.empty())
    throw std::invalid_argument("MarkovWeatherSource: no weather states");
  for (const WeatherState& s : config_.states) {
    if (s.attenuation < 0.0 || s.attenuation > 1.0)
      throw std::invalid_argument("MarkovWeatherSource: attenuation outside [0,1]");
    if (s.mean_dwell <= 0.0)
      throw std::invalid_argument("MarkovWeatherSource: dwell must be positive");
  }

  const auto n = static_cast<std::size_t>(std::ceil(config_.horizon / config_.step));
  samples_.reserve(n);
  state_samples_.reserve(n);
  util::Xoshiro256ss rng(config_.seed);

  std::size_t state = 0;
  for (std::size_t k = 0; k < n; ++k) {
    // Geometric dwell: leave with probability step / mean_dwell per step.
    const double leave_probability =
        std::min(1.0, config_.step / config_.states[state].mean_dwell);
    if (config_.states.size() > 1 && rng.uniform01() < leave_probability) {
      const auto offset =
          rng.uniform_int(1, config_.states.size() - 1);  // skip self
      state = (state + offset) % config_.states.size();
    }
    const Time t = static_cast<double>(k) * config_.step;
    const double envelope = std::cos(t / config_.cos_divisor);
    const double noise =
        config_.per_step_noise ? std::abs(rng.normal()) : std::sqrt(2.0 / 3.14159265358979323846);
    samples_.push_back(config_.amplitude * config_.states[state].attenuation *
                       noise * envelope * envelope);
    state_samples_.push_back(static_cast<std::uint8_t>(state));
  }
}

std::size_t MarkovWeatherSource::index_for(Time t) const {
  if (t < 0.0) throw std::invalid_argument("MarkovWeatherSource: negative time");
  auto k = static_cast<std::size_t>(std::floor(t / config_.step));
  if (static_cast<double>(k + 1) * config_.step <= t) ++k;
  return k % samples_.size();
}

Power MarkovWeatherSource::power_at(Time t) const { return samples_[index_for(t)]; }

Time MarkovWeatherSource::piece_end(Time t) const {
  auto k = static_cast<std::size_t>(std::floor(t / config_.step));
  if (static_cast<double>(k + 1) * config_.step <= t) ++k;
  return static_cast<double>(k + 1) * config_.step;
}

std::string MarkovWeatherSource::name() const { return "markov-weather"; }

double MarkovWeatherSource::mean_attenuation() const {
  double weighted = 0.0;
  double total = 0.0;
  for (const WeatherState& s : config_.states) {
    weighted += s.attenuation * s.mean_dwell;
    total += s.mean_dwell;
  }
  return weighted / total;
}

std::size_t MarkovWeatherSource::state_at(Time t) const {
  return state_samples_[index_for(t)];
}

}  // namespace eadvfs::energy
