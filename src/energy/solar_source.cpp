#include "energy/solar_source.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace eadvfs::energy {

SolarSource::SolarSource(const SolarSourceConfig& config) : config_(config) {
  if (config_.amplitude < 0.0)
    throw std::invalid_argument("SolarSource: negative amplitude");
  if (config_.step <= 0.0)
    throw std::invalid_argument("SolarSource: step must be positive");
  if (config_.horizon < config_.step)
    throw std::invalid_argument("SolarSource: horizon shorter than one step");
  if (config_.cos_divisor <= 0.0)
    throw std::invalid_argument("SolarSource: cos_divisor must be positive");

  const auto n = static_cast<std::size_t>(std::ceil(config_.horizon / config_.step));
  samples_.reserve(n);
  util::Xoshiro256ss rng(config_.seed);
  for (std::size_t k = 0; k < n; ++k) {
    const Time t = static_cast<double>(k) * config_.step;
    const double envelope = std::cos(t / config_.cos_divisor);
    const double noise = std::abs(rng.normal());
    samples_.push_back(config_.amplitude * noise * envelope * envelope);
  }
}

std::size_t SolarSource::index_for(Time t) const {
  if (t < 0.0) throw std::invalid_argument("SolarSource: negative time");
  auto k = static_cast<std::size_t>(std::floor(t / config_.step));
  // Floating-point boundary guard: if t sits exactly on step boundary k+1
  // but the division rounded down, piece_end would return t itself and the
  // engine would make no progress.
  if (static_cast<double>(k + 1) * config_.step <= t) ++k;
  return k % samples_.size();  // wrap beyond the presampled horizon
}

Power SolarSource::power_at(Time t) const { return samples_[index_for(t)]; }

Time SolarSource::piece_end(Time t) const {
  auto k = static_cast<std::size_t>(std::floor(t / config_.step));
  if (static_cast<double>(k + 1) * config_.step <= t) ++k;
  return static_cast<double>(k + 1) * config_.step;
}

std::string SolarSource::name() const { return "solar-eq13"; }

Power SolarSource::analytic_mean_power(double amplitude) {
  // E|N| = sqrt(2/pi) for N ~ Normal(0,1); time-average of cos^2 is 1/2.
  return amplitude * std::sqrt(2.0 / 3.14159265358979323846) * 0.5;
}

Time SolarSource::cycle_period() const {
  // cos^2(t/d) has period pi*d.
  return 3.14159265358979323846 * config_.cos_divisor;
}

}  // namespace eadvfs::energy
