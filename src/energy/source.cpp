#include "energy/source.hpp"

#include <stdexcept>

namespace eadvfs::energy {

Energy EnergySource::energy_between(Time t1, Time t2) const {
  if (t1 > t2) throw std::invalid_argument("energy_between: t1 > t2");
  Energy total = 0.0;
  Time t = t1;
  while (t < t2) {
    const Time end = piece_end(t);
    if (!(end > t))
      throw std::logic_error(
          "EnergySource::energy_between: piece_end did not advance");
    const Time segment_end = (end < t2) ? end : t2;
    total += power_at(t) * (segment_end - t);
    t = segment_end;
  }
  return total;
}

ConstantSource::ConstantSource(Power power) : power_(power) {
  if (power < 0.0) throw std::invalid_argument("ConstantSource: negative power");
}

Power ConstantSource::power_at(Time /*t*/) const { return power_; }

Time ConstantSource::piece_end(Time /*t*/) const { return kHuge; }

std::string ConstantSource::name() const {
  return "constant(" + std::to_string(power_) + ")";
}

}  // namespace eadvfs::energy
