#include "energy/composite_source.hpp"

#include <algorithm>
#include <stdexcept>

namespace eadvfs::energy {

ScaledSource::ScaledSource(std::shared_ptr<const EnergySource> inner, double factor)
    : inner_(std::move(inner)), factor_(factor) {
  if (!inner_) throw std::invalid_argument("ScaledSource: null inner source");
  if (factor_ < 0.0) throw std::invalid_argument("ScaledSource: negative factor");
}

Power ScaledSource::power_at(Time t) const { return factor_ * inner_->power_at(t); }

Time ScaledSource::piece_end(Time t) const { return inner_->piece_end(t); }

std::string ScaledSource::name() const {
  return std::to_string(factor_) + "*" + inner_->name();
}

SumSource::SumSource(std::shared_ptr<const EnergySource> a,
                     std::shared_ptr<const EnergySource> b)
    : a_(std::move(a)), b_(std::move(b)) {
  if (!a_ || !b_) throw std::invalid_argument("SumSource: null input source");
}

Power SumSource::power_at(Time t) const {
  return a_->power_at(t) + b_->power_at(t);
}

Time SumSource::piece_end(Time t) const {
  return std::min(a_->piece_end(t), b_->piece_end(t));
}

std::string SumSource::name() const {
  return a_->name() + "+" + b_->name();
}

}  // namespace eadvfs::energy
