#pragma once

/// \file persistence_predictor.hpp
/// Persistence forecast: the future delivers the power observed most
/// recently.  The weather-forecasting baseline ("tomorrow ≈ today"); in the
/// harvesting literature this is the zero-knowledge reference every
/// profile-based predictor (Kansal's EWMA etc.) must beat.  It reacts
/// instantly to regime changes but extrapolates troughs and peaks alike —
/// over a long window it is badly wrong half the time, which is exactly the
/// failure mode the predictor ablation quantifies.

#include <string>

#include "energy/predictor.hpp"

namespace eadvfs::energy {

class PersistencePredictor final : public EnergyPredictor {
 public:
  /// `prior` is returned before anything has been observed.  `smoothing`
  /// in [0, 1) optionally EWMA-filters the per-segment power (0 = raw last
  /// observation, larger = smoother estimate).
  explicit PersistencePredictor(Power prior = 0.0, double smoothing = 0.0);

  void observe(Time t0, Time t1, Energy harvested) override;
  [[nodiscard]] Energy predict(Time now, Time until) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] Power last_power() const { return last_power_; }

 private:
  Power last_power_;
  double smoothing_;
  bool seen_anything_ = false;
};

}  // namespace eadvfs::energy
