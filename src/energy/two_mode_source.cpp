#include "energy/two_mode_source.hpp"

#include <cmath>
#include <stdexcept>

namespace eadvfs::energy {

TwoModeSource::TwoModeSource(const TwoModeSourceConfig& config) : config_(config) {
  if (config_.day_power < 0.0 || config_.night_power < 0.0)
    throw std::invalid_argument("TwoModeSource: negative power");
  if (config_.day_duration <= 0.0 || config_.night_duration <= 0.0)
    throw std::invalid_argument("TwoModeSource: durations must be positive");
  if (config_.phase < 0.0)
    throw std::invalid_argument("TwoModeSource: negative phase");
}

Time TwoModeSource::cycle() const {
  return config_.day_duration + config_.night_duration;
}

Time TwoModeSource::cycle_offset(Time t) const {
  const Time c = cycle();
  const Time shifted = t + config_.phase;
  return shifted - std::floor(shifted / c) * c;
}

Power TwoModeSource::power_at(Time t) const {
  return cycle_offset(t) < config_.day_duration ? config_.day_power
                                                : config_.night_power;
}

Time TwoModeSource::piece_end(Time t) const {
  const Time offset = cycle_offset(t);
  const Time remaining = (offset < config_.day_duration)
                             ? config_.day_duration - offset
                             : cycle() - offset;
  return t + remaining;
}

std::string TwoModeSource::name() const { return "two-mode(day/night)"; }

}  // namespace eadvfs::energy
