#pragma once

/// \file trace_source.hpp
/// Piecewise-constant source backed by an explicit (time, power) trace —
/// the path for replaying *real* irradiance measurements (the paper's refs
/// [6][9] drive their evaluation from measured solar traces).  Breakpoints
/// must be strictly increasing and start at t = 0; behaviour past the last
/// breakpoint is configurable (hold the final value or wrap around).

#include <string>
#include <vector>

#include "energy/source.hpp"

namespace eadvfs::energy {

/// One breakpoint: the source outputs `power` from `start` until the next
/// breakpoint's `start`.
struct TracePoint {
  Time start = 0.0;
  Power power = 0.0;
};

class TraceSource final : public EnergySource {
 public:
  enum class EndBehavior {
    kHoldLast,  ///< power stays at the final breakpoint's value forever
    kWrap,      ///< trace repeats with period = `duration` passed at build
  };

  /// `duration` is only used (and required > last breakpoint start) for
  /// kWrap; ignored for kHoldLast.
  TraceSource(std::vector<TracePoint> points, EndBehavior end_behavior,
              Time duration = 0.0);

  /// Load a two-column CSV (time, power); a header row is auto-detected and
  /// skipped.  Throws std::runtime_error on malformed input.
  static TraceSource from_csv(const std::string& path,
                              EndBehavior end_behavior = EndBehavior::kHoldLast,
                              Time duration = 0.0);

  [[nodiscard]] Power power_at(Time t) const override;
  [[nodiscard]] Time piece_end(Time t) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t size() const { return points_.size(); }

 private:
  std::vector<TracePoint> points_;
  EndBehavior end_behavior_;
  Time duration_;

  /// Index of the breakpoint active at local (post-wrap) time t.
  [[nodiscard]] std::size_t index_for(Time local) const;
  /// Map absolute time to local trace time per end behaviour.
  [[nodiscard]] Time to_local(Time t) const;
};

}  // namespace eadvfs::energy
