#include "energy/persistence_predictor.hpp"

#include <stdexcept>

namespace eadvfs::energy {

PersistencePredictor::PersistencePredictor(Power prior, double smoothing)
    : last_power_(prior), smoothing_(smoothing) {
  if (prior < 0.0)
    throw std::invalid_argument("PersistencePredictor: negative prior");
  if (smoothing < 0.0 || smoothing >= 1.0)
    throw std::invalid_argument("PersistencePredictor: smoothing outside [0, 1)");
}

void PersistencePredictor::observe(Time t0, Time t1, Energy harvested) {
  if (t1 < t0)
    throw std::invalid_argument("PersistencePredictor: t1 < t0");
  if (harvested < 0.0)
    throw std::invalid_argument("PersistencePredictor: negative harvest");
  if (t1 == t0) return;
  const Power observed = harvested / (t1 - t0);
  if (!seen_anything_ || smoothing_ == 0.0) {
    last_power_ = observed;
    seen_anything_ = true;
  } else {
    last_power_ = smoothing_ * last_power_ + (1.0 - smoothing_) * observed;
  }
}

Energy PersistencePredictor::predict(Time now, Time until) const {
  if (until < now)
    throw std::invalid_argument("PersistencePredictor: until < now");
  return last_power_ * (until - now);
}

std::string PersistencePredictor::name() const { return "persistence"; }

}  // namespace eadvfs::energy
