#pragma once

/// \file source.hpp
/// Energy-source abstraction (paper §3.1).
///
/// All sources in this simulator are *piecewise-constant* in time.  That is
/// not a loss of generality for the paper's experiments (eq. 13 samples its
/// noise once per time unit) and it buys the engine something crucial: energy
/// integrals and storage-crossing instants are exact, so the discrete-event
/// engine never needs numerical ODE integration.

#include <string>

#include "util/types.hpp"

namespace eadvfs::energy {

/// Interface for a harvested-power profile P_S(t), t >= 0.
///
/// Contract: `power_at(t)` is constant on [t, piece_end(t)), and
/// `piece_end(t) > t` for every t (sources must make progress).
class EnergySource {
 public:
  virtual ~EnergySource() = default;

  /// Net harvested power at time t (after converter losses; paper §3.1).
  /// Always >= 0.
  [[nodiscard]] virtual Power power_at(Time t) const = 0;

  /// End (exclusive) of the constant piece containing t.  Sources that are
  /// constant forever return a huge sentinel (> any simulation horizon).
  [[nodiscard]] virtual Time piece_end(Time t) const = 0;

  /// Exact integral of power over [t1, t2] (paper eq. 2), computed by
  /// walking the constant pieces.  Requires t1 <= t2.
  [[nodiscard]] Energy energy_between(Time t1, Time t2) const;

  /// Human-readable identifier for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// P_S(t) = P for all t.  The motivational examples in paper §2 and §4.3 use
/// a constant 0.5 W source.
class ConstantSource final : public EnergySource {
 public:
  explicit ConstantSource(Power power);

  [[nodiscard]] Power power_at(Time t) const override;
  [[nodiscard]] Time piece_end(Time t) const override;
  [[nodiscard]] std::string name() const override;

 private:
  Power power_;
};

}  // namespace eadvfs::energy
