#pragma once

/// \file solar_source.hpp
/// The paper's synthetic solar model (§5.1, eq. 13, Figure 5):
///
///     P_S(t) = A * |N(t)| * cos^2(t / 70π),   N(t) ~ Normal(0, 1)
///
/// with A = 10.  The cos² envelope gives the deterministic day/night cycle
/// (period 70π² ≈ 691 time units); the noise models cloud cover.
///
/// Note on |N(t)|: the paper prints `10·N(t)·cos(t/70π)·cos(t/70π)`, which
/// with N ~ N(0,1) would be negative half the time — but harvested power is
/// physically non-negative and the paper's Figure 5 shows a non-negative
/// signal peaking near 20.  Taking the magnitude reproduces that plot
/// exactly in shape and scale (mean power A·√(2/π)·½ ≈ 3.99 for A = 10).
/// See DESIGN.md §4.
///
/// The noise is presampled once per `step` (default 1 time unit) from a
/// seeded generator and held constant within the step, making the source a
/// deterministic, replayable, piecewise-constant trace — which is what lets
/// the OraclePredictor "know the future" for ablations.

#include <cstdint>
#include <string>
#include <vector>

#include "energy/source.hpp"

namespace eadvfs::energy {

struct SolarSourceConfig {
  double amplitude = 10.0;       ///< A in eq. 13.
  double cos_divisor = 70.0 * 3.14159265358979323846;  ///< argument divisor (70π).
  Time step = 1.0;               ///< noise resampling interval.
  Time horizon = 10'000.0;       ///< presampled span; beyond it the noise wraps.
  std::uint64_t seed = 1;        ///< noise stream seed.
};

class SolarSource final : public EnergySource {
 public:
  explicit SolarSource(const SolarSourceConfig& config);

  [[nodiscard]] Power power_at(Time t) const override;
  [[nodiscard]] Time piece_end(Time t) const override;
  [[nodiscard]] std::string name() const override;

  /// Analytic long-run mean power of eq. 13 with |N|:
  /// A * E|N| * E[cos²] = A * sqrt(2/π) * 1/2.
  [[nodiscard]] static Power analytic_mean_power(double amplitude = 10.0);

  [[nodiscard]] const SolarSourceConfig& config() const { return config_; }

  /// The deterministic day/night cycle length, 70π² for the default divisor
  /// (the cos² squared-envelope has period π·divisor).
  [[nodiscard]] Time cycle_period() const;

 private:
  SolarSourceConfig config_;
  std::vector<Power> samples_;  ///< P_S at each step start, one full horizon.

  [[nodiscard]] std::size_t index_for(Time t) const;
};

}  // namespace eadvfs::energy
