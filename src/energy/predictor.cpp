#include "energy/predictor.hpp"

#include <stdexcept>

namespace eadvfs::energy {

OraclePredictor::OraclePredictor(std::shared_ptr<const EnergySource> source)
    : source_(std::move(source)) {
  if (!source_) throw std::invalid_argument("OraclePredictor: null source");
}

void OraclePredictor::observe(Time /*t0*/, Time /*t1*/, Energy /*harvested*/) {}

Energy OraclePredictor::predict(Time now, Time until) const {
  if (until < now) throw std::invalid_argument("OraclePredictor: until < now");
  return source_->energy_between(now, until);
}

std::string OraclePredictor::name() const { return "oracle"; }

ConstantPredictor::ConstantPredictor(Power mean_power) : mean_power_(mean_power) {
  if (mean_power < 0.0)
    throw std::invalid_argument("ConstantPredictor: negative power");
}

void ConstantPredictor::observe(Time /*t0*/, Time /*t1*/, Energy /*harvested*/) {}

Energy ConstantPredictor::predict(Time now, Time until) const {
  if (until < now) throw std::invalid_argument("ConstantPredictor: until < now");
  return mean_power_ * (until - now);
}

std::string ConstantPredictor::name() const {
  return "constant(" + std::to_string(mean_power_) + ")";
}

}  // namespace eadvfs::energy
