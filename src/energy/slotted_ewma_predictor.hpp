#pragma once

/// \file slotted_ewma_predictor.hpp
/// Kansal-style harvesting prediction (paper refs [6][9]): the source is
/// assumed (quasi-)periodic with known cycle length; the cycle is divided
/// into K equal slots, and for each slot an exponentially-weighted moving
/// average of the observed mean power is maintained across cycles.
/// Prediction integrates the per-slot estimates over the query window.
///
/// This is the default predictor for the paper-reproduction experiments:
/// it is what "tracing the P_S(t) profile" (paper §5.1) concretely means in
/// the literature the paper cites.

#include <string>
#include <vector>

#include "energy/predictor.hpp"

namespace eadvfs::energy {

struct SlottedEwmaConfig {
  Time cycle = 690.8;     ///< source cycle length (70π² for eq. 13).
  std::size_t slots = 24; ///< slots per cycle.
  double alpha = 0.3;     ///< EWMA weight of the newest cycle's observation.
  Power prior = 0.0;      ///< per-slot estimate before any observation.
};

class SlottedEwmaPredictor final : public EnergyPredictor {
 public:
  explicit SlottedEwmaPredictor(const SlottedEwmaConfig& config);

  void observe(Time t0, Time t1, Energy harvested) override;
  [[nodiscard]] Energy predict(Time now, Time until) const override;
  [[nodiscard]] std::string name() const override;

  /// Current mean-power estimate for a slot (post-EWMA, blended with any
  /// partial observation of the ongoing cycle).
  [[nodiscard]] Power slot_estimate(std::size_t slot) const;

  [[nodiscard]] const SlottedEwmaConfig& config() const { return config_; }

 private:
  struct Slot {
    Power ewma = 0.0;        ///< estimate from completed cycles.
    bool seeded = false;     ///< has ewma ever been updated?
    Energy pending_energy = 0.0;  ///< accumulation within the current pass.
    Time pending_time = 0.0;
  };

  SlottedEwmaConfig config_;
  Time slot_width_;
  std::vector<Slot> slots_;
  long long current_global_slot_ = -1;  ///< global slot index being filled.

  /// Fold a slot's pending accumulation into its EWMA.
  void finalize_slot(std::size_t slot);

  /// Global slot index (grows monotonically over cycles) containing t.
  [[nodiscard]] long long global_slot(Time t) const;
};

}  // namespace eadvfs::energy
