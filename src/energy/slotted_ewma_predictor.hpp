#pragma once

/// \file slotted_ewma_predictor.hpp
/// Kansal-style harvesting prediction (paper refs [6][9]): the source is
/// assumed (quasi-)periodic with known cycle length; the cycle is divided
/// into K equal slots, and for each slot an exponentially-weighted moving
/// average of the observed mean power is maintained across cycles.
/// Prediction integrates the per-slot estimates over the query window.
///
/// This is the default predictor for the paper-reproduction experiments:
/// it is what "tracing the P_S(t) profile" (paper §5.1) concretely means in
/// the literature the paper cites.

#include <string>
#include <vector>

#include "energy/predictor.hpp"

namespace eadvfs::energy {

struct SlottedEwmaConfig {
  Time cycle = 690.8;     ///< source cycle length (70π² for eq. 13).
  std::size_t slots = 24; ///< slots per cycle.
  double alpha = 0.3;     ///< EWMA weight of the newest cycle's observation.
  Power prior = 0.0;      ///< per-slot estimate before any observation.
};

class SlottedEwmaPredictor final : public EnergyPredictor {
 public:
  explicit SlottedEwmaPredictor(const SlottedEwmaConfig& config);

  void observe(Time t0, Time t1, Energy harvested) override;
  [[nodiscard]] Energy predict(Time now, Time until) const override;
  [[nodiscard]] std::string name() const override;

  /// Current mean-power estimate for a slot (post-EWMA, blended with any
  /// partial observation of the ongoing cycle).
  [[nodiscard]] Power slot_estimate(std::size_t slot) const;

  [[nodiscard]] const SlottedEwmaConfig& config() const { return config_; }

 private:
  struct Slot {
    Power ewma = 0.0;        ///< estimate from completed cycles.
    bool seeded = false;     ///< has ewma ever been updated?
    Energy pending_energy = 0.0;  ///< accumulation within the current pass.
    Time pending_time = 0.0;
  };

  SlottedEwmaConfig config_;
  Time slot_width_;
  std::vector<Slot> slots_;
  long long current_global_slot_ = -1;  ///< global slot index being filled.

  /// Slot-cursor cache: observe() runs once per engine segment and predict()
  /// once per scheduling decision, and consecutive queries almost always land
  /// in the same slot (slots are ~20x longer than engine segments), so the
  /// floor-division in global_slot() is hoisted behind a range check.  The
  /// cache is mutable because predict() is logically const; the predictor is
  /// single-run/single-threaded state already (observe mutates it).
  mutable long long cached_g_ = 0;
  mutable Time cached_start_ = 0.0;
  mutable Time cached_end_ = -1.0;        ///< (g+1)*width; invalid initially.
  mutable Time cached_guard_end_ = -1.0;  ///< cache valid on [start, guard_end).
  mutable std::size_t cached_index_ = 0;  ///< g mod slots.

  /// Fold a slot's pending accumulation into its EWMA.
  void finalize_slot(std::size_t slot);

  /// Global slot index (grows monotonically over cycles) containing t.
  [[nodiscard]] long long global_slot(Time t) const;

  /// global_slot(t) through the cursor cache.  Refreshes cached_end_ /
  /// cached_index_ as a side effect; bit-for-bit equal to global_slot (the
  /// guard band keeps boundary-adjacent queries on the exact slow path).
  long long slot_of(Time t) const;

  /// slot_estimate without the bounds check — the predict/observe inner
  /// loops only ever produce indices already reduced mod config_.slots.
  [[nodiscard]] Power estimate_unchecked(std::size_t slot) const {
    const Slot& s = slots_[slot];
    if (s.seeded) return s.ewma;
    if (s.pending_time > 0.0) return s.pending_energy / s.pending_time;
    return config_.prior;
  }
};

}  // namespace eadvfs::energy
