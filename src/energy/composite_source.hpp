#pragma once

/// \file composite_source.hpp
/// Combinators over energy sources: scaling (panel size / converter
/// efficiency sweeps) and summation (hybrid harvesters, e.g. solar +
/// vibration).  Both preserve the piecewise-constant contract.

#include <memory>
#include <string>

#include "energy/source.hpp"

namespace eadvfs::energy {

/// P(t) = factor * inner(t).
class ScaledSource final : public EnergySource {
 public:
  ScaledSource(std::shared_ptr<const EnergySource> inner, double factor);

  [[nodiscard]] Power power_at(Time t) const override;
  [[nodiscard]] Time piece_end(Time t) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::shared_ptr<const EnergySource> inner_;
  double factor_;
};

/// P(t) = a(t) + b(t).  Piece boundaries are the union of both inputs'.
class SumSource final : public EnergySource {
 public:
  SumSource(std::shared_ptr<const EnergySource> a,
            std::shared_ptr<const EnergySource> b);

  [[nodiscard]] Power power_at(Time t) const override;
  [[nodiscard]] Time piece_end(Time t) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::shared_ptr<const EnergySource> a_;
  std::shared_ptr<const EnergySource> b_;
};

}  // namespace eadvfs::energy
