#include "energy/running_average_predictor.hpp"

#include <stdexcept>

namespace eadvfs::energy {

RunningAveragePredictor::RunningAveragePredictor(Power prior_mean_power,
                                                 Time prior_weight)
    : prior_mean_(prior_mean_power), prior_weight_(prior_weight) {
  if (prior_mean_ < 0.0)
    throw std::invalid_argument("RunningAveragePredictor: negative prior");
  if (prior_weight_ < 0.0)
    throw std::invalid_argument("RunningAveragePredictor: negative prior weight");
}

void RunningAveragePredictor::observe(Time t0, Time t1, Energy harvested) {
  if (t1 < t0)
    throw std::invalid_argument("RunningAveragePredictor: t1 < t0");
  if (harvested < 0.0)
    throw std::invalid_argument("RunningAveragePredictor: negative harvest");
  observed_time_ += (t1 - t0);
  observed_energy_ += harvested;
}

Power RunningAveragePredictor::estimate() const {
  const double denom = prior_weight_ + observed_time_;
  if (denom <= 0.0) return prior_mean_;
  return (prior_mean_ * prior_weight_ + observed_energy_) / denom;
}

Energy RunningAveragePredictor::predict(Time now, Time until) const {
  if (until < now)
    throw std::invalid_argument("RunningAveragePredictor: until < now");
  return estimate() * (until - now);
}

std::string RunningAveragePredictor::name() const { return "running-average"; }

}  // namespace eadvfs::energy
