#pragma once

/// \file predictor.hpp
/// Harvested-energy prediction (paper §3.1: "What we need to do is to
/// predict P_S(t) by tracing its profile").  Both LSA and EA-DVFS consume
/// Ê_S(t1, t2), the predicted harvest over a future window; the engine feeds
/// every predictor the *actual* harvest of each elapsed segment via
/// `observe`, so predictors learn online exactly as a deployed system would.

#include <memory>
#include <string>

#include "energy/source.hpp"
#include "util/types.hpp"

namespace eadvfs::energy {

class EnergyPredictor {
 public:
  virtual ~EnergyPredictor() = default;

  /// The engine reports that `harvested` energy actually arrived during
  /// [t0, t1].  Called with non-overlapping, time-ordered segments.
  virtual void observe(Time t0, Time t1, Energy harvested) = 0;

  /// Predicted harvest over the future window [now, until], `until >= now`.
  /// Must return a finite value >= 0.
  [[nodiscard]] virtual Energy predict(Time now, Time until) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Perfect knowledge of the future: integrates the true (presampled,
/// deterministic) source.  Not realizable in deployment; used as the
/// upper-bound arm in the predictor ablation and to make scheduler tests
/// deterministic.
class OraclePredictor final : public EnergyPredictor {
 public:
  explicit OraclePredictor(std::shared_ptr<const EnergySource> source);

  void observe(Time t0, Time t1, Energy harvested) override;
  [[nodiscard]] Energy predict(Time now, Time until) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::shared_ptr<const EnergySource> source_;
};

/// Predicts a fixed mean power regardless of observations.  With power = 0
/// this is the fully pessimistic predictor ("never count on future energy"),
/// another ablation arm.
class ConstantPredictor final : public EnergyPredictor {
 public:
  explicit ConstantPredictor(Power mean_power);

  void observe(Time t0, Time t1, Energy harvested) override;
  [[nodiscard]] Energy predict(Time now, Time until) const override;
  [[nodiscard]] std::string name() const override;

 private:
  Power mean_power_;
};

}  // namespace eadvfs::energy
