#include "energy/storage.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace eadvfs::energy {

EnergyStorage::EnergyStorage(const StorageConfig& config)
    : config_(config), capacity_(config.capacity) {
  // NaN fails every ordered comparison, so each check is written to *accept*
  // a range (`!(x > 0)` rejects NaN) rather than reject the complement.
  if (!(capacity_ > 0.0) || std::isnan(capacity_))
    throw std::invalid_argument(
        "EnergyStorage: capacity must be a positive number");
  if (!(config_.charge_efficiency > 0.0) || !(config_.charge_efficiency <= 1.0))
    throw std::invalid_argument("EnergyStorage: efficiency must be in (0, 1]");
  if (!(config_.leakage >= 0.0) || !std::isfinite(config_.leakage))
    throw std::invalid_argument(
        "EnergyStorage: leakage must be a finite non-negative power");
  if (std::isnan(config_.initial))
    throw std::invalid_argument("EnergyStorage: initial level is NaN");
  initial_ = (config_.initial < 0.0) ? capacity_ : config_.initial;
  if (initial_ > capacity_)
    throw std::invalid_argument("EnergyStorage: initial level exceeds capacity");
  level_ = initial_;
}

EnergyStorage EnergyStorage::ideal(Energy capacity) {
  StorageConfig cfg;
  cfg.capacity = capacity;
  return EnergyStorage(cfg);
}

bool EnergyStorage::full() const {
  const Energy cap = effective_capacity();
  return util::approx_equal(level_, cap) || level_ >= cap;
}

bool EnergyStorage::empty() const {
  return util::approx_equal(level_, 0.0) || level_ <= 0.0;
}

Energy EnergyStorage::charge(Energy amount) {
  if (amount < 0.0) throw std::invalid_argument("EnergyStorage::charge: negative");
  const Energy stored_candidate = amount * config_.charge_efficiency;
  const Energy accepted = std::min(stored_candidate, headroom());
  level_ += accepted;
  total_charged_ += accepted;
  // Overflow is counted in *incoming* units: what the harvester produced
  // that did not end up in the storage (conversion loss + spill).
  const Energy overflow = amount - accepted;
  total_overflow_ += overflow;
  return overflow;
}

void EnergyStorage::discharge(Energy amount) {
  if (amount < 0.0) throw std::invalid_argument("EnergyStorage::discharge: negative");
  if (util::definitely_greater(amount, level_, 1e-6))
    throw std::logic_error("EnergyStorage::discharge: overdraw (engine bug)");
  level_ = util::snap_nonnegative(level_ - amount, 1e-6);
  total_discharged_ += amount;
}

Energy EnergyStorage::fault_drain(Energy amount) {
  if (!(amount >= 0.0))
    throw std::invalid_argument("EnergyStorage::fault_drain: negative amount");
  const Energy drained = std::min(amount, level_);
  level_ = util::snap_nonnegative(level_ - drained, 1e-6);
  total_fault_drained_ += drained;
  return drained;
}

Energy EnergyStorage::set_capacity_derate(double factor) {
  if (!(factor > 0.0) || !(factor <= 1.0))
    throw std::invalid_argument(
        "EnergyStorage::set_capacity_derate: factor must be in (0, 1]");
  derate_ = factor;
  const Energy spilled = std::max(0.0, level_ - effective_capacity());
  if (spilled > 0.0) {
    level_ = effective_capacity();
    total_fault_drained_ += spilled;
  }
  return spilled;
}

void EnergyStorage::leak(Time duration) {
  if (duration < 0.0) throw std::invalid_argument("EnergyStorage::leak: negative duration");
  if (config_.leakage == 0.0) return;
  const Energy lost = std::min(level_, config_.leakage * duration);
  level_ -= lost;
  total_leaked_ += lost;
}

}  // namespace eadvfs::energy
