#include "energy/storage.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace eadvfs::energy {

EnergyStorage::EnergyStorage(const StorageConfig& config)
    : config_(config), capacity_(config.capacity) {
  // NaN fails every ordered comparison, so each check is written to *accept*
  // a range (`!(x > 0)` rejects NaN) rather than reject the complement.
  if (!(capacity_ > 0.0) || std::isnan(capacity_))
    throw std::invalid_argument(
        "EnergyStorage: capacity must be a positive number");
  if (!(config_.charge_efficiency > 0.0) || !(config_.charge_efficiency <= 1.0))
    throw std::invalid_argument("EnergyStorage: efficiency must be in (0, 1]");
  if (!(config_.leakage >= 0.0) || !std::isfinite(config_.leakage))
    throw std::invalid_argument(
        "EnergyStorage: leakage must be a finite non-negative power");
  if (std::isnan(config_.initial))
    throw std::invalid_argument("EnergyStorage: initial level is NaN");
  initial_ = (config_.initial < 0.0) ? capacity_ : config_.initial;
  if (initial_ > capacity_)
    throw std::invalid_argument("EnergyStorage: initial level exceeds capacity");
  level_ = initial_;
}

EnergyStorage EnergyStorage::ideal(Energy capacity) {
  StorageConfig cfg;
  cfg.capacity = capacity;
  return EnergyStorage(cfg);
}

Energy EnergyStorage::fault_drain(Energy amount) {
  if (!(amount >= 0.0))
    throw std::invalid_argument("EnergyStorage::fault_drain: negative amount");
  const Energy drained = std::min(amount, level_);
  level_ = util::snap_nonnegative(level_ - drained, 1e-6);
  total_fault_drained_ += drained;
  return drained;
}

Energy EnergyStorage::set_capacity_derate(double factor) {
  if (!(factor > 0.0) || !(factor <= 1.0))
    throw std::invalid_argument(
        "EnergyStorage::set_capacity_derate: factor must be in (0, 1]");
  derate_ = factor;
  const Energy spilled = std::max(0.0, level_ - effective_capacity());
  if (spilled > 0.0) {
    level_ = effective_capacity();
    total_fault_drained_ += spilled;
  }
  return spilled;
}

}  // namespace eadvfs::energy
