#pragma once

/// \file operating_point.hpp
/// One DVFS operating point (paper §3.3): a clock frequency with its
/// relative speed S_n = f_n / f_max and active power draw P_n.

#include "util/types.hpp"

namespace eadvfs::proc {

struct OperatingPoint {
  double frequency_mhz = 0.0;  ///< nominal clock, informational.
  double speed = 1.0;          ///< S_n in (0, 1]; work completes at rate S_n.
  Power power = 0.0;           ///< P_n, active power at this point.

  /// Energy consumed per unit of work (work is measured at f_max):
  /// executing w work takes w / speed time at `power`, so P_n / S_n.
  /// EA-DVFS's premise requires this to be increasing in speed — validated
  /// by FrequencyTable.
  [[nodiscard]] double energy_per_work() const { return power / speed; }
};

}  // namespace eadvfs::proc
