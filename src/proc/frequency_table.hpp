#pragma once

/// \file frequency_table.hpp
/// The processor's menu of operating points, sorted by ascending speed.
/// Provides the two queries the schedulers need:
///   * the maximum point (LSA always runs there), and
///   * the minimum point that still fits a given amount of remaining work
///     into a given time window (paper ineq. 6).

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "proc/operating_point.hpp"
#include "util/math.hpp"

namespace eadvfs::proc {

class FrequencyTable {
 public:
  /// Points are sorted internally.  Validates: at least one point; speeds
  /// strictly increasing in (0, 1] with the fastest exactly 1.0; powers
  /// strictly increasing; energy-per-work non-decreasing in speed (slowing
  /// down must never cost energy, or DVFS-for-energy is meaningless).
  explicit FrequencyTable(std::vector<OperatingPoint> points);

  /// The paper's 5-point Intel XScale-like table (§5.1):
  /// 150/400/600/800/1000 MHz at 0.08/0.4/1.0/2.0/3.2 W.
  static FrequencyTable xscale();

  /// A reduced 2-point table (the motivational example of paper §2 uses a
  /// half-speed point at one third of the power): speeds {0.5, 1.0} with
  /// powers {p_max/3, p_max}.
  static FrequencyTable two_speed(Power p_max);

  /// An `n`-point table with evenly spaced speeds in (0, 1] and cubic
  /// power scaling P(S) = p_max * S^3 (classic CMOS model) — used by the
  /// frequency-granularity ablation.
  static FrequencyTable cubic(std::size_t n, Power p_max);

  // The queries below run on every scheduling decision; inline definitions
  // let the devirtualized scheduler kernels fold them into decide().
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const OperatingPoint& at(std::size_t index) const {
    return points_.at(index);
  }
  [[nodiscard]] const OperatingPoint& max_point() const {
    return points_.back();
  }
  [[nodiscard]] std::size_t max_index() const { return points_.size() - 1; }
  [[nodiscard]] Power max_power() const { return max_point().power; }

  /// Smallest index n such that `work / speed_n <= window`; nullopt when
  /// even full speed cannot fit the work (deadline unreachable).
  /// `work` >= 0; a zero-work query returns the slowest point.
  [[nodiscard]] std::optional<std::size_t> min_feasible(Work work,
                                                       Time window) const {
    if (work < 0.0) throw std::invalid_argument("min_feasible: negative work");
    if (work == 0.0) return 0;
    if (window <= 0.0) return std::nullopt;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      // w / S_n <= window, with a tolerance so that exact fits count (the
      // motivational examples rely on "exactly fills the window" stretches).
      if (work / points_[i].speed <= window + util::kEps) return i;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::string describe() const;

 private:
  std::vector<OperatingPoint> points_;
};

}  // namespace eadvfs::proc
