#include "proc/processor.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace eadvfs::proc {

Processor::Processor(FrequencyTable table, SwitchOverhead overhead,
                     Power idle_power)
    : table_(std::move(table)), overhead_(overhead), idle_power_(idle_power) {
  // Accept-a-range comparisons so NaN inputs are rejected too.
  if (!(overhead_.time >= 0.0) || !std::isfinite(overhead_.time) ||
      !(overhead_.energy >= 0.0) || !std::isfinite(overhead_.energy))
    throw std::invalid_argument(
        "Processor: switch overhead must be finite and non-negative");
  if (!(idle_power_ >= 0.0) || !std::isfinite(idle_power_))
    throw std::invalid_argument(
        "Processor: idle power must be finite and non-negative");
  if (idle_power_ > table_.at(0).power)
    throw std::invalid_argument(
        "Processor: idle power above the slowest active point is nonsensical");
}

void Processor::reset() {
  current_ = 0;
  switch_count_ = 0;
  busy_time_ = 0.0;
  idle_time_ = 0.0;
  stall_time_ = 0.0;
}

}  // namespace eadvfs::proc
