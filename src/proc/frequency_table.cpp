#include "proc/frequency_table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/math.hpp"

namespace eadvfs::proc {

FrequencyTable::FrequencyTable(std::vector<OperatingPoint> points)
    : points_(std::move(points)) {
  if (points_.empty())
    throw std::invalid_argument("FrequencyTable: no operating points");
  std::sort(points_.begin(), points_.end(),
            [](const OperatingPoint& a, const OperatingPoint& b) {
              return a.speed < b.speed;
            });
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const OperatingPoint& p = points_[i];
    // Written as accept-a-range so that NaN (which fails every comparison)
    // is rejected rather than slipping through.
    if (!(p.speed > 0.0 && p.speed <= 1.0))
      throw std::invalid_argument(
          "FrequencyTable: speed must be in (0, 1], got " +
          std::to_string(p.speed));
    if (!(p.power > 0.0) || !std::isfinite(p.power))
      throw std::invalid_argument(
          "FrequencyTable: power must be a positive number, got " +
          std::to_string(p.power));
    if (!(p.frequency_mhz > 0.0) || !std::isfinite(p.frequency_mhz))
      throw std::invalid_argument(
          "FrequencyTable: frequency must be a positive number, got " +
          std::to_string(p.frequency_mhz));
    if (i > 0) {
      if (p.speed <= points_[i - 1].speed)
        throw std::invalid_argument("FrequencyTable: duplicate speed " +
                                    std::to_string(p.speed));
      if (p.power <= points_[i - 1].power)
        throw std::invalid_argument(
            "FrequencyTable: power must increase with speed (P=" +
            std::to_string(p.power) + " at S=" + std::to_string(p.speed) +
            " does not exceed P=" + std::to_string(points_[i - 1].power) +
            " at S=" + std::to_string(points_[i - 1].speed) + ")");
      if (p.energy_per_work() + util::kEps < points_[i - 1].energy_per_work())
        throw std::invalid_argument(
            "FrequencyTable: energy-per-work must not decrease with speed");
    }
  }
  if (!util::approx_equal(points_.back().speed, 1.0))
    throw std::invalid_argument("FrequencyTable: fastest point must have speed 1");
}

FrequencyTable FrequencyTable::xscale() {
  return FrequencyTable({
      {150.0, 0.15, 0.08},
      {400.0, 0.40, 0.40},
      {600.0, 0.60, 1.00},
      {800.0, 0.80, 2.00},
      {1000.0, 1.00, 3.20},
  });
}

FrequencyTable FrequencyTable::two_speed(Power p_max) {
  if (p_max <= 0.0) throw std::invalid_argument("two_speed: p_max must be positive");
  return FrequencyTable({
      {500.0, 0.5, p_max / 3.0},
      {1000.0, 1.0, p_max},
  });
}

FrequencyTable FrequencyTable::cubic(std::size_t n, Power p_max) {
  if (n == 0) throw std::invalid_argument("cubic: need at least one point");
  if (p_max <= 0.0) throw std::invalid_argument("cubic: p_max must be positive");
  std::vector<OperatingPoint> points;
  points.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    const double speed = static_cast<double>(i) / static_cast<double>(n);
    points.push_back({1000.0 * speed, speed, p_max * speed * speed * speed});
  }
  return FrequencyTable(std::move(points));
}

std::string FrequencyTable::describe() const {
  std::ostringstream out;
  out << points_.size() << " operating points:";
  for (const auto& p : points_) {
    out << " [" << p.frequency_mhz << "MHz S=" << p.speed << " P=" << p.power
        << "W]";
  }
  return out.str();
}

}  // namespace eadvfs::proc
