#pragma once

/// \file processor.hpp
/// Stateful DVFS processor: the frequency table plus the current operating
/// point, switch counting, and an optional per-switch overhead model.
///
/// The paper assumes "the overhead from voltage switching is negligible"
/// (§5.1); the default SwitchOverhead is therefore zero, and the ablation
/// bench sweeps non-zero values to test how much that assumption matters.

#include <cstddef>
#include <stdexcept>

#include "proc/frequency_table.hpp"
#include "util/types.hpp"

namespace eadvfs::proc {

/// Cost of one frequency/voltage transition.
struct SwitchOverhead {
  Time time = 0.0;     ///< stall duration during the transition.
  Energy energy = 0.0; ///< extra energy drawn by the transition.
};

class Processor {
 public:
  /// `idle_power` is the draw while not executing (the paper assumes 0;
  /// a real XScale idles at tens of mW).  The engine models it, including
  /// brownout when the storage is empty and the harvest cannot cover it.
  explicit Processor(FrequencyTable table, SwitchOverhead overhead = {},
                     Power idle_power = 0.0);

  [[nodiscard]] const FrequencyTable& table() const { return table_; }
  [[nodiscard]] const SwitchOverhead& overhead_model() const { return overhead_; }
  [[nodiscard]] Power idle_power() const { return idle_power_; }

  /// Index of the operating point currently configured.
  [[nodiscard]] std::size_t current() const { return current_; }
  [[nodiscard]] const OperatingPoint& current_point() const {
    return table_.at(current_);
  }

  // switch_to and the note_* hooks fire on every engine segment; they are
  // inline so the devirtualized kernel absorbs them into the segment loop.

  /// Reconfigure to `index`.  Returns the overhead actually incurred
  /// (zero-cost when already at that point).
  SwitchOverhead switch_to(std::size_t index) {
    if (index >= table_.size())
      throw std::out_of_range("Processor::switch_to: bad operating point index");
    if (index == current_) return {};
    current_ = index;
    ++switch_count_;
    return overhead_;
  }

  /// Time-accounting hooks called by the engine.
  void note_busy(Time duration) {
    if (duration < 0.0)
      throw std::invalid_argument("note_busy: negative duration");
    busy_time_ += duration;
  }
  void note_idle(Time duration) {
    if (duration < 0.0)
      throw std::invalid_argument("note_idle: negative duration");
    idle_time_ += duration;
  }
  void note_stall(Time duration) {
    if (duration < 0.0)
      throw std::invalid_argument("note_stall: negative duration");
    stall_time_ += duration;
  }

  [[nodiscard]] std::size_t switch_count() const { return switch_count_; }
  [[nodiscard]] Time busy_time() const { return busy_time_; }
  [[nodiscard]] Time idle_time() const { return idle_time_; }
  [[nodiscard]] Time stall_time() const { return stall_time_; }

  /// Reset dynamic state (point back to slowest, counters to zero) so one
  /// Processor can be reused across repeated simulations.
  void reset();

 private:
  FrequencyTable table_;
  SwitchOverhead overhead_;
  Power idle_power_ = 0.0;
  std::size_t current_ = 0;
  std::size_t switch_count_ = 0;
  Time busy_time_ = 0.0;
  Time idle_time_ = 0.0;
  Time stall_time_ = 0.0;
};

}  // namespace eadvfs::proc
