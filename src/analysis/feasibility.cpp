#include "analysis/feasibility.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "task/releaser.hpp"
#include "util/math.hpp"

namespace eadvfs::analysis {

namespace {

struct HullPoint {
  double speed;
  double power;
};

/// Lower convex hull of {(0,0)} ∪ {(S_n, P_n)}, speeds ascending.
std::vector<HullPoint> lower_hull(const proc::FrequencyTable& table) {
  std::vector<HullPoint> points;
  points.push_back({0.0, 0.0});
  for (std::size_t i = 0; i < table.size(); ++i)
    points.push_back({table.at(i).speed, table.at(i).power});
  std::vector<HullPoint> hull;
  for (const HullPoint& p : points) {
    while (hull.size() >= 2) {
      const HullPoint& a = hull[hull.size() - 2];
      const HullPoint& b = hull[hull.size() - 1];
      // Remove b if it lies on/above segment a->p (non-convex corner).
      const double cross = (b.speed - a.speed) * (p.power - a.power) -
                           (p.speed - a.speed) * (b.power - a.power);
      if (cross <= 0.0) {
        hull.pop_back();
      } else {
        break;
      }
    }
    hull.push_back(p);
  }
  return hull;
}

}  // namespace

std::optional<Energy> min_energy_for_work(const proc::FrequencyTable& table,
                                          Work work, Time window) {
  if (work < 0.0)
    throw std::invalid_argument("min_energy_for_work: negative work");
  if (work == 0.0) return Energy{0.0};
  if (window <= 0.0) return std::nullopt;
  const double target_speed = work / window;
  if (target_speed > 1.0 + util::kEps) return std::nullopt;

  const std::vector<HullPoint> hull = lower_hull(table);
  for (std::size_t i = 1; i < hull.size(); ++i) {
    if (target_speed <= hull[i].speed + util::kEps) {
      const HullPoint& a = hull[i - 1];
      const HullPoint& b = hull[i];
      const double frac =
          (target_speed - a.speed) / (b.speed - a.speed);
      const double power = a.power + frac * (b.power - a.power);
      return power * window;
    }
  }
  // target_speed == 1 within epsilon: the last hull point is f_max.
  return hull.back().power * window;
}

std::string InfeasibilityWitness::describe() const {
  std::ostringstream out;
  out << "window [" << window_start << ", " << window_end << "] holds "
      << work << " mandatory work: ";
  if (kind == Kind::kTime) {
    out << "needs " << work << " time at full speed but only "
        << (window_end - window_start) << " is available";
  } else {
    out << "needs >= " << energy_needed << " energy but at most "
        << energy_available << " (full storage + harvest) can be supplied";
  }
  return out.str();
}

std::optional<InfeasibilityWitness> find_infeasibility(
    const std::vector<task::Job>& jobs, const energy::EnergySource& source,
    Energy capacity, const proc::FrequencyTable& table) {
  if (capacity <= 0.0)
    throw std::invalid_argument("find_infeasibility: capacity must be positive");
  if (jobs.empty()) return std::nullopt;

  // Sort once by deadline; collect distinct arrival instants.
  std::vector<task::Job> by_deadline = jobs;
  std::sort(by_deadline.begin(), by_deadline.end(),
            [](const task::Job& a, const task::Job& b) {
              return a.absolute_deadline < b.absolute_deadline;
            });
  std::vector<Time> arrivals;
  arrivals.reserve(jobs.size());
  for (const auto& j : jobs) arrivals.push_back(j.arrival);
  std::sort(arrivals.begin(), arrivals.end());
  arrivals.erase(std::unique(arrivals.begin(), arrivals.end()), arrivals.end());

  // For each window start t1 (a distinct arrival), sweep deadlines in
  // ascending order accumulating the work of jobs contained in the window.
  // The source integral is accumulated incrementally along the same sweep.
  for (Time t1 : arrivals) {
    Work work = 0.0;
    Time cursor = t1;
    Energy harvested = 0.0;
    for (const task::Job& job : by_deadline) {
      const Time t2 = job.absolute_deadline;
      if (t2 <= t1) continue;
      if (t2 > cursor) {
        harvested += source.energy_between(cursor, t2);
        cursor = t2;
      }
      if (job.arrival >= t1) {
        work += job.wcet;

        InfeasibilityWitness witness;
        witness.window_start = t1;
        witness.window_end = t2;
        witness.work = work;
        witness.energy_available = capacity + harvested;

        const std::optional<Energy> needed =
            min_energy_for_work(table, work, t2 - t1);
        if (!needed) {
          witness.kind = InfeasibilityWitness::Kind::kTime;
          witness.energy_needed = 0.0;
          return witness;
        }
        witness.energy_needed = *needed;
        if (util::definitely_greater(witness.energy_needed,
                                     witness.energy_available, 1e-7)) {
          witness.kind = InfeasibilityWitness::Kind::kEnergy;
          return witness;
        }
      }
    }
  }
  return std::nullopt;
}

namespace {

/// Expand a task set into the judged job list (deadline within horizon —
/// the simulator leaves later jobs unresolved as well).
std::vector<task::Job> expand_jobs_for_analysis(const task::TaskSet& task_set,
                                                Time horizon) {
  task::JobReleaser releaser(task_set, horizon);
  std::vector<task::Job> jobs;
  jobs.reserve(releaser.total_jobs());
  while (!releaser.exhausted()) {
    for (task::Job& job : releaser.release_due(releaser.next_arrival()))
      jobs.push_back(std::move(job));
  }
  std::erase_if(jobs, [horizon](const task::Job& j) {
    return j.absolute_deadline > horizon;
  });
  return jobs;
}

}  // namespace

std::optional<InfeasibilityWitness> find_infeasibility(
    const task::TaskSet& task_set, Time horizon,
    const energy::EnergySource& source, Energy capacity,
    const proc::FrequencyTable& table) {
  return find_infeasibility(expand_jobs_for_analysis(task_set, horizon), source,
                            capacity, table);
}

std::optional<Energy> min_capacity_lower_bound(
    const std::vector<task::Job>& jobs, const energy::EnergySource& source,
    const proc::FrequencyTable& table) {
  if (jobs.empty()) return Energy{0.0};

  std::vector<task::Job> by_deadline = jobs;
  std::sort(by_deadline.begin(), by_deadline.end(),
            [](const task::Job& a, const task::Job& b) {
              return a.absolute_deadline < b.absolute_deadline;
            });
  std::vector<Time> arrivals;
  arrivals.reserve(jobs.size());
  for (const auto& j : jobs) arrivals.push_back(j.arrival);
  std::sort(arrivals.begin(), arrivals.end());
  arrivals.erase(std::unique(arrivals.begin(), arrivals.end()), arrivals.end());

  Energy bound = 0.0;
  for (Time t1 : arrivals) {
    Work work = 0.0;
    Time cursor = t1;
    Energy harvested = 0.0;
    for (const task::Job& job : by_deadline) {
      const Time t2 = job.absolute_deadline;
      if (t2 <= t1) continue;
      if (t2 > cursor) {
        harvested += source.energy_between(cursor, t2);
        cursor = t2;
      }
      if (job.arrival < t1) continue;
      work += job.wcet;
      const std::optional<Energy> needed =
          min_energy_for_work(table, work, t2 - t1);
      if (!needed) return std::nullopt;  // time-infeasible window
      bound = std::max(bound, *needed - harvested);
    }
  }
  return bound;
}

std::optional<Energy> min_capacity_lower_bound(const task::TaskSet& task_set,
                                               Time horizon,
                                               const energy::EnergySource& source,
                                               const proc::FrequencyTable& table) {
  return min_capacity_lower_bound(expand_jobs_for_analysis(task_set, horizon),
                                  source, table);
}

Energy long_run_energy_shortfall(const task::TaskSet& task_set, Time horizon,
                                 const energy::EnergySource& source,
                                 Energy capacity,
                                 const proc::FrequencyTable& table) {
  if (horizon <= 0.0)
    throw std::invalid_argument("long_run_energy_shortfall: bad horizon");
  const Work total_work = task_set.utilization() * horizon;
  const std::optional<Energy> needed =
      min_energy_for_work(table, total_work, horizon);
  const Energy available = capacity + source.energy_between(0.0, horizon);
  if (!needed) return kHuge;  // cannot even fit the work in time
  return *needed > available ? *needed - available : 0.0;
}

}  // namespace eadvfs::analysis
