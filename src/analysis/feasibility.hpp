#pragma once

/// \file feasibility.hpp
/// Offline infeasibility analysis in the spirit of Moser et al.'s
/// schedulability conditions for regenerative energy (paper refs [7][10]).
///
/// For every *critical window* [t1, t2] — t1 an arrival instant, t2 a
/// deadline instant — the jobs wholly contained in the window (arrival >=
/// t1 and deadline <= t2) must be executed inside it by ANY correct
/// scheduler.  Two lower bounds therefore apply to every scheduling policy,
/// clairvoyant or not, at any DVFS operating points:
///
///   * time:   their total work w (measured at f_max) needs at least w time
///             units even at full speed, so  w <= t2 - t1  must hold;
///   * energy: executing one unit of work costs at least
///             min_n (P_n / S_n)  — the cheapest energy-per-work in the
///             frequency table — and the energy usable inside the window is
///             at most the full storage C at t1 plus everything harvested,
///             so  w * min_epw <= C + E_S(t1, t2)  must hold.
///
/// If either inequality fails for some window, the workload is infeasible:
/// *every* scheduler misses at least one deadline on this source trace.
/// (The converse does not hold — passing both tests does not guarantee a
/// schedule exists — so the result is an infeasibility *witness*, not a
/// schedulability proof; the tests validate exactly this one-sided claim
/// against the simulator.)

#include <optional>
#include <string>
#include <vector>

#include "energy/source.hpp"
#include "proc/frequency_table.hpp"
#include "task/job.hpp"
#include "task/task_set.hpp"

namespace eadvfs::analysis {

struct InfeasibilityWitness {
  enum class Kind {
    kTime,    ///< more mandatory work than wall-clock time in the window.
    kEnergy,  ///< more energy needed than storage + harvest can supply.
  };

  Kind kind = Kind::kEnergy;
  Time window_start = 0.0;
  Time window_end = 0.0;
  Work work = 0.0;                ///< mandatory work inside the window.
  Energy energy_needed = 0.0;     ///< work * cheapest energy-per-work.
  Energy energy_available = 0.0;  ///< C + E_S(window)  (energy witnesses).

  [[nodiscard]] std::string describe() const;
};

/// Scan all critical windows of an explicit job list.  Jobs may be in any
/// order.  Returns the first (most constrained found) witness, or nullopt
/// when no lower bound is violated.
[[nodiscard]] std::optional<InfeasibilityWitness> find_infeasibility(
    const std::vector<task::Job>& jobs, const energy::EnergySource& source,
    Energy capacity, const proc::FrequencyTable& table);

/// Convenience overload: expands a periodic task set over [0, horizon).
[[nodiscard]] std::optional<InfeasibilityWitness> find_infeasibility(
    const task::TaskSet& task_set, Time horizon,
    const energy::EnergySource& source, Energy capacity,
    const proc::FrequencyTable& table);

/// The minimum energy ANY schedule can spend to complete `work` (measured
/// at f_max) within a window of length `window` on this frequency table.
/// The bound is the lower convex hull of {(0, 0)} ∪ {(S_n, P_n)}: a window
/// that averages speed s* = work/window must average at least P_hull(s*)
/// power (time-sharing two hull points achieves it, so the bound is tight).
/// Returns nullopt when the work does not fit even at full speed.
[[nodiscard]] std::optional<Energy> min_energy_for_work(
    const proc::FrequencyTable& table, Work work, Time window);

/// A provable lower bound on the storage capacity ANY scheduler needs for
/// zero misses on this workload/source: the maximum, over all critical
/// windows, of (minimal energy for the window's mandatory work) − (energy
/// harvested inside the window).  C_min of every real scheduler — including
/// the Table-1 measurements — must lie at or above this number.  Returns 0
/// when harvest alone covers every window, and nullopt when some window is
/// infeasible in *time* (no capacity can ever help).
[[nodiscard]] std::optional<Energy> min_capacity_lower_bound(
    const std::vector<task::Job>& jobs, const energy::EnergySource& source,
    const proc::FrequencyTable& table);

/// Convenience overload over a periodic task set released on [0, horizon).
[[nodiscard]] std::optional<Energy> min_capacity_lower_bound(
    const task::TaskSet& task_set, Time horizon,
    const energy::EnergySource& source, const proc::FrequencyTable& table);

/// Long-run average check (a cheap screen before the O(n²) window scan):
/// over [0, horizon], utilization * P_max-work demand cannot exceed initial
/// storage + total harvest when executed at the cheapest energy-per-work.
/// Returns the energy shortfall (> 0 means provably infeasible in the long
/// run), or 0 when the average balance closes.
[[nodiscard]] Energy long_run_energy_shortfall(const task::TaskSet& task_set,
                                               Time horizon,
                                               const energy::EnergySource& source,
                                               Energy capacity,
                                               const proc::FrequencyTable& table);

}  // namespace eadvfs::analysis
