#include "sched/fixed_priority_scheduler.hpp"

#include <algorithm>

namespace eadvfs::sched {

sim::Decision FixedPriorityScheduler::decide(const sim::SchedulingContext& ctx) {
  const auto highest = std::min_element(
      ctx.ready->begin(), ctx.ready->end(),
      [](const task::Job& a, const task::Job& b) {
        const Time da = a.absolute_deadline - a.arrival;
        const Time db = b.absolute_deadline - b.arrival;
        if (da != db) return da < db;
        if (a.arrival != b.arrival) return a.arrival < b.arrival;
        return a.id < b.id;
      });
  if (sim::DecisionRecord* trace = ctx.trace) {
    // The engine pre-fills the record with the EDF front; this policy may
    // pick a different job, so re-point the record at the one it chose.
    trace->job = highest->id;
    trace->task_id = highest->task_id;
    trace->deadline = highest->absolute_deadline;
    trace->remaining = highest->remaining;
    trace->rule = "fixed-priority-full-speed";
  }
  return sim::Decision::run(highest->id, ctx.table->max_index());
}

std::string FixedPriorityScheduler::name() const { return "RM/DM"; }

}  // namespace eadvfs::sched
