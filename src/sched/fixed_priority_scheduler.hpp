#pragma once

/// \file fixed_priority_scheduler.hpp
/// Classical fixed-priority preemptive scheduling at f_max — rate-monotonic
/// when deadlines equal periods (priority = shorter relative deadline, i.e.
/// deadline-monotonic in general).  Energy-oblivious, like EdfScheduler.
///
/// Included as a substrate baseline: RM/DM is what most deployed RTOSes
/// actually run, it is *not* optimal (utilization bound ln 2 ≈ 0.693 for
/// implicit deadlines), and comparing it against the EDF-based algorithms
/// separates "misses caused by energy" from "misses caused by priority
/// inversion" in the experiment zoo.
///
/// Priorities are derived per job as (absolute_deadline − arrival), i.e.
/// the task's relative deadline, so the scheduler needs no task table and
/// works with explicit job lists too.  Ties break toward earlier arrival,
/// then lower job id (deterministic).

#include "sim/scheduler.hpp"

namespace eadvfs::sched {

class FixedPriorityScheduler final : public sim::Scheduler {
 public:
  [[nodiscard]] sim::Decision decide(const sim::SchedulingContext& ctx) override;
  [[nodiscard]] std::string name() const override;
  /// Fixed priorities deliberately deviate from EDF order.
  [[nodiscard]] bool guarantees_edf_order() const override { return false; }
};

}  // namespace eadvfs::sched
