#pragma once

/// \file edf_scheduler.hpp
/// Plain earliest-deadline-first at maximum frequency, completely
/// energy-oblivious.  This is (a) the classical baseline, (b) the provable
/// infinite-storage limit of EA-DVFS (paper §4.3), and (c) what both LSA
/// and EA-DVFS degenerate to when energy never runs low.

#include "sim/scheduler.hpp"

namespace eadvfs::sched {

class EdfScheduler final : public sim::Scheduler {
 public:
  [[nodiscard]] sim::Decision decide(const sim::SchedulingContext& ctx) override;
  [[nodiscard]] std::string name() const override;
};

}  // namespace eadvfs::sched
