#include "sched/fast_path.hpp"

#include "sched/factory.hpp"

namespace eadvfs::sched {

SchedulerVariant make_scheduler_variant(const std::string& name) {
  switch (parse_scheduler_kind(name)) {
    case SchedulerKind::kEdf: return SchedulerVariant{EdfScheduler{}};
    case SchedulerKind::kLsa: return SchedulerVariant{LsaScheduler{}};
    case SchedulerKind::kEaDvfs: return SchedulerVariant{EaDvfsScheduler{}};
    case SchedulerKind::kStaticEaDvfs:
      return SchedulerVariant{StaticEaDvfsScheduler{}};
    case SchedulerKind::kFixedPriority:
      return SchedulerVariant{FixedPriorityScheduler{}};
    case SchedulerKind::kGreedyDvfs:
      return SchedulerVariant{GreedyDvfsScheduler{}};
  }
  throw std::logic_error("make_scheduler_variant: unhandled kind");
}

sim::Scheduler& base_scheduler(SchedulerVariant& scheduler) {
  return std::visit([](auto& s) -> sim::Scheduler& { return s; }, scheduler);
}

sim::SimulationResult run_devirtualized(sim::Engine& engine,
                                        SchedulerVariant& scheduler) {
  return std::visit([&engine](auto& s) { return engine.run_as(s); }, scheduler);
}

sim::SimulationResult run_fast(sim::Engine& engine, sim::Scheduler& scheduler) {
  // One dynamic_cast per run (not per decision) buys a fully static hot
  // loop.  Probe order follows experiment frequency: the paper's headline
  // comparison is EA-DVFS vs LSA vs EDF.
  if (auto* s = dynamic_cast<EaDvfsScheduler*>(&scheduler))
    return engine.run_as(*s);
  if (auto* s = dynamic_cast<LsaScheduler*>(&scheduler))
    return engine.run_as(*s);
  if (auto* s = dynamic_cast<EdfScheduler*>(&scheduler))
    return engine.run_as(*s);
  if (auto* s = dynamic_cast<StaticEaDvfsScheduler*>(&scheduler))
    return engine.run_as(*s);
  if (auto* s = dynamic_cast<GreedyDvfsScheduler*>(&scheduler))
    return engine.run_as(*s);
  if (auto* s = dynamic_cast<FixedPriorityScheduler*>(&scheduler))
    return engine.run_as(*s);
  return engine.run();  // user-defined scheduler: virtual dispatch
}

}  // namespace eadvfs::sched
