#include "sched/edf_scheduler.hpp"

namespace eadvfs::sched {

sim::Decision EdfScheduler::decide(const sim::SchedulingContext& ctx) {
  const task::Job& job = ctx.edf_front();
  if (ctx.trace) ctx.trace->rule = "edf-full-speed";
  return sim::Decision::run(job.id, ctx.table->max_index());
}

std::string EdfScheduler::name() const { return "EDF"; }

}  // namespace eadvfs::sched
