#include "sched/lsa_scheduler.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace eadvfs::sched {

sim::Decision LsaScheduler::decide(const sim::SchedulingContext& ctx) {
  const task::Job& job = ctx.edf_front();
  const Time deadline = job.absolute_deadline;
  const std::size_t max_op = ctx.table->max_index();

  sim::DecisionRecord* trace = ctx.trace;
  if (deadline <= ctx.now + util::kEps) {
    // Past/at the deadline (only reachable under kContinueLate): nothing to
    // procrastinate for — run flat out.
    if (trace) trace->rule = "past-deadline";
    return sim::Decision::run(job.id, max_op);
  }

  const Energy predicted = ctx.predictor->predict(ctx.now, deadline);
  const Energy available = ctx.stored + predicted;
  const Time sr_max = available / ctx.table->max_power();
  const Time s2 = std::max(ctx.now, deadline - sr_max);
  if (trace) {
    trace->predicted = predicted;
    trace->used_prediction = true;
    trace->s2 = s2;
  }

  if (ctx.now >= s2 - util::kEps) {
    if (trace) trace->rule = "full-speed";
    return sim::Decision::run(job.id, max_op);
  }
  // Procrastinate; the engine will also re-invoke us on every arrival and
  // energy-source change, so s2 is continuously refined as the prediction
  // and stored energy evolve.
  if (trace) trace->rule = "procrastinate";
  return sim::Decision::idle_until(s2);
}

std::string LsaScheduler::name() const { return "LSA"; }

}  // namespace eadvfs::sched
