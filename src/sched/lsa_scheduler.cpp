#include "sched/lsa_scheduler.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace eadvfs::sched {

sim::Decision LsaScheduler::decide(const sim::SchedulingContext& ctx) {
  const task::Job& job = ctx.edf_front();
  const Time deadline = job.absolute_deadline;
  const std::size_t max_op = ctx.table->max_index();

  if (deadline <= ctx.now + util::kEps) {
    // Past/at the deadline (only reachable under kContinueLate): nothing to
    // procrastinate for — run flat out.
    return sim::Decision::run(job.id, max_op);
  }

  const Energy available = ctx.stored + ctx.predictor->predict(ctx.now, deadline);
  const Time sr_max = available / ctx.table->max_power();
  const Time s2 = std::max(ctx.now, deadline - sr_max);

  if (ctx.now >= s2 - util::kEps) {
    return sim::Decision::run(job.id, max_op);
  }
  // Procrastinate; the engine will also re-invoke us on every arrival and
  // energy-source change, so s2 is continuously refined as the prediction
  // and stored energy evolve.
  return sim::Decision::idle_until(s2);
}

std::string LsaScheduler::name() const { return "LSA"; }

}  // namespace eadvfs::sched
