#pragma once

/// \file static_ea_dvfs_scheduler.hpp
/// The *literal* reading of the paper's equations (5)–(9): s1, s2 and the
/// stretched frequency f_n are computed ONCE per job — from the energy
/// state when the job first becomes the earliest-deadline job — and then
/// followed open-loop (idle until s1, run f_n in [s1, s2), f_max after s2).
///
/// The repository's main EaDvfsScheduler instead re-evaluates the plan at
/// every event from the job's *remaining* work (the dynamic reading of the
/// paper's Figure 4 loop).  Keeping both lets the scheduler-zoo ablation
/// quantify what the re-evaluation buys: the static plan cannot react to
/// prediction error, to preemption by later arrivals, or to early
/// completions.

#include <map>

#include "sim/scheduler.hpp"

namespace eadvfs::sched {

class StaticEaDvfsScheduler final : public sim::Scheduler {
 public:
  [[nodiscard]] sim::Decision decide(const sim::SchedulingContext& ctx) override;
  [[nodiscard]] std::string name() const override;
  void reset() override;

  /// A fault invalidates every cached open-loop plan: the energy state the
  /// s1/s2/f_n computation was anchored to no longer holds, so each job is
  /// re-planned from its current remaining work at the next decision.
  void on_fault(const sim::FaultNotice& /*notice*/) override { plans_.clear(); }

 private:
  struct Plan {
    std::size_t op_index = 0;  ///< stretched operating point (f_n).
    Time s1 = 0.0;
    Time s2 = 0.0;
    bool feasible_slowdown = true;  ///< false: run f_max immediately.
  };

  /// Plans are keyed by job and kept for the run's duration (a few
  /// thousand entries over a 10k-unit horizon; cleared by reset()).
  std::map<task::JobId, Plan> plans_;

  [[nodiscard]] Plan make_plan(const sim::SchedulingContext& ctx,
                               const task::Job& job) const;
};

}  // namespace eadvfs::sched
