#pragma once

/// \file factory.hpp
/// Name-based scheduler construction for CLI tools and parameter sweeps.

#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace eadvfs::sched {

/// Construct a scheduler by name (case-insensitive):
/// "edf", "lsa", "ea-dvfs" (aliases "eadvfs", "ea_dvfs"), "ea-dvfs-static"
/// (alias "static"), "rm" (aliases "dm", "fixed-priority"), "greedy-dvfs"
/// (aliases "greedy", "greedy_dvfs").
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name);

/// Canonical names accepted by make_scheduler, for help text.
[[nodiscard]] std::vector<std::string> scheduler_names();

}  // namespace eadvfs::sched
