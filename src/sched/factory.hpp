#pragma once

/// \file factory.hpp
/// Name-based scheduler construction for CLI tools and parameter sweeps.

#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace eadvfs::sched {

/// The six built-in schedulers, as a parse result shared by the two
/// factories (heap-allocating make_scheduler and by-value
/// make_scheduler_variant in fast_path.hpp), so name/alias handling and
/// did-you-mean suggestions live in exactly one place.
enum class SchedulerKind {
  kEdf,
  kFixedPriority,
  kLsa,
  kEaDvfs,
  kStaticEaDvfs,
  kGreedyDvfs,
};

/// Parse a scheduler name (case-insensitive): "edf", "lsa", "ea-dvfs"
/// (aliases "eadvfs", "ea_dvfs"), "ea-dvfs-static" (alias "static"), "rm"
/// (aliases "dm", "fixed-priority"), "greedy-dvfs" (aliases "greedy",
/// "greedy_dvfs").  Throws std::invalid_argument (with a did-you-mean
/// suggestion) for unknown names.
[[nodiscard]] SchedulerKind parse_scheduler_kind(const std::string& name);

/// Construct a scheduler by name (see parse_scheduler_kind for the accepted
/// spellings).  Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name);

/// Canonical names accepted by make_scheduler, for help text.
[[nodiscard]] std::vector<std::string> scheduler_names();

}  // namespace eadvfs::sched
