#pragma once

/// \file ea_dvfs_scheduler.hpp
/// The paper's contribution (§4, Figure 4): Energy-Aware Dynamic Voltage and
/// Frequency Selection.
///
/// For the EDF job with absolute deadline D and remaining work w at time t:
///
///   1. Feasible slowdown (ineq. 6): the minimum operating point n such that
///      w / S_n <= D − t.
///   2. Available energy: A = E_C(t) + Ê_S(t, D).
///   3. Start times (eqs. 5–9):
///         sr_n   = A / P_n,    s1 = max(t, D − sr_n)
///         sr_max = A / P_max,  s2 = max(t, D − sr_max)
///   4. Policy (§4.3):
///         t >= s2          → run at f_max  (energy-plentiful case s1 == s2
///                            == t lands here too, reproducing rule 4a);
///         s1 <= t < s2     → run at f_n, planned switch to f_max at s2
///                            (prevents stealing time from future jobs);
///         t <  s1          → idle until s1 (insufficient energy even for
///                            the stretched execution; let the storage fill).
///
/// The paper evaluates these from the job's *arrival*; this implementation
/// re-evaluates with the *remaining* work at every decision point, which is
/// identical at arrival and strictly better informed afterwards — exactly
/// the continuous loop of the paper's Figure 4 pseudo-code.
///
/// Special cases handled explicitly:
///   * no feasible slowdown (even f_max cannot fit w into the window):
///     best-effort at f_max — the miss, if any, is the energy/timing
///     reality the metrics must record;
///   * minimum feasible point IS f_max: then s1 == s2 but energy may still
///     be short; the branch order above degenerates to LSA (procrastinate
///     until s2, run at full speed), which is the correct reading of the
///     paper's rule 4a (its "s1 == s2 ⇒ sufficient energy" derivation
///     assumes a strictly slower point exists).

#include "sim/scheduler.hpp"

namespace eadvfs::sched {

class EaDvfsScheduler final : public sim::Scheduler {
 public:
  [[nodiscard]] sim::Decision decide(const sim::SchedulingContext& ctx) override;
  [[nodiscard]] std::string name() const override;
  /// Step 1 recomputes ineq. (6) from the live remaining work every decision.
  [[nodiscard]] bool guarantees_min_feasible_frequency() const override {
    return true;
  }
};

}  // namespace eadvfs::sched
