#include "sched/greedy_dvfs_scheduler.hpp"

#include "util/math.hpp"

namespace eadvfs::sched {

sim::Decision GreedyDvfsScheduler::decide(const sim::SchedulingContext& ctx) {
  const task::Job& job = ctx.edf_front();
  const std::size_t max_op = ctx.table->max_index();
  sim::DecisionRecord* trace = ctx.trace;
  const Time window = job.absolute_deadline - ctx.now;
  if (window <= util::kEps) {
    if (trace) trace->rule = "past-deadline";
    return sim::Decision::run(job.id, max_op);
  }
  const auto feasible = ctx.table->min_feasible(job.remaining, window);
  if (trace) {
    if (feasible) {
      trace->has_min_feasible = true;
      trace->min_feasible_op = *feasible;
      trace->rule = "min-feasible";
    } else {
      trace->rule = "no-feasible-slowdown";
    }
  }
  return sim::Decision::run(job.id, feasible.value_or(max_op));
}

std::string GreedyDvfsScheduler::name() const { return "Greedy-DVFS"; }

}  // namespace eadvfs::sched
