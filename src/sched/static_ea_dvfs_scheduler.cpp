#include "sched/static_ea_dvfs_scheduler.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace eadvfs::sched {

StaticEaDvfsScheduler::Plan StaticEaDvfsScheduler::make_plan(
    const sim::SchedulingContext& ctx, const task::Job& job) const {
  Plan plan;
  const Time deadline = job.absolute_deadline;
  const Time window = deadline - ctx.now;
  const auto feasible = ctx.table->min_feasible(job.remaining, window);
  if (window <= util::kEps || !feasible) {
    plan.feasible_slowdown = false;
    return plan;
  }
  plan.op_index = *feasible;
  const Energy available = ctx.stored + ctx.predictor->predict(ctx.now, deadline);
  const Time sr_n = available / ctx.table->at(plan.op_index).power;
  const Time sr_max = available / ctx.table->max_power();
  plan.s1 = std::max(ctx.now, deadline - sr_n);
  plan.s2 = std::max(ctx.now, deadline - sr_max);
  return plan;
}

sim::Decision StaticEaDvfsScheduler::decide(const sim::SchedulingContext& ctx) {
  const task::Job& job = ctx.edf_front();
  const std::size_t max_op = ctx.table->max_index();
  sim::DecisionRecord* trace = ctx.trace;

  auto it = plans_.find(job.id);
  if (it == plans_.end()) {
    it = plans_.emplace(job.id, make_plan(ctx, job)).first;
  }
  const Plan& plan = it->second;
  if (trace && plan.feasible_slowdown) {
    // Trace the *cached* plan: the predictor was consulted when the plan was
    // made (at the job's first decision), not at this instant, so
    // used_prediction stays false on replays.
    trace->has_min_feasible = true;
    trace->min_feasible_op = plan.op_index;
    trace->s1 = plan.s1;
    trace->s2 = plan.s2;
  }

  if (!plan.feasible_slowdown) {
    if (trace) trace->rule = "no-feasible-slowdown";
    return sim::Decision::run(job.id, max_op);
  }
  if (ctx.now >= plan.s2 - util::kEps) {
    if (trace) trace->rule = "full-speed";
    return sim::Decision::run(job.id, max_op);
  }
  if (ctx.now >= plan.s1 - util::kEps) {
    if (trace) trace->rule = "stretch-min-feasible";
    return sim::Decision::run(job.id, plan.op_index, plan.s2);
  }
  if (trace) trace->rule = "wait-for-energy";
  return sim::Decision::idle_until(plan.s1);
}

std::string StaticEaDvfsScheduler::name() const { return "EA-DVFS-static"; }

void StaticEaDvfsScheduler::reset() { plans_.clear(); }

}  // namespace eadvfs::sched
