#pragma once

/// \file lsa_scheduler.hpp
/// The Lazy Scheduling Algorithm of Moser et al. (paper refs [7][10]) — the
/// baseline the paper compares EA-DVFS against.
///
/// LSA always executes at full power, but *procrastinates*: the EDF job is
/// started only once the system can sustain full power from now to the
/// job's deadline, i.e. at
///
///     s2 = max(now, D − sr_max),   sr_max = (E_C(now) + Ê_S(now, D)) / P_max
///
/// (paper eqs. 8–9).  Idling before s2 lets the harvester refill the storage
/// so that the eventual full-power burst does not die of energy starvation.
/// The paper's three LSA conditions (§1) are exactly "now >= s2".

#include "sim/scheduler.hpp"

namespace eadvfs::sched {

class LsaScheduler final : public sim::Scheduler {
 public:
  [[nodiscard]] sim::Decision decide(const sim::SchedulingContext& ctx) override;
  [[nodiscard]] std::string name() const override;
};

}  // namespace eadvfs::sched
