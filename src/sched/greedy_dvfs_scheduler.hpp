#pragma once

/// \file greedy_dvfs_scheduler.hpp
/// The strawman the paper's §4.3 (Figure 3) warns about: always stretch the
/// EDF job to the minimum feasible frequency and start immediately, with no
/// energy awareness and no planned switch back to full speed.  Greedy
/// stretching steals slack from future jobs — the paper's second worked
/// example shows it missing a deadline that EA-DVFS meets — and it also
/// never procrastinates, so it cannot bank harvest energy before a burst.
/// Included as an ablation baseline.

#include "sim/scheduler.hpp"

namespace eadvfs::sched {

class GreedyDvfsScheduler final : public sim::Scheduler {
 public:
  [[nodiscard]] sim::Decision decide(const sim::SchedulingContext& ctx) override;
  [[nodiscard]] std::string name() const override;
  /// Recomputes ineq. (6) from the live remaining work every decision.
  [[nodiscard]] bool guarantees_min_feasible_frequency() const override {
    return true;
  }
};

}  // namespace eadvfs::sched
