#include "sched/ea_dvfs_scheduler.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace eadvfs::sched {

sim::Decision EaDvfsScheduler::decide(const sim::SchedulingContext& ctx) {
  const task::Job& job = ctx.edf_front();
  const Time deadline = job.absolute_deadline;
  const std::size_t max_op = ctx.table->max_index();
  sim::DecisionRecord* trace = ctx.trace;

  const Time window = deadline - ctx.now;
  if (window <= util::kEps) {
    // Past/at the deadline (kContinueLate): no slack to trade, run flat out.
    if (trace) trace->rule = "past-deadline";
    return sim::Decision::run(job.id, max_op);
  }

  // Step 1 — minimum feasible frequency under ineq. (6).
  const auto feasible = ctx.table->min_feasible(job.remaining, window);
  if (!feasible) {
    // Even full speed cannot meet the deadline; best effort at f_max.
    if (trace) trace->rule = "no-feasible-slowdown";
    return sim::Decision::run(job.id, max_op);
  }
  const std::size_t n = *feasible;

  // Steps 2–3 — energy-feasible start times.
  const Energy predicted = ctx.predictor->predict(ctx.now, deadline);
  const Energy available = ctx.stored + predicted;
  const Time sr_n = available / ctx.table->at(n).power;
  const Time sr_max = available / ctx.table->max_power();
  const Time s1 = std::max(ctx.now, deadline - sr_n);
  const Time s2 = std::max(ctx.now, deadline - sr_max);
  if (trace) {
    trace->predicted = predicted;
    trace->used_prediction = true;
    trace->has_min_feasible = true;
    trace->min_feasible_op = n;
    trace->s1 = s1;
    trace->s2 = s2;
  }

  // Step 4 — the three-zone policy.
  if (ctx.now >= s2 - util::kEps) {
    if (trace) trace->rule = "full-speed";
    return sim::Decision::run(job.id, max_op);
  }
  if (ctx.now >= s1 - util::kEps) {
    // Stretched execution; the engine must re-ask us at s2 so the planned
    // switch to full speed (the "don't steal from future tasks" rule of
    // §4.3) happens even if no other event intervenes.
    if (trace) trace->rule = "stretch-min-feasible";
    return sim::Decision::run(job.id, n, s2);
  }
  if (trace) trace->rule = "wait-for-energy";
  return sim::Decision::idle_until(s1);
}

std::string EaDvfsScheduler::name() const { return "EA-DVFS"; }

}  // namespace eadvfs::sched
