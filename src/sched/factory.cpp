#include "sched/factory.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "sched/ea_dvfs_scheduler.hpp"
#include "sched/edf_scheduler.hpp"
#include "sched/fixed_priority_scheduler.hpp"
#include "sched/greedy_dvfs_scheduler.hpp"
#include "sched/lsa_scheduler.hpp"
#include "sched/static_ea_dvfs_scheduler.hpp"
#include "util/suggest.hpp"

namespace eadvfs::sched {

namespace {
std::string lowered(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}
}  // namespace

SchedulerKind parse_scheduler_kind(const std::string& name) {
  const std::string key = lowered(name);
  if (key == "edf") return SchedulerKind::kEdf;
  if (key == "lsa") return SchedulerKind::kLsa;
  if (key == "ea-dvfs" || key == "eadvfs" || key == "ea_dvfs")
    return SchedulerKind::kEaDvfs;
  if (key == "ea-dvfs-static" || key == "ea_dvfs_static" || key == "static")
    return SchedulerKind::kStaticEaDvfs;
  if (key == "rm" || key == "dm" || key == "fixed-priority")
    return SchedulerKind::kFixedPriority;
  if (key == "greedy-dvfs" || key == "greedy" || key == "greedy_dvfs")
    return SchedulerKind::kGreedyDvfs;
  // Same did-you-mean courtesy util::ArgParser gives unknown flags, over the
  // canonical names and every accepted alias.
  std::string message = "unknown scheduler: " + name;
  static const std::vector<std::string> accepted = {
      "edf",           "lsa",           "ea-dvfs",     "eadvfs",
      "ea_dvfs",       "ea-dvfs-static", "ea_dvfs_static", "static",
      "rm",            "dm",            "fixed-priority", "greedy-dvfs",
      "greedy",        "greedy_dvfs"};
  if (const std::string near = util::closest_match(key, accepted); !near.empty())
    message += " (did you mean '" + near + "'?)";
  throw std::invalid_argument(message);
}

std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name) {
  switch (parse_scheduler_kind(name)) {
    case SchedulerKind::kEdf: return std::make_unique<EdfScheduler>();
    case SchedulerKind::kLsa: return std::make_unique<LsaScheduler>();
    case SchedulerKind::kEaDvfs: return std::make_unique<EaDvfsScheduler>();
    case SchedulerKind::kStaticEaDvfs:
      return std::make_unique<StaticEaDvfsScheduler>();
    case SchedulerKind::kFixedPriority:
      return std::make_unique<FixedPriorityScheduler>();
    case SchedulerKind::kGreedyDvfs:
      return std::make_unique<GreedyDvfsScheduler>();
  }
  throw std::logic_error("make_scheduler: unhandled kind");
}

std::vector<std::string> scheduler_names() {
  return {"edf", "rm", "lsa", "ea-dvfs", "ea-dvfs-static", "greedy-dvfs"};
}

}  // namespace eadvfs::sched
