#pragma once

/// \file fast_path.hpp
/// The devirtualized scheduler fast path.
///
/// Every built-in scheduler class is `final`, so when the engine's run loop
/// is instantiated with the concrete type (Engine::run_as<S>) each
/// decide()/on_fault()/reset() call resolves at compile time and inlines
/// into the segment loop — no vtable dispatch in the hot path.  This header
/// provides the three ways to reach those instantiations:
///
///   * SchedulerVariant / make_scheduler_variant — hold a built-in scheduler
///     by value (no heap) with the active type tracked in the variant tag;
///     the factory shares parse_scheduler_kind with make_scheduler, so the
///     two front doors accept the same names and aliases;
///   * run_devirtualized(engine, variant) — std::visit onto run_as;
///   * run_fast(engine, scheduler) — for call sites that hold a base
///     Scheduler& (e.g. exp::RunOptions::scheduler_override): probes the six
///     built-in types and falls back to the virtual-dispatch Engine::run()
///     for user-defined schedulers, which thereby keep working unchanged.
///
/// All paths produce bit-identical SimulationResults and observer streams —
/// the kernel is the same code either way (see engine_kernel.hpp's
/// correctness contract, and tests/sim/fast_path_equivalence_test.cpp).

#include <string>
#include <variant>

#include "sched/ea_dvfs_scheduler.hpp"
#include "sched/edf_scheduler.hpp"
#include "sched/fixed_priority_scheduler.hpp"
#include "sched/greedy_dvfs_scheduler.hpp"
#include "sched/lsa_scheduler.hpp"
#include "sched/static_ea_dvfs_scheduler.hpp"
#include "sim/engine.hpp"

namespace eadvfs::sched {

/// A built-in scheduler held by value with its concrete type in the tag.
using SchedulerVariant =
    std::variant<EdfScheduler, FixedPriorityScheduler, LsaScheduler,
                 EaDvfsScheduler, StaticEaDvfsScheduler, GreedyDvfsScheduler>;

/// Construct a scheduler by name into a variant (same names and aliases as
/// make_scheduler; throws std::invalid_argument for unknown names).
[[nodiscard]] SchedulerVariant make_scheduler_variant(const std::string& name);

/// Base-class view of the active alternative, e.g. for Engine construction.
[[nodiscard]] sim::Scheduler& base_scheduler(SchedulerVariant& scheduler);

/// Run `engine` through the kernel instantiated for the variant's active
/// scheduler type.  The variant must hold the scheduler the engine was
/// constructed with (pass base_scheduler() to the Engine constructor).
[[nodiscard]] sim::SimulationResult run_devirtualized(
    sim::Engine& engine, SchedulerVariant& scheduler);

/// Devirtualized run for a scheduler held by base reference: when it is one
/// of the six built-ins, dispatch once to the statically-typed kernel;
/// otherwise fall back to the virtual-dispatch Engine::run().  `scheduler`
/// must be the one the engine was constructed with.
[[nodiscard]] sim::SimulationResult run_fast(sim::Engine& engine,
                                             sim::Scheduler& scheduler);

}  // namespace eadvfs::sched
