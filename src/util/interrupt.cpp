#include "util/interrupt.hpp"

#include <csignal>

namespace eadvfs::util {

namespace {

std::atomic<bool> g_interrupted{false};

extern "C" void eadvfs_interrupt_handler(int signum) {
  // Async-signal-safety: std::atomic<bool> is lock-free on every platform
  // this builds for; nothing else happens here.  Restoring the default
  // disposition means a second Ctrl-C kills the process immediately instead
  // of being swallowed while the drain is in progress.
  g_interrupted.store(true, std::memory_order_relaxed);
  std::signal(signum, SIG_DFL);
}

}  // namespace

void install_interrupt_handlers() {
  std::signal(SIGINT, &eadvfs_interrupt_handler);
  std::signal(SIGTERM, &eadvfs_interrupt_handler);
}

const std::atomic<bool>* interrupt_flag() { return &g_interrupted; }

bool interrupt_requested() {
  return g_interrupted.load(std::memory_order_relaxed);
}

void request_interrupt() {
  g_interrupted.store(true, std::memory_order_relaxed);
}

void reset_interrupt_flag() {
  g_interrupted.store(false, std::memory_order_relaxed);
}

}  // namespace eadvfs::util
