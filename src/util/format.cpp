#include "util/format.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace eadvfs::util {

std::string format_double(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  (void)ec;  // 64 chars always suffice for a shortest-round-trip double
  return std::string(buffer, ptr);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace eadvfs::util
