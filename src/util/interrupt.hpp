#pragma once

/// \file interrupt.hpp
/// Cooperative SIGINT/SIGTERM handling for long-running sweeps.
///
/// The bench binaries and `eadvfs-sim` install a handler that merely sets a
/// flag; the parallel runner polls it between replications, stops dispatching
/// new work, drains what is in flight (so every completed replication is
/// journaled), and the binary exits with exit_code::kInterrupted.  A *second*
/// signal restores the default disposition, so a stuck drain can still be
/// killed the ordinary way.

#include <atomic>

namespace eadvfs::util {

/// Install the flag-setting handler for SIGINT and SIGTERM.  Idempotent.
void install_interrupt_handlers();

/// The flag the handler sets; pass to ParallelConfig::cancel.
[[nodiscard]] const std::atomic<bool>* interrupt_flag();

/// True once SIGINT/SIGTERM was received (or request_interrupt() called).
[[nodiscard]] bool interrupt_requested();

/// Set the flag programmatically — what the signal handler does, exposed for
/// tests and for embedding code that wants a graceful stop without signals.
void request_interrupt();

/// Clear the flag (tests only; real runs exit instead).
void reset_interrupt_flag();

}  // namespace eadvfs::util
