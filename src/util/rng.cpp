#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace eadvfs::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Xoshiro256ss::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256ss::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256ss::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Xoshiro256ss::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range requested
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t raw;
  do {
    raw = next();
  } while (raw >= limit);
  return lo + raw % span;
}

double Xoshiro256ss::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Marsaglia polar method: numerically robust, no trig.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Xoshiro256ss::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

void Xoshiro256ss::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
      0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (std::size_t i = 0; i < s_.size(); ++i) acc[i] ^= s_[i];
      }
      next();
    }
  }
  s_ = acc;
  has_spare_ = false;
}

}  // namespace eadvfs::util
