#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace eadvfs::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats RunningStats::from_moments(std::size_t n, double mean, double m2,
                                        double min, double max) {
  RunningStats s;
  s.n_ = n;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_halfwidth() const { return 1.96 * stderr_mean(); }

double quantile(std::vector<double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("quantile: empty sample set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace eadvfs::util
