#include "util/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace eadvfs::util {

std::string csv_quote(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::put(const std::string& raw) {
  if (row_started_) out_ << ',';
  out_ << raw;
  row_started_ = true;
}

CsvWriter& CsvWriter::cell(const std::string& value) {
  put(csv_quote(value));
  return *this;
}

CsvWriter& CsvWriter::cell(double value, int precision) {
  std::ostringstream tmp;
  tmp.precision(precision);
  tmp << value;
  put(tmp.str());
  return *this;
}

CsvWriter& CsvWriter::cell(long long value) {
  put(std::to_string(value));
  return *this;
}

void CsvWriter::end_row() {
  out_ << '\n';
  row_started_ = false;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) cell(c);
  end_row();
}

void CsvWriter::write_row(const std::vector<double>& cells, int precision) {
  for (double c : cells) cell(c, precision);
  end_row();
}

std::vector<std::string> csv_split(const std::string& line) {
  std::vector<std::string> cells;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      current += c;
    }
  }
  cells.push_back(std::move(current));
  return cells;
}

std::vector<std::vector<std::string>> csv_read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("csv_read_file: cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    rows.push_back(csv_split(line));
  }
  return rows;
}

}  // namespace eadvfs::util
