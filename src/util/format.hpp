#pragma once

/// \file format.hpp
/// Deterministic, locale-independent number/string formatting for the
/// machine-readable artifacts (metrics JSON, decision CSV).  The
/// observability determinism contract (docs/OBSERVABILITY.md) promises
/// byte-identical files for any --jobs value and across checkpoint-resume;
/// iostream formatting depends on locale and precision state, so these
/// artifacts route through std::to_chars instead — the shortest decimal
/// string that round-trips to the exact same double, always with '.' as the
/// separator.

#include <string>

namespace eadvfs::util {

/// Shortest round-trip decimal representation of `value` via
/// std::to_chars.  Non-finite values format as "inf"/"-inf"/"nan" (callers
/// producing strict JSON must keep such values out — the engine's
/// quantities are finite by construction).
[[nodiscard]] std::string format_double(double value);

/// `s` with the JSON string escapes applied (quote, backslash, control
/// characters), without surrounding quotes.
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace eadvfs::util
