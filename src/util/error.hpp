#pragma once

/// \file error.hpp
/// Structured error taxonomy for the experiment execution layer.
///
/// Long Monte-Carlo sweeps fail in ways a single `std::runtime_error` cannot
/// describe: several workers may fail concurrently, a replication may be
/// retried, a checkpoint may refuse to resume against a different
/// configuration, or a run may be interrupted and drained cleanly.  This
/// header names those outcomes — as exception types carrying per-replication
/// detail and as documented process exit codes — so scripts and CI can react
/// to *which* failure happened instead of pattern-matching stderr.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace eadvfs::util {

/// Process exit codes for the bench/tool binaries.  0/1/2 keep their
/// conventional meanings; the crash-safety layer adds distinct codes so a
/// wrapper script can tell "resume me" from "your config is wrong".
/// Documented in docs/EXPERIMENTS.md §"Crash safety".
namespace exit_code {
inline constexpr int kSuccess = 0;           ///< run completed cleanly.
inline constexpr int kFailure = 1;           ///< generic runtime/simulation error.
inline constexpr int kUsage = 2;             ///< CLI/scenario misuse.
inline constexpr int kPartialResults = 4;    ///< --keep-going finished with
                                             ///< permanently-failed replications.
inline constexpr int kManifestMismatch = 5;  ///< --resume against a checkpoint
                                             ///< written by a different config.
inline constexpr int kInterrupted = 6;       ///< SIGINT/SIGTERM: in-flight work
                                             ///< drained, journal flushed.
inline constexpr int kWatchdogTimeout = 7;   ///< a replication hung past its
                                             ///< deadline; process aborted so
                                             ///< --resume can recover.
}  // namespace exit_code

/// One permanently-failed replication: its index, how many attempts were
/// made (>= 1), and the final attempt's exception message.
struct ReplicationFailure {
  std::size_t index = 0;
  std::size_t attempts = 1;
  std::string message;
};

/// Thrown when more than one replication of a parallel run failed: carries
/// *every* observed failure (sorted by index) instead of silently dropping
/// all but one.  The first line of what() names the lowest-index failure —
/// deterministic for a fixed scenario — and one line per further failure
/// follows (the set of those depends on what was in flight at cancellation).
class CompositeRunError : public std::runtime_error {
 public:
  explicit CompositeRunError(std::vector<ReplicationFailure> failures);

  /// All observed failures, ascending by replication index; never empty.
  [[nodiscard]] const std::vector<ReplicationFailure>& failures() const {
    return failures_;
  }

 private:
  std::vector<ReplicationFailure> failures_;
};

/// Thrown when a checkpoint directory's manifest does not match the current
/// run's configuration — resuming would silently mix results from two
/// different experiments.  what() names the mismatching field and both
/// values.  Maps to exit_code::kManifestMismatch at the CLI surface.
class ManifestMismatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Format a failure list into the multi-line message CompositeRunError uses
/// (exposed for the keep-going reporting path, which lists the same detail
/// without throwing).
[[nodiscard]] std::string describe_failures(
    const std::vector<ReplicationFailure>& failures);

}  // namespace eadvfs::util
