#pragma once

/// \file histogram.hpp
/// Fixed-bin histogram, used for distributional views of experiment outputs
/// (e.g. per-task-set miss rates, per-job tardiness) and for test assertions
/// about the shape of the eq. 13 energy-source generator.

#include <cstddef>
#include <string>
#include <vector>

namespace eadvfs::util {

/// Equal-width histogram over [lo, hi); samples outside are counted in
/// underflow/overflow buckets rather than silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Lower edge of the given bin.
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  /// Upper edge of the given bin.
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Fraction of all samples (including under/overflow) inside this bin.
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Multi-line ASCII rendering (one row per bin with a bar), for bench
  /// binaries that want a quick visual without plotting tools.
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace eadvfs::util
