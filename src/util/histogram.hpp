#pragma once

/// \file histogram.hpp
/// Fixed-bin histogram, used for distributional views of experiment outputs
/// (e.g. per-task-set miss rates, per-job tardiness, per-device fleet
/// metrics) and for test assertions about the shape of the eq. 13
/// energy-source generator.

#include <cstddef>
#include <string>
#include <vector>

namespace eadvfs::util {

/// Equal-width histogram over [lo, hi); samples outside are counted in
/// underflow/overflow buckets rather than silently dropped, and NaN samples
/// in a dedicated side counter (casting NaN to an integer bin index is
/// undefined behavior, and a NaN in a million-device aggregate must be
/// visible, not crashed on).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  /// Merge another histogram of the *same shape* — identical [lo, hi) and
  /// bin count — summing per-bin counts, underflow, overflow, and NaN
  /// counters.  The fleet runner uses this to fold per-shard histograms into
  /// one population distribution; a shape mismatch means the shards were
  /// configured differently, so it throws std::invalid_argument instead of
  /// producing silently misaligned counts.
  void merge(const Histogram& other);

  /// Reconstruct a histogram from serialized counters (the inverse of
  /// reading count()/underflow()/overflow()/nan()); total() is re-derived as
  /// their sum, matching what the same adds would have produced.  Used to
  /// rebuild per-shard histograms from checkpoint-journal rows before
  /// merge().
  [[nodiscard]] static Histogram from_parts(double lo, double hi,
                                            const std::vector<std::size_t>& counts,
                                            std::size_t underflow,
                                            std::size_t overflow,
                                            std::size_t nan);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  /// NaN samples observed; included in total(), never binned.
  [[nodiscard]] std::size_t nan() const { return nan_; }
  [[nodiscard]] std::size_t total() const { return total_; }

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

  /// Lower edge of the given bin.
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  /// Upper edge of the given bin.
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Fraction of all samples (including under/overflow and NaN) inside this
  /// bin.
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Multi-line ASCII rendering (one row per bin with a bar), for bench
  /// binaries that want a quick visual without plotting tools.  Always ends
  /// with a `total: N` footer so an all-zero histogram is distinguishable
  /// from one that simply has flat bars.
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t nan_ = 0;
  std::size_t total_ = 0;
};

}  // namespace eadvfs::util
