#pragma once

/// \file json.hpp
/// Minimal JSON *reader* for configuration inputs (the fleet spec files).
///
/// The harness already *writes* JSON (metrics snapshots, BENCH_engine.json)
/// through deterministic formatting in format.hpp; this is the matching
/// front door for reading operator-supplied JSON without pulling in a
/// dependency.  Scope is deliberately small: the full JSON value grammar
/// (objects, arrays, strings with escapes, numbers, booleans, null), strict
/// parsing (trailing garbage, duplicate object keys and malformed literals
/// are errors with line/column positions), no extensions.  Numbers are
/// doubles — configuration values here are counts, seeds and physical
/// quantities, all representable exactly within 2^53.
///
/// Error philosophy matches the INI scenario front door: a config typo must
/// die loudly at parse time with a position, never surface later as a weird
/// simulation result.

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace eadvfs::util {

/// One parsed JSON value.  Object members keep their source order (vector of
/// pairs) so error messages and canonical re-serialization are stable.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : type_(Type::kNull) {}
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(Array v);
  static JsonValue make_object(Object v);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Checked accessors; throw std::runtime_error naming the actual type on
  /// mismatch (callers prepend the config-key context).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent (or when not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Human-readable type name ("object", "number", ...), for errors.
  [[nodiscard]] const char* type_name() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Recursive containers live behind shared_ptr so JsonValue stays copyable
  // without writing a deep-copy by hand; parsed documents are immutable.
  std::shared_ptr<const Array> array_;
  std::shared_ptr<const Object> object_;
};

/// Parse a complete JSON document.  Throws std::invalid_argument with
/// "json: <message> at line L, column C" on any syntax error, including
/// trailing non-whitespace after the document and duplicate object keys.
[[nodiscard]] JsonValue json_parse(const std::string& text);

/// json_parse() over the contents of `path`.  Throws std::runtime_error on
/// I/O failure; parse errors are prefixed with the path.
[[nodiscard]] JsonValue json_parse_file(const std::string& path);

}  // namespace eadvfs::util
