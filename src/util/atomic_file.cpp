#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <system_error>

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace eadvfs::util {

namespace {

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

std::string parent_of(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  return parent.empty() ? std::string(".") : parent.string();
}

/// fsync a path opened read-only (used for files after writing via streams,
/// and for directories after rename).  Best-effort on platforms where
/// directories cannot be fsync'd.
void fsync_path(const std::string& path, bool required) {
#if defined(_WIN32)
  (void)path;
  (void)required;
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (required) throw_io("open for fsync", path);
    return;
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && required) throw_io("fsync", path);
#endif
}

}  // namespace

void fsync_parent_dir(const std::string& path) {
  fsync_path(parent_of(path), /*required=*/false);
}

void ensure_directory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    throw std::runtime_error("could not create directory '" + dir +
                             "': " + ec.message());
}

void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  // Unique per-process temp name in the same directory (rename must not
  // cross filesystems); concurrent writers of the *same* path are the
  // caller's problem, but they at least cannot corrupt each other.
#if defined(_WIN32)
  const std::string tmp = path + ".tmp";
#else
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
#endif
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw_io("open for writing", tmp);
    try {
      writer(out);
    } catch (...) {
      out.close();
      std::remove(tmp.c_str());
      throw;
    }
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw_io("write", tmp);
    }
  }
#if !defined(_WIN32)
  // Durability before visibility: the temp file's bytes must be on disk
  // before the rename makes them the official contents.
  {
    const int fd = ::open(tmp.c_str(), O_RDONLY);
    if (fd < 0) {
      std::remove(tmp.c_str());
      throw_io("reopen for fsync", tmp);
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
      std::remove(tmp.c_str());
      throw_io("fsync", tmp);
    }
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw_io("rename into place", path);
  }
  fsync_parent_dir(path);
}

void write_file_atomic(const std::string& path, const std::string& content) {
  write_file_atomic(path, [&](std::ostream& out) { out << content; });
}

AppendFile::AppendFile(const std::string& path) : path_(path) {
#if defined(_WIN32)
  fd_ = -1;
  throw std::runtime_error("AppendFile: unsupported on this platform");
#else
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd_ < 0) throw_io("open for append", path);
#endif
}

AppendFile::~AppendFile() { close(); }

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

void AppendFile::append(const std::string& record) {
#if defined(_WIN32)
  (void)record;
  throw std::runtime_error("AppendFile: unsupported on this platform");
#else
  if (fd_ < 0) throw std::runtime_error("AppendFile: append on closed file");
  const char* data = record.data();
  std::size_t remaining = record.size();
  while (remaining > 0) {
    const ::ssize_t n = ::write(fd_, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io("append", path_);
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) throw_io("fsync", path_);
#endif
}

void AppendFile::close() {
#if !defined(_WIN32)
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
#endif
}

}  // namespace eadvfs::util
