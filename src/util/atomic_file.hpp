#pragma once

/// \file atomic_file.hpp
/// Crash-safe file output: write-temp-then-rename for whole files, and an
/// append-only fsync'd writer for journals.
///
/// Every CSV/manifest the harness emits goes through write_file_atomic(), so
/// an interrupt or crash can never leave a truncated file where a downstream
/// diff (tools/check_fault_determinism.cmake and friends) would read it as
/// data: readers see either the complete old contents or the complete new
/// contents, never a prefix.  The journal writer is the complementary
/// primitive for *incremental* durability — each appended record is flushed
/// and fsync'd before the call returns, so records survive SIGKILL.

#include <functional>
#include <string>

namespace eadvfs::util {

/// Atomically replace `path` with the bytes `writer` streams: the content is
/// written to a sibling temp file, flushed, fsync'd, and renamed over `path`
/// (rename(2) is atomic within a filesystem).  The containing directory is
/// fsync'd afterwards so the rename itself survives a power cut.  Throws
/// std::runtime_error on any I/O failure; the temp file is removed on error.
void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

/// Convenience overload for ready-made content.
void write_file_atomic(const std::string& path, const std::string& content);

/// Append-only writer with per-record durability, for checkpoint journals.
/// Records are written with a single write(2) call each and fsync'd, so a
/// reader after SIGKILL sees a sequence of complete records plus at most one
/// truncated tail (which loaders must ignore).
class AppendFile {
 public:
  AppendFile() = default;
  /// Opens (creating if needed) `path` for appending.  Throws
  /// std::runtime_error when the file cannot be opened.
  explicit AppendFile(const std::string& path);
  ~AppendFile();

  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Append `record` (the caller includes the trailing newline) and fsync.
  /// Throws std::runtime_error on I/O failure.
  void append(const std::string& record);

  /// Close the underlying descriptor (idempotent).
  void close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

/// fsync the directory containing `path` (no-op on platforms without
/// directory fsync).  Exposed for journal rotation.
void fsync_parent_dir(const std::string& path);

/// Create `dir` (and missing parents) if absent.  Throws std::runtime_error
/// when creation fails for any reason other than the directory existing.
void ensure_directory(const std::string& dir);

}  // namespace eadvfs::util
