#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <iostream>
#include <stdexcept>

namespace eadvfs::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level: " + name);
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  std::cerr << "[" << level_tag(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace eadvfs::util
