#include "util/error.hpp"

#include <algorithm>
#include <sstream>

namespace eadvfs::util {

namespace {

std::vector<ReplicationFailure> sorted_by_index(
    std::vector<ReplicationFailure> failures) {
  std::sort(failures.begin(), failures.end(),
            [](const ReplicationFailure& a, const ReplicationFailure& b) {
              return a.index < b.index;
            });
  return failures;
}

}  // namespace

std::string describe_failures(const std::vector<ReplicationFailure>& failures) {
  std::ostringstream out;
  out << failures.size() << " replication"
      << (failures.size() == 1 ? "" : "s") << " failed";
  for (const ReplicationFailure& f : failures) {
    out << "\n  replication " << f.index << " (after " << f.attempts
        << " attempt" << (f.attempts == 1 ? "" : "s") << "): " << f.message;
  }
  return out.str();
}

CompositeRunError::CompositeRunError(std::vector<ReplicationFailure> failures)
    : std::runtime_error(describe_failures(sorted_by_index(failures))),
      failures_(sorted_by_index(std::move(failures))) {}

}  // namespace eadvfs::util
