#include "util/ini.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace eadvfs::util {

namespace {

std::string trimmed(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

/// Strip an unquoted trailing comment (# or ;).
std::string strip_comment(const std::string& s) {
  const auto pos = s.find_first_of("#;");
  return pos == std::string::npos ? s : s.substr(0, pos);
}

}  // namespace

IniFile IniFile::parse(const std::string& text) {
  IniFile ini;
  std::istringstream stream(text);
  std::string line;
  std::string current_section;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::string content = trimmed(strip_comment(line));
    if (content.empty()) continue;
    if (content.front() == '[') {
      if (content.back() != ']')
        throw std::runtime_error("ini: unterminated section header at line " +
                                 std::to_string(line_no));
      current_section = trimmed(content.substr(1, content.size() - 2));
      if (ini.sections_.find(current_section) == ini.sections_.end()) {
        ini.sections_[current_section] = {};
        ini.section_order_.push_back(current_section);
      }
      continue;
    }
    const auto eq = content.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("ini: expected key = value at line " +
                               std::to_string(line_no));
    const std::string key = trimmed(content.substr(0, eq));
    const std::string value = trimmed(content.substr(eq + 1));
    if (key.empty())
      throw std::runtime_error("ini: empty key at line " + std::to_string(line_no));
    if (ini.sections_.find(current_section) == ini.sections_.end()) {
      ini.sections_[current_section] = {};
      ini.section_order_.push_back(current_section);
    }
    Section& section = ini.sections_[current_section];
    if (section.values.find(key) == section.values.end())
      section.key_order.push_back(key);
    section.values[key] = value;
  }
  return ini;
}

IniFile IniFile::load(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("ini: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse(buffer.str());
}

bool IniFile::has(const std::string& section, const std::string& key) const {
  const auto it = sections_.find(section);
  return it != sections_.end() &&
         it->second.values.find(key) != it->second.values.end();
}

std::optional<std::string> IniFile::get(const std::string& section,
                                        const std::string& key) const {
  const auto it = sections_.find(section);
  if (it == sections_.end()) return std::nullopt;
  const auto kv = it->second.values.find(key);
  if (kv == it->second.values.end()) return std::nullopt;
  return kv->second;
}

std::string IniFile::get_string(const std::string& section, const std::string& key,
                                const std::string& fallback) const {
  return get(section, key).value_or(fallback);
}

double IniFile::get_real(const std::string& section, const std::string& key,
                         double fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  std::size_t pos = 0;
  const double parsed = std::stod(*value, &pos);
  if (pos != value->size())
    throw std::invalid_argument("ini: [" + section + "] " + key +
                                " is not a number: " + *value);
  return parsed;
}

long long IniFile::get_integer(const std::string& section, const std::string& key,
                               long long fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  std::size_t pos = 0;
  const long long parsed = std::stoll(*value, &pos);
  if (pos != value->size())
    throw std::invalid_argument("ini: [" + section + "] " + key +
                                " is not an integer: " + *value);
  return parsed;
}

bool IniFile::get_bool(const std::string& section, const std::string& key,
                       bool fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  std::string lower = *value;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "true" || lower == "yes" || lower == "1" || lower == "on")
    return true;
  if (lower == "false" || lower == "no" || lower == "0" || lower == "off")
    return false;
  throw std::invalid_argument("ini: [" + section + "] " + key +
                              " is not a boolean: " + *value);
}

std::vector<std::string> IniFile::sections() const { return section_order_; }

std::vector<std::string> IniFile::keys(const std::string& section) const {
  const auto it = sections_.find(section);
  if (it == sections_.end()) return {};
  return it->second.key_order;
}

}  // namespace eadvfs::util
