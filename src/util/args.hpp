#pragma once

/// \file args.hpp
/// Tiny declarative CLI parser for the bench/example binaries.
///
/// Supported syntax: `--name value`, `--name=value`, and boolean flags
/// (`--verbose`).  Unknown options are an error with a "did you mean"
/// suggestion, and repeating an option is an error too — both are typo
/// protection for long-running experiment sweeps, where a silently dropped
/// or shadowed flag wastes hours before anyone notices.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace eadvfs::util {

class ArgParser {
 public:
  /// `program_description` is printed by help().
  explicit ArgParser(std::string program_description);

  /// Declare options (call before parse()).  `help_text` appears in help().
  void add_flag(const std::string& name, const std::string& help_text);
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help_text);

  /// Parse argv.  Returns false (after printing help) when `--help` was
  /// requested; throws std::invalid_argument on unknown, duplicated, or
  /// malformed options.
  bool parse(int argc, const char* const* argv);

  /// True when the option/flag was explicitly present on the command line
  /// (as opposed to holding its default).  Lets callers layer config-file
  /// values between defaults and explicit CLI overrides.
  [[nodiscard]] bool provided(const std::string& name) const;

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::string str(const std::string& name) const;
  [[nodiscard]] long long integer(const std::string& name) const;
  [[nodiscard]] double real(const std::string& name) const;

  /// Comma-separated list of doubles, e.g. `--capacities 200,300,500`.
  [[nodiscard]] std::vector<double> real_list(const std::string& name) const;

  /// Comma-separated list of strings.
  [[nodiscard]] std::vector<std::string> str_list(const std::string& name) const;

  /// Rendered help text.
  [[nodiscard]] std::string help() const;

 private:
  struct Spec {
    bool is_flag = false;
    std::string default_value;
    std::string help_text;
  };

  std::string description_;
  std::vector<std::string> order_;  // declaration order for help()
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
  std::map<std::string, bool> provided_;

  const Spec& spec_or_throw(const std::string& name) const;

  /// Closest declared option by edit distance, or "" when nothing is near
  /// enough to plausibly be a typo.  Powers "did you mean" suggestions.
  [[nodiscard]] std::string closest_option(const std::string& name) const;
};

}  // namespace eadvfs::util
