#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace eadvfs::util {

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.type_ = Type::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.type_ = Type::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.type_ = Type::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(Array v) {
  JsonValue out;
  out.type_ = Type::kArray;
  out.array_ = std::make_shared<const Array>(std::move(v));
  return out;
}

JsonValue JsonValue::make_object(Object v) {
  JsonValue out;
  out.type_ = Type::kObject;
  out.object_ = std::make_shared<const Object>(std::move(v));
  return out;
}

const char* JsonValue::type_name() const {
  switch (type_) {
    case Type::kNull: return "null";
    case Type::kBool: return "boolean";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "unknown";
}

namespace {
[[noreturn]] void type_error(const char* wanted, const char* got) {
  throw std::runtime_error(std::string("json: expected ") + wanted +
                           ", found " + got);
}
}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("boolean", type_name());
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_name());
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_name());
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_name());
  return *array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_name());
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : *object_)
    if (name == key) return &value;
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    skip_whitespace();
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after the document");
    return value;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::ostringstream what;
    what << "json: " << message << " at line " << line << ", column " << column;
    throw std::invalid_argument(what.str());
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_whitespace() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r'))
      ++pos_;
  }

  void expect(char c, const char* what) {
    if (at_end() || peek() != c) fail(std::string("expected ") + what);
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t len = 0;
    while (literal[len] != '\0') ++len;
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    if (at_end()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("malformed literal (expected 'true')");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("malformed literal (expected 'false')");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("malformed literal (expected 'null')");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{', "'{'");
    JsonValue::Object members;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"') fail("expected a '\"'-quoted object key");
      std::string key = parse_string();
      for (const auto& [existing, value] : members)
        if (existing == key) fail("duplicate object key \"" + key + "\"");
      skip_whitespace();
      expect(':', "':' after object key");
      skip_whitespace();
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (at_end()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return JsonValue::make_object(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[', "'['");
    JsonValue::Array elements;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(elements));
    }
    while (true) {
      skip_whitespace();
      elements.push_back(parse_value());
      skip_whitespace();
      if (at_end()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return JsonValue::make_array(std::move(elements));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) fail("unterminated escape sequence");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("non-hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point; surrogate pairs are out of
          // scope for config files and rejected.
          if (code >= 0xD800 && code <= 0xDFFF)
            fail("surrogate \\u escapes are not supported");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape sequence");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
      fail("malformed number");
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
        fail("malformed number (digits must follow '.')");
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
        fail("malformed number (digits must follow the exponent)");
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || end != last) fail("number out of range");
    return JsonValue::make_number(value);
  }
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  Parser parser(text);
  return parser.parse_document();
}

JsonValue json_parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("json: cannot open '" + path + "' for reading");
  std::ostringstream content;
  content << in.rdbuf();
  if (in.bad())
    throw std::runtime_error("json: I/O error reading '" + path + "'");
  try {
    return json_parse(content.str());
  } catch (const std::invalid_argument& error) {
    throw std::invalid_argument(path + ": " + error.what());
  }
}

}  // namespace eadvfs::util
