#pragma once

/// \file csv.hpp
/// Minimal CSV writing/reading.  Bench binaries dump every reproduced figure
/// as a CSV next to the printed table so results can be re-plotted; the
/// TraceSource energy model reads real harvest traces back in.

#include <iosfwd>
#include <string>
#include <vector>

namespace eadvfs::util {

/// Streaming CSV writer with RFC-4180-style quoting.
class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Write a full row of string cells (quoted as needed).
  void write_row(const std::vector<std::string>& cells);

  /// Write a row of doubles with the given precision.
  void write_row(const std::vector<double>& cells, int precision = 9);

  /// Append one cell to the current row.
  CsvWriter& cell(const std::string& value);
  CsvWriter& cell(double value, int precision = 9);
  CsvWriter& cell(long long value);

  /// Terminate the current row.
  void end_row();

 private:
  std::ostream& out_;
  bool row_started_ = false;

  void put(const std::string& raw);
};

/// Quote a single cell per RFC 4180 (only when needed).
[[nodiscard]] std::string csv_quote(const std::string& cell);

/// Parse one CSV line into cells, honouring quotes and escaped quotes.
[[nodiscard]] std::vector<std::string> csv_split(const std::string& line);

/// Read a whole CSV file into rows of cells.  Throws std::runtime_error on
/// I/O failure.  Blank lines are skipped.
[[nodiscard]] std::vector<std::vector<std::string>> csv_read_file(const std::string& path);

}  // namespace eadvfs::util
