#pragma once

/// \file math.hpp
/// Small numeric helpers shared by the continuous-time engine.  The engine
/// advances time by computing exact crossing instants (storage empty, job
/// complete, ...) from doubles, so robust approximate comparison is load
/// bearing: a segment of length 1e-12 must be treated as "no progress".

#include <algorithm>
#include <cmath>

namespace eadvfs::util {

/// Absolute tolerance used for time/energy comparisons inside the engine.
/// Quantities in this simulator are O(1)..O(1e4), so a fixed absolute
/// epsilon is appropriate (relative epsilon would misbehave near zero,
/// which is exactly where storage-empty logic operates).
inline constexpr double kEps = 1e-9;

/// True when |a - b| <= eps.
[[nodiscard]] constexpr bool approx_equal(double a, double b, double eps = kEps) {
  return std::abs(a - b) <= eps;
}

/// True when a < b by more than eps (strictly less, robust to noise).
[[nodiscard]] constexpr bool definitely_less(double a, double b, double eps = kEps) {
  return a < b - eps;
}

/// True when a > b by more than eps.
[[nodiscard]] constexpr bool definitely_greater(double a, double b, double eps = kEps) {
  return a > b + eps;
}

/// Clamp x into [lo, hi].
[[nodiscard]] constexpr double clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

/// Clamp tiny negative values (numerical dust) to exactly zero; values more
/// negative than eps are left alone so invariant assertions still fire.
[[nodiscard]] constexpr double snap_nonnegative(double x, double eps = kEps) {
  return (x < 0.0 && x >= -eps) ? 0.0 : x;
}

}  // namespace eadvfs::util
