#pragma once

/// \file stats.hpp
/// Streaming statistics used by the experiment harness to aggregate results
/// over thousands of simulated task sets without storing every sample.

#include <cstddef>
#include <vector>

namespace eadvfs::util {

/// Welford's online algorithm: numerically stable mean/variance in O(1)
/// memory.  Also tracks min/max.
class RunningStats {
 public:
  /// Add one observation.
  void add(double x);

  /// Merge another accumulator into this one (parallel-friendly, exact).
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }

  /// Mean of the observations; 0 when empty.
  [[nodiscard]] double mean() const { return mean_; }

  /// Unbiased sample variance (n-1 denominator); 0 when n < 2.
  [[nodiscard]] double variance() const;

  /// Sample standard deviation.
  [[nodiscard]] double stddev() const;

  /// Standard error of the mean (stddev / sqrt(n)); 0 when n < 2.
  [[nodiscard]] double stderr_mean() const;

  /// Half-width of the ~95% normal-approximation confidence interval on the
  /// mean (1.96 * stderr).  Adequate for the n >= 30 used in experiments.
  [[nodiscard]] double ci95_halfwidth() const;

  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  /// Sum of squared deviations from the mean (Welford's M2).  Together with
  /// count/mean/min/max this is the accumulator's full state; the fleet
  /// runner journals these five numbers per shard and rebuilds the
  /// accumulator with from_moments() on resume/merge.
  [[nodiscard]] double sum_squared_deviations() const { return m2_; }

  /// Reconstruct an accumulator from its serialized moments (exact inverse
  /// of reading count()/mean()/sum_squared_deviations()/min()/max()).
  [[nodiscard]] static RunningStats from_moments(std::size_t n, double mean,
                                                 double m2, double min,
                                                 double max);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Per-time-sample accumulation of a family of curves: sample i of curve k is
/// added with `add(i, y)`; `mean(i)` then gives the point-wise average curve.
/// Used for the paper's Figures 6/7 (remaining-energy curves averaged over
/// task sets and capacities).
class CurveAccumulator {
 public:
  explicit CurveAccumulator(std::size_t n_points) : points_(n_points) {}

  void add(std::size_t index, double y) { points_.at(index).add(y); }

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const RunningStats& at(std::size_t index) const { return points_.at(index); }
  [[nodiscard]] double mean(std::size_t index) const { return points_.at(index).mean(); }

 private:
  std::vector<RunningStats> points_;
};

/// Exact sample quantile (linear interpolation between order statistics).
/// `q` in [0, 1].  The input vector is copied; fine for experiment-sized data.
[[nodiscard]] double quantile(std::vector<double> samples, double q);

}  // namespace eadvfs::util
