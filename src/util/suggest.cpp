#include "util/suggest.hpp"

#include <algorithm>

namespace eadvfs::util {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t next = std::min(
          {row[j] + 1, row[j - 1] + 1, diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

std::string closest_match(const std::string& name,
                          const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_distance = name.size();  // never suggest a total rewrite
  for (const std::string& candidate : candidates) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_distance) {
      best = candidate;
      best_distance = d;
    }
  }
  return (best_distance <= 2 && !best.empty()) ? best : std::string{};
}

}  // namespace eadvfs::util
