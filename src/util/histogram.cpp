#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace eadvfs::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: requires lo < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: requires bins > 0");
}

void Histogram::add(double x) {
  ++total_;
  // NaN fails both range guards below, and casting it to size_t is UB — it
  // must be intercepted before the bin computation, not fall through it.
  if (std::isnan(x)) {
    ++nan_;
    return;
  }
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((x - lo_) / width);
  bin = std::min(bin, counts_.size() - 1);  // guard against fp edge at hi_
  ++counts_[bin];
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    std::ostringstream what;
    what.precision(17);
    what << "Histogram::merge: shape mismatch — this is [" << lo_ << ", "
         << hi_ << ") x " << counts_.size() << " bins, other is ["
         << other.lo_ << ", " << other.hi_ << ") x " << other.counts_.size()
         << " bins";
    throw std::invalid_argument(what.str());
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  nan_ += other.nan_;
  total_ += other.total_;
}

Histogram Histogram::from_parts(double lo, double hi,
                                const std::vector<std::size_t>& counts,
                                std::size_t underflow, std::size_t overflow,
                                std::size_t nan) {
  Histogram h(lo, hi, counts.size());
  h.counts_ = counts;
  h.underflow_ = underflow;
  h.overflow_ = overflow;
  h.nan_ = nan;
  h.total_ = underflow + overflow + nan;
  for (std::size_t c : counts) h.total_ += c;
  return h;
}

double Histogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin + 1);
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(std::llround(static_cast<double>(counts_[b]) /
                                              static_cast<double>(peak) *
                                              static_cast<double>(width)));
    out << '[';
    out.setf(std::ios::fixed);
    out.precision(2);
    out.width(9);
    out << bin_lo(b) << ',';
    out.width(9);
    out << bin_hi(b) << ") ";
    out << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  if (underflow_ > 0) out << "underflow: " << underflow_ << '\n';
  if (overflow_ > 0) out << "overflow:  " << overflow_ << '\n';
  if (nan_ > 0) out << "nan:       " << nan_ << '\n';
  out << "total: " << total_ << '\n';
  return out.str();
}

}  // namespace eadvfs::util
