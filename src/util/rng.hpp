#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation.
///
/// We deliberately avoid `std::normal_distribution` / `std::uniform_*`:
/// their output sequences are implementation-defined, which would make the
/// paper-reproduction experiments produce different numbers on different
/// standard libraries.  Everything here is bit-exact across platforms.

#include <array>
#include <cstdint>

namespace eadvfs::util {

/// SplitMix64 — tiny, fast generator.  Used to expand a single 64-bit seed
/// into the larger state vectors of better generators, and directly where a
/// cheap stream of independent seeds is needed (one per task set).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 raw bits.
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator.
/// Passes BigCrush; period 2^256 - 1.
class Xoshiro256ss {
 public:
  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64,
  /// as recommended by the xoshiro authors.
  explicit Xoshiro256ss(std::uint64_t seed);

  /// Next 64 raw bits.
  std::uint64_t next();

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Standard normal via Box–Muller (polar/basic form, cached spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Equivalent to the xoshiro `jump()`: advances 2^128 steps, giving a
  /// non-overlapping substream.  Handy for parallel replications.
  void jump();

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace eadvfs::util
