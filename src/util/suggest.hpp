#pragma once

/// \file suggest.hpp
/// Did-you-mean suggestions for small closed vocabularies (CLI options,
/// scheduler names, predictor names).  Extracted from ArgParser so every
/// front door that rejects an unknown name can offer the same near-miss
/// hint.

#include <cstddef>
#include <string>
#include <vector>

namespace eadvfs::util {

/// Classic DP (Levenshtein) edit distance.  The vocabularies this serves
/// are tiny, so O(n*m) per candidate is irrelevant next to the error path.
[[nodiscard]] std::size_t edit_distance(const std::string& a,
                                        const std::string& b);

/// The candidate closest to `name`, or "" when nothing is close enough.
/// Only near-misses are offered (distance <= 2 and strictly less than the
/// length of `name` — a typo is a couple of characters, not a total
/// rewrite).  Ties resolve to the earliest candidate, so pass candidates in
/// a deterministic order.
[[nodiscard]] std::string closest_match(const std::string& name,
                                        const std::vector<std::string>& candidates);

}  // namespace eadvfs::util
