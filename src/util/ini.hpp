#pragma once

/// \file ini.hpp
/// Minimal INI-style configuration reader for scenario files:
///
///     # comment            ; also a comment
///     [section]
///     key = value          # values keep internal spaces, edges trimmed
///
/// Used by the `eadvfs-sim` tool so full experiment scenarios can live in
/// version-controlled files instead of long command lines.  Key lookup is
/// case-sensitive; sections may repeat (later keys override earlier ones).

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace eadvfs::util {

class IniFile {
 public:
  IniFile() = default;

  /// Parse from text.  Throws std::runtime_error with a line number on
  /// malformed input (key outside any section is allowed under "").
  static IniFile parse(const std::string& text);

  /// Load from a file path (throws std::runtime_error when unreadable).
  static IniFile load(const std::string& path);

  [[nodiscard]] bool has(const std::string& section, const std::string& key) const;

  /// Raw string value, or nullopt when absent.
  [[nodiscard]] std::optional<std::string> get(const std::string& section,
                                               const std::string& key) const;

  /// Typed getters with defaults; throw std::invalid_argument when the
  /// stored text does not parse as the requested type.
  [[nodiscard]] std::string get_string(const std::string& section,
                                       const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_real(const std::string& section, const std::string& key,
                                double fallback) const;
  [[nodiscard]] long long get_integer(const std::string& section,
                                      const std::string& key,
                                      long long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& section, const std::string& key,
                              bool fallback) const;

  /// Section names in first-appearance order.
  [[nodiscard]] std::vector<std::string> sections() const;
  /// Keys of one section in first-appearance order.
  [[nodiscard]] std::vector<std::string> keys(const std::string& section) const;

 private:
  struct Section {
    std::map<std::string, std::string> values;
    std::vector<std::string> key_order;
  };
  std::map<std::string, Section> sections_;
  std::vector<std::string> section_order_;
};

}  // namespace eadvfs::util
