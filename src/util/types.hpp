#pragma once

/// \file types.hpp
/// Fundamental scalar quantities used across the simulator.
///
/// The simulation runs in abstract "time units" (the paper never names a
/// physical unit; its horizon is 10,000 units).  Power is in watts and energy
/// in watt-time-units — see DESIGN.md §4 ("Units") for how this reconciles
/// the paper's mixed mW / unit-less numbers.

namespace eadvfs {

/// Simulation time, in abstract time units.  Continuous (not slotted).
using Time = double;

/// Energy, in watt-time-units.
using Energy = double;

/// Power, in watts.
using Power = double;

/// Execution demand measured in seconds-at-maximum-frequency ("work units").
/// A job with wcet w run at relative speed S completes w work in w/S time.
using Work = double;

/// A value considered "infinite" for times/energies.  Using a large finite
/// number (rather than IEEE inf) keeps arithmetic like `D - sr` well defined.
inline constexpr double kHuge = 1e300;

}  // namespace eadvfs
