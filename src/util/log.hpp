#pragma once

/// \file log.hpp
/// Leveled stderr logging.  Kept intentionally simple: the simulator is a
/// library, so logging defaults to warnings-only and is globally adjustable
/// by the embedding binary (bench tools expose `--verbose`).

#include <sstream>
#include <string>

namespace eadvfs::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
[[nodiscard]] LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement:  LOG_AT(LogLevel::kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace eadvfs::util

#define EADVFS_LOG(level) ::eadvfs::util::LogLine(level)
#define EADVFS_LOG_DEBUG EADVFS_LOG(::eadvfs::util::LogLevel::kDebug)
#define EADVFS_LOG_INFO EADVFS_LOG(::eadvfs::util::LogLevel::kInfo)
#define EADVFS_LOG_WARN EADVFS_LOG(::eadvfs::util::LogLevel::kWarn)
#define EADVFS_LOG_ERROR EADVFS_LOG(::eadvfs::util::LogLevel::kError)
