#pragma once

/// \file flat_set.hpp
/// A sorted-vector set for small keys on hot paths.  std::set pays one heap
/// node per element and pointer-chases on every lookup; for the engine's
/// bookkeeping sets (a handful of job ids at a time) a contiguous sorted
/// vector with binary search is both faster and allocation-free after the
/// first few insertions.  Deterministic iteration order (ascending) for free.

#include <algorithm>
#include <cstddef>
#include <vector>

namespace eadvfs::util {

template <typename T>
class FlatSet {
 public:
  /// True when `value` is present.
  [[nodiscard]] bool contains(const T& value) const {
    const auto it = std::lower_bound(data_.begin(), data_.end(), value);
    return it != data_.end() && *it == value;
  }

  /// Insert `value`; returns false when it was already present.
  bool insert(const T& value) {
    const auto it = std::lower_bound(data_.begin(), data_.end(), value);
    if (it != data_.end() && *it == value) return false;
    data_.insert(it, value);
    return true;
  }

  /// Remove `value`; returns false when it was absent.
  bool erase(const T& value) {
    const auto it = std::lower_bound(data_.begin(), data_.end(), value);
    if (it == data_.end() || *it != value) return false;
    data_.erase(it);
    return true;
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  void clear() { data_.clear(); }
  void reserve(std::size_t n) { data_.reserve(n); }

  /// Ascending iteration.
  [[nodiscard]] auto begin() const { return data_.begin(); }
  [[nodiscard]] auto end() const { return data_.end(); }

 private:
  std::vector<T> data_;  ///< sorted ascending, unique.
};

}  // namespace eadvfs::util
