#include "util/args.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "util/suggest.hpp"

namespace eadvfs::util {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help_text) {
  if (specs_.count(name) != 0)
    throw std::logic_error("ArgParser: duplicate option --" + name);
  specs_[name] = Spec{true, "", help_text};
  order_.push_back(name);
  flags_[name] = false;
}

void ArgParser::add_option(const std::string& name, const std::string& default_value,
                           const std::string& help_text) {
  if (specs_.count(name) != 0)
    throw std::logic_error("ArgParser: duplicate option --" + name);
  specs_[name] = Spec{false, default_value, help_text};
  order_.push_back(name);
  values_[name] = default_value;
}

const ArgParser::Spec& ArgParser::spec_or_throw(const std::string& name) const {
  auto it = specs_.find(name);
  if (it == specs_.end())
    throw std::logic_error("ArgParser: undeclared option --" + name);
  return it->second;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      std::cout << help();
      return false;
    }
    if (token.rfind("--", 0) != 0)
      throw std::invalid_argument("unexpected positional argument: " + token);
    token = token.substr(2);

    std::string name = token;
    std::optional<std::string> inline_value;
    if (auto eq = token.find('='); eq != std::string::npos) {
      name = token.substr(0, eq);
      inline_value = token.substr(eq + 1);
    }

    auto it = specs_.find(name);
    if (it == specs_.end()) {
      std::string message = "unknown option --" + name;
      if (const std::string near = closest_option(name); !near.empty())
        message += " (did you mean --" + near + "?)";
      throw std::invalid_argument(message);
    }
    if (provided_[name])
      throw std::invalid_argument("option --" + name +
                                  " given more than once");

    if (it->second.is_flag) {
      if (inline_value)
        throw std::invalid_argument("flag --" + name + " does not take a value");
      flags_[name] = true;
    } else if (inline_value) {
      values_[name] = *inline_value;
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument("option --" + name + " expects a value");
      values_[name] = argv[++i];
    }
    provided_[name] = true;
  }
  return true;
}

std::string ArgParser::closest_option(const std::string& name) const {
  // specs_ is an ordered map, so ties resolve to the lexicographically
  // first candidate.
  std::vector<std::string> candidates;
  candidates.reserve(specs_.size());
  for (const auto& [candidate, spec] : specs_) candidates.push_back(candidate);
  return closest_match(name, candidates);
}

bool ArgParser::provided(const std::string& name) const {
  (void)spec_or_throw(name);  // typo protection
  const auto it = provided_.find(name);
  return it != provided_.end() && it->second;
}

bool ArgParser::flag(const std::string& name) const {
  if (!spec_or_throw(name).is_flag)
    throw std::logic_error("option --" + name + " is not a flag");
  return flags_.at(name);
}

std::string ArgParser::str(const std::string& name) const {
  if (spec_or_throw(name).is_flag)
    throw std::logic_error("option --" + name + " is a flag");
  return values_.at(name);
}

long long ArgParser::integer(const std::string& name) const {
  const std::string v = str(name);
  std::size_t pos = 0;
  const long long parsed = std::stoll(v, &pos);
  if (pos != v.size())
    throw std::invalid_argument("option --" + name + ": not an integer: " + v);
  return parsed;
}

double ArgParser::real(const std::string& name) const {
  const std::string v = str(name);
  std::size_t pos = 0;
  const double parsed = std::stod(v, &pos);
  if (pos != v.size())
    throw std::invalid_argument("option --" + name + ": not a number: " + v);
  return parsed;
}

std::vector<std::string> ArgParser::str_list(const std::string& name) const {
  std::vector<std::string> items;
  std::stringstream stream(str(name));
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

std::vector<double> ArgParser::real_list(const std::string& name) const {
  std::vector<double> items;
  for (const auto& s : str_list(name)) {
    std::size_t pos = 0;
    const double parsed = std::stod(s, &pos);
    if (pos != s.size())
      throw std::invalid_argument("option --" + name + ": not a number: " + s);
    items.push_back(parsed);
  }
  return items;
}

std::string ArgParser::help() const {
  std::ostringstream out;
  out << description_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Spec& s = specs_.at(name);
    out << "  --" << name;
    if (!s.is_flag) out << " <value> (default: " << s.default_value << ")";
    out << "\n      " << s.help_text << '\n';
  }
  out << "  --help\n      Show this message.\n";
  return out.str();
}

}  // namespace eadvfs::util
