/// Reproduces paper Figure 6: normalized remaining energy over time at low
/// utilization (U = 0.4).  Paper claim: "the EA-DVFS-based system stores
/// significantly more energy than the LSA-based system on average".

#include "remaining_energy.hpp"

int main(int argc, char** argv) {
  return eadvfs::bench::run_remaining_energy_figure(
      argc, argv, "fig6", 0.4,
      "EA-DVFS stores significantly more energy than LSA at U=0.4");
}
