#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the paper-reproduction bench binaries: the standard
/// CLI surface (sets / seed / capacities / predictor / output), result
/// printing, and the default capacity grid.
///
/// On capacities: the paper's §5.2 lists {200, 300, 500, 1000, 2000, 3000,
/// 5000}, but with the literal eq. 13 source (mean ≈ 3.99 W) and the XScale
/// wattages the miss-rate action concentrates below ≈ 500 — the paper's own
/// unit system is internally inconsistent (see DESIGN.md §4, "Units"), and
/// its normalized-capacity axis is reproduced here over the grid where the
/// same physics actually bites.  Pass --capacities to use any other grid,
/// including the paper's literal one.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "sim/config.hpp"
#include "sim/fault/profile.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/interrupt.hpp"
#include "util/log.hpp"

namespace eadvfs::bench {

/// Capacity grid covering the regime where storage size decides deadlines
/// (normalized axis: divide by the maximum, as the paper's Figures 8/9 do).
inline const std::vector<double> kDefaultCapacities = {25,  50,  75,  100,
                                                       150, 200, 300, 500};

inline std::string join(const std::vector<double>& values) {
  std::string out;
  for (double v : values) {
    if (!out.empty()) out += ',';
    out += exp::fmt(v, 0);
  }
  return out;
}

/// Registers the options every reproduction binary shares.
inline void add_common_options(util::ArgParser& args, long long default_sets) {
  args.add_option("sets", std::to_string(default_sets),
                  "number of random task sets (paper: 5000)");
  args.add_option("seed", "42", "master random seed");
  args.add_option("tasks", "5", "tasks per set (paper figures use 5)");
  args.add_option("horizon", "10000", "simulated time units (paper: 10000)");
  args.add_option("capacities", join(kDefaultCapacities),
                  "comma-separated storage capacities");
  args.add_option("predictor", "slotted-ewma",
                  "oracle | slotted-ewma | running-average | pessimistic | constant:<P>");
  args.add_option("jobs", std::to_string(exp::hardware_jobs()),
                  "worker threads for replications (>= 1; results are "
                  "identical for any value)");
  args.add_option("log", "warn", "log level: debug|info|warn|error|off");
  args.add_flag("quiet", "suppress progress logging (same as --log error)");
  args.add_flag("audit",
                "self-audit every simulation (energy conservation, segment "
                "coverage, scheduling invariants); aborts on any violation");
  args.add_option("fault-profile", "none",
                  "fault injection: none | blackout | brownout | storage | "
                  "predictor | switch | mixed, optionally :key=value,... "
                  "(docs/FAULTS.md)");
  args.add_option("depletion", "suspend",
                  "mid-execution storage-depletion policy: suspend | abort");
}

/// Registers the crash-safety and supervision options.  Only binaries whose
/// replication loop runs through `exp::checkpointed_map` should call this —
/// everything else keeps rejecting the flags loudly via the ArgParser.
/// Documented in docs/EXPERIMENTS.md ("Crash safety, resume, and supervision").
inline void add_crash_safety_options(util::ArgParser& args) {
  args.add_option("retries", "0",
                  "deterministic re-runs of a failed replication (same "
                  "sub-seed; attempt counts are journaled)");
  args.add_option("timeout", "0",
                  "per-replication watchdog deadline in seconds (0 = off); a "
                  "hung replication terminates the process with exit code 7 "
                  "so the run can be resumed from its checkpoint");
  args.add_flag("keep-going",
                "record permanently failed replications in the manifest and "
                "aggregate the rest (partial results; exit code 4)");
  args.add_option("checkpoint", "",
                  "directory for the run manifest + append-only replication "
                  "journal (crash-safe, resumable)");
  args.add_option("resume", "",
                  "resume an interrupted run from its checkpoint directory "
                  "(re-runs only missing replications; the manifest must "
                  "match the configuration, else exit code 5)");
  args.add_option("crash-after", "0",
                  "TESTING ONLY: raise SIGKILL after N journal appends");
}

/// Fill the supervision fields of a worker-pool config and build the
/// checkpoint config from the shared crash-safety options.  Also installs the
/// SIGINT/SIGTERM drain-and-flush handlers and wires them as the pool's
/// cooperative cancel token.
inline void apply_crash_safety(const util::ArgParser& args,
                               exp::ParallelConfig& parallel,
                               exp::CheckpointConfig& checkpoint) {
  parallel.max_attempts = exp::parse_retries(args.integer("retries"));
  parallel.watchdog_sec = exp::parse_watchdog_sec(args.real("timeout"));
  parallel.keep_going = args.flag("keep-going");
  util::install_interrupt_handlers();
  parallel.cancel = util::interrupt_flag();

  const std::string resume = args.str("resume");
  checkpoint.dir = resume.empty() ? args.str("checkpoint") : resume;
  checkpoint.require_existing = !resume.empty();
  const long long crash_after = args.integer("crash-after");
  if (crash_after < 0)
    throw std::invalid_argument("--crash-after must be >= 0");
  checkpoint.crash_after_appends = static_cast<std::size_t>(crash_after);
}

/// Human-facing "how to pick this run back up" fragment for interrupt
/// messages; honest when no checkpoint directory was given (nothing was
/// journaled, so there is nothing to resume).
inline std::string resume_hint(const exp::CheckpointConfig& checkpoint) {
  if (checkpoint.enabled()) return "'--resume " + checkpoint.dir + "'";
  return "'--checkpoint <dir>' next time to make the run resumable";
}

/// Translate a finished run's supervision outcome into the documented exit
/// status, narrating retries / failures / interruption on the way out:
/// 0 = clean, 4 = partial results under --keep-going, 6 = interrupted.
inline int report_run_outcome(const exp::RunReport& report, std::size_t resumed,
                              const std::string& resume_hint) {
  if (resumed > 0)
    std::cout << "resumed from checkpoint: " << resumed
              << " replication(s) replayed from the journal\n";
  for (const auto& [index, attempts] : report.retried)
    EADVFS_LOG_WARN << "replication " << index << " succeeded after "
                    << attempts << " attempts";
  if (report.interrupted) {
    std::cerr << "interrupted: " << report.completed
              << " replication(s) completed; use " << resume_hint << "\n";
    return util::exit_code::kInterrupted;
  }
  if (!report.failures.empty()) {
    std::cerr << util::describe_failures(report.failures)
              << "\npartial results: the failed replications above are "
                 "excluded from every aggregate\n";
    return util::exit_code::kPartialResults;
  }
  return util::exit_code::kSuccess;
}

/// Parse argv with clean error reporting: prints a one-line `error: ...`
/// and exits with status 2 on bad input instead of tripping std::terminate.
/// Returns false when --help was printed (caller should return 0).
inline bool parse_cli(util::ArgParser& args, int argc, const char* const* argv) {
  try {
    return args.parse(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    std::exit(2);
  }
}

/// Fill the engine-level options shared by every reproduction binary:
/// horizon from `--horizon`, invariant self-auditing from `--audit`,
/// depletion policy from `--depletion`.
inline void apply_sim_options(const util::ArgParser& args,
                              sim::SimulationConfig& sim) {
  sim.horizon = args.real("horizon");
  sim.audit = args.flag("audit");
  const std::string depletion = args.str("depletion");
  if (depletion == "suspend") {
    sim.depletion_policy = sim::DepletionPolicy::kSuspendAndResume;
  } else if (depletion == "abort") {
    sim.depletion_policy = sim::DepletionPolicy::kAbortAndCharge;
  } else {
    throw std::invalid_argument("--depletion must be 'suspend' or 'abort', got '" +
                                depletion + "'");
  }
}

/// Registers the shared observability outputs (docs/OBSERVABILITY.md):
/// `--metrics-out` (eadvfs.metrics.v1 JSON snapshot) and `--decisions-out`
/// (scheduler decision-trace CSV).  Sweep binaries produce them from the
/// "trace replication" — replication 0 re-simulated with observers attached
/// — so the files are byte-identical for any --jobs and across resume.
inline void add_observability_options(util::ArgParser& args) {
  args.add_option("metrics-out", "",
                  "write the metrics snapshot (eadvfs.metrics.v1 JSON) of "
                  "replication 0 here");
  args.add_option("decisions-out", "",
                  "write the scheduler decision-trace CSV of replication 0 "
                  "here");
}

/// Narrate where the observability artifacts went (call after the sweep).
inline void report_observability(const std::string& metrics_out,
                                 const std::string& decisions_out) {
  if (!metrics_out.empty())
    std::cout << "metrics (replication 0) -> " << metrics_out << "\n";
  if (!decisions_out.empty())
    std::cout << "decisions (replication 0) -> " << decisions_out << "\n";
}

/// Derive a per-variant artifact path for benches that run several sweeps in
/// one invocation (one per predictor, overhead value, ...): inserts the
/// variant label before the extension, so `m.json` + "oracle" →
/// `m.oracle.json`.  Returns "" when `path` is empty (flag unset).
inline std::string variant_path(const std::string& path,
                                const std::string& variant) {
  if (path.empty()) return path;
  const auto slash = path.find_last_of('/');
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return path + "." + variant;
  return path.substr(0, dot) + "." + variant + path.substr(dot);
}

/// Parse the shared `--fault-profile` option (validated; "none" = inactive).
inline sim::fault::FaultProfile fault_from_args(const util::ArgParser& args) {
  return sim::fault::FaultProfile::parse(args.str("fault-profile"));
}

/// For binaries whose experiment does not inject faults: reject an active
/// profile loudly instead of silently ignoring the flag.
inline void require_no_fault(const util::ArgParser& args) {
  if (fault_from_args(args).any())
    throw std::invalid_argument(
        "--fault-profile is not supported by this binary (use eadvfs-sim, the "
        "fig8/fig9/scheduler-zoo benches, or ablation_fault_resilience)");
}

/// Worker-pool config from the shared `--jobs` option.  Rejects 0/negative.
inline exp::ParallelConfig parallel_from_args(const util::ArgParser& args) {
  exp::ParallelConfig parallel;
  parallel.jobs = exp::parse_jobs(args.integer("jobs"));
  return parallel;
}

inline void apply_logging(const util::ArgParser& args) {
  util::set_log_level(args.flag("quiet") ? util::LogLevel::kError
                                         : util::parse_log_level(args.str("log")));
}

}  // namespace eadvfs::bench
