#pragma once

/// \file remaining_energy.hpp
/// Shared implementation for the Figure 6 / Figure 7 reproductions: the
/// normalized remaining energy E_C(t)/C under LSA vs EA-DVFS, averaged with
/// equal weight over the capacity grid and over many random task sets
/// (paper §5.2).

#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "exp/energy_trace_experiment.hpp"
#include "exp/report.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"

namespace eadvfs::bench {

inline int run_remaining_energy_figure(int argc, char** argv,
                                       const std::string& figure_id,
                                       double utilization,
                                       const std::string& paper_claim) {
  util::ArgParser args(figure_id + ": normalized remaining energy, U=" +
                       exp::fmt(utilization, 1));
  add_common_options(args, /*default_sets=*/60);
  add_observability_options(args);
  args.add_option("interval", "250", "trace sample interval");
  if (!parse_cli(args, argc, argv)) return 0;
  apply_logging(args);
  require_no_fault(args);

  exp::EnergyTraceConfig cfg;
  cfg.capacities = args.real_list("capacities");
  cfg.schedulers = {"lsa", "ea-dvfs"};
  cfg.predictor = args.str("predictor");
  cfg.n_task_sets = static_cast<std::size_t>(args.integer("sets"));
  cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
  cfg.sample_interval = args.real("interval");
  cfg.generator.target_utilization = utilization;
  cfg.generator.n_tasks = static_cast<std::size_t>(args.integer("tasks"));
  apply_sim_options(args, cfg.sim);
  cfg.solar.horizon = cfg.sim.horizon;
  cfg.parallel = parallel_from_args(args);
  cfg.metrics_out = args.str("metrics-out");
  cfg.decisions_out = args.str("decisions-out");

  exp::print_banner(std::cout, figure_id, paper_claim,
                    "U=" + exp::fmt(utilization, 1) + ", " +
                        std::to_string(cfg.n_task_sets) + " task sets, " +
                        std::to_string(cfg.capacities.size()) +
                        " capacities (equal weight), predictor " +
                        cfg.predictor);

  const exp::EnergyTraceResult result = exp::run_energy_trace(cfg);
  const auto& lsa = result.curve("lsa");
  const auto& ea = result.curve("ea-dvfs");

  exp::TextTable table({"time", "LSA", "EA-DVFS", "EA - LSA"});
  double lsa_avg = 0.0, ea_avg = 0.0;
  for (std::size_t i = 0; i < lsa.times.size(); ++i) {
    table.add_row(exp::fmt(lsa.times[i], 0),
                  {lsa.mean_normalized_level[i], ea.mean_normalized_level[i],
                   ea.mean_normalized_level[i] - lsa.mean_normalized_level[i]});
    lsa_avg += lsa.mean_normalized_level[i];
    ea_avg += ea.mean_normalized_level[i];
  }
  lsa_avg /= static_cast<double>(lsa.times.size());
  ea_avg /= static_cast<double>(ea.times.size());

  std::cout << table.render() << "\n";
  std::cout << "time-averaged normalized remaining energy:\n";
  std::cout << "  LSA      " << exp::fmt(lsa_avg, 4) << "\n";
  std::cout << "  EA-DVFS  " << exp::fmt(ea_avg, 4) << "  ("
            << exp::fmt(100.0 * (ea_avg - lsa_avg) / (lsa_avg > 0 ? lsa_avg : 1.0), 1)
            << "% more stored energy than LSA)\n";

  const std::string path =
      exp::output_dir() + "/" + figure_id + "_remaining_energy.csv";
  table.write_csv(path);
  std::cout << "series written to " << path << "\n";
  report_observability(cfg.metrics_out, cfg.decisions_out);
  if (!result.wall_clock.empty())
    std::cout << "wall clock: " << result.wall_clock << "\n";
  return 0;
}

}  // namespace eadvfs::bench
