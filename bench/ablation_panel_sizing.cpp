/// Ablation: the dual of Table 1.  Fix the storage, shrink the solar panel
/// until deadlines start dying: how much smaller a harvester does EA-DVFS
/// let you ship?  Reported as the ratio of minimum panel scale factors
/// (LSA / EA-DVFS) across the utilization sweep, mirroring Table 1's
/// storage ratios.

#include <iostream>

#include "bench_common.hpp"
#include "exp/harvester_sizing.hpp"
#include "exp/report.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("ablation: minimum harvester (panel) sizing vs U");
  bench::add_common_options(args, /*default_sets=*/40);
  args.add_option("utilizations", "0.2,0.4,0.6,0.8", "utilization sweep");
  // "auto" scales the storage with the load (600·U): the solar night always
  // delivers ~zero power whatever the panel size, so a fixed small storage
  // would make high-U rows unconditionally infeasible.
  args.add_option("capacity", "auto", "storage capacity, or auto = 600*U");
  if (!bench::parse_cli(args, argc, argv)) return 0;
  bench::apply_logging(args);
  bench::require_no_fault(args);

  exp::print_banner(std::cout, "Ablation — minimum harvester size",
                    "Table 1's dual: smallest panel-scale factor for zero "
                    "misses at a fixed storage",
                    std::to_string(args.integer("sets")) +
                        " task sets per U, capacity " + args.str("capacity") +
                        ", 1% binary search on the scale factor");

  exp::TextTable table({"U", "scale(LSA)", "scale(EA-DVFS)", "ratio (means)",
                        "mean ratio", "skipped"});
  for (double u : args.real_list("utilizations")) {
    exp::HarvesterSizingConfig cfg;
    cfg.predictor = args.str("predictor");
    cfg.n_task_sets = static_cast<std::size_t>(args.integer("sets"));
    cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
    cfg.capacity = args.str("capacity") == "auto" ? 600.0 * u
                                                  : args.real("capacity");
    cfg.generator.target_utilization = u;
    cfg.generator.n_tasks = static_cast<std::size_t>(args.integer("tasks"));
    bench::apply_sim_options(args, cfg.sim);
    cfg.solar.horizon = cfg.sim.horizon;
    cfg.parallel = bench::parallel_from_args(args);

    const exp::HarvesterSizingResult result = exp::run_harvester_sizing(cfg);
    table.add_row({exp::fmt(u, 1), exp::fmt(result.min_scale[0].mean(), 3),
                   exp::fmt(result.min_scale[1].mean(), 3),
                   exp::fmt(result.ratio_of_means(), 3),
                   exp::fmt(result.ratio_first_over_second.mean(), 3),
                   std::to_string(result.sets_skipped)});
  }
  std::cout << table.render() << "\n";
  std::cout << "reading guide: a scale of 1.0 is the paper's eq. 13 source;\n"
               "like the storage ratio of Table 1, the panel ratio is large\n"
               "at low utilization and decays toward 1 as slack disappears.\n";
  const std::string path = exp::output_dir() + "/ablation_panel_sizing.csv";
  table.write_csv(path);
  std::cout << "table written to " << path << "\n";
  return 0;
}
