/// Ablation: where does the harvested energy go?  For each scheduler the
/// full accounting of a Figure-8-style run — executed, discarded as
/// overflow (storage full), still banked at the horizon — plus how the
/// executed energy splits across operating points.  Makes the mechanism of
/// the miss-rate results visible: EA-DVFS converts the same harvest into
/// ~2x the completed work per joule by living at the slow points.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "energy/solar_source.hpp"
#include "exp/report.hpp"
#include "exp/setup.hpp"
#include "sched/factory.hpp"
#include "task/generator.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("ablation: energy breakdown per scheduler");
  bench::add_common_options(args, /*default_sets=*/60);
  args.add_option("utilization", "0.4", "target utilization");
  args.add_option("capacity", "75", "storage capacity");
  if (!bench::parse_cli(args, argc, argv)) return 0;
  bench::apply_logging(args);
  bench::require_no_fault(args);

  const std::vector<std::string> schedulers = {"edf", "lsa", "greedy-dvfs",
                                               "ea-dvfs"};

  exp::print_banner(std::cout, "Ablation — energy breakdown",
                    "same harvest, different fates: executed / overflowed / "
                    "banked, and the per-speed split",
                    "U=" + args.str("utilization") + ", capacity " +
                        args.str("capacity") + ", " +
                        std::to_string(args.integer("sets")) + " task sets");

  const auto n_sets = static_cast<std::size_t>(args.integer("sets"));
  const auto seeds = exp::derive_seeds(
      static_cast<std::uint64_t>(args.integer("seed")), n_sets);
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = args.real("utilization");
  gen_cfg.n_tasks = static_cast<std::size_t>(args.integer("tasks"));
  sim::SimulationConfig sim_cfg;
  bench::apply_sim_options(args, sim_cfg);

  exp::TextTable out({"scheduler", "consumed", "overflow%", "J per work",
                      "slow-op time%", "work done", "miss rate"});
  for (const auto& name : schedulers) {
    struct RepRecord {
      double consumed = 0.0;
      bool has_harvest = false;
      double overflow_share = 0.0;
      bool has_work = false;
      double energy_per_work = 0.0;
      bool has_busy = false;
      double slow_share = 0.0;
      double work_done = 0.0;
      double miss = 0.0;
    };
    const auto records = exp::parallel_map<RepRecord>(
        n_sets,
        exp::with_default_progress(bench::parallel_from_args(args),
                                   "energy breakdown", 20),
        [&](std::size_t rep) {
          util::Xoshiro256ss rng(seeds[rep]);
          const task::TaskSetGenerator generator(gen_cfg);
          const task::TaskSet set = generator.generate(rng);
          energy::SolarSourceConfig solar;
          solar.seed = seeds[rep] ^ 0x5eed5eed5eed5eedULL;
          solar.horizon = sim_cfg.horizon;
          const auto source = std::make_shared<const energy::SolarSource>(solar);
          const auto scheduler = sched::make_scheduler(name);
          const auto r = exp::run_once(sim_cfg, source, args.real("capacity"),
                                       table, *scheduler, args.str("predictor"),
                                       set);
          RepRecord record;
          record.consumed = r.consumed;
          if (r.harvested > 0.0) {
            record.has_harvest = true;
            record.overflow_share = r.overflow / r.harvested;
          }
          if (r.work_completed > 0.0) {
            record.has_work = true;
            record.energy_per_work = r.consumed / r.work_completed;
          }
          Time slow = 0.0;
          for (std::size_t op = 0; op + 1 < r.time_at_op.size(); ++op)
            slow += r.time_at_op[op];
          if (r.busy_time > 0.0) {
            record.has_busy = true;
            record.slow_share = slow / r.busy_time;
          }
          record.work_done = r.work_completed;
          record.miss = r.miss_rate();
          return record;
        });

    util::RunningStats consumed, overflow_share, energy_per_work, slow_share,
        work_done, miss;
    for (const RepRecord& record : records) {
      consumed.add(record.consumed);
      if (record.has_harvest) overflow_share.add(record.overflow_share);
      if (record.has_work) energy_per_work.add(record.energy_per_work);
      if (record.has_busy) slow_share.add(record.slow_share);
      work_done.add(record.work_done);
      miss.add(record.miss);
    }
    out.add_row({sched::make_scheduler(name)->name(),
                 exp::fmt(consumed.mean(), 0),
                 exp::fmt(100.0 * overflow_share.mean(), 1) + "%",
                 exp::fmt(energy_per_work.mean(), 3),
                 exp::fmt(100.0 * slow_share.mean(), 1) + "%",
                 exp::fmt(work_done.mean(), 0), exp::fmt(miss.mean(), 4)});
  }
  std::cout << out.render() << "\n";
  std::cout << "reading guide: every full-speed policy pays 3.2 J per unit of\n"
               "work; EA-DVFS's \"J per work\" column is the paper's entire\n"
               "mechanism in one number (the XScale floor is 0.533).  Most of\n"
               "the harvest overflows in all cases — the storage, not the\n"
               "panel, is the scarce resource in this regime.\n";
  const std::string path = exp::output_dir() + "/ablation_energy_breakdown.csv";
  out.write_csv(path);
  std::cout << "table written to " << path << "\n";
  return 0;
}
