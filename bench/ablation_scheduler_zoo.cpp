/// Ablation: the full scheduler zoo on the Figure-8 axes.  Adds plain EDF
/// (energy-oblivious) and Greedy-DVFS (stretch-always, the §4.3 strawman)
/// to the paper's LSA vs EA-DVFS comparison, isolating which ingredient —
/// procrastination, stretching, or the s2 switch-back — buys what.

#include "miss_rate.hpp"

int main(int argc, char** argv) {
  return eadvfs::bench::run_miss_rate_figure(
      argc, argv, "ablation_scheduler_zoo", 0.4,
      "decomposes EA-DVFS's win: EDF (neither trick), LSA (procrastinate "
      "only), Greedy (stretch only), static EA-DVFS (one-shot plan), "
      "EA-DVFS (dynamic plan + s2 rule)",
      {"edf", "lsa", "greedy-dvfs", "ea-dvfs-static", "ea-dvfs"});
}
