/// Fleet-scale Monte Carlo: simulate a heterogeneous population of devices
/// (each sampling its own task set, scheduler, predictor, storage and panel
/// sizing, and optional fault profile from a JSON fleet spec) as one
/// batched, sharded, crash-safe job.  Results stream into population
/// statistics plus a compact binary columnar artifact (eadvfs.fleet.v1)
/// that is byte-identical for any --jobs and across SIGKILL + --resume.
/// See docs/EXPERIMENTS.md §"Fleet runs".

#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "exp/fleet/runner.hpp"
#include "exp/report.hpp"
#include "util/args.hpp"

namespace {

using namespace eadvfs;

void print_population_table(const exp::fleet::FleetResult& result) {
  exp::TextTable table({"metric", "mean", "stddev", "min", "max"});
  const auto row = [&table](const std::string& name,
                            const util::RunningStats& stats) {
    table.add_row({name, exp::fmt(stats.mean(), 4), exp::fmt(stats.stddev(), 4),
                   exp::fmt(stats.min(), 4), exp::fmt(stats.max(), 4)});
  };
  row("miss_rate", result.metrics.miss_rate);
  row("stall_time", result.metrics.stall_time);
  row("busy_time", result.metrics.busy_time);
  row("harvested", result.metrics.harvested);
  row("consumed", result.metrics.consumed);
  row("frequency_switches", result.metrics.frequency_switches);
  std::cout << table.render() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "fleet_sweep: heterogeneous device-population Monte Carlo "
      "(eadvfs.fleet.v1 artifact; docs/EXPERIMENTS.md §\"Fleet runs\")");
  args.add_option("spec", "",
                  "fleet spec JSON file (docs/EXPERIMENTS.md §\"Fleet "
                  "runs\"); omitted = built-in default population");
  args.add_option("devices", "0",
                  "override the spec's device-instance count (0 = keep)");
  args.add_option("shard-size", "0",
                  "override the spec's devices-per-shard (0 = keep; part of "
                  "the checkpoint fingerprint)");
  args.add_option("seed", "0", "override the spec's master seed (0 = keep)");
  args.add_option("horizon", "0",
                  "override the spec's per-device simulated time units "
                  "(0 = keep)");
  args.add_option("out", "fleet.bin",
                  "binary columnar artifact path (eadvfs.fleet.v1)");
  args.add_option("csv", "",
                  "also export the artifact as lossless CSV here");
  args.add_flag("hist", "print the population miss-rate histogram");
  args.add_option("jobs", std::to_string(exp::hardware_jobs()),
                  "worker threads for shards (>= 1; results are identical "
                  "for any value)");
  args.add_option("log", "warn", "log level: debug|info|warn|error|off");
  args.add_flag("quiet", "suppress progress logging (same as --log error)");
  eadvfs::bench::add_crash_safety_options(args);
  if (!eadvfs::bench::parse_cli(args, argc, argv)) return 0;
  eadvfs::bench::apply_logging(args);

  exp::fleet::FleetConfig config;
  try {
    if (!args.str("spec").empty())
      config.spec = exp::fleet::FleetSpec::load(args.str("spec"));
    if (args.integer("devices") > 0)
      config.spec.devices = static_cast<std::size_t>(args.integer("devices"));
    if (args.integer("shard-size") > 0)
      config.spec.shard_size =
          static_cast<std::size_t>(args.integer("shard-size"));
    if (args.integer("seed") > 0)
      config.spec.seed = static_cast<std::uint64_t>(args.integer("seed"));
    if (args.real("horizon") > 0.0) config.spec.horizon = args.real("horizon");
    config.spec.validate();
    config.parallel = eadvfs::bench::parallel_from_args(args);
    eadvfs::bench::apply_crash_safety(args, config.parallel,
                                      config.checkpoint);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return util::exit_code::kUsage;
  }

  exp::print_banner(
      std::cout, "fleet", "population-level behavior at fleet scale",
      config.spec.name + ": " + std::to_string(config.spec.devices) +
          " devices in " + std::to_string(config.spec.shards()) +
          " shards of " + std::to_string(config.spec.shard_size));

  exp::fleet::FleetResult result;
  try {
    result = exp::fleet::run_fleet(config);
  } catch (const util::ManifestMismatchError& error) {
    std::cerr << "error: " << error.what() << "\n";
    return util::exit_code::kManifestMismatch;
  }

  print_population_table(result);
  if (args.flag("hist")) {
    std::cout << "population miss-rate distribution:\n"
              << result.miss_rate_hist.ascii() << "\n";
  }
  std::cout << result.wall_clock << "\n";

  if (result.complete) {
    result.artifact.write(args.str("out"));
    std::cout << "artifact -> " << args.str("out") << "\n";
    if (!args.str("csv").empty()) {
      result.artifact.export_csv(args.str("csv"));
      std::cout << "csv -> " << args.str("csv") << "\n";
    }
  } else {
    // A partial artifact would violate the byte-identical contract; the
    // journal already holds every finished shard for --resume.
    std::cerr << "run incomplete: artifact not written (finished shards are "
                 "journaled; use "
              << eadvfs::bench::resume_hint(config.checkpoint) << ")\n";
  }
  return eadvfs::bench::report_run_outcome(
      result.report, result.resumed,
      eadvfs::bench::resume_hint(config.checkpoint));
}
