/// Ablation: graceful degradation under harvester faults.  Sweeps the
/// blackout duty cycle (fraction of the horizon with the harvester dark)
/// and reports the deadline miss rate of every scheduler in the zoo — the
/// robustness counterpart to Figures 8/9.  The energy-aware schedulers'
/// advantage should persist (and widen) as blackouts lengthen, because
/// slowing down stretches the stored energy across the dark windows.
///
/// The base fault profile is `blackout` unless --fault-profile overrides it
/// (e.g. `brownout` to sweep dimmed rather than dark windows); the swept
/// axis always overwrites the profile's harvest duty cycle.  Output is
/// byte-identical for any --jobs count; the determinism smoke test in
/// tools/CMakeLists.txt diffs --jobs 1 against --jobs 8 via --out.

#include <algorithm>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/miss_rate_sweep.hpp"
#include "exp/report.hpp"
#include "sched/factory.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args(
      "ablation: deadline miss rate vs harvester blackout duty cycle");
  bench::add_common_options(args, /*default_sets=*/60);
  bench::add_crash_safety_options(args);
  bench::add_observability_options(args);
  args.add_option("capacity", "75", "storage capacity");
  args.add_option("utilization", "0.6", "target task-set utilization");
  args.add_option("duties", "0,0.05,0.1,0.2,0.3,0.4",
                  "blackout duty-cycle grid (fraction of horizon dark)");
  args.add_option("out", "", "CSV output path (default: output dir)");
  if (!bench::parse_cli(args, argc, argv)) return 0;
  bench::apply_logging(args);

  const std::vector<std::string> schedulers = sched::scheduler_names();
  const std::vector<double> duties = args.real_list("duties");

  sim::fault::FaultProfile base = bench::fault_from_args(args);
  if (!base.any()) base = sim::fault::FaultProfile::parse("blackout");

  exp::print_banner(std::cout, "Ablation — fault resilience",
                    "miss rate vs blackout duty cycle, all schedulers",
                    "capacity " + args.str("capacity") + ", U=" +
                        args.str("utilization") + ", " +
                        std::to_string(args.integer("sets")) + " task sets, " +
                        "depletion policy " + args.str("depletion"));

  std::vector<std::string> header = {"duty"};
  for (const auto& s : schedulers) header.push_back(s);
  exp::TextTable table(header);

  // Each duty point is its own checkpointed sweep under a per-point
  // subdirectory, so a crash anywhere in the grid resumes mid-grid: points
  // already journaled replay instantly, the interrupted point re-runs only
  // its missing replications.
  int worst_outcome = util::exit_code::kSuccess;
  std::size_t total_failed = 0;
  for (std::size_t d = 0; d < duties.size(); ++d) {
    const double duty = duties[d];
    exp::MissRateSweepConfig cfg;
    cfg.capacities = {args.real("capacity")};
    cfg.schedulers = schedulers;
    cfg.predictor = args.str("predictor");
    cfg.n_task_sets = static_cast<std::size_t>(args.integer("sets"));
    cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
    cfg.generator.target_utilization = args.real("utilization");
    cfg.generator.n_tasks = static_cast<std::size_t>(args.integer("tasks"));
    bench::apply_sim_options(args, cfg.sim);
    cfg.solar.horizon = cfg.sim.horizon;
    cfg.fault = base;
    cfg.fault.harvest_duty = duty;
    cfg.fault.validate();
    cfg.parallel = bench::parallel_from_args(args);
    cfg.experiment_id = "ablation_fault_resilience/duty_" + std::to_string(d);
    bench::apply_crash_safety(args, cfg.parallel, cfg.checkpoint);
    if (cfg.checkpoint.enabled()) cfg.checkpoint.dir += "/duty_" + std::to_string(d);
    const std::string slug = "duty" + exp::fmt(duty, 2);
    cfg.metrics_out = bench::variant_path(args.str("metrics-out"), slug);
    cfg.decisions_out = bench::variant_path(args.str("decisions-out"), slug);

    exp::MissRateSweepResult result;
    try {
      result = exp::run_miss_rate_sweep(cfg);
    } catch (const util::ManifestMismatchError& error) {
      std::cerr << "error: " << error.what() << "\n";
      return util::exit_code::kManifestMismatch;
    }
    bench::report_observability(cfg.metrics_out, cfg.decisions_out);
    const int outcome = bench::report_run_outcome(
        result.report, result.resumed, bench::resume_hint(cfg.checkpoint));
    if (outcome == util::exit_code::kInterrupted) return outcome;
    worst_outcome = std::max(worst_outcome, outcome);
    total_failed += result.report.failures.size();

    std::vector<std::string> row = {exp::fmt(duty, 2)};
    for (const auto& s : schedulers)
      row.push_back(exp::fmt(result.cell(s, cfg.capacities[0]).miss_rate.mean(), 4));
    table.add_row(std::move(row));
  }
  if (total_failed > 0)
    table.add_row({"failed_replications", std::to_string(total_failed)});

  std::cout << table.render() << "\n";
  const std::string path =
      args.str("out").empty()
          ? exp::output_dir() + "/ablation_fault_resilience.csv"
          : args.str("out");
  table.write_csv(path);
  std::cout << "table written to " << path << "\n";
  return worst_outcome;
}
