/// Reproduces paper Figure 7: normalized remaining energy over time at high
/// utilization (U = 0.8).  Paper claim: "EA-DVFS-based system only has
/// slightly more stored energy than the LSA-based system" — the advantage
/// nearly vanishes because there is little slack to trade.

#include "remaining_energy.hpp"

int main(int argc, char** argv) {
  return eadvfs::bench::run_remaining_energy_figure(
      argc, argv, "fig7", 0.8,
      "EA-DVFS has only slightly more stored energy than LSA at U=0.8");
}
