/// Reproduces paper Figure 5: the behaviour of the synthetic solar source
/// P_S(t) = 10·|N(t)|·cos²(t/70π) over 10,000 time units.
///
/// The paper's figure is a raw time-series plot; this binary prints the
/// distributional fingerprint (mean/min/max, histogram, cycle period) that
/// determines every downstream experiment, renders a coarse ASCII strip of
/// the series, and writes the full series to fig5_energy_source.csv for
/// re-plotting.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "energy/solar_source.hpp"
#include "exp/report.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("fig5: energy source behaviour (paper eq. 13)");
  args.add_option("seed", "1", "noise seed");
  args.add_option("horizon", "10000", "series length in time units");
  args.add_option("step", "1", "noise resampling step");
  if (!bench::parse_cli(args, argc, argv)) return 0;

  energy::SolarSourceConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
  cfg.horizon = args.real("horizon");
  cfg.step = args.real("step");
  const energy::SolarSource source(cfg);

  exp::print_banner(std::cout, "Figure 5 — energy source behaviour",
                    "stochastic solar profile, peaks ~20, diurnal cycle 70"
                    "π² ≈ 691 time units",
                    "eq. 13 with |N(t)|, step " + exp::fmt(cfg.step, 2) +
                        ", horizon " + exp::fmt(cfg.horizon, 0));

  util::RunningStats stats;
  util::Histogram histogram(0.0, 20.0, 20);
  for (Time t = 0.0; t < cfg.horizon; t += cfg.step) {
    const Power p = source.power_at(t);
    stats.add(p);
    histogram.add(p);
  }

  std::cout << "samples:        " << stats.count() << "\n";
  std::cout << "mean power:     " << exp::fmt(stats.mean(), 4)
            << "  (analytic " << exp::fmt(energy::SolarSource::analytic_mean_power(), 4)
            << ")\n";
  std::cout << "min/max power:  " << exp::fmt(stats.min(), 4) << " / "
            << exp::fmt(stats.max(), 4)
            << "  (paper plot peaks just under 20)\n";
  std::cout << "std deviation:  " << exp::fmt(stats.stddev(), 4) << "\n";
  std::cout << "cycle period:   " << exp::fmt(source.cycle_period(), 1)
            << " time units\n\n";

  std::cout << "power histogram (0..20 W):\n" << histogram.ascii(48) << "\n";

  // Coarse ASCII strip of the series itself: 100-unit bucket means.
  std::cout << "series (each column = 100 time units, height ~ mean power):\n";
  const int buckets = static_cast<int>(cfg.horizon / 100.0);
  std::vector<double> bucket_mean(static_cast<std::size_t>(buckets), 0.0);
  for (int b = 0; b < buckets; ++b) {
    bucket_mean[static_cast<std::size_t>(b)] =
        source.energy_between(b * 100.0, (b + 1) * 100.0) / 100.0;
  }
  for (int row = 7; row >= 0; --row) {
    for (int b = 0; b < buckets; ++b)
      std::cout << (bucket_mean[static_cast<std::size_t>(b)] > row ? '#' : ' ');
    std::cout << '\n';
  }
  std::cout << std::string(static_cast<std::size_t>(buckets), '-') << "\n";
  std::cout << "0" << std::string(static_cast<std::size_t>(buckets) - 6, ' ')
            << exp::fmt(cfg.horizon, 0) << "\n\n";

  const std::string path = exp::output_dir() + "/fig5_energy_source.csv";
  try {
    util::write_file_atomic(path, [&](std::ostream& stream) {
      util::CsvWriter csv(stream);
      csv.write_row({std::string("time"), std::string("power")});
      for (Time t = 0.0; t < cfg.horizon; t += cfg.step)
        csv.write_row(std::vector<double>{t, source.power_at(t)});
    });
    std::cout << "full series written to " << path << "\n";
  } catch (const std::exception& error) {
    std::cerr << "warning: could not write " << path << ": " << error.what()
              << "\n";
  }
  return 0;
}
