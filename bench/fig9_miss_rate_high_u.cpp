/// Reproduces paper Figure 9: deadline miss rate vs normalized storage
/// capacity at U = 0.8.  Paper claim: "EA-DVFS algorithm performs as well
/// as LSA algorithm does" — the advantage shrinks because high utilization
/// leaves little slack to trade for energy.

#include "miss_rate.hpp"

int main(int argc, char** argv) {
  return eadvfs::bench::run_miss_rate_figure(
      argc, argv, "fig9", 0.8,
      "EA-DVFS performs close to LSA at U=0.8 (little slack to trade)");
}
