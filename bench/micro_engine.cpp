/// Micro-benchmarks (google-benchmark): raw performance of the simulator's
/// hot paths.  These are not paper reproductions — they document the cost
/// profile that makes the 5000-task-set sweeps tractable.

#include <benchmark/benchmark.h>

#include <memory>

#include "energy/slotted_ewma_predictor.hpp"
#include "energy/solar_source.hpp"
#include "energy/storage.hpp"
#include "exp/setup.hpp"
#include "proc/frequency_table.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "task/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace eadvfs;

std::shared_ptr<const energy::SolarSource> shared_source() {
  static const auto source = [] {
    energy::SolarSourceConfig cfg;
    cfg.seed = 7;
    cfg.horizon = 10'000.0;
    return std::make_shared<const energy::SolarSource>(cfg);
  }();
  return source;
}

task::TaskSet shared_task_set(double utilization) {
  task::GeneratorConfig cfg;
  cfg.target_utilization = utilization;
  task::TaskSetGenerator gen(cfg);
  util::Xoshiro256ss rng(11);
  return gen.generate(rng);
}

/// Full 10k-time-unit simulation per iteration, per scheduler.
void BM_FullSimulation(benchmark::State& state, const char* scheduler_name) {
  const auto source = shared_source();
  const task::TaskSet set = shared_task_set(0.4);
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  sim::SimulationConfig cfg;
  std::size_t segments = 0;
  for (auto _ : state) {
    const auto scheduler = sched::make_scheduler(scheduler_name);
    const auto result =
        exp::run_once(cfg, source, 100.0, table, *scheduler, "slotted-ewma", set);
    segments += result.segments;
    benchmark::DoNotOptimize(result.jobs_missed);
  }
  state.counters["segments/s"] = benchmark::Counter(
      static_cast<double>(segments), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_FullSimulation, edf, "edf");
BENCHMARK_CAPTURE(BM_FullSimulation, lsa, "lsa");
BENCHMARK_CAPTURE(BM_FullSimulation, ea_dvfs, "ea-dvfs");

/// Cost of one scheduling decision.
void BM_SchedulerDecide(benchmark::State& state, const char* scheduler_name) {
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  const energy::ConstantPredictor predictor(2.0);
  std::vector<task::Job> ready;
  for (task::JobId i = 0; i < 8; ++i) {
    task::Job j;
    j.id = i;
    j.arrival = 0.0;
    j.absolute_deadline = 10.0 + static_cast<double>(i);
    j.wcet = 2.0;
    j.remaining = 1.5;
    ready.push_back(j);
  }
  sim::SchedulingContext ctx;
  ctx.now = 3.0;
  ctx.ready = &ready;
  ctx.stored = 12.0;
  ctx.predictor = &predictor;
  ctx.table = &table;
  const auto scheduler = sched::make_scheduler(scheduler_name);
  for (auto _ : state) {
    const sim::Decision d = scheduler->decide(ctx);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK_CAPTURE(BM_SchedulerDecide, edf, "edf");
BENCHMARK_CAPTURE(BM_SchedulerDecide, lsa, "lsa");
BENCHMARK_CAPTURE(BM_SchedulerDecide, ea_dvfs, "ea-dvfs");

/// Exact source integration over windows of growing length.
void BM_SourceIntegral(benchmark::State& state) {
  const auto source = shared_source();
  const double window = static_cast<double>(state.range(0));
  double t = 0.0;
  for (auto _ : state) {
    const Energy e = source->energy_between(t, t + window);
    benchmark::DoNotOptimize(e);
    t += 1.0;
    if (t > 9'000.0) t = 0.0;
  }
}
BENCHMARK(BM_SourceIntegral)->Arg(10)->Arg(100)->Arg(1000);

/// Slotted-EWMA prediction queries.
void BM_SlottedEwmaPredict(benchmark::State& state) {
  energy::SlottedEwmaPredictor predictor(energy::SlottedEwmaConfig{});
  const auto source = shared_source();
  for (Time t = 0.0; t < 2'000.0; t += 1.0)
    predictor.observe(t, t + 1.0, source->power_at(t));
  double t = 0.0;
  for (auto _ : state) {
    const Energy e = predictor.predict(t, t + 100.0);
    benchmark::DoNotOptimize(e);
    t += 0.7;
    if (t > 5'000.0) t = 0.0;
  }
}
BENCHMARK(BM_SlottedEwmaPredict);

/// Task-set generation (includes redraw-until-feasible).
void BM_TaskSetGeneration(benchmark::State& state) {
  task::GeneratorConfig cfg;
  cfg.target_utilization = static_cast<double>(state.range(0)) / 10.0;
  task::TaskSetGenerator gen(cfg);
  util::Xoshiro256ss rng(5);
  for (auto _ : state) {
    const task::TaskSet set = gen.generate(rng);
    benchmark::DoNotOptimize(set.utilization());
  }
}
BENCHMARK(BM_TaskSetGeneration)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
