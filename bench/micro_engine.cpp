/// Micro-benchmarks (google-benchmark): raw performance of the simulator's
/// hot paths.  These are not paper reproductions — they document the cost
/// profile that makes the 5000-task-set sweeps tractable.
///
/// `--scaling` switches to the parallel-runner scaling benchmark instead:
/// a fixed miss-rate sweep is timed at --jobs 1, 2, 4 and the machine's
/// hardware concurrency, and the replications/sec + speedup table is
/// printed and written to BENCH_parallel_runner.json.
///
/// `--engine-baseline` times full end-to-end simulations per scheduler and
/// writes BENCH_engine.json (segments/sec, events/sec, decisions/sec) — the
/// machine-readable perf baseline CI uploads as an artifact.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "energy/slotted_ewma_predictor.hpp"
#include "energy/solar_source.hpp"
#include "energy/storage.hpp"
#include "exp/miss_rate_sweep.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "exp/setup.hpp"
#include "proc/frequency_table.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "task/generator.hpp"
#include "util/atomic_file.hpp"
#include "util/rng.hpp"

namespace {

using namespace eadvfs;

std::shared_ptr<const energy::SolarSource> shared_source() {
  static const auto source = [] {
    energy::SolarSourceConfig cfg;
    cfg.seed = 7;
    cfg.horizon = 10'000.0;
    return std::make_shared<const energy::SolarSource>(cfg);
  }();
  return source;
}

task::TaskSet shared_task_set(double utilization) {
  task::GeneratorConfig cfg;
  cfg.target_utilization = utilization;
  task::TaskSetGenerator gen(cfg);
  util::Xoshiro256ss rng(11);
  return gen.generate(rng);
}

/// Full 10k-time-unit simulation per iteration, per scheduler.
void BM_FullSimulation(benchmark::State& state, const char* scheduler_name) {
  const auto source = shared_source();
  const task::TaskSet set = shared_task_set(0.4);
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  sim::SimulationConfig cfg;
  std::size_t segments = 0;
  for (auto _ : state) {
    const auto scheduler = sched::make_scheduler(scheduler_name);
    const auto result =
        exp::run_once(cfg, source, 100.0, table, *scheduler, "slotted-ewma", set);
    segments += result.segments;
    benchmark::DoNotOptimize(result.jobs_missed);
  }
  state.counters["segments/s"] = benchmark::Counter(
      static_cast<double>(segments), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_FullSimulation, edf, "edf");
BENCHMARK_CAPTURE(BM_FullSimulation, lsa, "lsa");
BENCHMARK_CAPTURE(BM_FullSimulation, ea_dvfs, "ea-dvfs");

/// Cost of one scheduling decision.
void BM_SchedulerDecide(benchmark::State& state, const char* scheduler_name) {
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  const energy::ConstantPredictor predictor(2.0);
  std::vector<task::Job> ready;
  for (task::JobId i = 0; i < 8; ++i) {
    task::Job j;
    j.id = i;
    j.arrival = 0.0;
    j.absolute_deadline = 10.0 + static_cast<double>(i);
    j.wcet = 2.0;
    j.remaining = 1.5;
    ready.push_back(j);
  }
  sim::SchedulingContext ctx;
  ctx.now = 3.0;
  ctx.ready = &ready;
  ctx.stored = 12.0;
  ctx.predictor = &predictor;
  ctx.table = &table;
  const auto scheduler = sched::make_scheduler(scheduler_name);
  for (auto _ : state) {
    const sim::Decision d = scheduler->decide(ctx);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK_CAPTURE(BM_SchedulerDecide, edf, "edf");
BENCHMARK_CAPTURE(BM_SchedulerDecide, lsa, "lsa");
BENCHMARK_CAPTURE(BM_SchedulerDecide, ea_dvfs, "ea-dvfs");

/// Exact source integration over windows of growing length.
void BM_SourceIntegral(benchmark::State& state) {
  const auto source = shared_source();
  const double window = static_cast<double>(state.range(0));
  double t = 0.0;
  for (auto _ : state) {
    const Energy e = source->energy_between(t, t + window);
    benchmark::DoNotOptimize(e);
    t += 1.0;
    if (t > 9'000.0) t = 0.0;
  }
}
BENCHMARK(BM_SourceIntegral)->Arg(10)->Arg(100)->Arg(1000);

/// Slotted-EWMA prediction queries.
void BM_SlottedEwmaPredict(benchmark::State& state) {
  energy::SlottedEwmaPredictor predictor(energy::SlottedEwmaConfig{});
  const auto source = shared_source();
  for (Time t = 0.0; t < 2'000.0; t += 1.0)
    predictor.observe(t, t + 1.0, source->power_at(t));
  double t = 0.0;
  for (auto _ : state) {
    const Energy e = predictor.predict(t, t + 100.0);
    benchmark::DoNotOptimize(e);
    t += 0.7;
    if (t > 5'000.0) t = 0.0;
  }
}
BENCHMARK(BM_SlottedEwmaPredict);

/// Task-set generation (includes redraw-until-feasible).
void BM_TaskSetGeneration(benchmark::State& state) {
  task::GeneratorConfig cfg;
  cfg.target_utilization = static_cast<double>(state.range(0)) / 10.0;
  task::TaskSetGenerator gen(cfg);
  util::Xoshiro256ss rng(5);
  for (auto _ : state) {
    const task::TaskSet set = gen.generate(rng);
    benchmark::DoNotOptimize(set.utilization());
  }
}
BENCHMARK(BM_TaskSetGeneration)->Arg(4)->Arg(8);

/// How much wall-clock the worker pool buys on this machine: time one fixed
/// sweep (all schedulers, two capacities) at increasing --jobs, report
/// replications/sec and the speedup over the sequential run, and emit a
/// machine-readable summary next to the other benchmark artifacts.
int run_scaling_benchmark() {
  using Clock = std::chrono::steady_clock;

  exp::MissRateSweepConfig cfg;
  cfg.capacities = {50.0, 100.0};
  cfg.schedulers = {"lsa", "ea-dvfs"};
  cfg.n_task_sets = 32;
  cfg.sim.horizon = 2'000.0;
  cfg.solar.horizon = 2'000.0;
  cfg.generator.target_utilization = 0.4;

  std::vector<std::size_t> jobs_axis = {1, 2, 4};
  const std::size_t hw = exp::hardware_jobs();
  if (std::find(jobs_axis.begin(), jobs_axis.end(), hw) == jobs_axis.end())
    jobs_axis.push_back(hw);

  struct Point {
    std::size_t jobs = 0;
    double seconds = 0.0;
    double reps_per_sec = 0.0;
    double speedup = 1.0;
  };
  std::vector<Point> points;

  std::cout << "parallel_runner scaling: " << cfg.n_task_sets
            << " replications x " << cfg.schedulers.size() << " schedulers x "
            << cfg.capacities.size() << " capacities, hardware_jobs=" << hw
            << "\n\n";

  double baseline = 0.0;
  for (const std::size_t jobs : jobs_axis) {
    cfg.parallel.jobs = jobs;
    const auto start = Clock::now();
    const auto result = exp::run_miss_rate_sweep(cfg);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (result.cells.empty() || seconds <= 0.0) {
      std::cerr << "scaling benchmark produced no cells\n";
      return 1;
    }
    Point p;
    p.jobs = jobs;
    p.seconds = seconds;
    p.reps_per_sec = static_cast<double>(cfg.n_task_sets) / seconds;
    if (jobs == 1) baseline = seconds;
    p.speedup = baseline > 0.0 ? baseline / seconds : 1.0;
    points.push_back(p);
  }

  exp::TextTable table({"jobs", "seconds", "replications/s", "speedup"});
  for (const Point& p : points) {
    table.add_row({std::to_string(p.jobs), exp::fmt(p.seconds, 3),
                   exp::fmt(p.reps_per_sec, 1), exp::fmt(p.speedup, 2) + "x"});
  }
  std::cout << table.render() << "\n";
  std::cout << "results are identical at every row; only wall-clock moves.\n";

  const std::string path = exp::output_dir() + "/BENCH_parallel_runner.json";
  try {
    util::write_file_atomic(path, [&](std::ostream& file) {
      file << "{\n  \"benchmark\": \"parallel_runner_scaling\",\n"
           << "  \"replications\": " << cfg.n_task_sets << ",\n"
           << "  \"hardware_jobs\": " << hw << ",\n  \"results\": [\n";
      for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        file << "    {\"jobs\": " << p.jobs << ", \"seconds\": " << p.seconds
             << ", \"replications_per_sec\": " << p.reps_per_sec
             << ", \"speedup\": " << p.speedup << "}"
             << (i + 1 < points.size() ? "," : "") << "\n";
      }
      file << "  ]\n}\n";
    });
    std::cout << "summary written to " << path << "\n";
  } catch (const std::exception& error) {
    std::cerr << "warning: could not write " << path << ": " << error.what()
              << "\n";
  }
  return 0;
}

/// End-to-end engine throughput per scheduler: repeat a fixed 10k-time-unit
/// simulation and report segments, queue events (each released job enqueues
/// exactly one deadline event, so events = 2 * jobs_released) and scheduler
/// decisions per wall-clock second.  Each scheduler is timed through both
/// dispatch paths — the devirtualized kernel (`fast`, what production runs
/// use) and the virtual-dispatch reference (`reference`, devirtualize=false)
/// — with the repetitions interleaved so the reported `speedup` is a
/// same-process, same-machine ratio that survives noisy neighbours.  Rates
/// come from the *best* repetition (the run least disturbed by the OS), the
/// standard noise-robust estimator for deterministic workloads.  Emits
/// BENCH_engine.json in the schema checked by tools/check_bench_engine.cmake
/// and gated by tools/check_perf_budget.py.
int run_engine_baseline() {
  using Clock = std::chrono::steady_clock;

  const auto source = shared_source();
  const task::TaskSet set = shared_task_set(0.4);
  sim::SimulationConfig cfg;
  constexpr std::size_t kRepetitions = 20;

  struct Point {
    std::string scheduler;
    double seconds = 0.0;            ///< best devirtualized repetition.
    double segments_per_sec = 0.0;
    double events_per_sec = 0.0;
    double decisions_per_sec = 0.0;
    double reference_seconds = 0.0;  ///< best virtual-dispatch repetition.
    double reference_segments_per_sec = 0.0;
    double reference_events_per_sec = 0.0;
    double reference_decisions_per_sec = 0.0;
    double speedup = 0.0;            ///< reference_seconds / seconds.
  };
  std::vector<Point> points;

  std::cout << "engine baseline: horizon " << cfg.horizon << ", "
            << kRepetitions << " repetitions per scheduler and dispatch path\n"
            << "rates use the best repetition; speedup = reference / fast\n\n";

  for (const char* name : {"edf", "lsa", "ea-dvfs"}) {
    exp::RunOptions opts;
    opts.config = cfg;
    opts.source = source;
    opts.tasks = &set;
    opts.storage.capacity = 100.0;  // the scenario run_once historically used
    opts.scheduler = name;

    std::size_t segments = 0, events = 0, decisions = 0;
    double best_fast = 0.0, best_reference = 0.0;
    for (std::size_t rep = 0; rep < kRepetitions; ++rep) {
      // Interleaved so both paths see the same machine conditions.
      opts.devirtualize = true;
      auto start = Clock::now();
      const auto fast = exp::run_with_options(opts);
      const double fast_s =
          std::chrono::duration<double>(Clock::now() - start).count();

      opts.devirtualize = false;
      start = Clock::now();
      const auto reference = exp::run_with_options(opts);
      const double reference_s =
          std::chrono::duration<double>(Clock::now() - start).count();

      if (fast.segments != reference.segments ||
          fast.decisions != reference.decisions) {
        std::cerr << "dispatch paths disagree for " << name << "\n";
        return 1;
      }
      segments = fast.segments;
      events = 2 * fast.jobs_released;
      decisions = fast.decisions;
      if (rep == 0 || fast_s < best_fast) best_fast = fast_s;
      if (rep == 0 || reference_s < best_reference) best_reference = reference_s;
    }
    if (segments == 0 || best_fast <= 0.0 || best_reference <= 0.0) {
      std::cerr << "engine baseline produced no segments\n";
      return 1;
    }
    Point p;
    p.scheduler = name;
    p.seconds = best_fast;
    p.segments_per_sec = static_cast<double>(segments) / best_fast;
    p.events_per_sec = static_cast<double>(events) / best_fast;
    p.decisions_per_sec = static_cast<double>(decisions) / best_fast;
    p.reference_seconds = best_reference;
    p.reference_segments_per_sec = static_cast<double>(segments) / best_reference;
    p.reference_events_per_sec = static_cast<double>(events) / best_reference;
    p.reference_decisions_per_sec =
        static_cast<double>(decisions) / best_reference;
    p.speedup = best_reference / best_fast;
    points.push_back(std::move(p));
  }

  exp::TextTable table_out({"scheduler", "seconds", "segments/s", "events/s",
                            "decisions/s", "ref segments/s", "speedup"});
  for (const Point& p : points) {
    table_out.add_row({p.scheduler, exp::fmt(p.seconds, 4),
                       exp::fmt(p.segments_per_sec, 0),
                       exp::fmt(p.events_per_sec, 0),
                       exp::fmt(p.decisions_per_sec, 0),
                       exp::fmt(p.reference_segments_per_sec, 0),
                       exp::fmt(p.speedup, 2) + "x"});
  }
  std::cout << table_out.render() << "\n";

  const std::string path = exp::output_dir() + "/BENCH_engine.json";
  try {
    util::write_file_atomic(path, [&](std::ostream& file) {
      file << "{\n  \"benchmark\": \"engine_baseline\",\n"
           << "  \"horizon\": " << cfg.horizon << ",\n"
           << "  \"repetitions\": " << kRepetitions << ",\n  \"results\": [\n";
      for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        file << "    {\"scheduler\": \"" << p.scheduler
             << "\", \"seconds\": " << p.seconds
             << ", \"segments_per_sec\": " << p.segments_per_sec
             << ", \"events_per_sec\": " << p.events_per_sec
             << ", \"decisions_per_sec\": " << p.decisions_per_sec
             << ",\n     \"reference_seconds\": " << p.reference_seconds
             << ", \"reference_segments_per_sec\": "
             << p.reference_segments_per_sec
             << ", \"reference_events_per_sec\": " << p.reference_events_per_sec
             << ", \"reference_decisions_per_sec\": "
             << p.reference_decisions_per_sec
             << ",\n     \"speedup\": " << p.speedup << "}"
             << (i + 1 < points.size() ? "," : "") << "\n";
      }
      file << "  ]\n}\n";
    });
    std::cout << "summary written to " << path << "\n";
  } catch (const std::exception& error) {
    std::cerr << "error: could not write " << path << ": " << error.what()
              << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scaling") == 0) return run_scaling_benchmark();
    if (std::strcmp(argv[i], "--engine-baseline") == 0)
      return run_engine_baseline();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
