/// Ablation: actual execution times below the worst case (the follow-up
/// direction to the paper — "harvesting-aware" slack reclamation).  The
/// paper's model runs every job for its full WCET; real jobs finish early.
/// EA-DVFS recomputes (s1, s2, f_n) at every event from the *remaining*
/// budget, so early completions automatically free energy for successors;
/// LSA can only bank the unused time as idle harvesting.
///
/// Sweeps the best-case/worst-case ratio and reports miss rates at a small
/// capacity where energy is the binding constraint.

#include <iostream>

#include "bench_common.hpp"
#include "exp/miss_rate_sweep.hpp"
#include "exp/report.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("ablation: actual execution times (slack reclamation)");
  bench::add_common_options(args, /*default_sets=*/80);
  bench::add_observability_options(args);
  args.add_option("utilization", "0.6", "target (WCET-based) utilization");
  args.add_option("capacity", "60", "storage capacity for this sweep");
  if (!bench::parse_cli(args, argc, argv)) return 0;
  bench::apply_logging(args);

  const std::vector<double> bcet_fractions = {1.0, 0.75, 0.5, 0.25};

  exp::print_banner(std::cout, "Ablation — slack reclamation",
                    "paper assumes actual = WCET; sweep actual ~ U[b·w, w]",
                    "U=" + args.str("utilization") + " (WCET-based), capacity " +
                        args.str("capacity") + ", " +
                        std::to_string(args.integer("sets")) + " task sets");

  exp::TextTable table({"bcet fraction", "LSA miss", "EA-DVFS miss",
                        "reduction", "EA-DVFS busy time"});
  for (double fraction : bcet_fractions) {
    exp::MissRateSweepConfig cfg;
    cfg.capacities = {args.real("capacity")};
    cfg.schedulers = {"lsa", "ea-dvfs"};
    cfg.predictor = args.str("predictor");
    cfg.n_task_sets = static_cast<std::size_t>(args.integer("sets"));
    cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
    cfg.generator.target_utilization = args.real("utilization");
    cfg.generator.n_tasks = static_cast<std::size_t>(args.integer("tasks"));
    bench::apply_sim_options(args, cfg.sim);
    cfg.fault = bench::fault_from_args(args);
    cfg.solar.horizon = cfg.sim.horizon;
    cfg.execution.bcet_fraction = fraction;
    cfg.parallel = bench::parallel_from_args(args);
    const std::string slug = "bcet" + exp::fmt(fraction, 2);
    cfg.metrics_out = bench::variant_path(args.str("metrics-out"), slug);
    cfg.decisions_out = bench::variant_path(args.str("decisions-out"), slug);

    const exp::MissRateSweepResult result = exp::run_miss_rate_sweep(cfg);
    bench::report_observability(cfg.metrics_out, cfg.decisions_out);
    const double lsa = result.cell("lsa", cfg.capacities[0]).miss_rate.mean();
    const double ea = result.cell("ea-dvfs", cfg.capacities[0]).miss_rate.mean();
    table.add_row(
        {exp::fmt(fraction, 2), exp::fmt(lsa, 4), exp::fmt(ea, 4),
         lsa > 0 ? exp::fmt(100.0 * (lsa - ea) / lsa, 1) + "%" : "n/a",
         exp::fmt(result.cell("ea-dvfs", cfg.capacities[0]).busy_time.mean(), 1)});
  }
  std::cout << table.render() << "\n";
  std::cout << "reading guide: as jobs finish further below their WCET both\n"
               "algorithms gain headroom, but EA-DVFS converts the freed\n"
               "budget into deeper slow-down on subsequent jobs.\n";
  const std::string path = exp::output_dir() + "/ablation_slack_reclamation.csv";
  table.write_csv(path);
  std::cout << "table written to " << path << "\n";
  return 0;
}
