/// Ablation: non-zero idle power.  The paper's energy model only charges
/// for execution; a real processor draws tens of mW while idle, which taxes
/// exactly the banking both LSA and EA-DVFS rely on (idle intervals are
/// when the storage refills).  Sweeps the idle draw and reports the Fig-8
/// point at a fixed capacity.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "energy/solar_source.hpp"
#include "exp/report.hpp"
#include "exp/setup.hpp"
#include "sched/factory.hpp"
#include "task/generator.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("ablation: idle power draw");
  bench::add_common_options(args, /*default_sets=*/60);
  bench::add_observability_options(args);
  args.add_option("utilization", "0.4", "target utilization");
  args.add_option("capacity", "100", "storage capacity for this sweep");
  if (!bench::parse_cli(args, argc, argv)) return 0;
  bench::apply_logging(args);
  bench::require_no_fault(args);

  // XScale's idle draw is ~0.04 W against a 0.08 W slowest active point.
  const std::vector<Power> idle_powers = {0.0, 0.01, 0.02, 0.04, 0.07};

  exp::print_banner(std::cout, "Ablation — idle power",
                    "paper charges nothing for idling; real nodes pay to wait",
                    "U=" + args.str("utilization") + ", capacity " +
                        args.str("capacity") + ", " +
                        std::to_string(args.integer("sets")) + " task sets");

  const auto n_sets = static_cast<std::size_t>(args.integer("sets"));
  const auto seeds = exp::derive_seeds(
      static_cast<std::uint64_t>(args.integer("seed")), n_sets);
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = args.real("utilization");
  gen_cfg.n_tasks = static_cast<std::size_t>(args.integer("tasks"));
  sim::SimulationConfig sim_cfg;
  bench::apply_sim_options(args, sim_cfg);

  exp::TextTable out({"idle power", "LSA miss", "EA-DVFS miss", "reduction",
                      "EA-DVFS brownout"});
  for (Power idle : idle_powers) {
    // One replication's runs, shared between the worker pool below and the
    // trace replication: exp::RunOptions carries the idle-power knob that
    // run_once() does not expose.
    const auto run_cell = [&](std::size_t rep, const char* scheduler,
                              const task::TaskSet& set,
                              const std::shared_ptr<const energy::EnergySource>&
                                  source,
                              obs::RunObservability* sink) {
      exp::RunOptions run;
      run.config = sim_cfg;
      run.source = source;
      run.tasks = &set;
      run.storage.capacity = args.real("capacity");
      run.table = table;
      run.scheduler = scheduler;
      run.predictor = args.str("predictor");
      run.idle_power = idle;
      run.execution.seed = seeds[rep] ^ 0xE5ECULL;
      run.observability = sink;
      run.per_task_metrics = false;
      return exp::run_with_options(run);
    };
    const auto rep_workload = [&](std::size_t rep) {
      util::Xoshiro256ss rng(seeds[rep]);
      const task::TaskSetGenerator generator(gen_cfg);
      return generator.generate(rng);
    };
    const auto rep_source = [&](std::size_t rep) {
      energy::SolarSourceConfig solar;
      solar.seed = seeds[rep] ^ 0x5eed5eed5eed5eedULL;
      solar.horizon = sim_cfg.horizon;
      return std::make_shared<const energy::SolarSource>(solar);
    };

    struct RepRecord {
      double lsa_miss = 0.0;
      double ea_miss = 0.0;
      double ea_brownout = 0.0;
    };
    const auto records = exp::parallel_map<RepRecord>(
        n_sets,
        exp::with_default_progress(bench::parallel_from_args(args),
                                   "idle-power ablation", 20),
        [&](std::size_t rep) {
          const task::TaskSet set = rep_workload(rep);
          const auto source = rep_source(rep);
          RepRecord record;
          for (const char* name : {"lsa", "ea-dvfs"}) {
            const auto result = run_cell(rep, name, set, source, nullptr);
            if (std::string(name) == "lsa") {
              record.lsa_miss = result.miss_rate();
            } else {
              record.ea_miss = result.miss_rate();
              record.ea_brownout = result.brownout_time;
            }
          }
          return record;
        });

    const std::string slug = "idle" + exp::fmt(idle, 3);
    const std::string metrics_out =
        bench::variant_path(args.str("metrics-out"), slug);
    const std::string decisions_out =
        bench::variant_path(args.str("decisions-out"), slug);
    if ((!metrics_out.empty() || !decisions_out.empty()) && n_sets > 0) {
      obs::RunObservability sink;
      const task::TaskSet set = rep_workload(0);
      const auto source = rep_source(0);
      for (const char* name : {"lsa", "ea-dvfs"})
        (void)run_cell(0, name, set, source, &sink);
      if (!metrics_out.empty()) sink.export_metrics(metrics_out);
      if (!decisions_out.empty()) sink.export_decisions(decisions_out);
      bench::report_observability(metrics_out, decisions_out);
    }

    util::RunningStats lsa_miss, ea_miss, ea_brownout;
    for (const RepRecord& record : records) {
      lsa_miss.add(record.lsa_miss);
      ea_miss.add(record.ea_miss);
      ea_brownout.add(record.ea_brownout);
    }
    out.add_row({exp::fmt(idle, 3), exp::fmt(lsa_miss.mean(), 4),
                 exp::fmt(ea_miss.mean(), 4),
                 lsa_miss.mean() > 0
                     ? exp::fmt(100.0 * (lsa_miss.mean() - ea_miss.mean()) /
                                    lsa_miss.mean(), 1) + "%"
                     : "n/a",
                 exp::fmt(ea_brownout.mean(), 1)});
  }
  std::cout << out.render() << "\n";
  std::cout << "reading guide: idle draw shifts both curves up (the night\n"
               "costs energy even with nothing to run); the EA-DVFS advantage\n"
               "persists because stretching saves active energy regardless.\n";
  const std::string path = exp::output_dir() + "/ablation_idle_power.csv";
  out.write_csv(path);
  std::cout << "table written to " << path << "\n";
  return 0;
}
