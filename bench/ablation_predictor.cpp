/// Ablation: how much of EA-DVFS's advantage depends on harvest-prediction
/// quality?  The paper only says it "traces the P_S(t) profile"; this sweep
/// runs the Figure-8 experiment under four predictors from perfect
/// knowledge (oracle) down to assuming no future harvest at all
/// (pessimistic).

#include <iostream>

#include "bench_common.hpp"
#include "exp/miss_rate_sweep.hpp"
#include "exp/report.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("ablation: predictor quality (fig8 setup, U=0.4)");
  bench::add_common_options(args, /*default_sets=*/80);
  bench::add_observability_options(args);
  args.add_option("utilization", "0.4", "target utilization");
  if (!bench::parse_cli(args, argc, argv)) return 0;
  bench::apply_logging(args);

  const std::vector<std::string> predictors = {
      "oracle", "slotted-ewma", "running-average", "persistence", "pessimistic"};

  exp::print_banner(std::cout, "Ablation — harvest predictor",
                    "paper under-specifies prediction; this quantifies its "
                    "effect on both algorithms",
                    "fig8 setup (U=" + args.str("utilization") + "), " +
                        std::to_string(args.integer("sets")) + " task sets");

  exp::TextTable table({"predictor", "capacity", "LSA", "EA-DVFS", "reduction"});
  for (const auto& predictor : predictors) {
    exp::MissRateSweepConfig cfg;
    cfg.capacities = args.real_list("capacities");
    cfg.schedulers = {"lsa", "ea-dvfs"};
    cfg.predictor = predictor;
    cfg.n_task_sets = static_cast<std::size_t>(args.integer("sets"));
    cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
    cfg.generator.target_utilization = args.real("utilization");
    cfg.generator.n_tasks = static_cast<std::size_t>(args.integer("tasks"));
    bench::apply_sim_options(args, cfg.sim);
    cfg.fault = bench::fault_from_args(args);
    cfg.solar.horizon = cfg.sim.horizon;
    cfg.parallel = bench::parallel_from_args(args);
    cfg.metrics_out = bench::variant_path(args.str("metrics-out"), predictor);
    cfg.decisions_out =
        bench::variant_path(args.str("decisions-out"), predictor);

    const exp::MissRateSweepResult result = exp::run_miss_rate_sweep(cfg);
    bench::report_observability(cfg.metrics_out, cfg.decisions_out);
    for (double capacity : cfg.capacities) {
      const double lsa = result.cell("lsa", capacity).miss_rate.mean();
      const double ea = result.cell("ea-dvfs", capacity).miss_rate.mean();
      table.add_row({predictor, exp::fmt(capacity, 0), exp::fmt(lsa, 4),
                     exp::fmt(ea, 4),
                     lsa > 0 ? exp::fmt(100.0 * (lsa - ea) / lsa, 1) + "%"
                             : "n/a"});
    }
  }
  std::cout << table.render() << "\n";
  std::cout
      << "reading guide: over-prediction (running-average during troughs)\n"
         "collapses both algorithms toward plain EDF (they believe energy is\n"
         "plentiful); the oracle and the slotted profile preserve EA-DVFS's\n"
         "advantage; full pessimism stretches early and often.\n";
  const std::string path = exp::output_dir() + "/ablation_predictor.csv";
  table.write_csv(path);
  std::cout << "table written to " << path << "\n";
  return 0;
}
