/// Ablation: the missing axis.  The paper evaluates U = 0.4 and U = 0.8
/// (Figures 8/9) and sweeps U only for Table 1's storage sizing; this bench
/// sweeps utilization directly at a fixed small capacity and reports both
/// miss rate and consumed energy for every scheduler — showing where the
/// EA-DVFS advantage turns on (low U: lots of slack) and off (U -> 1).

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "exp/miss_rate_sweep.hpp"
#include "exp/report.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("ablation: utilization sweep at fixed capacity");
  bench::add_common_options(args, /*default_sets=*/80);
  bench::add_observability_options(args);
  args.add_option("capacity", "75", "storage capacity");
  args.add_option("utilizations", "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9",
                  "utilization grid");
  if (!bench::parse_cli(args, argc, argv)) return 0;
  bench::apply_logging(args);

  const std::vector<std::string> schedulers = {"edf", "lsa", "ea-dvfs"};
  const std::vector<double> utilizations = args.real_list("utilizations");

  exp::print_banner(std::cout, "Ablation — utilization sweep",
                    "interpolates between the paper's U=0.4 and U=0.8 points",
                    "capacity " + args.str("capacity") + ", " +
                        std::to_string(args.integer("sets")) + " task sets, "
                        "predictor " + args.str("predictor"));

  exp::TextTable table({"U", "EDF miss", "LSA miss", "EA-DVFS miss",
                        "EA-DVFS vs LSA", "EA-DVFS energy/LSA energy"});
  for (double u : utilizations) {
    exp::MissRateSweepConfig cfg;
    cfg.capacities = {args.real("capacity")};
    cfg.schedulers = schedulers;
    cfg.predictor = args.str("predictor");
    cfg.n_task_sets = static_cast<std::size_t>(args.integer("sets"));
    cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
    cfg.generator.target_utilization = u;
    cfg.generator.n_tasks = static_cast<std::size_t>(args.integer("tasks"));
    bench::apply_sim_options(args, cfg.sim);
    cfg.fault = bench::fault_from_args(args);
    cfg.solar.horizon = cfg.sim.horizon;
    cfg.parallel = bench::parallel_from_args(args);
    const std::string slug = "u" + exp::fmt(u, 1);
    cfg.metrics_out = bench::variant_path(args.str("metrics-out"), slug);
    cfg.decisions_out = bench::variant_path(args.str("decisions-out"), slug);

    const exp::MissRateSweepResult result = exp::run_miss_rate_sweep(cfg);
    bench::report_observability(cfg.metrics_out, cfg.decisions_out);
    const double capacity = cfg.capacities[0];
    const double edf = result.cell("edf", capacity).miss_rate.mean();
    const double lsa = result.cell("lsa", capacity).miss_rate.mean();
    const double ea = result.cell("ea-dvfs", capacity).miss_rate.mean();
    // busy_time is a proxy for consumed energy ratio only at one speed;
    // compare actual consumption through the stall/busy diagnostics instead:
    // approximate per-cell mean consumed energy is not recorded, so report
    // the busy-time ratio (EA-DVFS busier = running slower for longer).
    const double busy_ratio = result.cell("ea-dvfs", capacity).busy_time.mean() /
                              std::max(1.0, result.cell("lsa", capacity).busy_time.mean());
    table.add_row({exp::fmt(u, 1), exp::fmt(edf, 4), exp::fmt(lsa, 4),
                   exp::fmt(ea, 4),
                   lsa > 0 ? exp::fmt(100.0 * (lsa - ea) / lsa, 1) + "%" : "n/a",
                   exp::fmt(busy_ratio, 2) + "x busy"});
  }
  std::cout << table.render() << "\n";
  const std::string path = exp::output_dir() + "/ablation_utilization_sweep.csv";
  table.write_csv(path);
  std::cout << "table written to " << path << "\n";
  return 0;
}
