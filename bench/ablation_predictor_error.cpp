/// Ablation: predictor accuracy measured directly (not via miss rates).
/// For each predictor and each horizon, reports the mean absolute error and
/// the bias of Ê_S(t, t+L) against the true integral, normalized by the
/// mean window energy.  Positive bias = over-prediction, the failure mode
/// that makes procrastinating schedulers start too late.

#include <iostream>

#include "bench_common.hpp"
#include "exp/predictor_error.hpp"
#include "exp/report.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("ablation: harvest-prediction accuracy");
  args.add_option("sources", "20", "independent source realizations");
  args.add_option("seed", "42", "master seed");
  args.add_option("horizon", "5000", "observation span per realization");
  args.add_option("windows", "10,50,200,690", "prediction horizons");
  args.add_option("jobs", std::to_string(exp::hardware_jobs()),
                  "worker threads over source realizations");
  if (!bench::parse_cli(args, argc, argv)) return 0;

  exp::PredictorErrorConfig cfg;
  cfg.n_sources = static_cast<std::size_t>(args.integer("sources"));
  cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
  cfg.horizon = args.real("horizon");
  cfg.windows = args.real_list("windows");
  cfg.parallel.jobs = exp::parse_jobs(args.integer("jobs"));

  exp::print_banner(std::cout, "Ablation — predictor accuracy",
                    "which predictor is wrong, by how much, at which horizon",
                    std::to_string(cfg.n_sources) + " sources, horizon " +
                        exp::fmt(cfg.horizon, 0) +
                        ", errors normalized by mean window energy");

  exp::TextTable table({"predictor", "window", "mean |error|", "bias",
                        "worst |error|"});
  const exp::PredictorErrorResult result = exp::run_predictor_error(cfg);
  for (const auto& cell : result.cells) {
    table.add_row({cell.predictor, exp::fmt(cell.window, 0),
                   exp::fmt(cell.absolute_error.mean(), 4),
                   exp::fmt(cell.bias.mean(), 4),
                   exp::fmt(cell.absolute_error.max(), 3)});
  }
  std::cout << table.render() << "\n";
  std::cout
      << "reading guide: the oracle is exact by construction.  The slotted\n"
         "profile dominates every realizable horizon and is nearly unbiased\n"
         "once trained.  The running average only becomes accurate at full-\n"
         "cycle horizons, where the diurnal phase averages out — at task-\n"
         "deadline horizons (10-100) it is ~6x worse than the profile, and\n"
         "during troughs that error is over-prediction, the dangerous\n"
         "direction.  Persistence inherits the per-step noise at every\n"
         "horizon.  Pessimism has bias -1 by definition.\n";
  const std::string path = exp::output_dir() + "/ablation_predictor_error.csv";
  table.write_csv(path);
  std::cout << "table written to " << path << "\n";
  return 0;
}
