/// Ablation: the paper assumes an ideal storage (§3.2: lossless charge,
/// no self-discharge).  Real supercaps leak and real charge paths lose
/// 10-25%; this sweep quantifies how the LSA / EA-DVFS comparison moves.
/// Procrastinating policies (both of them) hold energy in the storage for
/// longer, so leakage taxes exactly the mechanism they rely on.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "energy/solar_source.hpp"
#include "exp/report.hpp"
#include "exp/setup.hpp"
#include "sched/factory.hpp"
#include "task/generator.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("ablation: non-ideal storage (efficiency + leakage)");
  bench::add_common_options(args, /*default_sets=*/60);
  args.add_option("utilization", "0.4", "target utilization");
  args.add_option("capacity", "100", "storage capacity for this sweep");
  if (!bench::parse_cli(args, argc, argv)) return 0;
  bench::apply_logging(args);
  bench::require_no_fault(args);

  struct Arm {
    std::string label;
    double efficiency;
    Power leakage;
  };
  const std::vector<Arm> arms = {
      {"ideal (paper)", 1.00, 0.00},
      {"eff 0.90", 0.90, 0.00},
      {"eff 0.75", 0.75, 0.00},
      {"leak 0.05 W", 1.00, 0.05},
      {"leak 0.20 W", 1.00, 0.20},
      {"eff 0.90 + leak 0.05", 0.90, 0.05},
  };

  exp::print_banner(std::cout, "Ablation — storage non-idealities",
                    "paper assumes ideal storage; charge loss and leakage tax "
                    "procrastination",
                    "U=" + args.str("utilization") + ", capacity " +
                        args.str("capacity") + ", " +
                        std::to_string(args.integer("sets")) + " task sets");

  const auto n_sets = static_cast<std::size_t>(args.integer("sets"));
  const auto seeds = exp::derive_seeds(
      static_cast<std::uint64_t>(args.integer("seed")), n_sets);
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = args.real("utilization");
  gen_cfg.n_tasks = static_cast<std::size_t>(args.integer("tasks"));
  sim::SimulationConfig sim_cfg;
  bench::apply_sim_options(args, sim_cfg);

  exp::TextTable out({"storage model", "LSA miss", "EA-DVFS miss", "reduction"});
  for (const Arm& arm : arms) {
    struct RepRecord {
      double lsa_miss = 0.0;
      double ea_miss = 0.0;
    };
    const auto records = exp::parallel_map<RepRecord>(
        n_sets,
        exp::with_default_progress(bench::parallel_from_args(args),
                                   "storage ablation", 20),
        [&](std::size_t rep) {
          util::Xoshiro256ss rng(seeds[rep]);
          const task::TaskSetGenerator generator(gen_cfg);
          const task::TaskSet set = generator.generate(rng);
          energy::SolarSourceConfig solar;
          solar.seed = seeds[rep] ^ 0x5eed5eed5eed5eedULL;
          solar.horizon = sim_cfg.horizon;
          const auto source = std::make_shared<const energy::SolarSource>(solar);
          energy::StorageConfig storage;
          storage.capacity = args.real("capacity");
          storage.charge_efficiency = arm.efficiency;
          storage.leakage = arm.leakage;
          RepRecord record;
          for (const char* name : {"lsa", "ea-dvfs"}) {
            const auto scheduler = sched::make_scheduler(name);
            const auto result = exp::run_once_with_storage(
                sim_cfg, source, storage, table, *scheduler,
                args.str("predictor"), set);
            (std::string(name) == "lsa" ? record.lsa_miss : record.ea_miss) =
                result.miss_rate();
          }
          return record;
        });

    util::RunningStats lsa_miss, ea_miss;
    for (const RepRecord& record : records) {
      lsa_miss.add(record.lsa_miss);
      ea_miss.add(record.ea_miss);
    }
    out.add_row({arm.label, exp::fmt(lsa_miss.mean(), 4),
                 exp::fmt(ea_miss.mean(), 4),
                 lsa_miss.mean() > 0
                     ? exp::fmt(100.0 * (lsa_miss.mean() - ea_miss.mean()) /
                                    lsa_miss.mean(), 1) + "%"
                     : "n/a"});
  }
  std::cout << out.render() << "\n";
  const std::string path = exp::output_dir() + "/ablation_storage_nonideal.csv";
  out.write_csv(path);
  std::cout << "table written to " << path << "\n";
  return 0;
}
