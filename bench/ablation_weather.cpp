/// Ablation: correlated weather.  Eq. 13 resamples its noise every time
/// unit, so droughts never persist and small storages already absorb the
/// worst case (this is why the reproduction's miss-rate action sits at
/// smaller capacities than the paper's axis — see DESIGN.md §4).  With a
/// Markov cloud model, overcast spells last for hundreds of time units and
/// the capacity axis stretches back out — while the LSA vs EA-DVFS ordering
/// is unchanged.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "energy/markov_weather_source.hpp"
#include "energy/solar_source.hpp"
#include "exp/report.hpp"
#include "exp/setup.hpp"
#include "sched/factory.hpp"
#include "task/generator.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("ablation: iid eq.13 noise vs Markov-correlated weather");
  bench::add_common_options(args, /*default_sets=*/60);
  args.add_option("utilization", "0.4", "target utilization");
  args.add_option("weather-capacities", "100,200,500,1000,2000,5000",
                  "capacity grid for the correlated-weather arm");
  if (!bench::parse_cli(args, argc, argv)) return 0;
  bench::apply_logging(args);
  bench::require_no_fault(args);

  const auto n_sets = static_cast<std::size_t>(args.integer("sets"));
  const auto seeds = exp::derive_seeds(
      static_cast<std::uint64_t>(args.integer("seed")), n_sets);
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  sim::SimulationConfig sim_cfg;
  bench::apply_sim_options(args, sim_cfg);

  exp::print_banner(std::cout, "Ablation — weather correlation",
                    "correlated clouds create multi-day droughts: the "
                    "capacity scale of Figs 8/9 depends on noise correlation",
                    "U=" + args.str("utilization") + ", " +
                        std::to_string(n_sets) + " task sets per arm");

  exp::TextTable out({"weather", "capacity", "LSA", "EA-DVFS", "reduction"});
  for (const bool correlated : {false, true}) {
    // The Markov chain's mean attenuation (~0.55 with defaults) scales the
    // harvest budget down; rescale the workload so both arms stress the
    // schedulers comparably and the comparison isolates *correlation*.
    const energy::MarkovWeatherConfig weather_defaults;
    const double mean_attenuation = [&] {
      energy::MarkovWeatherConfig probe = weather_defaults;
      probe.horizon = 10.0;
      return energy::MarkovWeatherSource(probe).mean_attenuation();
    }();

    task::GeneratorConfig gen_cfg;
    gen_cfg.target_utilization = args.real("utilization");
    gen_cfg.n_tasks = static_cast<std::size_t>(args.integer("tasks"));

    const std::vector<double> capacities =
        correlated ? args.real_list("weather-capacities")
                   : args.real_list("capacities");

    struct RepRecord {
      std::vector<double> lsa, ea;  // one entry per capacity
    };
    const auto records = exp::parallel_map<RepRecord>(
        n_sets,
        exp::with_default_progress(bench::parallel_from_args(args),
                                   "weather ablation", 20),
        [&](std::size_t rep) {
          util::Xoshiro256ss rng(seeds[rep]);
          const task::TaskSetGenerator generator(gen_cfg);
          const task::TaskSet set = generator.generate(rng);
          std::shared_ptr<const energy::EnergySource> source;
          if (correlated) {
            energy::MarkovWeatherConfig cfg = weather_defaults;
            cfg.seed = seeds[rep] ^ 0x7ea7;
            cfg.horizon = sim_cfg.horizon;
            // Boost amplitude so the *mean* power matches the iid arm's.
            cfg.amplitude = 10.0 / mean_attenuation;
            source = std::make_shared<const energy::MarkovWeatherSource>(cfg);
          } else {
            energy::SolarSourceConfig cfg;
            cfg.seed = seeds[rep] ^ 0x7ea7;
            cfg.horizon = sim_cfg.horizon;
            source = std::make_shared<const energy::SolarSource>(cfg);
          }
          RepRecord record;
          for (std::size_t c = 0; c < capacities.size(); ++c) {
            for (const char* name : {"lsa", "ea-dvfs"}) {
              const auto scheduler = sched::make_scheduler(name);
              const auto result =
                  exp::run_once(sim_cfg, source, capacities[c], table,
                                *scheduler, args.str("predictor"), set);
              (std::string(name) == "lsa" ? record.lsa : record.ea)
                  .push_back(result.miss_rate());
            }
          }
          return record;
        });

    std::vector<util::RunningStats> lsa_miss(capacities.size());
    std::vector<util::RunningStats> ea_miss(capacities.size());
    for (const RepRecord& record : records) {
      for (std::size_t c = 0; c < capacities.size(); ++c) {
        lsa_miss[c].add(record.lsa[c]);
        ea_miss[c].add(record.ea[c]);
      }
    }
    for (std::size_t c = 0; c < capacities.size(); ++c) {
      const double lsa = lsa_miss[c].mean();
      const double ea = ea_miss[c].mean();
      out.add_row({correlated ? "markov clouds" : "iid eq.13",
                   exp::fmt(capacities[c], 0), exp::fmt(lsa, 4),
                   exp::fmt(ea, 4),
                   lsa > 0 ? exp::fmt(100.0 * (lsa - ea) / lsa, 1) + "%"
                           : "n/a"});
    }
  }
  std::cout << out.render() << "\n";
  std::cout << "reading guide: with correlated clouds, nonzero miss rates\n"
               "persist to several-times-larger capacities (toward the paper's\n"
               "Figure 8/9 axis regime), and EA-DVFS still dominates LSA by\n"
               "the same >50% margin.\n";
  const std::string path = exp::output_dir() + "/ablation_weather.csv";
  out.write_csv(path);
  std::cout << "table written to " << path << "\n";
  return 0;
}
