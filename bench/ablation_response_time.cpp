/// Ablation: the hidden cost of stretching.  The paper reports only
/// deadline miss rates; EA-DVFS buys its energy savings by *running jobs
/// longer* — completed work arrives later inside its window.  This bench
/// measures per-job response times (completion − arrival) and the window
/// margin left at completion for every scheduler, on the Figure-8 setup.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "energy/solar_source.hpp"
#include "exp/report.hpp"
#include "exp/setup.hpp"
#include "sched/factory.hpp"
#include "sim/stats_observer.hpp"
#include "task/generator.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("ablation: response times (the cost of stretching)");
  bench::add_common_options(args, /*default_sets=*/60);
  args.add_option("utilization", "0.4", "target utilization");
  args.add_option("capacity", "100", "storage capacity");
  if (!bench::parse_cli(args, argc, argv)) return 0;
  bench::apply_logging(args);
  bench::require_no_fault(args);

  const std::vector<std::string> schedulers = {"edf", "lsa", "ea-dvfs"};

  exp::print_banner(std::cout, "Ablation — response time",
                    "EA-DVFS trades response time for energy; quantify it",
                    "U=" + args.str("utilization") + ", capacity " +
                        args.str("capacity") + ", " +
                        std::to_string(args.integer("sets")) + " task sets");

  const auto n_sets = static_cast<std::size_t>(args.integer("sets"));
  const auto seeds = exp::derive_seeds(
      static_cast<std::uint64_t>(args.integer("seed")), n_sets);
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = args.real("utilization");
  gen_cfg.n_tasks = static_cast<std::size_t>(args.integer("tasks"));
  sim::SimulationConfig sim_cfg;
  bench::apply_sim_options(args, sim_cfg);

  exp::TextTable out({"scheduler", "miss rate", "mean response", "p95 response",
                      "mean margin", "normalized response"});
  for (const auto& name : schedulers) {
    struct RepRecord {
      double miss = 0.0;
      bool has_completions = false;
      double response_mean = 0.0;
      double margin_mean = 0.0;
      std::vector<double> responses;
    };
    const auto records = exp::parallel_map<RepRecord>(
        n_sets,
        exp::with_default_progress(bench::parallel_from_args(args),
                                   "response-time ablation", 20),
        [&](std::size_t rep) {
          util::Xoshiro256ss rng(seeds[rep]);
          const task::TaskSetGenerator generator(gen_cfg);
          const task::TaskSet set = generator.generate(rng);
          energy::SolarSourceConfig solar;
          solar.seed = seeds[rep] ^ 0x5eed5eed5eed5eedULL;
          solar.horizon = sim_cfg.horizon;
          const auto source = std::make_shared<const energy::SolarSource>(solar);
          const auto scheduler = sched::make_scheduler(name);
          sim::StatsObserver stats;
          const auto result =
              exp::run_once(sim_cfg, source, args.real("capacity"), table,
                            *scheduler, args.str("predictor"), set, {&stats});
          RepRecord record;
          record.miss = result.miss_rate();
          const sim::TaskStats total = stats.total();
          if (!total.response_time.empty()) {
            record.has_completions = true;
            record.response_mean = total.response_time.mean();
            record.margin_mean = total.window_margin.mean();
          }
          record.responses = stats.response_times();
          return record;
        });

    util::RunningStats miss, response, margin;
    std::vector<double> all_responses;
    util::RunningStats normalized_response;  // response / relative deadline
    for (const RepRecord& record : records) {
      miss.add(record.miss);
      if (record.has_completions) {
        response.add(record.response_mean);
        margin.add(record.margin_mean);
        // Normalized response = 1 - margin (both per-window fractions).
        normalized_response.add(1.0 - record.margin_mean);
      }
      for (double r : record.responses) all_responses.push_back(r);
    }
    out.add_row({sched::make_scheduler(name)->name(), exp::fmt(miss.mean(), 4),
                 exp::fmt(response.mean(), 2),
                 all_responses.empty()
                     ? "n/a"
                     : exp::fmt(util::quantile(all_responses, 0.95), 2),
                 exp::fmt(margin.mean(), 3),
                 exp::fmt(normalized_response.mean(), 3)});
  }
  std::cout << out.render() << "\n";
  std::cout << "reading guide: both energy-aware policies finish well deeper\n"
               "into their windows than plain EDF (~40% higher responses) —\n"
               "LSA by waiting, EA-DVFS by running slowly; EA-DVFS gets the\n"
               "same lateness profile as LSA *plus* the miss-rate win.  A\n"
               "real cost only if downstream consumers prefer early results.\n";
  const std::string path = exp::output_dir() + "/ablation_response_time.csv";
  out.write_csv(path);
  std::cout << "table written to " << path << "\n";
  return 0;
}
