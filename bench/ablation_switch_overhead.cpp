/// Ablation: the paper assumes "the overhead from voltage switching is
/// negligible" (§5.1).  This sweep charges every DVFS transition a time and
/// energy cost and measures when that assumption starts to matter.
/// EA-DVFS switches frequencies routinely (slow phase + full-speed phase
/// per stretched job); LSA reconfigures essentially once.

#include <iostream>

#include "bench_common.hpp"
#include "exp/miss_rate_sweep.hpp"
#include "exp/report.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("ablation: DVFS switch overhead (fig8 setup)");
  bench::add_common_options(args, /*default_sets=*/80);
  bench::add_observability_options(args);
  args.add_option("utilization", "0.4", "target utilization");
  args.add_option("capacity", "75", "storage capacity for this sweep");
  if (!bench::parse_cli(args, argc, argv)) return 0;
  bench::apply_logging(args);

  struct Arm {
    std::string label;
    std::string slug;  // filename-safe label for per-arm artifacts
    proc::SwitchOverhead overhead;
  };
  const std::vector<Arm> arms = {
      {"none (paper)", "none", {0.0, 0.0}},
      {"0.01t / 0.01e", "t0.01-e0.01", {0.01, 0.01}},
      {"0.05t / 0.10e", "t0.05-e0.10", {0.05, 0.10}},
      {"0.20t / 0.50e", "t0.20-e0.50", {0.20, 0.50}},
      {"0.50t / 1.00e", "t0.50-e1.00", {0.50, 1.00}},
  };

  exp::print_banner(std::cout, "Ablation — DVFS switch overhead",
                    "paper assumes negligible switching cost; sweep it",
                    "fig8 setup (U=" + args.str("utilization") +
                        "), capacity " + args.str("capacity") + ", " +
                        std::to_string(args.integer("sets")) + " task sets");

  exp::TextTable table({"overhead", "LSA miss", "EA-DVFS miss",
                        "LSA switches", "EA-DVFS switches"});
  for (const Arm& arm : arms) {
    exp::MissRateSweepConfig cfg;
    cfg.capacities = {args.real("capacity")};
    cfg.schedulers = {"lsa", "ea-dvfs"};
    cfg.predictor = args.str("predictor");
    cfg.n_task_sets = static_cast<std::size_t>(args.integer("sets"));
    cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
    cfg.generator.target_utilization = args.real("utilization");
    cfg.generator.n_tasks = static_cast<std::size_t>(args.integer("tasks"));
    bench::apply_sim_options(args, cfg.sim);
    cfg.fault = bench::fault_from_args(args);
    cfg.solar.horizon = cfg.sim.horizon;
    cfg.overhead = arm.overhead;
    cfg.parallel = bench::parallel_from_args(args);
    cfg.metrics_out = bench::variant_path(args.str("metrics-out"), arm.slug);
    cfg.decisions_out =
        bench::variant_path(args.str("decisions-out"), arm.slug);

    const exp::MissRateSweepResult result = exp::run_miss_rate_sweep(cfg);
    bench::report_observability(cfg.metrics_out, cfg.decisions_out);
    const auto& lsa = result.cell("lsa", cfg.capacities[0]);
    const auto& ea = result.cell("ea-dvfs", cfg.capacities[0]);
    table.add_row({arm.label, exp::fmt(lsa.miss_rate.mean(), 4),
                   exp::fmt(ea.miss_rate.mean(), 4),
                   exp::fmt(lsa.frequency_switches.mean(), 1),
                   exp::fmt(ea.frequency_switches.mean(), 1)});
  }
  std::cout << table.render() << "\n";
  std::cout << "reading guide: EA-DVFS performs many more transitions than\n"
               "LSA; its advantage must survive realistic overheads for the\n"
               "paper's negligibility assumption to be safe.\n";
  const std::string path = exp::output_dir() + "/ablation_switch_overhead.csv";
  table.write_csv(path);
  std::cout << "table written to " << path << "\n";
  return 0;
}
