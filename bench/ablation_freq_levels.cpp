/// Ablation: DVFS granularity.  The paper uses a 5-point XScale-like table;
/// this sweep re-runs the Figure-8 experiment with a 2-point table, the
/// 5-point XScale table, and denser cubic-power tables to show how much of
/// EA-DVFS's win comes from having fine-grained slow-down choices.

#include <iostream>

#include "bench_common.hpp"
#include "exp/miss_rate_sweep.hpp"
#include "exp/report.hpp"
#include "proc/frequency_table.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("ablation: frequency-table granularity (fig8 setup)");
  bench::add_common_options(args, /*default_sets=*/80);
  bench::add_observability_options(args);
  args.add_option("utilization", "0.4", "target utilization");
  if (!bench::parse_cli(args, argc, argv)) return 0;
  bench::apply_logging(args);

  struct Arm {
    std::string label;
    std::string slug;  // filename-safe label for per-arm artifacts
    proc::FrequencyTable table;
  };
  const std::vector<Arm> arms = {
      {"2-point (paper s2 ex.)", "2pt", proc::FrequencyTable::two_speed(3.2)},
      {"5-point XScale (paper)", "5pt-xscale", proc::FrequencyTable::xscale()},
      {"10-point cubic", "10pt-cubic", proc::FrequencyTable::cubic(10, 3.2)},
      {"50-point cubic", "50pt-cubic", proc::FrequencyTable::cubic(50, 3.2)},
  };

  exp::print_banner(std::cout, "Ablation — DVFS granularity",
                    "more operating points = finer energy/deadline trade",
                    "fig8 setup (U=" + args.str("utilization") + "), " +
                        std::to_string(args.integer("sets")) + " task sets");

  exp::TextTable table({"table", "capacity", "LSA", "EA-DVFS", "reduction"});
  for (const Arm& arm : arms) {
    exp::MissRateSweepConfig cfg;
    cfg.capacities = args.real_list("capacities");
    cfg.schedulers = {"lsa", "ea-dvfs"};
    cfg.predictor = args.str("predictor");
    cfg.n_task_sets = static_cast<std::size_t>(args.integer("sets"));
    cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
    cfg.generator.target_utilization = args.real("utilization");
    cfg.generator.n_tasks = static_cast<std::size_t>(args.integer("tasks"));
    bench::apply_sim_options(args, cfg.sim);
    cfg.fault = bench::fault_from_args(args);
    cfg.solar.horizon = cfg.sim.horizon;
    cfg.table = arm.table;
    cfg.parallel = bench::parallel_from_args(args);
    cfg.metrics_out = bench::variant_path(args.str("metrics-out"), arm.slug);
    cfg.decisions_out =
        bench::variant_path(args.str("decisions-out"), arm.slug);

    const exp::MissRateSweepResult result = exp::run_miss_rate_sweep(cfg);
    bench::report_observability(cfg.metrics_out, cfg.decisions_out);
    for (double capacity : cfg.capacities) {
      const double lsa = result.cell("lsa", capacity).miss_rate.mean();
      const double ea = result.cell("ea-dvfs", capacity).miss_rate.mean();
      table.add_row({arm.label, exp::fmt(capacity, 0), exp::fmt(lsa, 4),
                     exp::fmt(ea, 4),
                     lsa > 0 ? exp::fmt(100.0 * (lsa - ea) / lsa, 1) + "%"
                             : "n/a"});
    }
  }
  std::cout << table.render() << "\n";
  std::cout << "note: LSA always runs at f_max, so its column moves only via\n"
               "the max-point power; the EA-DVFS column shows the value of\n"
               "granularity (the 2-point table wastes slack that finer tables\n"
               "convert into energy).\n";
  const std::string path = exp::output_dir() + "/ablation_freq_levels.csv";
  table.write_csv(path);
  std::cout << "table written to " << path << "\n";
  return 0;
}
