/// Reproduces paper Table 1: the ratio of minimum storage capacities
/// C_min,LSA / C_min,EA-DVFS needed for a zero deadline-miss rate, as the
/// utilization sweeps 0.2 → 0.8.
///
/// Paper reports: 2.5 / 1.33 / 1.05 / 1.01.  The shape claim is that the
/// ratio is large at low utilization (EA-DVFS needs a much smaller storage)
/// and decays toward 1 as utilization rises.

#include <iostream>

#include "bench_common.hpp"
#include "exp/capacity_search.hpp"
#include "exp/report.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("table1: minimum storage capacity ratio vs utilization");
  bench::add_common_options(args, /*default_sets=*/60);
  args.add_option("utilizations", "0.2,0.4,0.6,0.8", "utilization sweep");
  args.add_option("capacity-hi", "50000", "upper search bracket");
  if (!bench::parse_cli(args, argc, argv)) return 0;
  bench::apply_logging(args);
  bench::require_no_fault(args);

  const std::vector<double> utilizations = args.real_list("utilizations");
  const std::vector<double> paper_ratio = {2.5, 1.33, 1.05, 1.01};

  exp::print_banner(std::cout, "Table 1 — minimum storage capacity",
                    "Cmin,LSA / Cmin,EA-DVFS = 2.5 / 1.33 / 1.05 / 1.01 at "
                    "U = 0.2 / 0.4 / 0.6 / 0.8",
                    std::to_string(args.integer("sets")) +
                        " task sets per U, binary search to 1% on capacity, "
                        "predictor " + args.str("predictor"));

  exp::TextTable table({"U", "Cmin(LSA)", "Cmin(EA-DVFS)", "ratio (means)",
                        "mean ratio", "paper ratio", "skipped"});

  for (std::size_t i = 0; i < utilizations.size(); ++i) {
    exp::CapacitySearchConfig cfg;
    cfg.schedulers = {"lsa", "ea-dvfs"};
    cfg.predictor = args.str("predictor");
    cfg.n_task_sets = static_cast<std::size_t>(args.integer("sets"));
    cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
    cfg.capacity_hi = args.real("capacity-hi");
    cfg.generator.target_utilization = utilizations[i];
    cfg.generator.n_tasks = static_cast<std::size_t>(args.integer("tasks"));
    bench::apply_sim_options(args, cfg.sim);
    cfg.solar.horizon = cfg.sim.horizon;
    cfg.parallel = bench::parallel_from_args(args);

    const exp::CapacitySearchResult result = exp::run_capacity_search(cfg);
    table.add_row({exp::fmt(utilizations[i], 1),
                   exp::fmt(result.cmin[0].mean(), 1),
                   exp::fmt(result.cmin[1].mean(), 1),
                   exp::fmt(result.ratio_of_means(), 3),
                   exp::fmt(result.ratio_first_over_second.mean(), 3),
                   i < paper_ratio.size() ? exp::fmt(paper_ratio[i], 2) : "-",
                   std::to_string(result.sets_skipped)});
  }

  std::cout << table.render() << "\n";
  std::cout << "shape check: the ratio must decay toward 1 as U rises —\n"
               "EA-DVFS's storage advantage exists only while there is slack\n"
               "to trade for energy (paper §5.4).\n";
  const std::string path = exp::output_dir() + "/table1_min_capacity.csv";
  table.write_csv(path);
  std::cout << "table written to " << path << "\n";
  return 0;
}
