#pragma once

/// \file miss_rate.hpp
/// Shared implementation for the Figure 8 / Figure 9 reproductions (and the
/// scheduler-zoo ablation): deadline miss rate vs normalized storage
/// capacity for several schedulers under the paper's workload recipe.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/miss_rate_sweep.hpp"
#include "exp/report.hpp"
#include "util/args.hpp"

namespace eadvfs::bench {

inline void print_miss_rate_table(const exp::MissRateSweepResult& result,
                                  const std::string& csv_path) {
  const auto& cfg = result.config;
  const double max_capacity =
      *std::max_element(cfg.capacities.begin(), cfg.capacities.end());

  std::vector<std::string> header = {"capacity", "normalized"};
  for (const auto& s : cfg.schedulers) header.push_back(s);
  header.push_back("reduction vs " + cfg.schedulers.front());
  exp::TextTable table(header);

  // Partial results (--keep-going) are flagged inside the artifact itself,
  // not only on the console: a footer row lists how many replications are
  // missing from every aggregate above.
  std::vector<std::string> footer;
  if (!result.report.failures.empty()) {
    footer = {"failed_replications",
              std::to_string(result.report.failures.size()) + " of " +
                  std::to_string(cfg.n_task_sets)};
    std::string indices;
    for (const auto& failure : result.report.failures) {
      if (!indices.empty()) indices += ' ';
      indices += std::to_string(failure.index);
    }
    footer.push_back(indices);
  }

  for (double capacity : cfg.capacities) {
    std::vector<std::string> row = {exp::fmt(capacity, 0),
                                    exp::fmt(capacity / max_capacity, 3)};
    const double base = result.cell(cfg.schedulers.front(), capacity).miss_rate.mean();
    double last = base;
    for (const auto& s : cfg.schedulers) {
      last = result.cell(s, capacity).miss_rate.mean();
      row.push_back(exp::fmt(last, 4));
    }
    row.push_back(base > 0.0 ? exp::fmt(100.0 * (base - last) / base, 1) + "%"
                             : "n/a");
    table.add_row(std::move(row));
  }
  if (!footer.empty()) table.add_row(footer);
  std::cout << table.render() << "\n";
  table.write_csv(csv_path);
  std::cout << "table written to " << csv_path << "\n";
}

inline int run_miss_rate_figure(int argc, char** argv,
                                const std::string& figure_id, double utilization,
                                const std::string& paper_claim,
                                std::vector<std::string> schedulers = {"lsa",
                                                                       "ea-dvfs"}) {
  util::ArgParser args(figure_id + ": deadline miss rate vs capacity, U=" +
                       exp::fmt(utilization, 1));
  add_common_options(args, /*default_sets=*/150);
  add_crash_safety_options(args);
  add_observability_options(args);
  if (!parse_cli(args, argc, argv)) return 0;
  apply_logging(args);

  exp::MissRateSweepConfig cfg;
  cfg.capacities = args.real_list("capacities");
  cfg.schedulers = std::move(schedulers);
  cfg.predictor = args.str("predictor");
  cfg.n_task_sets = static_cast<std::size_t>(args.integer("sets"));
  cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
  cfg.generator.target_utilization = utilization;
  cfg.generator.n_tasks = static_cast<std::size_t>(args.integer("tasks"));
  apply_sim_options(args, cfg.sim);
  cfg.solar.horizon = cfg.sim.horizon;
  cfg.fault = fault_from_args(args);
  cfg.parallel = parallel_from_args(args);
  cfg.experiment_id = figure_id;
  apply_crash_safety(args, cfg.parallel, cfg.checkpoint);
  cfg.metrics_out = args.str("metrics-out");
  cfg.decisions_out = args.str("decisions-out");

  exp::print_banner(std::cout, figure_id, paper_claim,
                    "U=" + exp::fmt(utilization, 1) + ", " +
                        std::to_string(cfg.n_task_sets) +
                        " task sets, predictor " + cfg.predictor +
                        ", capacity axis normalized by its max");

  exp::MissRateSweepResult result;
  try {
    result = exp::run_miss_rate_sweep(cfg);
  } catch (const util::ManifestMismatchError& error) {
    std::cerr << "error: " << error.what() << "\n";
    return util::exit_code::kManifestMismatch;
  }
  const int outcome = report_run_outcome(result.report, result.resumed,
                                         resume_hint(cfg.checkpoint));
  if (outcome == util::exit_code::kInterrupted) return outcome;
  print_miss_rate_table(result,
                        exp::output_dir() + "/" + figure_id + "_miss_rate.csv");
  report_observability(cfg.metrics_out, cfg.decisions_out);
  if (!result.wall_clock.empty())
    std::cout << "wall clock: " << result.wall_clock << "\n";

  // Headline number in the paper's terms.
  double base_sum = 0.0, ea_sum = 0.0;
  std::size_t stressed = 0;
  for (double capacity : cfg.capacities) {
    const double base = result.cell(cfg.schedulers.front(), capacity).miss_rate.mean();
    const double ea = result.cell(cfg.schedulers.back(), capacity).miss_rate.mean();
    if (base > 1e-4) {
      base_sum += base;
      ea_sum += ea;
      ++stressed;
    }
  }
  if (stressed > 0 && base_sum > 0.0) {
    std::cout << "\naverage miss-rate reduction of " << cfg.schedulers.back()
              << " vs " << cfg.schedulers.front() << " over the " << stressed
              << " stressed capacities: "
              << exp::fmt(100.0 * (base_sum - ea_sum) / base_sum, 1) << "%\n";
  }
  return outcome;
}

}  // namespace eadvfs::bench
