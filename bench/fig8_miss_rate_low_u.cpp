/// Reproduces paper Figure 8: deadline miss rate vs normalized storage
/// capacity at U = 0.4.  Paper claim: "EA-DVFS algorithm reduces the
/// deadline miss rate over 50% on average, compared to LSA".

#include "miss_rate.hpp"

int main(int argc, char** argv) {
  return eadvfs::bench::run_miss_rate_figure(
      argc, argv, "fig8", 0.4,
      "EA-DVFS reduces the deadline miss rate by >50% vs LSA at U=0.4");
}
