# Empty compiler generated dependencies file for fig8_miss_rate_low_u.
# This may be replaced when dependencies are built.
