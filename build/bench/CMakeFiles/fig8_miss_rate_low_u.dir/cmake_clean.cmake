file(REMOVE_RECURSE
  "CMakeFiles/fig8_miss_rate_low_u.dir/fig8_miss_rate_low_u.cpp.o"
  "CMakeFiles/fig8_miss_rate_low_u.dir/fig8_miss_rate_low_u.cpp.o.d"
  "fig8_miss_rate_low_u"
  "fig8_miss_rate_low_u.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_miss_rate_low_u.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
