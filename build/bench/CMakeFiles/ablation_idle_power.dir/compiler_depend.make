# Empty compiler generated dependencies file for ablation_idle_power.
# This may be replaced when dependencies are built.
