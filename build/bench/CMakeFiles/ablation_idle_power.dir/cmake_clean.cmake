file(REMOVE_RECURSE
  "CMakeFiles/ablation_idle_power.dir/ablation_idle_power.cpp.o"
  "CMakeFiles/ablation_idle_power.dir/ablation_idle_power.cpp.o.d"
  "ablation_idle_power"
  "ablation_idle_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_idle_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
