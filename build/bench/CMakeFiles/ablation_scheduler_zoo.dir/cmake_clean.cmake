file(REMOVE_RECURSE
  "CMakeFiles/ablation_scheduler_zoo.dir/ablation_scheduler_zoo.cpp.o"
  "CMakeFiles/ablation_scheduler_zoo.dir/ablation_scheduler_zoo.cpp.o.d"
  "ablation_scheduler_zoo"
  "ablation_scheduler_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scheduler_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
