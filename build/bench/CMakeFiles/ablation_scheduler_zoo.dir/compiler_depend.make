# Empty compiler generated dependencies file for ablation_scheduler_zoo.
# This may be replaced when dependencies are built.
