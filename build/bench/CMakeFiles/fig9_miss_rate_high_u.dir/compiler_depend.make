# Empty compiler generated dependencies file for fig9_miss_rate_high_u.
# This may be replaced when dependencies are built.
