file(REMOVE_RECURSE
  "CMakeFiles/fig9_miss_rate_high_u.dir/fig9_miss_rate_high_u.cpp.o"
  "CMakeFiles/fig9_miss_rate_high_u.dir/fig9_miss_rate_high_u.cpp.o.d"
  "fig9_miss_rate_high_u"
  "fig9_miss_rate_high_u.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_miss_rate_high_u.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
