# Empty dependencies file for ablation_response_time.
# This may be replaced when dependencies are built.
