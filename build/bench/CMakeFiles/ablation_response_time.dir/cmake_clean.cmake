file(REMOVE_RECURSE
  "CMakeFiles/ablation_response_time.dir/ablation_response_time.cpp.o"
  "CMakeFiles/ablation_response_time.dir/ablation_response_time.cpp.o.d"
  "ablation_response_time"
  "ablation_response_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_response_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
