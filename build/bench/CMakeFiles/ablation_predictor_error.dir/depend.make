# Empty dependencies file for ablation_predictor_error.
# This may be replaced when dependencies are built.
