file(REMOVE_RECURSE
  "CMakeFiles/ablation_predictor_error.dir/ablation_predictor_error.cpp.o"
  "CMakeFiles/ablation_predictor_error.dir/ablation_predictor_error.cpp.o.d"
  "ablation_predictor_error"
  "ablation_predictor_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_predictor_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
