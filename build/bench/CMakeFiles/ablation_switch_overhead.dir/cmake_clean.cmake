file(REMOVE_RECURSE
  "CMakeFiles/ablation_switch_overhead.dir/ablation_switch_overhead.cpp.o"
  "CMakeFiles/ablation_switch_overhead.dir/ablation_switch_overhead.cpp.o.d"
  "ablation_switch_overhead"
  "ablation_switch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_switch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
