# Empty dependencies file for ablation_switch_overhead.
# This may be replaced when dependencies are built.
