# Empty dependencies file for ablation_weather.
# This may be replaced when dependencies are built.
