file(REMOVE_RECURSE
  "CMakeFiles/ablation_weather.dir/ablation_weather.cpp.o"
  "CMakeFiles/ablation_weather.dir/ablation_weather.cpp.o.d"
  "ablation_weather"
  "ablation_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
