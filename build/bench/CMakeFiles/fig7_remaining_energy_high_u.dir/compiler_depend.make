# Empty compiler generated dependencies file for fig7_remaining_energy_high_u.
# This may be replaced when dependencies are built.
