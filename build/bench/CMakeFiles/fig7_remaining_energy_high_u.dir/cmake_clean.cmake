file(REMOVE_RECURSE
  "CMakeFiles/fig7_remaining_energy_high_u.dir/fig7_remaining_energy_high_u.cpp.o"
  "CMakeFiles/fig7_remaining_energy_high_u.dir/fig7_remaining_energy_high_u.cpp.o.d"
  "fig7_remaining_energy_high_u"
  "fig7_remaining_energy_high_u.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_remaining_energy_high_u.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
