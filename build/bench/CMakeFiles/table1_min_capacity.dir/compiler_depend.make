# Empty compiler generated dependencies file for table1_min_capacity.
# This may be replaced when dependencies are built.
