file(REMOVE_RECURSE
  "CMakeFiles/table1_min_capacity.dir/table1_min_capacity.cpp.o"
  "CMakeFiles/table1_min_capacity.dir/table1_min_capacity.cpp.o.d"
  "table1_min_capacity"
  "table1_min_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_min_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
