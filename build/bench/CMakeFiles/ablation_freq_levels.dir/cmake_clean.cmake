file(REMOVE_RECURSE
  "CMakeFiles/ablation_freq_levels.dir/ablation_freq_levels.cpp.o"
  "CMakeFiles/ablation_freq_levels.dir/ablation_freq_levels.cpp.o.d"
  "ablation_freq_levels"
  "ablation_freq_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_freq_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
