# Empty compiler generated dependencies file for ablation_freq_levels.
# This may be replaced when dependencies are built.
