# Empty compiler generated dependencies file for ablation_utilization_sweep.
# This may be replaced when dependencies are built.
