file(REMOVE_RECURSE
  "CMakeFiles/ablation_utilization_sweep.dir/ablation_utilization_sweep.cpp.o"
  "CMakeFiles/ablation_utilization_sweep.dir/ablation_utilization_sweep.cpp.o.d"
  "ablation_utilization_sweep"
  "ablation_utilization_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_utilization_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
