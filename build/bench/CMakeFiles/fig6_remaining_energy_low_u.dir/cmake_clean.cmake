file(REMOVE_RECURSE
  "CMakeFiles/fig6_remaining_energy_low_u.dir/fig6_remaining_energy_low_u.cpp.o"
  "CMakeFiles/fig6_remaining_energy_low_u.dir/fig6_remaining_energy_low_u.cpp.o.d"
  "fig6_remaining_energy_low_u"
  "fig6_remaining_energy_low_u.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_remaining_energy_low_u.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
