# Empty dependencies file for fig6_remaining_energy_low_u.
# This may be replaced when dependencies are built.
