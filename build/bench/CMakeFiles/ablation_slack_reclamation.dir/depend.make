# Empty dependencies file for ablation_slack_reclamation.
# This may be replaced when dependencies are built.
