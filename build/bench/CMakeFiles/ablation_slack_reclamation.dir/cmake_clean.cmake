file(REMOVE_RECURSE
  "CMakeFiles/ablation_slack_reclamation.dir/ablation_slack_reclamation.cpp.o"
  "CMakeFiles/ablation_slack_reclamation.dir/ablation_slack_reclamation.cpp.o.d"
  "ablation_slack_reclamation"
  "ablation_slack_reclamation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slack_reclamation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
