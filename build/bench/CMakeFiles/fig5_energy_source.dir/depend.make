# Empty dependencies file for fig5_energy_source.
# This may be replaced when dependencies are built.
