file(REMOVE_RECURSE
  "CMakeFiles/fig5_energy_source.dir/fig5_energy_source.cpp.o"
  "CMakeFiles/fig5_energy_source.dir/fig5_energy_source.cpp.o.d"
  "fig5_energy_source"
  "fig5_energy_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_energy_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
