
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_energy_source.cpp" "bench/CMakeFiles/fig5_energy_source.dir/fig5_energy_source.cpp.o" "gcc" "bench/CMakeFiles/fig5_energy_source.dir/fig5_energy_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/eadvfs_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/eadvfs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eadvfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/eadvfs_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/eadvfs_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/eadvfs_task.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eadvfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
