file(REMOVE_RECURSE
  "CMakeFiles/ablation_energy_breakdown.dir/ablation_energy_breakdown.cpp.o"
  "CMakeFiles/ablation_energy_breakdown.dir/ablation_energy_breakdown.cpp.o.d"
  "ablation_energy_breakdown"
  "ablation_energy_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_energy_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
