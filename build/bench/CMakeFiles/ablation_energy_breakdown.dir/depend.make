# Empty dependencies file for ablation_energy_breakdown.
# This may be replaced when dependencies are built.
