file(REMOVE_RECURSE
  "CMakeFiles/ablation_storage_nonideal.dir/ablation_storage_nonideal.cpp.o"
  "CMakeFiles/ablation_storage_nonideal.dir/ablation_storage_nonideal.cpp.o.d"
  "ablation_storage_nonideal"
  "ablation_storage_nonideal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_storage_nonideal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
