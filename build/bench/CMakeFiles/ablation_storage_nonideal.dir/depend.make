# Empty dependencies file for ablation_storage_nonideal.
# This may be replaced when dependencies are built.
