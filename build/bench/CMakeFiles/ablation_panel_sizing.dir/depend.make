# Empty dependencies file for ablation_panel_sizing.
# This may be replaced when dependencies are built.
