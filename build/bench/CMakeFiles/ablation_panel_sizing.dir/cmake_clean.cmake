file(REMOVE_RECURSE
  "CMakeFiles/ablation_panel_sizing.dir/ablation_panel_sizing.cpp.o"
  "CMakeFiles/ablation_panel_sizing.dir/ablation_panel_sizing.cpp.o.d"
  "ablation_panel_sizing"
  "ablation_panel_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_panel_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
