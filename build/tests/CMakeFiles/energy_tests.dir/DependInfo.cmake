
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/energy/composite_source_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/composite_source_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/composite_source_test.cpp.o.d"
  "/root/repo/tests/energy/markov_weather_source_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/markov_weather_source_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/markov_weather_source_test.cpp.o.d"
  "/root/repo/tests/energy/persistence_predictor_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/persistence_predictor_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/persistence_predictor_test.cpp.o.d"
  "/root/repo/tests/energy/predictor_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/predictor_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/predictor_test.cpp.o.d"
  "/root/repo/tests/energy/running_average_predictor_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/running_average_predictor_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/running_average_predictor_test.cpp.o.d"
  "/root/repo/tests/energy/slotted_ewma_predictor_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/slotted_ewma_predictor_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/slotted_ewma_predictor_test.cpp.o.d"
  "/root/repo/tests/energy/solar_source_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/solar_source_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/solar_source_test.cpp.o.d"
  "/root/repo/tests/energy/source_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/source_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/source_test.cpp.o.d"
  "/root/repo/tests/energy/storage_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/storage_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/storage_test.cpp.o.d"
  "/root/repo/tests/energy/trace_source_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/trace_source_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/trace_source_test.cpp.o.d"
  "/root/repo/tests/energy/two_mode_source_test.cpp" "tests/CMakeFiles/energy_tests.dir/energy/two_mode_source_test.cpp.o" "gcc" "tests/CMakeFiles/energy_tests.dir/energy/two_mode_source_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/eadvfs_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/eadvfs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eadvfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/eadvfs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/eadvfs_task.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/eadvfs_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/eadvfs_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eadvfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
