file(REMOVE_RECURSE
  "CMakeFiles/energy_tests.dir/energy/composite_source_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/composite_source_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/markov_weather_source_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/markov_weather_source_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/persistence_predictor_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/persistence_predictor_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/predictor_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/predictor_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/running_average_predictor_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/running_average_predictor_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/slotted_ewma_predictor_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/slotted_ewma_predictor_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/solar_source_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/solar_source_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/source_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/source_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/storage_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/storage_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/trace_source_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/trace_source_test.cpp.o.d"
  "CMakeFiles/energy_tests.dir/energy/two_mode_source_test.cpp.o"
  "CMakeFiles/energy_tests.dir/energy/two_mode_source_test.cpp.o.d"
  "energy_tests"
  "energy_tests.pdb"
  "energy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
