file(REMOVE_RECURSE
  "CMakeFiles/sched_tests.dir/sched/ea_dvfs_scheduler_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/ea_dvfs_scheduler_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/edf_scheduler_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/edf_scheduler_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/factory_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/factory_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/fixed_priority_scheduler_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/fixed_priority_scheduler_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/greedy_dvfs_scheduler_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/greedy_dvfs_scheduler_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/lsa_scheduler_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/lsa_scheduler_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/static_ea_dvfs_scheduler_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/static_ea_dvfs_scheduler_test.cpp.o.d"
  "sched_tests"
  "sched_tests.pdb"
  "sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
