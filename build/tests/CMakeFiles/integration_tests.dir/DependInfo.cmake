
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/comparison_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/comparison_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/comparison_test.cpp.o.d"
  "/root/repo/tests/integration/golden_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/golden_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/golden_test.cpp.o.d"
  "/root/repo/tests/integration/motivational_example_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/motivational_example_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/motivational_example_test.cpp.o.d"
  "/root/repo/tests/integration/paper_properties_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/paper_properties_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/paper_properties_test.cpp.o.d"
  "/root/repo/tests/integration/randomized_property_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/randomized_property_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/randomized_property_test.cpp.o.d"
  "/root/repo/tests/integration/stress_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/stress_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/stress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/eadvfs_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/eadvfs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eadvfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/eadvfs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/eadvfs_task.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/eadvfs_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/eadvfs_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eadvfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
