file(REMOVE_RECURSE
  "CMakeFiles/proc_task_tests.dir/proc/frequency_table_test.cpp.o"
  "CMakeFiles/proc_task_tests.dir/proc/frequency_table_test.cpp.o.d"
  "CMakeFiles/proc_task_tests.dir/proc/processor_test.cpp.o"
  "CMakeFiles/proc_task_tests.dir/proc/processor_test.cpp.o.d"
  "CMakeFiles/proc_task_tests.dir/task/generator_test.cpp.o"
  "CMakeFiles/proc_task_tests.dir/task/generator_test.cpp.o.d"
  "CMakeFiles/proc_task_tests.dir/task/releaser_test.cpp.o"
  "CMakeFiles/proc_task_tests.dir/task/releaser_test.cpp.o.d"
  "CMakeFiles/proc_task_tests.dir/task/task_set_test.cpp.o"
  "CMakeFiles/proc_task_tests.dir/task/task_set_test.cpp.o.d"
  "proc_task_tests"
  "proc_task_tests.pdb"
  "proc_task_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proc_task_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
