# Empty dependencies file for proc_task_tests.
# This may be replaced when dependencies are built.
