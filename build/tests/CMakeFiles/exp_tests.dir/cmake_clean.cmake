file(REMOVE_RECURSE
  "CMakeFiles/exp_tests.dir/exp/capacity_search_test.cpp.o"
  "CMakeFiles/exp_tests.dir/exp/capacity_search_test.cpp.o.d"
  "CMakeFiles/exp_tests.dir/exp/energy_trace_test.cpp.o"
  "CMakeFiles/exp_tests.dir/exp/energy_trace_test.cpp.o.d"
  "CMakeFiles/exp_tests.dir/exp/harvester_sizing_test.cpp.o"
  "CMakeFiles/exp_tests.dir/exp/harvester_sizing_test.cpp.o.d"
  "CMakeFiles/exp_tests.dir/exp/miss_rate_sweep_test.cpp.o"
  "CMakeFiles/exp_tests.dir/exp/miss_rate_sweep_test.cpp.o.d"
  "CMakeFiles/exp_tests.dir/exp/predictor_error_test.cpp.o"
  "CMakeFiles/exp_tests.dir/exp/predictor_error_test.cpp.o.d"
  "CMakeFiles/exp_tests.dir/exp/report_test.cpp.o"
  "CMakeFiles/exp_tests.dir/exp/report_test.cpp.o.d"
  "CMakeFiles/exp_tests.dir/exp/setup_test.cpp.o"
  "CMakeFiles/exp_tests.dir/exp/setup_test.cpp.o.d"
  "CMakeFiles/exp_tests.dir/exp/sweep_extensions_test.cpp.o"
  "CMakeFiles/exp_tests.dir/exp/sweep_extensions_test.cpp.o.d"
  "exp_tests"
  "exp_tests.pdb"
  "exp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
