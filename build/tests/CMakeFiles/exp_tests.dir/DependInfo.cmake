
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/exp/capacity_search_test.cpp" "tests/CMakeFiles/exp_tests.dir/exp/capacity_search_test.cpp.o" "gcc" "tests/CMakeFiles/exp_tests.dir/exp/capacity_search_test.cpp.o.d"
  "/root/repo/tests/exp/energy_trace_test.cpp" "tests/CMakeFiles/exp_tests.dir/exp/energy_trace_test.cpp.o" "gcc" "tests/CMakeFiles/exp_tests.dir/exp/energy_trace_test.cpp.o.d"
  "/root/repo/tests/exp/harvester_sizing_test.cpp" "tests/CMakeFiles/exp_tests.dir/exp/harvester_sizing_test.cpp.o" "gcc" "tests/CMakeFiles/exp_tests.dir/exp/harvester_sizing_test.cpp.o.d"
  "/root/repo/tests/exp/miss_rate_sweep_test.cpp" "tests/CMakeFiles/exp_tests.dir/exp/miss_rate_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/exp_tests.dir/exp/miss_rate_sweep_test.cpp.o.d"
  "/root/repo/tests/exp/predictor_error_test.cpp" "tests/CMakeFiles/exp_tests.dir/exp/predictor_error_test.cpp.o" "gcc" "tests/CMakeFiles/exp_tests.dir/exp/predictor_error_test.cpp.o.d"
  "/root/repo/tests/exp/report_test.cpp" "tests/CMakeFiles/exp_tests.dir/exp/report_test.cpp.o" "gcc" "tests/CMakeFiles/exp_tests.dir/exp/report_test.cpp.o.d"
  "/root/repo/tests/exp/setup_test.cpp" "tests/CMakeFiles/exp_tests.dir/exp/setup_test.cpp.o" "gcc" "tests/CMakeFiles/exp_tests.dir/exp/setup_test.cpp.o.d"
  "/root/repo/tests/exp/sweep_extensions_test.cpp" "tests/CMakeFiles/exp_tests.dir/exp/sweep_extensions_test.cpp.o" "gcc" "tests/CMakeFiles/exp_tests.dir/exp/sweep_extensions_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/eadvfs_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/eadvfs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eadvfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/eadvfs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/eadvfs_task.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/eadvfs_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/eadvfs_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eadvfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
