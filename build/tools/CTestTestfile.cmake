# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_smoke_random_workload "/root/repo/build/tools/eadvfs-sim" "--horizon" "800" "--capacity" "80" "--scheduler" "ea-dvfs" "--analyze")
set_tests_properties(tool_smoke_random_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_smoke_constant_source "/root/repo/build/tools/eadvfs-sim" "--horizon" "300" "--source" "constant:2.0" "--scheduler" "lsa" "--utilization" "0.3")
set_tests_properties(tool_smoke_constant_source PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_smoke_scenario_file "/root/repo/build/tools/eadvfs-sim" "--scenario" "scenarios/sensor_node.ini" "--horizon" "1400")
set_tests_properties(tool_smoke_scenario_file PROPERTIES  WORKING_DIRECTORY "/root/repo" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_smoke_markov_and_overrides "/root/repo/build/tools/eadvfs-sim" "--horizon" "600" "--source" "markov:5" "--scheduler" "rm" "--idle-power" "0.02" "--bcet" "0.5" "--miss-policy" "continue")
set_tests_properties(tool_smoke_markov_and_overrides PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_rejects_unknown_scheduler "/root/repo/build/tools/eadvfs-sim" "--scheduler" "warp-speed")
set_tests_properties(tool_rejects_unknown_scheduler PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
