file(REMOVE_RECURSE
  "CMakeFiles/eadvfs_sim_tool.dir/eadvfs_sim.cpp.o"
  "CMakeFiles/eadvfs_sim_tool.dir/eadvfs_sim.cpp.o.d"
  "eadvfs-sim"
  "eadvfs-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadvfs_sim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
