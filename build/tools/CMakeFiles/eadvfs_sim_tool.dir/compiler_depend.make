# Empty compiler generated dependencies file for eadvfs_sim_tool.
# This may be replaced when dependencies are built.
