file(REMOVE_RECURSE
  "libeadvfs_proc.a"
)
