# Empty dependencies file for eadvfs_proc.
# This may be replaced when dependencies are built.
