
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proc/frequency_table.cpp" "src/proc/CMakeFiles/eadvfs_proc.dir/frequency_table.cpp.o" "gcc" "src/proc/CMakeFiles/eadvfs_proc.dir/frequency_table.cpp.o.d"
  "/root/repo/src/proc/processor.cpp" "src/proc/CMakeFiles/eadvfs_proc.dir/processor.cpp.o" "gcc" "src/proc/CMakeFiles/eadvfs_proc.dir/processor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eadvfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
