file(REMOVE_RECURSE
  "CMakeFiles/eadvfs_proc.dir/frequency_table.cpp.o"
  "CMakeFiles/eadvfs_proc.dir/frequency_table.cpp.o.d"
  "CMakeFiles/eadvfs_proc.dir/processor.cpp.o"
  "CMakeFiles/eadvfs_proc.dir/processor.cpp.o.d"
  "libeadvfs_proc.a"
  "libeadvfs_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadvfs_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
