file(REMOVE_RECURSE
  "libeadvfs_energy.a"
)
