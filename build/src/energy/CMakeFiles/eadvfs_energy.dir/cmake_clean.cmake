file(REMOVE_RECURSE
  "CMakeFiles/eadvfs_energy.dir/composite_source.cpp.o"
  "CMakeFiles/eadvfs_energy.dir/composite_source.cpp.o.d"
  "CMakeFiles/eadvfs_energy.dir/markov_weather_source.cpp.o"
  "CMakeFiles/eadvfs_energy.dir/markov_weather_source.cpp.o.d"
  "CMakeFiles/eadvfs_energy.dir/persistence_predictor.cpp.o"
  "CMakeFiles/eadvfs_energy.dir/persistence_predictor.cpp.o.d"
  "CMakeFiles/eadvfs_energy.dir/predictor.cpp.o"
  "CMakeFiles/eadvfs_energy.dir/predictor.cpp.o.d"
  "CMakeFiles/eadvfs_energy.dir/running_average_predictor.cpp.o"
  "CMakeFiles/eadvfs_energy.dir/running_average_predictor.cpp.o.d"
  "CMakeFiles/eadvfs_energy.dir/slotted_ewma_predictor.cpp.o"
  "CMakeFiles/eadvfs_energy.dir/slotted_ewma_predictor.cpp.o.d"
  "CMakeFiles/eadvfs_energy.dir/solar_source.cpp.o"
  "CMakeFiles/eadvfs_energy.dir/solar_source.cpp.o.d"
  "CMakeFiles/eadvfs_energy.dir/source.cpp.o"
  "CMakeFiles/eadvfs_energy.dir/source.cpp.o.d"
  "CMakeFiles/eadvfs_energy.dir/storage.cpp.o"
  "CMakeFiles/eadvfs_energy.dir/storage.cpp.o.d"
  "CMakeFiles/eadvfs_energy.dir/trace_source.cpp.o"
  "CMakeFiles/eadvfs_energy.dir/trace_source.cpp.o.d"
  "CMakeFiles/eadvfs_energy.dir/two_mode_source.cpp.o"
  "CMakeFiles/eadvfs_energy.dir/two_mode_source.cpp.o.d"
  "libeadvfs_energy.a"
  "libeadvfs_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadvfs_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
