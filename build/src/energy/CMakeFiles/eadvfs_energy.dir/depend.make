# Empty dependencies file for eadvfs_energy.
# This may be replaced when dependencies are built.
