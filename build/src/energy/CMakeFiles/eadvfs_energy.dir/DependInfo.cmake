
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/composite_source.cpp" "src/energy/CMakeFiles/eadvfs_energy.dir/composite_source.cpp.o" "gcc" "src/energy/CMakeFiles/eadvfs_energy.dir/composite_source.cpp.o.d"
  "/root/repo/src/energy/markov_weather_source.cpp" "src/energy/CMakeFiles/eadvfs_energy.dir/markov_weather_source.cpp.o" "gcc" "src/energy/CMakeFiles/eadvfs_energy.dir/markov_weather_source.cpp.o.d"
  "/root/repo/src/energy/persistence_predictor.cpp" "src/energy/CMakeFiles/eadvfs_energy.dir/persistence_predictor.cpp.o" "gcc" "src/energy/CMakeFiles/eadvfs_energy.dir/persistence_predictor.cpp.o.d"
  "/root/repo/src/energy/predictor.cpp" "src/energy/CMakeFiles/eadvfs_energy.dir/predictor.cpp.o" "gcc" "src/energy/CMakeFiles/eadvfs_energy.dir/predictor.cpp.o.d"
  "/root/repo/src/energy/running_average_predictor.cpp" "src/energy/CMakeFiles/eadvfs_energy.dir/running_average_predictor.cpp.o" "gcc" "src/energy/CMakeFiles/eadvfs_energy.dir/running_average_predictor.cpp.o.d"
  "/root/repo/src/energy/slotted_ewma_predictor.cpp" "src/energy/CMakeFiles/eadvfs_energy.dir/slotted_ewma_predictor.cpp.o" "gcc" "src/energy/CMakeFiles/eadvfs_energy.dir/slotted_ewma_predictor.cpp.o.d"
  "/root/repo/src/energy/solar_source.cpp" "src/energy/CMakeFiles/eadvfs_energy.dir/solar_source.cpp.o" "gcc" "src/energy/CMakeFiles/eadvfs_energy.dir/solar_source.cpp.o.d"
  "/root/repo/src/energy/source.cpp" "src/energy/CMakeFiles/eadvfs_energy.dir/source.cpp.o" "gcc" "src/energy/CMakeFiles/eadvfs_energy.dir/source.cpp.o.d"
  "/root/repo/src/energy/storage.cpp" "src/energy/CMakeFiles/eadvfs_energy.dir/storage.cpp.o" "gcc" "src/energy/CMakeFiles/eadvfs_energy.dir/storage.cpp.o.d"
  "/root/repo/src/energy/trace_source.cpp" "src/energy/CMakeFiles/eadvfs_energy.dir/trace_source.cpp.o" "gcc" "src/energy/CMakeFiles/eadvfs_energy.dir/trace_source.cpp.o.d"
  "/root/repo/src/energy/two_mode_source.cpp" "src/energy/CMakeFiles/eadvfs_energy.dir/two_mode_source.cpp.o" "gcc" "src/energy/CMakeFiles/eadvfs_energy.dir/two_mode_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eadvfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
