
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/task/generator.cpp" "src/task/CMakeFiles/eadvfs_task.dir/generator.cpp.o" "gcc" "src/task/CMakeFiles/eadvfs_task.dir/generator.cpp.o.d"
  "/root/repo/src/task/releaser.cpp" "src/task/CMakeFiles/eadvfs_task.dir/releaser.cpp.o" "gcc" "src/task/CMakeFiles/eadvfs_task.dir/releaser.cpp.o.d"
  "/root/repo/src/task/task_set.cpp" "src/task/CMakeFiles/eadvfs_task.dir/task_set.cpp.o" "gcc" "src/task/CMakeFiles/eadvfs_task.dir/task_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eadvfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
