file(REMOVE_RECURSE
  "CMakeFiles/eadvfs_task.dir/generator.cpp.o"
  "CMakeFiles/eadvfs_task.dir/generator.cpp.o.d"
  "CMakeFiles/eadvfs_task.dir/releaser.cpp.o"
  "CMakeFiles/eadvfs_task.dir/releaser.cpp.o.d"
  "CMakeFiles/eadvfs_task.dir/task_set.cpp.o"
  "CMakeFiles/eadvfs_task.dir/task_set.cpp.o.d"
  "libeadvfs_task.a"
  "libeadvfs_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadvfs_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
