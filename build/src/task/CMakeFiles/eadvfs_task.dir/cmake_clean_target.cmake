file(REMOVE_RECURSE
  "libeadvfs_task.a"
)
