# Empty dependencies file for eadvfs_task.
# This may be replaced when dependencies are built.
