file(REMOVE_RECURSE
  "CMakeFiles/eadvfs_sched.dir/ea_dvfs_scheduler.cpp.o"
  "CMakeFiles/eadvfs_sched.dir/ea_dvfs_scheduler.cpp.o.d"
  "CMakeFiles/eadvfs_sched.dir/edf_scheduler.cpp.o"
  "CMakeFiles/eadvfs_sched.dir/edf_scheduler.cpp.o.d"
  "CMakeFiles/eadvfs_sched.dir/factory.cpp.o"
  "CMakeFiles/eadvfs_sched.dir/factory.cpp.o.d"
  "CMakeFiles/eadvfs_sched.dir/fixed_priority_scheduler.cpp.o"
  "CMakeFiles/eadvfs_sched.dir/fixed_priority_scheduler.cpp.o.d"
  "CMakeFiles/eadvfs_sched.dir/greedy_dvfs_scheduler.cpp.o"
  "CMakeFiles/eadvfs_sched.dir/greedy_dvfs_scheduler.cpp.o.d"
  "CMakeFiles/eadvfs_sched.dir/lsa_scheduler.cpp.o"
  "CMakeFiles/eadvfs_sched.dir/lsa_scheduler.cpp.o.d"
  "CMakeFiles/eadvfs_sched.dir/static_ea_dvfs_scheduler.cpp.o"
  "CMakeFiles/eadvfs_sched.dir/static_ea_dvfs_scheduler.cpp.o.d"
  "libeadvfs_sched.a"
  "libeadvfs_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadvfs_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
