file(REMOVE_RECURSE
  "libeadvfs_sched.a"
)
