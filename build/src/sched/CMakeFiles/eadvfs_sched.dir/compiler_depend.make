# Empty compiler generated dependencies file for eadvfs_sched.
# This may be replaced when dependencies are built.
