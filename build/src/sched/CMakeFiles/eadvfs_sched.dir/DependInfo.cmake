
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/ea_dvfs_scheduler.cpp" "src/sched/CMakeFiles/eadvfs_sched.dir/ea_dvfs_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/eadvfs_sched.dir/ea_dvfs_scheduler.cpp.o.d"
  "/root/repo/src/sched/edf_scheduler.cpp" "src/sched/CMakeFiles/eadvfs_sched.dir/edf_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/eadvfs_sched.dir/edf_scheduler.cpp.o.d"
  "/root/repo/src/sched/factory.cpp" "src/sched/CMakeFiles/eadvfs_sched.dir/factory.cpp.o" "gcc" "src/sched/CMakeFiles/eadvfs_sched.dir/factory.cpp.o.d"
  "/root/repo/src/sched/fixed_priority_scheduler.cpp" "src/sched/CMakeFiles/eadvfs_sched.dir/fixed_priority_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/eadvfs_sched.dir/fixed_priority_scheduler.cpp.o.d"
  "/root/repo/src/sched/greedy_dvfs_scheduler.cpp" "src/sched/CMakeFiles/eadvfs_sched.dir/greedy_dvfs_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/eadvfs_sched.dir/greedy_dvfs_scheduler.cpp.o.d"
  "/root/repo/src/sched/lsa_scheduler.cpp" "src/sched/CMakeFiles/eadvfs_sched.dir/lsa_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/eadvfs_sched.dir/lsa_scheduler.cpp.o.d"
  "/root/repo/src/sched/static_ea_dvfs_scheduler.cpp" "src/sched/CMakeFiles/eadvfs_sched.dir/static_ea_dvfs_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/eadvfs_sched.dir/static_ea_dvfs_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/eadvfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/eadvfs_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/eadvfs_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/eadvfs_task.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eadvfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
