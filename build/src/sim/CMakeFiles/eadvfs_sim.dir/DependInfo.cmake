
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/eadvfs_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/eadvfs_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/eadvfs_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/eadvfs_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/gantt.cpp" "src/sim/CMakeFiles/eadvfs_sim.dir/gantt.cpp.o" "gcc" "src/sim/CMakeFiles/eadvfs_sim.dir/gantt.cpp.o.d"
  "/root/repo/src/sim/result.cpp" "src/sim/CMakeFiles/eadvfs_sim.dir/result.cpp.o" "gcc" "src/sim/CMakeFiles/eadvfs_sim.dir/result.cpp.o.d"
  "/root/repo/src/sim/stats_observer.cpp" "src/sim/CMakeFiles/eadvfs_sim.dir/stats_observer.cpp.o" "gcc" "src/sim/CMakeFiles/eadvfs_sim.dir/stats_observer.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/eadvfs_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/eadvfs_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eadvfs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/eadvfs_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/eadvfs_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/eadvfs_task.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
