# Empty compiler generated dependencies file for eadvfs_sim.
# This may be replaced when dependencies are built.
