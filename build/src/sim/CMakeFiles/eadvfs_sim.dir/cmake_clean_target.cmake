file(REMOVE_RECURSE
  "libeadvfs_sim.a"
)
