file(REMOVE_RECURSE
  "CMakeFiles/eadvfs_sim.dir/engine.cpp.o"
  "CMakeFiles/eadvfs_sim.dir/engine.cpp.o.d"
  "CMakeFiles/eadvfs_sim.dir/event_queue.cpp.o"
  "CMakeFiles/eadvfs_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/eadvfs_sim.dir/gantt.cpp.o"
  "CMakeFiles/eadvfs_sim.dir/gantt.cpp.o.d"
  "CMakeFiles/eadvfs_sim.dir/result.cpp.o"
  "CMakeFiles/eadvfs_sim.dir/result.cpp.o.d"
  "CMakeFiles/eadvfs_sim.dir/stats_observer.cpp.o"
  "CMakeFiles/eadvfs_sim.dir/stats_observer.cpp.o.d"
  "CMakeFiles/eadvfs_sim.dir/trace.cpp.o"
  "CMakeFiles/eadvfs_sim.dir/trace.cpp.o.d"
  "libeadvfs_sim.a"
  "libeadvfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadvfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
