
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/capacity_search.cpp" "src/exp/CMakeFiles/eadvfs_exp.dir/capacity_search.cpp.o" "gcc" "src/exp/CMakeFiles/eadvfs_exp.dir/capacity_search.cpp.o.d"
  "/root/repo/src/exp/energy_trace_experiment.cpp" "src/exp/CMakeFiles/eadvfs_exp.dir/energy_trace_experiment.cpp.o" "gcc" "src/exp/CMakeFiles/eadvfs_exp.dir/energy_trace_experiment.cpp.o.d"
  "/root/repo/src/exp/harvester_sizing.cpp" "src/exp/CMakeFiles/eadvfs_exp.dir/harvester_sizing.cpp.o" "gcc" "src/exp/CMakeFiles/eadvfs_exp.dir/harvester_sizing.cpp.o.d"
  "/root/repo/src/exp/miss_rate_sweep.cpp" "src/exp/CMakeFiles/eadvfs_exp.dir/miss_rate_sweep.cpp.o" "gcc" "src/exp/CMakeFiles/eadvfs_exp.dir/miss_rate_sweep.cpp.o.d"
  "/root/repo/src/exp/predictor_error.cpp" "src/exp/CMakeFiles/eadvfs_exp.dir/predictor_error.cpp.o" "gcc" "src/exp/CMakeFiles/eadvfs_exp.dir/predictor_error.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "src/exp/CMakeFiles/eadvfs_exp.dir/report.cpp.o" "gcc" "src/exp/CMakeFiles/eadvfs_exp.dir/report.cpp.o.d"
  "/root/repo/src/exp/setup.cpp" "src/exp/CMakeFiles/eadvfs_exp.dir/setup.cpp.o" "gcc" "src/exp/CMakeFiles/eadvfs_exp.dir/setup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/eadvfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/eadvfs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/eadvfs_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/eadvfs_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/eadvfs_task.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eadvfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
