file(REMOVE_RECURSE
  "CMakeFiles/eadvfs_exp.dir/capacity_search.cpp.o"
  "CMakeFiles/eadvfs_exp.dir/capacity_search.cpp.o.d"
  "CMakeFiles/eadvfs_exp.dir/energy_trace_experiment.cpp.o"
  "CMakeFiles/eadvfs_exp.dir/energy_trace_experiment.cpp.o.d"
  "CMakeFiles/eadvfs_exp.dir/harvester_sizing.cpp.o"
  "CMakeFiles/eadvfs_exp.dir/harvester_sizing.cpp.o.d"
  "CMakeFiles/eadvfs_exp.dir/miss_rate_sweep.cpp.o"
  "CMakeFiles/eadvfs_exp.dir/miss_rate_sweep.cpp.o.d"
  "CMakeFiles/eadvfs_exp.dir/predictor_error.cpp.o"
  "CMakeFiles/eadvfs_exp.dir/predictor_error.cpp.o.d"
  "CMakeFiles/eadvfs_exp.dir/report.cpp.o"
  "CMakeFiles/eadvfs_exp.dir/report.cpp.o.d"
  "CMakeFiles/eadvfs_exp.dir/setup.cpp.o"
  "CMakeFiles/eadvfs_exp.dir/setup.cpp.o.d"
  "libeadvfs_exp.a"
  "libeadvfs_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadvfs_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
