# Empty compiler generated dependencies file for eadvfs_exp.
# This may be replaced when dependencies are built.
