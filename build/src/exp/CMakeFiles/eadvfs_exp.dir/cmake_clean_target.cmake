file(REMOVE_RECURSE
  "libeadvfs_exp.a"
)
