file(REMOVE_RECURSE
  "CMakeFiles/eadvfs_util.dir/args.cpp.o"
  "CMakeFiles/eadvfs_util.dir/args.cpp.o.d"
  "CMakeFiles/eadvfs_util.dir/csv.cpp.o"
  "CMakeFiles/eadvfs_util.dir/csv.cpp.o.d"
  "CMakeFiles/eadvfs_util.dir/histogram.cpp.o"
  "CMakeFiles/eadvfs_util.dir/histogram.cpp.o.d"
  "CMakeFiles/eadvfs_util.dir/ini.cpp.o"
  "CMakeFiles/eadvfs_util.dir/ini.cpp.o.d"
  "CMakeFiles/eadvfs_util.dir/log.cpp.o"
  "CMakeFiles/eadvfs_util.dir/log.cpp.o.d"
  "CMakeFiles/eadvfs_util.dir/rng.cpp.o"
  "CMakeFiles/eadvfs_util.dir/rng.cpp.o.d"
  "CMakeFiles/eadvfs_util.dir/stats.cpp.o"
  "CMakeFiles/eadvfs_util.dir/stats.cpp.o.d"
  "libeadvfs_util.a"
  "libeadvfs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadvfs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
