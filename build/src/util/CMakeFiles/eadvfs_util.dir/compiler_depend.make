# Empty compiler generated dependencies file for eadvfs_util.
# This may be replaced when dependencies are built.
