file(REMOVE_RECURSE
  "libeadvfs_util.a"
)
