# Empty compiler generated dependencies file for eadvfs_analysis.
# This may be replaced when dependencies are built.
