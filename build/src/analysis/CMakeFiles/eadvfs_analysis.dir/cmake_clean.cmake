file(REMOVE_RECURSE
  "CMakeFiles/eadvfs_analysis.dir/feasibility.cpp.o"
  "CMakeFiles/eadvfs_analysis.dir/feasibility.cpp.o.d"
  "libeadvfs_analysis.a"
  "libeadvfs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadvfs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
