
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/feasibility.cpp" "src/analysis/CMakeFiles/eadvfs_analysis.dir/feasibility.cpp.o" "gcc" "src/analysis/CMakeFiles/eadvfs_analysis.dir/feasibility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/energy/CMakeFiles/eadvfs_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/eadvfs_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/eadvfs_task.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eadvfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
