file(REMOVE_RECURSE
  "libeadvfs_analysis.a"
)
