file(REMOVE_RECURSE
  "CMakeFiles/motivational_example.dir/motivational_example.cpp.o"
  "CMakeFiles/motivational_example.dir/motivational_example.cpp.o.d"
  "motivational_example"
  "motivational_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivational_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
