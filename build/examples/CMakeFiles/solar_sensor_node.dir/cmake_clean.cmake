file(REMOVE_RECURSE
  "CMakeFiles/solar_sensor_node.dir/solar_sensor_node.cpp.o"
  "CMakeFiles/solar_sensor_node.dir/solar_sensor_node.cpp.o.d"
  "solar_sensor_node"
  "solar_sensor_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solar_sensor_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
