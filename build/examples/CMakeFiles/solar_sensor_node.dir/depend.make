# Empty dependencies file for solar_sensor_node.
# This may be replaced when dependencies are built.
