# ctest helper: the crash-safety acceptance for the checkpoint subsystem
# (docs/EXPERIMENTS.md, "Crash safety, resume, and supervision").  A sweep that
# is SIGKILLed mid-run and then resumed with `--resume` must emit a CSV that is
# byte-identical to an uninterrupted run, at any worker count; resuming a
# complete run is idempotent; resuming under a different configuration is
# refused with exit code 5.  Run as
#   cmake -DBENCH=<fig8_miss_rate_low_u> -DWORK_DIR=<dir> -P <this file>

set(root "${WORK_DIR}/crash_resume")
file(REMOVE_RECURSE "${root}")
set(common --sets 10 --capacities 25,50 --horizon 1500 --quiet)

# Each run gets its own EADVFS_OUT_DIR because the bench writes a fixed CSV
# name (fig8_miss_rate.csv) into it.
function(run_fig8 out_dir rc_var)
  file(MAKE_DIRECTORY "${out_dir}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env "EADVFS_OUT_DIR=${out_dir}"
            "${BENCH}" ${common} ${ARGN}
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  set(${rc_var} "${rc}" PARENT_SCOPE)
endfunction()

function(expect_identical label a b)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "${label}: ${a} differs from ${b}")
  endif()
endfunction()

# 1. Uninterrupted baselines at two worker counts (also re-asserts the --jobs
#    determinism contract for this bench).
run_fig8("${root}/baseline_j1" rc --jobs 1)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "uninterrupted --jobs 1 run failed (${rc})")
endif()
run_fig8("${root}/baseline_j8" rc --jobs 8)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "uninterrupted --jobs 8 run failed (${rc})")
endif()
set(baseline "${root}/baseline_j1/fig8_miss_rate.csv")
expect_identical("jobs determinism" "${baseline}"
                 "${root}/baseline_j8/fig8_miss_rate.csv")

# 2. Checkpointed run killed mid-sweep: --crash-after raises a real SIGKILL
#    after 4 journal appends, so the process must die abnormally having left a
#    manifest and a partially filled journal behind.
set(ckpt "${root}/ckpt")
run_fig8("${root}/crashed" rc --jobs 1 --checkpoint "${ckpt}" --crash-after 4)
if(rc EQUAL 0)
  message(FATAL_ERROR "--crash-after 4 run exited 0; expected a SIGKILL death")
endif()
if(NOT EXISTS "${ckpt}/manifest.txt" OR NOT EXISTS "${ckpt}/journal.txt")
  message(FATAL_ERROR "killed run left no manifest/journal in ${ckpt}")
endif()

# 3. Resume at a different worker count: must succeed and reproduce the
#    uninterrupted CSV byte for byte.
run_fig8("${root}/resumed_j8" rc --jobs 8 --resume "${ckpt}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--resume after SIGKILL failed (${rc})")
endif()
expect_identical("crash+resume (--jobs 8)" "${baseline}"
                 "${root}/resumed_j8/fig8_miss_rate.csv")

# 4. Resuming the now-complete run is idempotent: nothing re-runs, and the
#    replayed aggregate is still byte-identical.
run_fig8("${root}/resumed_again" rc --jobs 1 --resume "${ckpt}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "idempotent re-resume failed (${rc})")
endif()
expect_identical("idempotent resume (--jobs 1)" "${baseline}"
                 "${root}/resumed_again/fig8_miss_rate.csv")

# 5. Resuming under a different configuration is refused: the manifest
#    fingerprint no longer matches, exit code 5.
run_fig8("${root}/mismatch" rc --jobs 1 --resume "${ckpt}" --seed 43)
if(NOT rc EQUAL 5)
  message(FATAL_ERROR
          "--resume with a different seed exited ${rc}; expected 5 "
          "(manifest mismatch)")
endif()
