# ctest helper: schema check for the engine perf baseline
# (docs/OBSERVABILITY.md, "Perf baselines").  Runs
# `micro_engine --engine-baseline`, then parses the emitted BENCH_engine.json
# with CMake's string(JSON) and fails if any required field is missing or any
# throughput rate is not a positive number.  CI runs the same binary and
# uploads the artifact; this test keeps the schema honest locally.  Run as
#   cmake -DBENCH=<micro_engine> -DWORK_DIR=<dir> -P <this file>

set(root "${WORK_DIR}/bench_engine")
file(REMOVE_RECURSE "${root}")
file(MAKE_DIRECTORY "${root}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "EADVFS_OUT_DIR=${root}"
          "${BENCH}" --engine-baseline
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "micro_engine --engine-baseline failed (${rc})")
endif()

set(path "${root}/BENCH_engine.json")
if(NOT EXISTS "${path}")
  message(FATAL_ERROR "no BENCH_engine.json written to ${root}")
endif()
file(READ "${path}" doc)

# string(JSON) fatals on malformed JSON; ERROR_VARIABLE turns that into a
# checkable message instead.
string(JSON kind ERROR_VARIABLE err GET "${doc}" benchmark)
if(NOT err STREQUAL "NOTFOUND" OR NOT kind STREQUAL "engine_baseline")
  message(FATAL_ERROR "bad \"benchmark\" field: ${kind} (${err})")
endif()
string(JSON reps ERROR_VARIABLE err GET "${doc}" repetitions)
if(NOT err STREQUAL "NOTFOUND" OR NOT reps GREATER 0)
  message(FATAL_ERROR "bad \"repetitions\" field: ${reps} (${err})")
endif()
string(JSON n ERROR_VARIABLE err LENGTH "${doc}" results)
if(NOT err STREQUAL "NOTFOUND" OR NOT n GREATER 0)
  message(FATAL_ERROR "\"results\" missing or empty (${err})")
endif()

math(EXPR last "${n} - 1")
foreach(i RANGE ${last})
  string(JSON sched ERROR_VARIABLE err GET "${doc}" results ${i} scheduler)
  if(NOT err STREQUAL "NOTFOUND" OR sched STREQUAL "")
    message(FATAL_ERROR "results[${i}]: missing scheduler (${err})")
  endif()
  foreach(field segments_per_sec events_per_sec decisions_per_sec seconds
          reference_segments_per_sec reference_events_per_sec
          reference_decisions_per_sec reference_seconds speedup)
    string(JSON value ERROR_VARIABLE err GET "${doc}" results ${i} ${field})
    if(NOT err STREQUAL "NOTFOUND" OR NOT value GREATER 0)
      message(FATAL_ERROR
              "results[${i}] (${sched}): ${field} = \"${value}\" (${err})")
    endif()
  endforeach()
endforeach()
message(STATUS "BENCH_engine.json: ${n} schedulers, schema OK")
