#!/usr/bin/env python3
"""Perf-budget gate for the engine kernel (docs/PERFORMANCE.md).

Runs `micro_engine --engine-baseline`, then compares the fresh
BENCH_engine.json against the checked-in baseline snapshot
(bench/baselines/BENCH_engine_post.json) and fails on a regression larger
than the budget:

  * every fast-path rate (segments/events/decisions per second) must stay
    above (1 - tolerance) x the baseline rate, per scheduler;
  * the devirtualization speedup (reference_seconds / seconds, measured in
    the same process so machine speed cancels out) must stay above
    (1 - tolerance) x the baseline speedup.

The default tolerance is 0.25 — the ">25% regression fails" budget.  The
absolute-rate comparison assumes the baseline was recorded on comparable
hardware; on a very different machine, re-record the baseline (see
docs/PERFORMANCE.md, "Perf budget") or widen the budget with
EADVFS_PERF_BUDGET_TOLERANCE / --tolerance.  The speedup comparison is
machine-independent.

Usage:
  check_perf_budget.py --bench <micro_engine> --baseline <BENCH_engine_post.json>
                       --work-dir <scratch dir> [--tolerance 0.25]
Exit code 0 on pass, 1 on any budget violation or malformed input.
"""

import argparse
import json
import os
import subprocess
import sys

RATE_FIELDS = ("segments_per_sec", "events_per_sec", "decisions_per_sec")


def load_results(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("benchmark") != "engine_baseline":
        raise ValueError(f"{path}: not an engine_baseline document")
    results = {entry["scheduler"]: entry for entry in doc.get("results", [])}
    if not results:
        raise ValueError(f"{path}: no results")
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True, help="micro_engine binary")
    parser.add_argument("--baseline", required=True,
                        help="checked-in BENCH_engine_post.json")
    parser.add_argument("--work-dir", required=True,
                        help="scratch directory for the fresh run")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get(
                            "EADVFS_PERF_BUDGET_TOLERANCE", "0.25")),
                        help="allowed fractional regression (default 0.25)")
    args = parser.parse_args()

    out_dir = os.path.join(args.work_dir, "perf_budget")
    os.makedirs(out_dir, exist_ok=True)

    env = dict(os.environ, EADVFS_OUT_DIR=out_dir)
    proc = subprocess.run([args.bench, "--engine-baseline"], env=env,
                          capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        print(f"error: {args.bench} --engine-baseline exited "
              f"{proc.returncode}", file=sys.stderr)
        return 1

    try:
        fresh = load_results(os.path.join(out_dir, "BENCH_engine.json"))
        baseline = load_results(args.baseline)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    floor = 1.0 - args.tolerance
    failures = []
    for scheduler, base in sorted(baseline.items()):
        now = fresh.get(scheduler)
        if now is None:
            failures.append(f"{scheduler}: missing from fresh run")
            continue
        for field in RATE_FIELDS:
            have, want = now[field], base[field] * floor
            status = "ok" if have >= want else "REGRESSION"
            print(f"{scheduler:>10} {field:<22} {have:14.0f} "
                  f"(budget floor {want:14.0f}, baseline {base[field]:14.0f}) "
                  f"{status}")
            if have < want:
                failures.append(
                    f"{scheduler}: {field} {have:.0f} < {want:.0f} "
                    f"({100 * args.tolerance:.0f}% budget over baseline "
                    f"{base[field]:.0f})")
        have, want = now["speedup"], base["speedup"] * floor
        status = "ok" if have >= want else "REGRESSION"
        print(f"{scheduler:>10} {'speedup':<22} {have:14.2f} "
              f"(budget floor {want:14.2f}, baseline {base['speedup']:14.2f}) "
              f"{status}")
        if have < want:
            failures.append(
                f"{scheduler}: speedup {have:.2f} < {want:.2f}")

    if failures:
        print("\nperf budget exceeded:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nperf budget OK ({len(baseline)} schedulers, "
          f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
