/// \file eadvfs_sim.cpp
/// Standalone scenario simulator — the downstream-user entry point that
/// needs no C++ at all: describe the workload and the energy environment on
/// the command line (or via CSV files), pick a scheduler, get the outcome
/// plus optional energy/schedule traces as CSV.
///
/// Examples:
///   # random paper-style workload on the eq. 13 solar source
///   eadvfs_sim --scheduler ea-dvfs --utilization 0.4 --capacity 100
///
///   # explicit task set from CSV (id,period,deadline,wcet[,phase])
///   eadvfs_sim --tasks-csv node.csv --source constant:0.5 --capacity 24
///
///   # replay a measured harvest trace, dump the storage trace
///   eadvfs_sim --source trace:harvest.csv --trace-out level.csv
///
///   # full scenario from a version-controlled INI file (CLI overrides win)
///   eadvfs_sim --scenario node.ini --scheduler lsa
///
/// Scenario INI keys mirror the CLI option names, grouped for readability —
/// every key of every section is simply the option name:
///
///   [simulation]  horizon, seed, miss-policy, depletion, replications, jobs
///   [workload]    tasks-csv, utilization, tasks, bcet
///   [energy]      source, capacity, initial, efficiency, leakage
///   [processor]   switch-time, switch-energy, idle-power
///   [scheduler]   scheduler, predictor
///   [fault]       fault-profile
///   [output]      trace-out, trace-interval, schedule-out, metrics-out,
///                 decisions-out
///
/// Scenario files are validated against this schema: an unknown section or
/// key is a one-line error naming the file, section and key, so a typo'd
/// scenario fails loudly instead of silently simulating the defaults.
/// `--validate` parses and validates everything (scenario, workload, energy
/// model, fault profile), then exits without simulating — a dry run for CI
/// and for editing scenario files.
///
/// With --replications N (N > 1) the tool switches to Monte-Carlo mode:
/// it re-derives a sub-seed per replication (same scheme as the bench
/// harness), regenerates the workload and the stochastic source for each,
/// runs them on the --jobs worker pool, and reports aggregate statistics.
/// Results are identical for every --jobs value.
///
/// Monte-Carlo runs are crash-safe: `--checkpoint <dir>` journals every
/// finished replication durably, `--resume <dir>` re-runs only the missing
/// ones (manifest-verified; byte-identical aggregates), `--retries` /
/// `--timeout` supervise flaky or hung replications, and `--keep-going`
/// aggregates around permanent failures.  SIGINT/SIGTERM drain in-flight
/// replications, flush the journal, and exit with code 6.  Exit codes:
/// 0 ok, 1 error, 2 usage, 4 partial results, 5 manifest mismatch,
/// 6 interrupted, 7 watchdog timeout (see docs/EXPERIMENTS.md).

#include <algorithm>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "analysis/feasibility.hpp"
#include "energy/markov_weather_source.hpp"
#include "energy/solar_source.hpp"
#include "energy/trace_source.hpp"
#include "energy/two_mode_source.hpp"
#include "exp/checkpoint.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "exp/setup.hpp"
#include "obs/decision_trace.hpp"
#include "obs/export.hpp"
#include "obs/metrics_observer.hpp"
#include "obs/perf.hpp"
#include "sched/factory.hpp"
#include "sim/audit.hpp"
#include "sim/fault/faulted_predictor.hpp"
#include "sim/fault/faulted_source.hpp"
#include "sim/fault/schedule.hpp"
#include "sim/trace.hpp"
#include "task/generator.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/ini.hpp"
#include "util/interrupt.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace eadvfs;

/// Parse --source specs: "solar[:seed]", "constant:P", "two-mode:day,night,
/// day_dur,night_dur", "markov[:seed]", "trace:file.csv".
std::shared_ptr<const energy::EnergySource> make_source(const std::string& spec,
                                                        Time horizon,
                                                        std::uint64_t seed) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : spec.substr(colon + 1);

  if (kind == "solar") {
    energy::SolarSourceConfig cfg;
    cfg.seed = arg.empty() ? seed : std::stoull(arg);
    cfg.horizon = horizon;
    return std::make_shared<energy::SolarSource>(cfg);
  }
  if (kind == "markov") {
    energy::MarkovWeatherConfig cfg;
    cfg.seed = arg.empty() ? seed : std::stoull(arg);
    cfg.horizon = horizon;
    return std::make_shared<energy::MarkovWeatherSource>(cfg);
  }
  if (kind == "constant") {
    if (arg.empty()) throw std::invalid_argument("constant source needs :P");
    return std::make_shared<energy::ConstantSource>(std::stod(arg));
  }
  if (kind == "two-mode") {
    energy::TwoModeSourceConfig cfg;
    std::stringstream stream(arg);
    std::string item;
    std::vector<double> values;
    while (std::getline(stream, item, ',')) values.push_back(std::stod(item));
    if (values.size() != 4)
      throw std::invalid_argument(
          "two-mode source needs :day_power,night_power,day_dur,night_dur");
    cfg.day_power = values[0];
    cfg.night_power = values[1];
    cfg.day_duration = values[2];
    cfg.night_duration = values[3];
    return std::make_shared<energy::TwoModeSource>(cfg);
  }
  if (kind == "trace") {
    if (arg.empty()) throw std::invalid_argument("trace source needs :file.csv");
    return std::make_shared<energy::TraceSource>(
        energy::TraceSource::from_csv(arg));
  }
  throw std::invalid_argument("unknown source spec: " + spec);
}

/// Load tasks from CSV columns id,period,deadline,wcet[,phase]; a header
/// row is auto-skipped.
task::TaskSet load_tasks(const std::string& path) {
  std::vector<task::Task> tasks;
  for (const auto& row : util::csv_read_file(path)) {
    if (row.size() < 4)
      throw std::runtime_error("tasks CSV needs >= 4 columns");
    task::Task t;
    try {
      t.id = static_cast<task::TaskId>(std::stoul(row[0]));
    } catch (const std::exception&) {
      continue;  // header
    }
    t.period = std::stod(row[1]);
    t.relative_deadline = std::stod(row[2]);
    t.wcet = std::stod(row[3]);
    t.phase = row.size() > 4 ? std::stod(row[4]) : 0.0;
    tasks.push_back(t);
  }
  return task::TaskSet(std::move(tasks));
}

/// The scenario schema: every section the tool understands and the option
/// keys each may contain.  Anything else in a scenario file is a typo and is
/// rejected with a one-line error naming the file, section and key.
const std::map<std::string, std::vector<std::string>>& scenario_schema() {
  static const std::map<std::string, std::vector<std::string>> schema = {
      {"simulation",
       {"horizon", "seed", "miss-policy", "depletion", "replications", "jobs"}},
      {"workload", {"tasks-csv", "utilization", "tasks", "bcet"}},
      {"energy", {"source", "capacity", "initial", "efficiency", "leakage"}},
      {"processor", {"switch-time", "switch-energy", "idle-power"}},
      {"scheduler", {"scheduler", "predictor"}},
      {"fault", {"fault-profile"}},
      {"output",
       {"trace-out", "trace-interval", "schedule-out", "metrics-out",
        "decisions-out"}},
  };
  return schema;
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += "|";
    out += n;
  }
  return out;
}

/// Reject unknown sections/keys so malformed scenarios fail loudly instead
/// of silently simulating the defaults.
void validate_scenario(const util::IniFile& ini, const std::string& path) {
  const auto& schema = scenario_schema();
  for (const auto& section : ini.sections()) {
    const auto it = schema.find(section);
    if (it == schema.end()) {
      std::vector<std::string> sections;
      for (const auto& [name, keys] : schema) sections.push_back(name);
      throw std::invalid_argument(path + ": unknown section [" + section +
                                  "] (expected " + join_names(sections) + ")");
    }
    for (const auto& key : ini.keys(section)) {
      const auto& allowed = it->second;
      if (std::find(allowed.begin(), allowed.end(), key) == allowed.end())
        throw std::invalid_argument(path + ": [" + section + "] unknown key '" +
                                    key + "' (expected " + join_names(allowed) +
                                    ")");
    }
  }
}

}  // namespace

namespace {

/// Layered option lookup: explicit CLI > scenario INI (any section) > the
/// declared default.  INI keys equal the option names.
class OptionSource {
 public:
  OptionSource(const util::ArgParser& args, const util::IniFile& ini)
      : args_(args), ini_(ini) {}

  [[nodiscard]] std::string str(const std::string& name) const {
    if (args_.provided(name)) return args_.str(name);
    for (const auto& section : ini_.sections()) {
      if (const auto value = ini_.get(section, name)) return *value;
    }
    return args_.str(name);
  }
  [[nodiscard]] double real(const std::string& name) const {
    const std::string v = str(name);
    std::size_t pos = 0;
    double parsed = 0.0;
    try {
      parsed = std::stod(v, &pos);
    } catch (const std::exception&) {
      pos = std::string::npos;  // stod throws its own unhelpfully-terse error
    }
    if (pos != v.size())
      throw std::invalid_argument(name + ": not a number: '" + v + "'");
    return parsed;
  }
  [[nodiscard]] long long integer(const std::string& name) const {
    const std::string v = str(name);
    std::size_t pos = 0;
    long long parsed = 0;
    try {
      parsed = std::stoll(v, &pos);
    } catch (const std::exception&) {
      pos = std::string::npos;
    }
    if (pos != v.size())
      throw std::invalid_argument(name + ": not an integer: '" + v + "'");
    return parsed;
  }

 private:
  const util::ArgParser& args_;
  const util::IniFile& ini_;
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "eadvfs_sim: simulate a harvesting-powered real-time system");
  args.add_option("scenario", "", "INI scenario file (CLI options override it)");
  args.add_option("scheduler", "ea-dvfs",
                  "edf | rm | lsa | ea-dvfs | ea-dvfs-static | greedy-dvfs");
  args.add_option("predictor", "slotted-ewma",
                  "oracle | slotted-ewma | running-average | pessimistic | constant:<P>");
  args.add_option("source", "solar",
                  "solar[:seed] | markov[:seed] | constant:P | "
                  "two-mode:dp,np,dd,nd | trace:file.csv");
  args.add_option("tasks-csv", "",
                  "CSV of tasks (id,period,deadline,wcet[,phase]); empty = random");
  args.add_option("utilization", "0.4", "random workload utilization");
  args.add_option("tasks", "5", "random workload task count");
  args.add_option("capacity", "100", "storage capacity (initially full)");
  args.add_option("initial", "-1", "initial charge (<0 = full)");
  args.add_option("efficiency", "1.0", "storage charge efficiency (0,1]");
  args.add_option("leakage", "0", "storage self-discharge power");
  args.add_option("horizon", "10000", "simulated time units");
  args.add_option("seed", "1", "master seed (workload + source)");
  args.add_option("bcet", "1.0", "actual work ~ U[bcet*wcet, wcet]");
  args.add_option("switch-time", "0", "DVFS transition stall time");
  args.add_option("switch-energy", "0", "DVFS transition energy");
  args.add_option("idle-power", "0", "processor draw while not executing");
  args.add_option("miss-policy", "drop", "drop | continue");
  args.add_option("depletion", "suspend",
                  "mid-execution storage-depletion policy: suspend | abort");
  args.add_option("fault-profile", "none",
                  "fault injection: none | blackout | brownout | storage | "
                  "predictor | switch | mixed, optionally :key=value,... "
                  "(docs/FAULTS.md)");
  args.add_option("replications", "1",
                  "Monte-Carlo replications (> 1 enables aggregate mode)");
  args.add_option("jobs", std::to_string(eadvfs::exp::hardware_jobs()),
                  "worker threads for replications (>= 1; results are "
                  "identical for any value)");
  args.add_option("retries", "0",
                  "Monte-Carlo mode: deterministic re-runs of a failed "
                  "replication (same sub-seed)");
  args.add_option("timeout", "0",
                  "Monte-Carlo mode: per-replication watchdog deadline in "
                  "seconds (0 = off); a hung replication exits with code 7");
  args.add_flag("keep-going",
                "Monte-Carlo mode: record permanently failed replications "
                "and aggregate the rest (exit code 4)");
  args.add_option("checkpoint", "",
                  "Monte-Carlo mode: directory for the run manifest + "
                  "replication journal (crash-safe, resumable)");
  args.add_option("resume", "",
                  "Monte-Carlo mode: resume an interrupted run from its "
                  "checkpoint directory (manifest must match, else exit 5)");
  args.add_option("crash-after", "0",
                  "TESTING ONLY: raise SIGKILL after N journal appends");
  args.add_option("trace-out", "", "write storage-level CSV here");
  args.add_option("trace-interval", "10", "storage trace sample interval");
  args.add_option("schedule-out", "", "write execution-slice CSV here");
  args.add_option("metrics-out", "",
                  "write the metrics snapshot (eadvfs.metrics.v1 JSON) here; "
                  "with --replications > 1 it describes replication 0");
  args.add_option("decisions-out", "",
                  "write the scheduler decision-trace CSV here; with "
                  "--replications > 1 it describes replication 0");
  args.add_flag("analyze", "run the offline infeasibility analysis first");
  args.add_flag("audit",
                "self-audit the run (energy conservation, segment coverage, "
                "scheduling invariants); non-zero exit on any violation");
  args.add_flag("validate",
                "parse and validate the scenario/options, then exit without "
                "simulating (dry run)");
  if (!args.parse(argc, argv)) return 0;

  try {
    util::IniFile scenario;
    if (!args.str("scenario").empty()) {
      scenario = util::IniFile::load(args.str("scenario"));
      validate_scenario(scenario, args.str("scenario"));
    }
    const OptionSource opt(args, scenario);
    const bool validate_only = args.flag("validate");

    sim::SimulationConfig cfg;
    cfg.horizon = opt.real("horizon");
    const std::string miss_policy = opt.str("miss-policy");
    if (miss_policy == "continue") {
      cfg.miss_policy = sim::MissPolicy::kContinueLate;
    } else if (miss_policy == "drop") {
      cfg.miss_policy = sim::MissPolicy::kDropAtDeadline;
    } else {
      throw std::invalid_argument("miss-policy must be 'drop' or 'continue', got '" +
                                  miss_policy + "'");
    }
    const std::string depletion = opt.str("depletion");
    if (depletion == "abort") {
      cfg.depletion_policy = sim::DepletionPolicy::kAbortAndCharge;
    } else if (depletion == "suspend") {
      cfg.depletion_policy = sim::DepletionPolicy::kSuspendAndResume;
    } else {
      throw std::invalid_argument("depletion must be 'suspend' or 'abort', got '" +
                                  depletion + "'");
    }
    cfg.audit = args.flag("audit");
    cfg.validate();

    const auto seed = static_cast<std::uint64_t>(opt.integer("seed"));
    const sim::fault::FaultProfile fault_profile =
        sim::fault::FaultProfile::parse(opt.str("fault-profile"));

    const auto n_reps = static_cast<std::size_t>(opt.integer("replications"));
    if (n_reps > 1 && !validate_only) {
      // Monte-Carlo mode: aggregate over independently seeded replications.
      if (!opt.str("trace-out").empty() || !opt.str("schedule-out").empty()) {
        std::cout << "note: trace/schedule outputs describe a single run and "
                     "are ignored when --replications > 1\n";
      }
      if (args.flag("analyze")) {
        std::cout << "note: --analyze targets a single scenario and is "
                     "ignored when --replications > 1\n";
      }

      const proc::FrequencyTable table = proc::FrequencyTable::xscale();
      const auto seeds = exp::derive_seeds(seed, n_reps);

      task::TaskSet fixed_workload;
      const bool fixed = !opt.str("tasks-csv").empty();
      if (fixed) fixed_workload = load_tasks(opt.str("tasks-csv"));

      energy::StorageConfig storage_cfg;
      storage_cfg.capacity = opt.real("capacity");
      storage_cfg.initial = opt.real("initial");
      storage_cfg.charge_efficiency = opt.real("efficiency");
      storage_cfg.leakage = opt.real("leakage");

      proc::SwitchOverhead overhead;
      overhead.time = opt.real("switch-time");
      overhead.energy = opt.real("switch-energy");

      exp::ParallelConfig parallel;
      parallel.jobs = exp::parse_jobs(opt.integer("jobs"));
      parallel.max_attempts = exp::parse_retries(args.integer("retries"));
      parallel.watchdog_sec = exp::parse_watchdog_sec(args.real("timeout"));
      parallel.keep_going = args.flag("keep-going");
      util::install_interrupt_handlers();
      parallel.cancel = util::interrupt_flag();

      exp::CheckpointConfig checkpoint;
      const std::string resume_dir = args.str("resume");
      checkpoint.dir = resume_dir.empty() ? args.str("checkpoint") : resume_dir;
      checkpoint.require_existing = !resume_dir.empty();
      if (args.integer("crash-after") < 0)
        throw std::invalid_argument("--crash-after must be >= 0");
      checkpoint.crash_after_appends =
          static_cast<std::size_t>(args.integer("crash-after"));

      // Canonical run identity for the manifest fingerprint: every option
      // that changes results.  --jobs and the supervision knobs are excluded
      // by contract — they only change how the run executes, never what it
      // computes.
      std::ostringstream canon;
      canon.precision(17);
      canon << "eadvfs-sim-mc;seed=" << seed << ";reps=" << n_reps
            << ";scheduler=" << opt.str("scheduler")
            << ";predictor=" << opt.str("predictor")
            << ";source=" << opt.str("source")
            << ";tasks-csv=" << opt.str("tasks-csv")
            << ";u=" << opt.real("utilization")
            << ";tasks=" << opt.integer("tasks")
            << ";capacity=" << storage_cfg.capacity
            << ";initial=" << storage_cfg.initial
            << ";efficiency=" << storage_cfg.charge_efficiency
            << ";leakage=" << storage_cfg.leakage
            << ";horizon=" << cfg.horizon << ";bcet=" << opt.real("bcet")
            << ";overhead=" << overhead.time << "," << overhead.energy
            << ";idle=" << opt.real("idle-power")
            << ";miss-policy=" << miss_policy << ";depletion=" << depletion
            << ";fault=" << fault_profile.describe();
      exp::ManifestInfo manifest;
      manifest.experiment = "eadvfs-sim-mc";
      manifest.config = canon.str();
      manifest.seed = seed;
      manifest.replications = n_reps;
      manifest.jobs = parallel.jobs;

      // One replication, assembled through the shared exp::RunOptions
      // builder.  Seeding is per-replication (same scheme as the bench
      // sweeps): workload from the raw sub-seed, source/fault/execution
      // from salted sub-seeds so the streams stay independent.
      const auto run_replication =
          [&](std::size_t rep,
              obs::RunObservability* sink) -> sim::SimulationResult {
        task::TaskSet workload;
        if (fixed) {
          workload = fixed_workload;
        } else {
          task::GeneratorConfig gen_cfg;
          gen_cfg.target_utilization = opt.real("utilization");
          gen_cfg.n_tasks = static_cast<std::size_t>(opt.integer("tasks"));
          const task::TaskSetGenerator generator(gen_cfg);
          util::Xoshiro256ss rng(seeds[rep]);
          workload = generator.generate(rng);
        }
        // Per-replication fault realization (the spec's seed wins when
        // pinned, else the sub-seed).
        sim::fault::FaultProfile rep_fault = fault_profile;
        if (!rep_fault.seed_provided)
          rep_fault.seed = seeds[rep] ^ 0xfa017fa017fa017fULL;
        exp::RunOptions run;
        run.config = cfg;
        run.source = make_source(opt.str("source"), cfg.horizon,
                                 seeds[rep] ^ 0x5eed5eed5eed5eedULL);
        run.tasks = &workload;
        run.storage = storage_cfg;
        run.table = table;
        run.scheduler = opt.str("scheduler");
        run.predictor = opt.str("predictor");
        run.overhead = overhead;
        run.idle_power = opt.real("idle-power");
        run.execution.bcet_fraction = opt.real("bcet");
        run.execution.seed = seeds[rep] ^ 0xE5ECULL;
        run.fault = &rep_fault;
        run.observability = sink;
        return exp::run_with_options(run);
      };

      obs::PhaseTimers timers;
      timers.start("simulate");
      const auto outcome = exp::checkpointed_map(
          n_reps,
          exp::with_default_progress(parallel, "monte-carlo", 20),
          checkpoint, manifest,
          [&](std::size_t rep) -> std::vector<double> {
            const sim::SimulationResult r = run_replication(rep, nullptr);
            return {r.miss_rate(), r.consumed, r.work_completed,
                    r.brownout_time};
          });
      timers.start("aggregate");

      if (outcome.resumed > 0)
        std::cout << "resumed from checkpoint: " << outcome.resumed
                  << " replication(s) replayed from the journal\n";
      for (const auto& [index, attempts] : outcome.report.retried)
        std::cout << "note: replication " << index << " succeeded after "
                  << attempts << " attempts\n";
      if (outcome.report.interrupted) {
        std::cerr << "interrupted: " << outcome.report.completed
                  << " replication(s) completed; "
                  << (checkpoint.enabled()
                          ? "resume with '--resume " + checkpoint.dir + "'"
                          : "use '--checkpoint <dir>' next time to make the "
                            "run resumable")
                  << "\n";
        return util::exit_code::kInterrupted;
      }

      // Replay in index order: identical aggregates at any --jobs, resumed
      // or not.  Failed indices (keep-going) have empty rows and are
      // excluded — loudly, below.
      util::RunningStats miss, consumed, work, brownout;
      for (const auto& row : outcome.rows) {
        if (row.empty()) continue;
        miss.add(row[0]);
        consumed.add(row[1]);
        work.add(row[2]);
        brownout.add(row[3]);
      }
      std::cout << "monte-carlo: " << n_reps << " replications, scheduler "
                << opt.str("scheduler") << ", source " << opt.str("source")
                << "\n\n";
      exp::TextTable out({"metric", "mean", "min", "max"});
      out.add_row({"miss rate", exp::fmt(miss.mean(), 4),
                   exp::fmt(miss.min(), 4), exp::fmt(miss.max(), 4)});
      out.add_row({"energy consumed", exp::fmt(consumed.mean(), 1),
                   exp::fmt(consumed.min(), 1), exp::fmt(consumed.max(), 1)});
      out.add_row({"work completed", exp::fmt(work.mean(), 1),
                   exp::fmt(work.min(), 1), exp::fmt(work.max(), 1)});
      out.add_row({"brownout time", exp::fmt(brownout.mean(), 1),
                   exp::fmt(brownout.min(), 1), exp::fmt(brownout.max(), 1)});
      if (!outcome.report.failures.empty())
        out.add_row({"failed_replications",
                     std::to_string(outcome.report.failures.size()) + " of " +
                         std::to_string(n_reps),
                     "", ""});
      std::cout << out.render();

      const std::string metrics_out = opt.str("metrics-out");
      const std::string decisions_out = opt.str("decisions-out");
      if (!metrics_out.empty() || !decisions_out.empty()) {
        if (outcome.rows.empty() || outcome.rows[0].empty()) {
          std::cout << "note: replication 0 failed; skipping "
                       "--metrics-out/--decisions-out\n";
        } else {
          // Trace replication: the aggregate journal holds only summary
          // numbers, so re-simulate replication 0 in-process for the
          // detailed artifacts.  A replication is a pure function of
          // (sub-seed, options), so these files are byte-identical for any
          // --jobs value and across a checkpoint resume.
          timers.start("trace-replication");
          obs::RunObservability sink;
          (void)run_replication(0, &sink);
          if (!metrics_out.empty()) {
            sink.export_metrics(metrics_out);
            std::cout << "metrics (replication 0) -> " << metrics_out << "\n";
          }
          if (!decisions_out.empty()) {
            sink.export_decisions(decisions_out);
            std::cout << "decisions (replication 0) -> " << decisions_out
                      << "\n";
          }
        }
      }
      timers.stop();
      std::cout << "wall clock: " << timers.summary() << "\n";
      if (!outcome.report.failures.empty()) {
        std::cerr << util::describe_failures(outcome.report.failures)
                  << "\npartial results: the failed replications above are "
                     "excluded from every aggregate\n";
        return util::exit_code::kPartialResults;
      }
      return 0;
    }

    auto source = make_source(opt.str("source"), cfg.horizon, seed);

    // Single-run fault realization: the spec's pinned seed wins, else the
    // master seed (salted so fault and source streams stay independent).
    sim::fault::FaultProfile run_fault = fault_profile;
    if (!run_fault.seed_provided)
      run_fault.seed = seed ^ 0xfa017fa017fa017fULL;
    std::optional<sim::fault::FaultSchedule> fault_schedule;
    if (run_fault.any()) {
      fault_schedule.emplace(run_fault, cfg.horizon);
      if (!fault_schedule->harvest_windows().empty())
        source = std::make_shared<sim::fault::FaultedSource>(
            source, fault_schedule->harvest_windows());
    }

    task::TaskSet workload;
    if (opt.str("tasks-csv").empty()) {
      task::GeneratorConfig gen_cfg;
      gen_cfg.target_utilization = opt.real("utilization");
      gen_cfg.n_tasks = static_cast<std::size_t>(opt.integer("tasks"));
      task::TaskSetGenerator generator(gen_cfg);
      util::Xoshiro256ss rng(seed);
      workload = generator.generate(rng);
    } else {
      workload = load_tasks(opt.str("tasks-csv"));
    }
    std::cout << "workload: " << workload.describe() << "\n";
    std::cout << "source:   " << source->name() << "\n";

    const proc::FrequencyTable table = proc::FrequencyTable::xscale();

    if (args.flag("analyze")) {
      const auto witness = analysis::find_infeasibility(
          workload, cfg.horizon, *source, opt.real("capacity"), table);
      if (witness) {
        std::cout << "analysis: PROVABLY INFEASIBLE — " << witness->describe()
                  << "\n          (every scheduler will miss deadlines)\n";
      } else {
        std::cout << "analysis: no infeasibility witness found\n";
      }
    }

    energy::StorageConfig storage_cfg;
    storage_cfg.capacity = opt.real("capacity");
    storage_cfg.initial = opt.real("initial");
    storage_cfg.charge_efficiency = opt.real("efficiency");
    storage_cfg.leakage = opt.real("leakage");

    proc::SwitchOverhead overhead;
    overhead.time = opt.real("switch-time");
    overhead.energy = opt.real("switch-energy");

    task::ExecutionTimeModel execution;
    execution.bcet_fraction = opt.real("bcet");
    execution.seed = seed ^ 0xE5ECULL;

    const auto scheduler = sched::make_scheduler(opt.str("scheduler"));

    sim::EnergyTraceRecorder energy_trace(opt.real("trace-interval"),
                                          cfg.horizon);
    sim::ScheduleRecorder schedule;

    energy::EnergyStorage storage(storage_cfg);
    proc::Processor processor(table, overhead, opt.real("idle-power"));
    auto predictor = exp::make_predictor(opt.str("predictor"), source);
    if (fault_schedule.has_value() &&
        fault_schedule->profile().affects_predictor())
      predictor = std::make_unique<sim::fault::FaultedPredictor>(
          std::move(predictor), fault_schedule->predictor_model());
    task::JobReleaser releaser(workload, cfg.horizon, execution);
    sim::Engine engine(cfg, *source, storage, processor, *predictor, *scheduler,
                       releaser);
    if (fault_schedule.has_value()) engine.set_fault_schedule(&*fault_schedule);
    if (validate_only) {
      // Everything parsed, validated and constructed; report and stop short
      // of simulating.
      std::cout << "validate: OK";
      if (!args.str("scenario").empty())
        std::cout << " (" << args.str("scenario") << ")";
      std::cout << "\n  scheduler " << scheduler->name() << ", predictor "
                << predictor->name() << ", horizon " << cfg.horizon << "\n";
      if (run_fault.any())
        std::cout << "  faults: " << run_fault.describe() << "\n";
      return 0;
    }
    if (!opt.str("trace-out").empty()) engine.observers().add(energy_trace);
    if (!opt.str("schedule-out").empty()) engine.observers().add(schedule);

    const std::string metrics_out = opt.str("metrics-out");
    const std::string decisions_out = opt.str("decisions-out");
    obs::RunObservability sink;
    obs::DecisionTraceObserver decision_trace;
    std::optional<obs::MetricsObserver> metrics_observer;
    if (!metrics_out.empty() || !decisions_out.empty()) {
      obs::MetricsObserverConfig mcfg;
      mcfg.scheduler = scheduler->name();
      mcfg.capacity = storage_cfg.capacity;
      mcfg.extra = {{"capacity", util::format_double(storage_cfg.capacity)}};
      metrics_observer.emplace(sink.registry(), mcfg);
      engine.observers().add(*metrics_observer);
      engine.observers().add(decision_trace);
    }

    const sim::SimulationResult result = engine.run();

    std::cout << "\n" << result.summary() << "\n";
    if (args.flag("audit")) std::cout << "audit: clean\n";

    if (!metrics_out.empty() || !decisions_out.empty()) {
      sink.record_run(scheduler->name(), storage_cfg.capacity, result,
                      decision_trace.records());
      if (!metrics_out.empty()) {
        sink.export_metrics(metrics_out);
        std::cout << "metrics -> " << metrics_out << "\n";
      }
      if (!decisions_out.empty()) {
        sink.export_decisions(decisions_out);
        std::cout << "decisions -> " << decisions_out << "\n";
      }
    }

    if (!opt.str("trace-out").empty()) {
      // Atomic (write-temp-then-rename): a crash or interrupt mid-write
      // never leaves a torn CSV where a complete trace was expected.
      util::write_file_atomic(opt.str("trace-out"), [&](std::ostream& stream) {
        util::CsvWriter csv(stream);
        csv.write_row({std::string("time"), std::string("level")});
        for (std::size_t i = 0; i < energy_trace.times().size(); ++i)
          csv.write_row(std::vector<double>{energy_trace.times()[i],
                                            energy_trace.levels()[i]});
      });
      std::cout << "storage trace -> " << opt.str("trace-out") << "\n";
    }
    if (!opt.str("schedule-out").empty()) {
      util::write_file_atomic(
          opt.str("schedule-out"), [&](std::ostream& stream) {
            util::CsvWriter csv(stream);
            csv.write_row({std::string("start"), std::string("end"),
                           std::string("job"), std::string("op_index")});
            for (const auto& slice : schedule.slices()) {
              csv.cell(slice.start).cell(slice.end)
                  .cell(static_cast<long long>(slice.job))
                  .cell(static_cast<long long>(slice.op_index));
              csv.end_row();
            }
          });
      std::cout << "schedule -> " << opt.str("schedule-out") << "\n";
    }
    return 0;
  } catch (const sim::AuditError& e) {
    std::cerr << "AUDIT FAILED\n" << e.what() << "\n";
    return 1;
  } catch (const util::ManifestMismatchError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return util::exit_code::kManifestMismatch;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
