# ctest helper: the observability determinism acceptance (docs/OBSERVABILITY.md,
# "Determinism contract").  The metrics JSON and decision CSV written by
# `eadvfs-sim --metrics-out --decisions-out` in Monte-Carlo mode describe
# replication 0 and are produced by an in-process trace replication after
# aggregation — so they must be byte-identical for any --jobs count and across
# a SIGKILL + --resume cycle.  Run as
#   cmake -DTOOL=<eadvfs-sim> -DWORK_DIR=<dir> -P <this file>

set(root "${WORK_DIR}/observability")
file(REMOVE_RECURSE "${root}")
file(MAKE_DIRECTORY "${root}")
set(common --replications 8 --horizon 1500 --capacity 60 --scheduler ea-dvfs
           --utilization 0.5 --seed 7)

function(run_tool tag rc_var)
  execute_process(
    COMMAND "${TOOL}" ${common}
            --metrics-out "${root}/${tag}.json"
            --decisions-out "${root}/${tag}.csv"
            ${ARGN}
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  set(${rc_var} "${rc}" PARENT_SCOPE)
endfunction()

function(expect_identical label a b)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "${label}: ${a} differs from ${b}")
  endif()
endfunction()

# 1. Baselines at two worker counts: both artifacts byte-identical.
run_tool(j1 rc --jobs 1)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--jobs 1 run failed (${rc})")
endif()
run_tool(j6 rc --jobs 6)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--jobs 6 run failed (${rc})")
endif()
expect_identical("metrics --jobs determinism"
                 "${root}/j1.json" "${root}/j6.json")
expect_identical("decisions --jobs determinism"
                 "${root}/j1.csv" "${root}/j6.csv")

# 2. SIGKILL mid-run (--crash-after raises a real SIGKILL after 3 journal
#    appends), then resume: the resumed run's artifacts must still match.
set(ckpt "${root}/ckpt")
run_tool(crashed rc --jobs 1 --checkpoint "${ckpt}" --crash-after 3)
if(rc EQUAL 0)
  message(FATAL_ERROR "--crash-after 3 run exited 0; expected a SIGKILL death")
endif()
run_tool(resumed rc --jobs 6 --resume "${ckpt}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--resume after SIGKILL failed (${rc})")
endif()
expect_identical("metrics crash+resume"
                 "${root}/j1.json" "${root}/resumed.json")
expect_identical("decisions crash+resume"
                 "${root}/j1.csv" "${root}/resumed.csv")

# 3. Sanity: the decision CSV names the EA-DVFS rule that fired (the trace
#    carries rule strings, not just numbers).
file(READ "${root}/j1.csv" csv)
if(NOT csv MATCHES "scheduler,capacity,index,time")
  message(FATAL_ERROR "decision CSV is missing its header")
endif()
if(NOT csv MATCHES "EA-DVFS")
  message(FATAL_ERROR "decision CSV has no EA-DVFS rows")
endif()
if(NOT csv MATCHES "stretch-min-feasible|wait-for-energy|full-speed|no-feasible-slowdown|past-deadline")
  message(FATAL_ERROR "decision CSV rows do not name the EA-DVFS rule fired")
endif()
