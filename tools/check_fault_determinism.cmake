# ctest helper: a seeded fault sweep must produce byte-identical CSV output
# for any worker count (the subsystem's determinism contract, docs/FAULTS.md).
# Run as
#   cmake -DBENCH=<ablation_fault_resilience> -DWORK_DIR=<dir> -P <this file>

set(csv1 "${WORK_DIR}/fault_det_jobs1.csv")
set(csv8 "${WORK_DIR}/fault_det_jobs8.csv")
set(common --sets 6 --duties 0,0.2 --horizon 2000 --quiet)

execute_process(COMMAND "${BENCH}" ${common} --jobs 1 --out "${csv1}"
  RESULT_VARIABLE rc1 OUTPUT_QUIET)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "--jobs 1 run failed (${rc1})")
endif()
execute_process(COMMAND "${BENCH}" ${common} --jobs 8 --out "${csv8}"
  RESULT_VARIABLE rc8 OUTPUT_QUIET)
if(NOT rc8 EQUAL 0)
  message(FATAL_ERROR "--jobs 8 run failed (${rc8})")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${csv1}" "${csv8}"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "fault sweep CSV differs between --jobs 1 and --jobs 8")
endif()
