# ctest helper: malformed scenario files must be rejected with a one-line
# error naming the file, section and key.  Run as
#   cmake -DTOOL=<eadvfs-sim> -P check_scenario_errors.cmake

set(bad_section "${CMAKE_CURRENT_BINARY_DIR}/bad_section.ini")
file(WRITE "${bad_section}" "[energi]\ncapacity = 100\n")
execute_process(COMMAND "${TOOL}" --scenario "${bad_section}"
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_VARIABLE out)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown section was accepted")
endif()
if(NOT "${err}${out}" MATCHES "unknown section \\[energi\\]")
  message(FATAL_ERROR "error does not name the bad section: ${err}${out}")
endif()

set(bad_key "${CMAKE_CURRENT_BINARY_DIR}/bad_key.ini")
file(WRITE "${bad_key}" "[simulation]\nhorizn = 500\n")
execute_process(COMMAND "${TOOL}" --scenario "${bad_key}"
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_VARIABLE out)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown key was accepted")
endif()
if(NOT "${err}${out}" MATCHES "\\[simulation\\] unknown key 'horizn'")
  message(FATAL_ERROR "error does not name the bad key: ${err}${out}")
endif()
