# ctest helper: determinism acceptance for the fleet runner
# (docs/EXPERIMENTS.md, "Fleet runs").  The eadvfs.fleet.v1 artifact and its
# CSV export must be byte-identical for any --jobs count, and a run SIGKILLed
# mid-fleet then resumed with --resume must reproduce both byte for byte;
# resuming under a different population is refused with exit code 5.  Run as
#   cmake -DBENCH=<fleet_sweep> -DWORK_DIR=<dir> -P <this file>

set(root "${WORK_DIR}/fleet_determinism")
file(REMOVE_RECURSE "${root}")
file(MAKE_DIRECTORY "${root}")
set(common --devices 60 --shard-size 10 --horizon 150 --quiet)

function(run_fleet tag rc_var)
  execute_process(
    COMMAND "${BENCH}" ${common}
            --out "${root}/${tag}.bin" --csv "${root}/${tag}.csv" ${ARGN}
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  set(${rc_var} "${rc}" PARENT_SCOPE)
endfunction()

function(expect_identical label a b)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "${label}: ${a} differs from ${b}")
  endif()
endfunction()

# 1. The same fleet at two worker counts: artifact and CSV byte-identical.
run_fleet(j1 rc --jobs 1)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--jobs 1 fleet run failed (${rc})")
endif()
run_fleet(j8 rc --jobs 8)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--jobs 8 fleet run failed (${rc})")
endif()
expect_identical("jobs determinism (artifact)"
                 "${root}/j1.bin" "${root}/j8.bin")
expect_identical("jobs determinism (csv)"
                 "${root}/j1.csv" "${root}/j8.csv")

# 2. SIGKILL mid-fleet: --crash-after raises a real SIGKILL after 2 shard
#    journal appends; the process must die abnormally, leaving the manifest
#    and a partial journal. The artifact must NOT have been written.
set(ckpt "${root}/ckpt")
run_fleet(crashed rc --jobs 1 --checkpoint "${ckpt}" --crash-after 2)
if(rc EQUAL 0)
  message(FATAL_ERROR "--crash-after 2 run exited 0; expected a SIGKILL death")
endif()
if(NOT EXISTS "${ckpt}/manifest.txt" OR NOT EXISTS "${ckpt}/journal.txt")
  message(FATAL_ERROR "killed run left no manifest/journal in ${ckpt}")
endif()
if(EXISTS "${root}/crashed.bin")
  message(FATAL_ERROR "killed run wrote an artifact; a partial fleet must not")
endif()

# 3. Resume at a different worker count: only the missing shards re-run, and
#    the artifact/CSV match the uninterrupted baselines byte for byte.
run_fleet(resumed rc --jobs 8 --resume "${ckpt}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--resume after SIGKILL failed (${rc})")
endif()
expect_identical("crash+resume (artifact)"
                 "${root}/j1.bin" "${root}/resumed.bin")
expect_identical("crash+resume (csv)"
                 "${root}/j1.csv" "${root}/resumed.csv")

# 4. Resuming a different population against the same checkpoint is refused
#    with exit code 5 (manifest fingerprint mismatch).
run_fleet(mismatch rc --jobs 1 --resume "${ckpt}" --seed 99)
if(NOT rc EQUAL 5)
  message(FATAL_ERROR
          "--resume with a different seed exited ${rc}; expected 5 "
          "(manifest mismatch)")
endif()
