#!/usr/bin/env python3
"""Documentation consistency check (wired into ctest as `docs_consistency`).

Two classes of rot this catches:

1. **Broken intra-repo links.**  Every relative markdown link in the checked
   documents must point at an existing file (anchors into markdown targets
   are validated against the target's headings, GitHub slug rules).

2. **Phantom CLI flags.**  Every `--flag` token a checked document mentions
   must exist in the `--help` output of one of the named binaries (or in
   the small allowlist of build-infrastructure flags below).  Docs that
   promise flags the binaries don't accept fail the build.

Usage:
  check_docs.py --repo-root <dir> [--binary <path>]... [--docs <glob-dir>]...
Exit code 0 when clean, 1 with a findings list otherwise.
"""

import argparse
import glob
import os
import re
import subprocess
import sys

# Links: standard inline markdown [text](target) including images; reference
# definitions [id]: target are rare here and intentionally not parsed.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FLAG_RE = re.compile(r"(?<![\w-])(--[a-z][a-z0-9][a-z0-9_-]*)")
FENCE_RE = re.compile(r"^\s*(```|~~~)")

# Flags that legitimately appear in the docs but belong to the build
# toolchain (cmake/ctest/apt/git) or to third-party harnesses, not to our
# binaries' --help surface.
ALLOWED_INFRA_FLAGS = {
    "--build", "--preset", "--target", "--parallel", "--output-on-failure",
    "--test-dir", "--no-install-recommends", "--install", "--config",
    "--version",
    "--benchmark_filter", "--benchmark_format", "--gtest_filter",
    "--gtest_list_tests", "--help",
}

# micro_engine consumes its mode switches before google-benchmark's argument
# parsing, so they never show up in --help output (bench/micro_engine.cpp).
MICRO_ENGINE_MODES = {"--engine-baseline", "--scaling"}


def github_slug(heading, seen):
    """GitHub's anchor slug: lowercase, strip punctuation, spaces to dashes,
    numeric suffix on repeats."""
    text = re.sub(r"[`*_]", "", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links: keep text
    slug = "".join(c for c in text.lower() if c.isalnum() or c in " -_")
    slug = slug.replace(" ", "-")
    if slug in seen:
        seen[slug] += 1
        return f"{slug}-{seen[slug]}"
    seen[slug] = 0
    return slug


def heading_anchors(path):
    anchors, seen, in_fence = set(), {}, False
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if match:
                anchors.add(github_slug(match.group(2), seen))
    return anchors


def check_links(doc_path, repo_root, findings):
    with open(doc_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    rel_doc = os.path.relpath(doc_path, repo_root)
    for target in LINK_RE.findall(text):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        path_part, _, anchor = target.partition("#")
        if not path_part:  # same-file anchor
            resolved = doc_path
        else:
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(doc_path), path_part))
        if not os.path.exists(resolved):
            findings.append(f"{rel_doc}: broken link -> {target}")
            continue
        if anchor and resolved.endswith(".md"):
            if anchor not in heading_anchors(resolved):
                findings.append(
                    f"{rel_doc}: link -> {target}: no heading with anchor "
                    f"#{anchor} in {os.path.relpath(resolved, repo_root)}")


def flags_from_help(binary):
    try:
        proc = subprocess.run([binary, "--help"], capture_output=True,
                              text=True, timeout=60)
    except (OSError, subprocess.TimeoutExpired) as error:
        raise RuntimeError(f"cannot run {binary} --help: {error}") from error
    return set(FLAG_RE.findall(proc.stdout + proc.stderr))


def check_flags(doc_paths, repo_root, known_flags, findings):
    for doc_path in doc_paths:
        rel_doc = os.path.relpath(doc_path, repo_root)
        with open(doc_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        for flag in sorted(set(FLAG_RE.findall(text))):
            if flag not in known_flags:
                findings.append(
                    f"{rel_doc}: mentions {flag}, which no checked binary "
                    f"accepts (is the doc stale, or should the flag be "
                    f"allowlisted in tools/check_docs.py?)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root", required=True)
    parser.add_argument("--binary", action="append", default=[],
                        help="binary whose --help defines accepted flags "
                             "(repeatable)")
    args = parser.parse_args()
    repo_root = os.path.abspath(args.repo_root)

    doc_paths = sorted(
        glob.glob(os.path.join(repo_root, "*.md"))
        + glob.glob(os.path.join(repo_root, "docs", "*.md")))
    # Work-tracking scratch files, not documentation surfaces.
    skip = {"ISSUE.md", "CHANGES.md", "SNIPPETS.md", "PAPERS.md"}
    doc_paths = [p for p in doc_paths if os.path.basename(p) not in skip]
    if not doc_paths:
        print("error: no markdown documents found", file=sys.stderr)
        return 1

    findings = []
    for doc_path in doc_paths:
        check_links(doc_path, repo_root, findings)

    known_flags = set(ALLOWED_INFRA_FLAGS) | MICRO_ENGINE_MODES
    for binary in args.binary:
        known_flags |= flags_from_help(binary)
    if args.binary:
        check_flags(doc_paths, repo_root, known_flags, findings)

    if findings:
        print(f"documentation check failed ({len(findings)} findings):",
              file=sys.stderr)
        for finding in findings:
            print(f"  {finding}", file=sys.stderr)
        return 1
    print(f"docs OK: {len(doc_paths)} documents, "
          f"{len(known_flags)} known flags")
    return 0


if __name__ == "__main__":
    sys.exit(main())
