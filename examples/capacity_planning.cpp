/// \file capacity_planning.cpp
/// Deployment-style use of the library: "how big a battery/supercap does my
/// node need so that no deadline is ever missed?"  Runs the paper's
/// Table-1 machinery (binary search for C_min) on a user-specified workload
/// and reports the sizing per scheduler — i.e. how much storage the
/// EA-DVFS firmware saves on the bill of materials.
///
///   ./capacity_planning [--utilization 0.3] [--sets 20] [--seed 9]

#include <iostream>
#include <memory>

#include "energy/solar_source.hpp"
#include "exp/capacity_search.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "task/generator.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("capacity planning: minimum storage for zero misses");
  args.add_option("utilization", "0.3", "workload utilization (0, 1]");
  args.add_option("tasks", "5", "tasks per workload");
  args.add_option("sets", "20", "number of random workloads to size");
  args.add_option("seed", "9", "master seed");
  args.add_option("horizon", "5000", "simulated time units per trial");
  args.add_option("jobs", std::to_string(exp::hardware_jobs()),
                  "worker threads (>= 1; results identical for any value)");
  if (!args.parse(argc, argv)) return 0;

  exp::CapacitySearchConfig cfg;
  cfg.schedulers = {"edf", "lsa", "ea-dvfs"};
  cfg.n_task_sets = static_cast<std::size_t>(args.integer("sets"));
  cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
  cfg.generator.target_utilization = args.real("utilization");
  cfg.generator.n_tasks = static_cast<std::size_t>(args.integer("tasks"));
  cfg.sim.horizon = args.real("horizon");
  cfg.solar.horizon = cfg.sim.horizon;
  cfg.parallel.jobs = exp::parse_jobs(args.integer("jobs"));

  std::cout << "sizing " << cfg.n_task_sets << " random workloads at U="
            << exp::fmt(cfg.generator.target_utilization, 2)
            << " on the solar source (zero-miss storage, 1% search)\n\n";

  const exp::CapacitySearchResult result = exp::run_capacity_search(cfg);

  exp::TextTable table({"scheduler", "mean Cmin", "min", "max"});
  for (std::size_t s = 0; s < cfg.schedulers.size(); ++s) {
    table.add_row({cfg.schedulers[s], exp::fmt(result.cmin[s].mean(), 1),
                   exp::fmt(result.cmin[s].min(), 1),
                   exp::fmt(result.cmin[s].max(), 1)});
  }
  std::cout << table.render() << "\n";
  if (result.sets_skipped > 0) {
    std::cout << result.sets_skipped
              << " workload(s) could not reach zero misses within the search "
                 "bracket and were skipped.\n";
  }
  if (!result.cmin.empty() && !result.cmin.back().empty()) {
    const double lsa = result.cmin[1].mean();
    const double ea = result.cmin[2].mean();
    if (ea > 0.0) {
      std::cout << "EA-DVFS firmware lets you ship a storage "
                << exp::fmt(lsa / ea, 2) << "x smaller than LSA ("
                << exp::fmt(100.0 * (lsa - ea) / lsa, 1)
                << "% smaller) for this workload class.\n";
    }
  }
  return 0;
}
