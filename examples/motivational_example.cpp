/// \file motivational_example.cpp
/// Replays the paper's two worked examples with a full printed timeline:
///
///   §2 / Figure 1  — τ1=(0,16,4), τ2=(5,16,1.5), E_C(0)=24, P_S=0.5,
///                    P_max=8: LSA drains the storage on τ1 and τ2 misses;
///                    EA-DVFS stretches τ1 and both deadlines hold.
///   §4.3 / Figure 3 — τ1=(0,16,4), τ2=(5,12,1.5), 32 units of energy:
///                    greedy stretching starves τ2; EA-DVFS's rule "switch
///                    to f_max at s2" saves it.

#include <iostream>
#include <memory>

#include "energy/predictor.hpp"
#include "energy/source.hpp"
#include "energy/storage.hpp"
#include "proc/frequency_table.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "sim/gantt.hpp"
#include "sim/trace.hpp"
#include "task/releaser.hpp"

namespace {

using namespace eadvfs;

task::Job make_job(task::JobId id, Time arrival, Time relative_deadline,
                   Work wcet) {
  task::Job j;
  j.id = id;
  j.arrival = arrival;
  j.absolute_deadline = arrival + relative_deadline;
  j.wcet = wcet;
  j.remaining = wcet;
  return j;
}

void replay(const std::string& title, const std::vector<task::Job>& jobs,
            const proc::FrequencyTable& table, Power harvest, Energy initial,
            const std::string& scheduler_name) {
  auto source = std::make_shared<const energy::ConstantSource>(harvest);
  energy::StorageConfig storage_cfg;
  storage_cfg.capacity = 1000.0;
  storage_cfg.initial = initial;
  energy::EnergyStorage storage(storage_cfg);
  proc::Processor processor(table);
  energy::OraclePredictor predictor(source);
  auto scheduler = sched::make_scheduler(scheduler_name);
  task::JobReleaser releaser(jobs);
  sim::SimulationConfig cfg;
  cfg.horizon = 30.0;

  sim::ScheduleRecorder recorder;
  sim::Engine engine(cfg, *source, storage, processor, predictor, *scheduler,
                     releaser);
  engine.observers().add(recorder);
  const sim::SimulationResult result = engine.run();

  std::cout << "--- " << title << " under " << scheduler->name() << " ---\n";
  for (const auto& slice : recorder.slices()) {
    std::cout << "  t=[" << slice.start << ", " << slice.end << ")  job τ"
              << (slice.job + 1) << " at speed "
              << table.at(slice.op_index).speed << " (P="
              << table.at(slice.op_index).power << ")\n";
  }
  for (const auto& outcome : recorder.outcomes()) {
    std::cout << "  job τ" << (outcome.job.id + 1)
              << (outcome.missed ? " MISSED its deadline at t="
                                 : " completed at t=")
              << outcome.time << "\n";
  }
  std::cout << "  energy: consumed " << result.consumed << ", final storage "
            << result.storage_final << "\n";
  sim::GanttOptions gantt;
  gantt.start = 0.0;
  gantt.end = 22.0;
  gantt.width = 66;
  std::cout << sim::render_gantt(recorder, gantt) << "\n";
}

}  // namespace

int main() {
  using namespace eadvfs;

  std::cout << "Paper worked example 1 (Section 2, Figure 1)\n";
  std::cout << "τ1 = (0, 16, 4), τ2 = (5, 16, 1.5); stored energy 24,\n"
               "harvest 0.5, two speeds {0.5, 1.0} at powers {8/3, 8}.\n\n";
  const std::vector<task::Job> example1 = {make_job(0, 0.0, 16.0, 4.0),
                                           make_job(1, 5.0, 16.0, 1.5)};
  const proc::FrequencyTable two_speed = proc::FrequencyTable::two_speed(8.0);
  replay("Figure 1", example1, two_speed, 0.5, 24.0, "lsa");
  replay("Figure 1", example1, two_speed, 0.5, 24.0, "ea-dvfs");

  std::cout << "Paper worked example 2 (Section 4.3, Figure 3)\n";
  std::cout << "τ1 = (0, 16, 4), τ2 = (5, 12, 1.5); available energy 32,\n"
               "no harvest, speeds {0.25, 1.0} at powers {1, 8}.\n\n";
  const std::vector<task::Job> example2 = {make_job(0, 0.0, 16.0, 4.0),
                                           make_job(1, 5.0, 12.0, 1.5)};
  const proc::FrequencyTable quarter(
      {{250.0, 0.25, 1.0}, {1000.0, 1.0, 8.0}});
  replay("Figure 3", example2, quarter, 0.0, 32.0, "greedy-dvfs");
  replay("Figure 3", example2, quarter, 0.0, 32.0, "ea-dvfs");

  std::cout << "Takeaway: stretching saves τ2 in example 1; *bounded*\n"
               "stretching (the s2 switch-back) saves it in example 2.\n";
  return 0;
}
