/// \file quickstart.cpp
/// Minimal end-to-end use of the library: build a solar-harvesting real-time
/// system, run the same random workload under LSA and EA-DVFS, and compare
/// deadline misses and energy behaviour.
///
///   ./quickstart [--utilization 0.4] [--capacity 500] [--seed 7]

#include <iostream>
#include <memory>

#include "energy/solar_source.hpp"
#include "exp/setup.hpp"
#include "proc/frequency_table.hpp"
#include "sched/factory.hpp"
#include "task/generator.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace eadvfs;

  util::ArgParser args("quickstart: one workload, LSA vs EA-DVFS");
  args.add_option("utilization", "0.4", "target processor utilization (0, 1]");
  // 60 sits in the regime where storage size decides deadlines (see
  // EXPERIMENTS.md): small enough that LSA misses and EA-DVFS's stretching
  // visibly pays off.  Try 500 to watch both collapse into plain EDF.
  args.add_option("capacity", "60", "energy storage capacity");
  args.add_option("seed", "7", "master random seed");
  if (!args.parse(argc, argv)) return 0;

  // 1. A DVFS processor (the paper's XScale-like 5-point table).
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  std::cout << "processor: " << table.describe() << "\n\n";

  // 2. A solar-like harvested-energy source (paper eq. 13).
  energy::SolarSourceConfig solar;
  solar.seed = static_cast<std::uint64_t>(args.integer("seed"));
  const auto source = std::make_shared<const energy::SolarSource>(solar);

  // 3. A random periodic task set at the requested utilization.
  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = args.real("utilization");
  task::TaskSetGenerator generator(gen_cfg);
  util::Xoshiro256ss rng(static_cast<std::uint64_t>(args.integer("seed")));
  const task::TaskSet task_set = generator.generate(rng);
  std::cout << "workload: " << task_set.describe() << "\n\n";

  // 4. Simulate under both schedulers with identical everything else.
  sim::SimulationConfig sim_cfg;  // 10,000 time units, drop-at-deadline
  const Energy capacity = args.real("capacity");
  for (const char* name : {"lsa", "ea-dvfs"}) {
    const auto scheduler = sched::make_scheduler(name);
    const sim::SimulationResult result = exp::run_once(
        sim_cfg, source, capacity, table, *scheduler, "slotted-ewma", task_set);
    std::cout << "--- " << scheduler->name() << " ---\n"
              << result.summary() << "\n\n";
  }
  std::cout << "Lower 'missed' for EA-DVFS at moderate utilization is the\n"
               "paper's headline result (DATE 2008, Figures 8/9).\n";
  return 0;
}
