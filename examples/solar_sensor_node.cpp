/// \file solar_sensor_node.cpp
/// A realistic end-to-end scenario: a solar-harvesting wireless sensor node
/// (the paper's motivating application — §1 cites Heliomote/Prometheus)
/// running a concrete periodic task set:
///
///   sense    p=10   w=0.4   ADC sampling + filtering
///   process  p=30   w=2.4   feature extraction over a sample window
///   radio    p=60   w=4.5   packet assembly + TX burst
///   health   p=100  w=1.0   battery/panel diagnostics
///
/// The node is simulated through several day/night cycles under every
/// scheduler, with per-task deadline statistics — the level at which a
/// deployment engineer would evaluate the algorithms.
///
///   ./solar_sensor_node [--capacity 120] [--seed 3] [--days 20]

#include <iostream>
#include <map>
#include <memory>

#include "energy/slotted_ewma_predictor.hpp"
#include "energy/solar_source.hpp"
#include "energy/storage.hpp"
#include "exp/report.hpp"
#include "proc/frequency_table.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "sim/stats_observer.hpp"
#include "sim/trace.hpp"
#include "task/releaser.hpp"
#include "util/args.hpp"

namespace {

using namespace eadvfs;

task::Task make_task(task::TaskId id, Time period, Work wcet) {
  task::Task t;
  t.id = id;
  t.period = period;
  t.relative_deadline = period;
  t.wcet = wcet;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("solar sensor node: per-task deadline statistics");
  args.add_option("capacity", "50", "energy storage capacity");
  args.add_option("seed", "3", "solar noise seed");
  args.add_option("days", "20", "number of ~691-unit solar cycles to simulate");
  if (!args.parse(argc, argv)) return 0;

  const task::TaskSet node_tasks({
      make_task(0, 10.0, 0.4),    // sense
      make_task(1, 30.0, 2.4),    // process
      make_task(2, 60.0, 4.5),    // radio
      make_task(3, 100.0, 1.0),   // health
  });
  const char* task_names[] = {"sense", "process", "radio", "health"};

  energy::SolarSourceConfig solar;
  solar.seed = static_cast<std::uint64_t>(args.integer("seed"));
  const double days = args.real("days");
  solar.horizon = days * 691.0;
  const auto source = std::make_shared<const energy::SolarSource>(solar);

  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  const Energy capacity = args.real("capacity");

  std::cout << "solar sensor node: " << node_tasks.describe() << "\n";
  std::cout << "storage capacity " << capacity << ", "
            << exp::fmt(days, 0) << " solar cycles ("
            << exp::fmt(solar.horizon, 0) << " time units)\n\n";

  exp::TextTable summary({"scheduler", "miss rate", "stall time", "switches",
                          "energy consumed"});
  for (const char* name : {"edf", "lsa", "greedy-dvfs", "ea-dvfs"}) {
    energy::EnergyStorage storage = energy::EnergyStorage::ideal(capacity);
    proc::Processor processor(table);
    energy::SlottedEwmaPredictor predictor(energy::SlottedEwmaConfig{});
    auto scheduler = sched::make_scheduler(name);
    sim::SimulationConfig cfg;
    cfg.horizon = solar.horizon;
    task::JobReleaser releaser(node_tasks, cfg.horizon);

    sim::StatsObserver per_task;
    sim::Engine engine(cfg, *source, storage, processor, predictor, *scheduler,
                       releaser);
    engine.observers().add(per_task);
    const sim::SimulationResult result = engine.run();

    std::cout << "--- " << scheduler->name() << " ---\n";
    for (const auto& [task_id, stats] : per_task.per_task()) {
      std::cout << "  " << task_names[task_id] << ": " << stats.missed << "/"
                << stats.released << " missed ("
                << exp::fmt(100.0 * stats.miss_rate(), 2)
                << "%), mean response " << exp::fmt(stats.response_time.mean(), 2)
                << "\n";
    }
    std::cout << "\n";
    summary.add_row({scheduler->name(), exp::fmt(result.miss_rate(), 4),
                     exp::fmt(result.stall_time, 1),
                     std::to_string(result.frequency_switches),
                     exp::fmt(result.consumed, 1)});
  }

  std::cout << summary.render();
  std::cout << "\nWith a small storage, EA-DVFS rides the night out at reduced\n"
               "speed and misses nothing; EDF burns the bank early and stalls,\n"
               "LSA procrastinates but still pays full power, and the greedy\n"
               "stretcher starves the short sense/process jobs outright.\n";
  return 0;
}
