#include "energy/storage.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/types.hpp"

namespace eadvfs::energy {
namespace {

TEST(EnergyStorage, StartsFullByDefault) {
  const EnergyStorage s = EnergyStorage::ideal(100.0);
  EXPECT_DOUBLE_EQ(s.capacity(), 100.0);
  EXPECT_DOUBLE_EQ(s.level(), 100.0);
  EXPECT_TRUE(s.full());
  EXPECT_FALSE(s.empty());
}

TEST(EnergyStorage, ExplicitInitialLevel) {
  StorageConfig cfg;
  cfg.capacity = 100.0;
  cfg.initial = 25.0;
  EnergyStorage s(cfg);
  EXPECT_DOUBLE_EQ(s.level(), 25.0);
  EXPECT_DOUBLE_EQ(s.initial_level(), 25.0);
}

TEST(EnergyStorage, ChargeWithinHeadroomStoresEverything) {
  StorageConfig cfg;
  cfg.capacity = 100.0;
  cfg.initial = 10.0;
  EnergyStorage s(cfg);
  EXPECT_DOUBLE_EQ(s.charge(30.0), 0.0);
  EXPECT_DOUBLE_EQ(s.level(), 40.0);
}

TEST(EnergyStorage, OverflowIsDiscardedAndReported) {
  StorageConfig cfg;
  cfg.capacity = 100.0;
  cfg.initial = 90.0;
  EnergyStorage s(cfg);
  EXPECT_DOUBLE_EQ(s.charge(30.0), 20.0);  // paper ineq. (1): E_C <= C
  EXPECT_DOUBLE_EQ(s.level(), 100.0);
  EXPECT_DOUBLE_EQ(s.total_overflow(), 20.0);
}

TEST(EnergyStorage, DischargeReducesLevel) {
  EnergyStorage s = EnergyStorage::ideal(100.0);
  s.discharge(40.0);
  EXPECT_DOUBLE_EQ(s.level(), 60.0);
  EXPECT_DOUBLE_EQ(s.total_discharged(), 40.0);
}

TEST(EnergyStorage, DischargeToExactlyZero) {
  EnergyStorage s = EnergyStorage::ideal(50.0);
  s.discharge(50.0);
  EXPECT_DOUBLE_EQ(s.level(), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(EnergyStorage, OverdrawThrows) {
  EnergyStorage s = EnergyStorage::ideal(50.0);
  EXPECT_THROW(s.discharge(50.1), std::logic_error);  // paper ineq. (3)
}

TEST(EnergyStorage, EpsilonOverdrawIsForgiven) {
  // The engine computes crossing instants in floating point; dust-level
  // overdraw must clamp to zero, not abort the simulation.
  EnergyStorage s = EnergyStorage::ideal(50.0);
  s.discharge(50.0 + 1e-9);
  EXPECT_DOUBLE_EQ(s.level(), 0.0);
}

TEST(EnergyStorage, NegativeAmountsRejected) {
  EnergyStorage s = EnergyStorage::ideal(50.0);
  EXPECT_THROW((void)s.charge(-1.0), std::invalid_argument);
  EXPECT_THROW(s.discharge(-1.0), std::invalid_argument);
  EXPECT_THROW(s.leak(-1.0), std::invalid_argument);
}

TEST(EnergyStorage, AccountingBalances) {
  StorageConfig cfg;
  cfg.capacity = 100.0;
  cfg.initial = 50.0;
  EnergyStorage s(cfg);
  s.charge(70.0);    // 50 stored, 20 overflow
  s.discharge(30.0); // level 70
  s.charge(10.0);    // level 80
  EXPECT_DOUBLE_EQ(s.level(), 80.0);
  // initial + charged - discharged == level  (paper ineq. 4 with equality
  // for an ideal storage)
  EXPECT_DOUBLE_EQ(s.initial_level() + s.total_charged() - s.total_discharged(),
                   s.level());
  EXPECT_DOUBLE_EQ(s.total_overflow(), 20.0);
}

TEST(EnergyStorage, ChargeEfficiencyLosesEnergy) {
  StorageConfig cfg;
  cfg.capacity = 100.0;
  cfg.initial = 0.0;
  cfg.charge_efficiency = 0.8;
  EnergyStorage s(cfg);
  const Energy overflow = s.charge(50.0);
  EXPECT_DOUBLE_EQ(s.level(), 40.0);
  EXPECT_DOUBLE_EQ(overflow, 10.0);  // conversion loss counted as overflow
}

TEST(EnergyStorage, LeakageDrainsOverTime) {
  StorageConfig cfg;
  cfg.capacity = 100.0;
  cfg.initial = 10.0;
  cfg.leakage = 2.0;
  EnergyStorage s(cfg);
  s.leak(3.0);
  EXPECT_DOUBLE_EQ(s.level(), 4.0);
  EXPECT_DOUBLE_EQ(s.total_leaked(), 6.0);
  s.leak(10.0);  // clamps at empty
  EXPECT_DOUBLE_EQ(s.level(), 0.0);
  EXPECT_DOUBLE_EQ(s.total_leaked(), 10.0);
}

TEST(EnergyStorage, LeakIsNoopForIdealModel) {
  EnergyStorage s = EnergyStorage::ideal(100.0);
  s.leak(1000.0);
  EXPECT_DOUBLE_EQ(s.level(), 100.0);
  EXPECT_DOUBLE_EQ(s.total_leaked(), 0.0);
}

TEST(EnergyStorage, HugeCapacityActsInfinite) {
  StorageConfig cfg;
  cfg.capacity = kHuge;
  cfg.initial = 1e12;
  EnergyStorage s(cfg);
  EXPECT_DOUBLE_EQ(s.charge(1e9), 0.0);
  EXPECT_FALSE(s.full());
}

TEST(EnergyStorage, ConfigValidation) {
  StorageConfig cfg;
  cfg.capacity = 0.0;
  EXPECT_THROW(EnergyStorage{cfg}, std::invalid_argument);
  cfg = StorageConfig{};
  cfg.initial = 200.0;
  cfg.capacity = 100.0;
  EXPECT_THROW(EnergyStorage{cfg}, std::invalid_argument);
  cfg = StorageConfig{};
  cfg.charge_efficiency = 0.0;
  EXPECT_THROW(EnergyStorage{cfg}, std::invalid_argument);
  cfg = StorageConfig{};
  cfg.charge_efficiency = 1.5;
  EXPECT_THROW(EnergyStorage{cfg}, std::invalid_argument);
  cfg = StorageConfig{};
  cfg.leakage = -1.0;
  EXPECT_THROW(EnergyStorage{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace eadvfs::energy
