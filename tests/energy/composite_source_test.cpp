#include "energy/composite_source.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "energy/two_mode_source.hpp"

namespace eadvfs::energy {
namespace {

std::shared_ptr<const EnergySource> constant(Power p) {
  return std::make_shared<ConstantSource>(p);
}

std::shared_ptr<const EnergySource> two_mode() {
  TwoModeSourceConfig cfg;
  cfg.day_power = 4.0;
  cfg.night_power = 1.0;
  cfg.day_duration = 10.0;
  cfg.night_duration = 5.0;
  return std::make_shared<TwoModeSource>(cfg);
}

TEST(ScaledSource, ScalesPower) {
  ScaledSource src(constant(2.0), 1.5);
  EXPECT_DOUBLE_EQ(src.power_at(0.0), 3.0);
  EXPECT_DOUBLE_EQ(src.energy_between(0.0, 10.0), 30.0);
}

TEST(ScaledSource, ZeroFactorSilencesSource) {
  ScaledSource src(two_mode(), 0.0);
  EXPECT_DOUBLE_EQ(src.power_at(3.0), 0.0);
  EXPECT_DOUBLE_EQ(src.energy_between(0.0, 100.0), 0.0);
}

TEST(ScaledSource, PreservesPieceBoundaries) {
  ScaledSource src(two_mode(), 2.0);
  EXPECT_DOUBLE_EQ(src.piece_end(0.0), 10.0);
  EXPECT_DOUBLE_EQ(src.piece_end(12.0), 15.0);
}

TEST(ScaledSource, RejectsBadArguments) {
  EXPECT_THROW(ScaledSource(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW(ScaledSource(constant(1.0), -0.5), std::invalid_argument);
}

TEST(SumSource, AddsPower) {
  SumSource src(constant(1.0), two_mode());
  EXPECT_DOUBLE_EQ(src.power_at(0.0), 5.0);   // 1 + 4 (day)
  EXPECT_DOUBLE_EQ(src.power_at(12.0), 2.0);  // 1 + 1 (night)
}

TEST(SumSource, PieceEndIsEarliestBoundary) {
  SumSource src(constant(1.0), two_mode());
  EXPECT_DOUBLE_EQ(src.piece_end(0.0), 10.0);  // two-mode switches first
  SumSource both(two_mode(), two_mode());
  EXPECT_DOUBLE_EQ(both.piece_end(11.0), 15.0);
}

TEST(SumSource, IntegralIsSumOfIntegrals) {
  const auto a = constant(0.5);
  const auto b = two_mode();
  SumSource sum(a, b);
  EXPECT_NEAR(sum.energy_between(0.0, 30.0),
              a->energy_between(0.0, 30.0) + b->energy_between(0.0, 30.0),
              1e-9);
}

TEST(SumSource, RejectsNullInputs) {
  EXPECT_THROW(SumSource(nullptr, constant(1.0)), std::invalid_argument);
  EXPECT_THROW(SumSource(constant(1.0), nullptr), std::invalid_argument);
}

TEST(CompositeSource, NamesAreDescriptive) {
  ScaledSource scaled(constant(1.0), 2.0);
  EXPECT_NE(scaled.name().find("constant"), std::string::npos);
  SumSource sum(constant(1.0), constant(2.0));
  EXPECT_NE(sum.name().find("+"), std::string::npos);
}

TEST(CompositeSource, NestedComposition) {
  // 2 * (constant(1) + constant(0.5)) = 3 W.
  auto sum = std::make_shared<SumSource>(constant(1.0), constant(0.5));
  ScaledSource outer(sum, 2.0);
  EXPECT_DOUBLE_EQ(outer.power_at(7.0), 3.0);
  EXPECT_DOUBLE_EQ(outer.energy_between(0.0, 4.0), 12.0);
}

}  // namespace
}  // namespace eadvfs::energy
