#include "energy/trace_source.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace eadvfs::energy {
namespace {

std::vector<TracePoint> ramp() {
  return {{0.0, 1.0}, {10.0, 3.0}, {25.0, 0.5}};
}

TEST(TraceSource, LooksUpSegments) {
  TraceSource src(ramp(), TraceSource::EndBehavior::kHoldLast);
  EXPECT_DOUBLE_EQ(src.power_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(src.power_at(9.99), 1.0);
  EXPECT_DOUBLE_EQ(src.power_at(10.0), 3.0);
  EXPECT_DOUBLE_EQ(src.power_at(24.0), 3.0);
  EXPECT_DOUBLE_EQ(src.power_at(25.0), 0.5);
}

TEST(TraceSource, HoldLastExtendsForever) {
  TraceSource src(ramp(), TraceSource::EndBehavior::kHoldLast);
  EXPECT_DOUBLE_EQ(src.power_at(1e6), 0.5);
  EXPECT_GE(src.piece_end(30.0), 1e250);
}

TEST(TraceSource, WrapRepeats) {
  TraceSource src(ramp(), TraceSource::EndBehavior::kWrap, 40.0);
  EXPECT_DOUBLE_EQ(src.power_at(40.0), 1.0);   // wrapped to 0
  EXPECT_DOUBLE_EQ(src.power_at(50.0), 3.0);   // wrapped to 10
  EXPECT_DOUBLE_EQ(src.power_at(105.0), 0.5);  // wrapped to 25
}

TEST(TraceSource, WrapPieceEndAtTraceEnd) {
  TraceSource src(ramp(), TraceSource::EndBehavior::kWrap, 40.0);
  EXPECT_DOUBLE_EQ(src.piece_end(30.0), 40.0);
  EXPECT_DOUBLE_EQ(src.piece_end(41.0), 50.0);
}

TEST(TraceSource, PieceEndWithinTrace) {
  TraceSource src(ramp(), TraceSource::EndBehavior::kHoldLast);
  EXPECT_DOUBLE_EQ(src.piece_end(0.0), 10.0);
  EXPECT_DOUBLE_EQ(src.piece_end(12.0), 25.0);
}

TEST(TraceSource, ExactIntegral) {
  TraceSource src(ramp(), TraceSource::EndBehavior::kHoldLast);
  // [5, 30]: 5*1 + 15*3 + 5*0.5 = 52.5
  EXPECT_NEAR(src.energy_between(5.0, 30.0), 52.5, 1e-9);
}

TEST(TraceSource, ValidationRejectsBadTraces) {
  EXPECT_THROW(TraceSource({}, TraceSource::EndBehavior::kHoldLast),
               std::invalid_argument);
  EXPECT_THROW(
      TraceSource({{1.0, 2.0}}, TraceSource::EndBehavior::kHoldLast),
      std::invalid_argument);  // must start at 0
  EXPECT_THROW(TraceSource({{0.0, 1.0}, {0.0, 2.0}},
                           TraceSource::EndBehavior::kHoldLast),
               std::invalid_argument);  // non-increasing
  EXPECT_THROW(
      TraceSource({{0.0, -1.0}}, TraceSource::EndBehavior::kHoldLast),
      std::invalid_argument);  // negative power
  EXPECT_THROW(TraceSource(ramp(), TraceSource::EndBehavior::kWrap, 20.0),
               std::invalid_argument);  // duration inside trace
}

TEST(TraceSource, NegativeTimeThrows) {
  TraceSource src(ramp(), TraceSource::EndBehavior::kHoldLast);
  EXPECT_THROW((void)src.power_at(-0.1), std::invalid_argument);
}

TEST(TraceSource, LoadsCsvWithHeader) {
  const std::string path = ::testing::TempDir() + "/eadvfs_trace.csv";
  {
    std::ofstream f(path);
    f << "time,power\n0,1.5\n5,2.5\n12,0\n";
  }
  const TraceSource src = TraceSource::from_csv(path);
  EXPECT_EQ(src.size(), 3u);
  EXPECT_DOUBLE_EQ(src.power_at(2.0), 1.5);
  EXPECT_DOUBLE_EQ(src.power_at(6.0), 2.5);
  EXPECT_DOUBLE_EQ(src.power_at(20.0), 0.0);
  std::remove(path.c_str());
}

TEST(TraceSource, CsvWithMalformedBodyThrows) {
  const std::string path = ::testing::TempDir() + "/eadvfs_trace_bad.csv";
  {
    std::ofstream f(path);
    f << "0,1.5\n5,oops\n";
  }
  EXPECT_THROW((void)TraceSource::from_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceSource, CsvMissingColumnsThrows) {
  const std::string path = ::testing::TempDir() + "/eadvfs_trace_cols.csv";
  {
    std::ofstream f(path);
    f << "0\n";
  }
  EXPECT_THROW((void)TraceSource::from_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eadvfs::energy
