#include "energy/two_mode_source.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eadvfs::energy {
namespace {

TwoModeSourceConfig config(Power day = 8.0, Power night = 1.0, Time d = 100.0,
                           Time n = 50.0, Time phase = 0.0) {
  TwoModeSourceConfig cfg;
  cfg.day_power = day;
  cfg.night_power = night;
  cfg.day_duration = d;
  cfg.night_duration = n;
  cfg.phase = phase;
  return cfg;
}

TEST(TwoModeSource, DayThenNight) {
  TwoModeSource src(config());
  EXPECT_DOUBLE_EQ(src.power_at(0.0), 8.0);
  EXPECT_DOUBLE_EQ(src.power_at(99.9), 8.0);
  EXPECT_DOUBLE_EQ(src.power_at(100.0), 1.0);
  EXPECT_DOUBLE_EQ(src.power_at(149.9), 1.0);
}

TEST(TwoModeSource, RepeatsWithCycle) {
  TwoModeSource src(config());
  EXPECT_DOUBLE_EQ(src.cycle(), 150.0);
  EXPECT_DOUBLE_EQ(src.power_at(150.0), 8.0);
  EXPECT_DOUBLE_EQ(src.power_at(250.0), 1.0);
  EXPECT_DOUBLE_EQ(src.power_at(1500.0 + 42.0), src.power_at(42.0));
}

TEST(TwoModeSource, PieceEndAtModeBoundaries) {
  TwoModeSource src(config());
  EXPECT_DOUBLE_EQ(src.piece_end(0.0), 100.0);
  EXPECT_DOUBLE_EQ(src.piece_end(50.0), 100.0);
  EXPECT_DOUBLE_EQ(src.piece_end(100.0), 150.0);
  EXPECT_DOUBLE_EQ(src.piece_end(149.0), 150.0);
  EXPECT_DOUBLE_EQ(src.piece_end(150.0), 250.0);
}

TEST(TwoModeSource, PieceEndAlwaysAdvances) {
  TwoModeSource src(config());
  for (Time t : {0.0, 99.99999999999999, 100.0, 149.99999999999997, 150.0,
                 1234.5}) {
    EXPECT_GT(src.piece_end(t), t) << "at t=" << t;
  }
}

TEST(TwoModeSource, PhaseShiftsTheCycle) {
  TwoModeSource src(config(8.0, 1.0, 100.0, 50.0, /*phase=*/120.0));
  // t=0 maps to cycle offset 120, which is night.
  EXPECT_DOUBLE_EQ(src.power_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(src.power_at(30.0), 8.0);  // offset 150 -> wraps to 0: day
}

TEST(TwoModeSource, IntegralAcrossModeBoundary) {
  TwoModeSource src(config());
  // [90, 110]: 10 units of day at 8 plus 10 units of night at 1.
  EXPECT_NEAR(src.energy_between(90.0, 110.0), 90.0, 1e-9);
}

TEST(TwoModeSource, IntegralOverWholeCycles) {
  TwoModeSource src(config());
  const double per_cycle = 100.0 * 8.0 + 50.0 * 1.0;
  EXPECT_NEAR(src.energy_between(0.0, 450.0), 3.0 * per_cycle, 1e-9);
}

TEST(TwoModeSource, ZeroNightPowerModelsBlackout) {
  TwoModeSource src(config(5.0, 0.0));
  EXPECT_DOUBLE_EQ(src.power_at(120.0), 0.0);
  EXPECT_NEAR(src.energy_between(100.0, 150.0), 0.0, 1e-12);
}

TEST(TwoModeSource, RejectsBadConfig) {
  EXPECT_THROW(TwoModeSource(config(-1.0)), std::invalid_argument);
  EXPECT_THROW(TwoModeSource(config(1.0, -1.0)), std::invalid_argument);
  EXPECT_THROW(TwoModeSource(config(1.0, 1.0, 0.0)), std::invalid_argument);
  EXPECT_THROW(TwoModeSource(config(1.0, 1.0, 10.0, 0.0)), std::invalid_argument);
  EXPECT_THROW(TwoModeSource(config(1.0, 1.0, 10.0, 10.0, -5.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace eadvfs::energy
