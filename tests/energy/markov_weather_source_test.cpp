#include "energy/markov_weather_source.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

namespace eadvfs::energy {
namespace {

MarkovWeatherConfig small_config(std::uint64_t seed = 1) {
  MarkovWeatherConfig cfg;
  cfg.seed = seed;
  cfg.horizon = 3000.0;
  return cfg;
}

TEST(MarkovWeatherSource, PowerIsNonNegativeAndBounded) {
  MarkovWeatherSource src(small_config());
  for (Time t = 0.0; t < 3000.0; t += 2.3) {
    EXPECT_GE(src.power_at(t), 0.0);
    EXPECT_LE(src.power_at(t), 70.0);  // amplitude 10 * |N| well below 7 sigma
  }
}

TEST(MarkovWeatherSource, DeterministicForSeed) {
  MarkovWeatherSource a(small_config(5));
  MarkovWeatherSource b(small_config(5));
  for (Time t = 0.0; t < 1000.0; t += 1.0)
    EXPECT_DOUBLE_EQ(a.power_at(t), b.power_at(t));
}

TEST(MarkovWeatherSource, VisitsEveryState) {
  MarkovWeatherConfig cfg = small_config(7);
  cfg.horizon = 20'000.0;  // ~28 expected transitions: all states w.h.p.
  MarkovWeatherSource src(cfg);
  std::set<std::size_t> seen;
  for (Time t = 0.0; t < cfg.horizon; t += 1.0) seen.insert(src.state_at(t));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(MarkovWeatherSource, StatesPersist) {
  // With mean dwells of hundreds of units, consecutive samples should be in
  // the same state most of the time (that's the whole point of the model).
  MarkovWeatherSource src(small_config(9));
  int same = 0, total = 0;
  for (Time t = 1.0; t < 3000.0; t += 1.0, ++total)
    if (src.state_at(t) == src.state_at(t - 1.0)) ++same;
  EXPECT_GT(static_cast<double>(same) / total, 0.95);
}

TEST(MarkovWeatherSource, AttenuationOrdersStatePowers) {
  // Average power conditioned on the overcast state must be far below the
  // clear-state average.
  MarkovWeatherSource src(small_config(11));
  double clear_sum = 0.0, overcast_sum = 0.0;
  int clear_n = 0, overcast_n = 0;
  for (Time t = 0.0; t < 3000.0; t += 1.0) {
    if (src.state_at(t) == 0) {
      clear_sum += src.power_at(t);
      ++clear_n;
    } else if (src.state_at(t) == 2) {
      overcast_sum += src.power_at(t);
      ++overcast_n;
    }
  }
  ASSERT_GT(clear_n, 100);
  ASSERT_GT(overcast_n, 50);
  EXPECT_LT(overcast_sum / overcast_n, 0.35 * (clear_sum / clear_n));
}

TEST(MarkovWeatherSource, MeanAttenuationIsDwellWeighted) {
  MarkovWeatherSource src(small_config());
  // (1.0*400 + 0.35*200 + 0.08*120) / 720.
  EXPECT_NEAR(src.mean_attenuation(), (400.0 + 70.0 + 9.6) / 720.0, 1e-12);
}

TEST(MarkovWeatherSource, PieceEndAdvances) {
  MarkovWeatherSource src(small_config());
  for (Time t : {0.0, 0.5, 1.0, 689.9999999999999, 2999.0})
    EXPECT_GT(src.piece_end(t), t);
}

TEST(MarkovWeatherSource, NoiseCanBeDisabled) {
  MarkovWeatherConfig cfg = small_config();
  cfg.per_step_noise = false;
  cfg.states = {{"always", 1.0, 100.0}};
  MarkovWeatherSource src(cfg);
  // Without noise the source is the deterministic envelope scaled by E|N|.
  const double expected =
      10.0 * std::sqrt(2.0 / 3.14159265358979323846);  // at t=0, cos²=1
  EXPECT_NEAR(src.power_at(0.0), expected, 1e-9);
}

TEST(MarkovWeatherSource, SingleStateNeverTransitions) {
  MarkovWeatherConfig cfg = small_config();
  cfg.states = {{"only", 0.5, 10.0}};
  MarkovWeatherSource src(cfg);
  for (Time t = 0.0; t < 1000.0; t += 10.0) EXPECT_EQ(src.state_at(t), 0u);
}

TEST(MarkovWeatherSource, Validation) {
  MarkovWeatherConfig bad = small_config();
  bad.states.clear();
  EXPECT_THROW(MarkovWeatherSource{bad}, std::invalid_argument);
  bad = small_config();
  bad.states[0].attenuation = 1.5;
  EXPECT_THROW(MarkovWeatherSource{bad}, std::invalid_argument);
  bad = small_config();
  bad.states[0].mean_dwell = 0.0;
  EXPECT_THROW(MarkovWeatherSource{bad}, std::invalid_argument);
  bad = small_config();
  bad.step = 0.0;
  EXPECT_THROW(MarkovWeatherSource{bad}, std::invalid_argument);
  bad = small_config();
  bad.amplitude = -1.0;
  EXPECT_THROW(MarkovWeatherSource{bad}, std::invalid_argument);
}

TEST(MarkovWeatherSource, NegativeTimeThrows) {
  MarkovWeatherSource src(small_config());
  EXPECT_THROW((void)src.power_at(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace eadvfs::energy
