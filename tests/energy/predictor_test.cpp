#include "energy/predictor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "energy/two_mode_source.hpp"

namespace eadvfs::energy {
namespace {

TEST(OraclePredictor, MatchesSourceIntegralExactly) {
  TwoModeSourceConfig cfg;
  cfg.day_power = 4.0;
  cfg.night_power = 0.5;
  cfg.day_duration = 10.0;
  cfg.night_duration = 10.0;
  auto source = std::make_shared<TwoModeSource>(cfg);
  OraclePredictor oracle(source);
  EXPECT_DOUBLE_EQ(oracle.predict(0.0, 20.0), source->energy_between(0.0, 20.0));
  EXPECT_DOUBLE_EQ(oracle.predict(5.0, 35.0), source->energy_between(5.0, 35.0));
}

TEST(OraclePredictor, ObservationsDoNotChangePredictions) {
  auto source = std::make_shared<ConstantSource>(2.0);
  OraclePredictor oracle(source);
  const Energy before = oracle.predict(0.0, 10.0);
  oracle.observe(0.0, 5.0, 999.0);  // bogus observation must be ignored
  EXPECT_DOUBLE_EQ(oracle.predict(0.0, 10.0), before);
}

TEST(OraclePredictor, EmptyWindowPredictsZero) {
  auto source = std::make_shared<ConstantSource>(2.0);
  OraclePredictor oracle(source);
  EXPECT_DOUBLE_EQ(oracle.predict(7.0, 7.0), 0.0);
}

TEST(OraclePredictor, RejectsNullSourceAndReversedWindow) {
  EXPECT_THROW(OraclePredictor{nullptr}, std::invalid_argument);
  auto source = std::make_shared<ConstantSource>(1.0);
  OraclePredictor oracle(source);
  EXPECT_THROW((void)oracle.predict(5.0, 4.0), std::invalid_argument);
}

TEST(ConstantPredictor, LinearInWindow) {
  ConstantPredictor p(2.5);
  EXPECT_DOUBLE_EQ(p.predict(0.0, 4.0), 10.0);
  EXPECT_DOUBLE_EQ(p.predict(100.0, 104.0), 10.0);
}

TEST(ConstantPredictor, ZeroPowerIsFullyPessimistic) {
  ConstantPredictor p(0.0);
  EXPECT_DOUBLE_EQ(p.predict(0.0, 1e6), 0.0);
}

TEST(ConstantPredictor, IgnoresObservations) {
  ConstantPredictor p(1.0);
  p.observe(0.0, 10.0, 500.0);
  EXPECT_DOUBLE_EQ(p.predict(10.0, 20.0), 10.0);
}

TEST(ConstantPredictor, Validation) {
  EXPECT_THROW(ConstantPredictor{-1.0}, std::invalid_argument);
  ConstantPredictor p(1.0);
  EXPECT_THROW((void)p.predict(2.0, 1.0), std::invalid_argument);
}

TEST(Predictors, NamesAreStable) {
  auto source = std::make_shared<ConstantSource>(1.0);
  EXPECT_EQ(OraclePredictor(source).name(), "oracle");
  EXPECT_NE(ConstantPredictor(1.0).name().find("constant"), std::string::npos);
}

}  // namespace
}  // namespace eadvfs::energy
