#include "energy/slotted_ewma_predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace eadvfs::energy {
namespace {

SlottedEwmaConfig config(Time cycle = 100.0, std::size_t slots = 4,
                         double alpha = 0.5, Power prior = 0.0) {
  SlottedEwmaConfig cfg;
  cfg.cycle = cycle;
  cfg.slots = slots;
  cfg.alpha = alpha;
  cfg.prior = prior;
  return cfg;
}

TEST(SlottedEwma, PredictsPriorBeforeAnyObservation) {
  SlottedEwmaPredictor p(config(100.0, 4, 0.5, 2.0));
  EXPECT_DOUBLE_EQ(p.predict(0.0, 50.0), 100.0);
}

TEST(SlottedEwma, LearnsPerSlotPattern) {
  // Cycle 100, 4 slots of 25.  Feed two cycles of a square profile:
  // slots 0,1 at 8 W; slots 2,3 at 0 W.
  SlottedEwmaPredictor p(config());
  for (int cycle = 0; cycle < 2; ++cycle) {
    const Time base = 100.0 * cycle;
    p.observe(base, base + 50.0, 400.0);
    p.observe(base + 50.0, base + 100.0, 0.0);
  }
  EXPECT_NEAR(p.slot_estimate(0), 8.0, 1e-9);
  EXPECT_NEAR(p.slot_estimate(1), 8.0, 1e-9);
  EXPECT_NEAR(p.slot_estimate(2), 0.0, 1e-9);
  // Slot 3 of the second cycle is still pending (never finalized by a later
  // observation) but its partial data gives the same estimate.
  EXPECT_NEAR(p.slot_estimate(3), 0.0, 1e-9);
  // Prediction over the next day's first half.
  EXPECT_NEAR(p.predict(200.0, 250.0), 400.0, 1e-6);
  // And over its dark half.
  EXPECT_NEAR(p.predict(250.0, 300.0), 0.0, 1e-6);
}

TEST(SlottedEwma, EwmaBlendsCycles) {
  // Slot 0 sees 4 W in cycle 0, then 8 W in cycle 1, alpha = 0.5.
  SlottedEwmaPredictor p(config(100.0, 1, 0.5));
  p.observe(0.0, 100.0, 400.0);
  p.observe(100.0, 200.0, 800.0);
  p.observe(200.0, 201.0, 0.0);  // push past the boundary to finalize cycle 1
  // After cycle 0: 4.  After cycle 1: 0.5*8 + 0.5*4 = 6.
  EXPECT_NEAR(p.slot_estimate(0), 6.0, 1e-9);
}

TEST(SlottedEwma, FirstCycleUsesPartialObservations) {
  SlottedEwmaPredictor p(config(100.0, 4, 0.3, 1.0));
  p.observe(0.0, 10.0, 50.0);  // 5 W in the first 10 units of slot 0
  EXPECT_NEAR(p.slot_estimate(0), 5.0, 1e-9);
  // Unobserved slots still use the prior.
  EXPECT_DOUBLE_EQ(p.slot_estimate(2), 1.0);
}

TEST(SlottedEwma, PredictionCrossesCycleBoundary) {
  SlottedEwmaPredictor p(config(100.0, 2, 1.0));
  p.observe(0.0, 50.0, 100.0);   // slot 0: 2 W
  p.observe(50.0, 100.0, 300.0); // slot 1: 6 W
  p.observe(100.0, 101.0, 2.0);  // finalize slot 1
  // Window [175, 225]: 25 units of slot 1 (6 W) + 25 units of slot 0 (2 W).
  EXPECT_NEAR(p.predict(175.0, 225.0), 25.0 * 6.0 + 25.0 * 2.0, 1e-6);
}

TEST(SlottedEwma, ObservationSpanningManySlots) {
  SlottedEwmaPredictor p(config(100.0, 4, 1.0));
  // One observation across the whole cycle at uniform 3 W.
  p.observe(0.0, 100.0, 300.0);
  p.observe(100.0, 100.5, 1.5);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_NEAR(p.slot_estimate(s), 3.0, 1e-9);
}

TEST(SlottedEwma, ZeroLengthObservationIgnored) {
  SlottedEwmaPredictor p(config());
  p.observe(10.0, 10.0, 0.0);
  EXPECT_DOUBLE_EQ(p.predict(0.0, 100.0), 0.0);
}

TEST(SlottedEwma, BoundaryFloatingPointDoesNotHang) {
  // Regression: t sitting an ulp below a slot boundary used to make the
  // boundary walk compute a zero-length step and loop forever.
  SlottedEwmaConfig cfg = config(690.8, 24, 0.3);
  SlottedEwmaPredictor p(cfg);
  const double width = cfg.cycle / 24.0;
  const double boundary = width * 7.0;
  p.observe(0.0, std::nextafter(boundary, 0.0), 10.0);
  p.observe(std::nextafter(boundary, 0.0), boundary + 1.0, 1.0);
  (void)p.predict(std::nextafter(boundary, 0.0), boundary + 50.0);
  SUCCEED();
}

TEST(SlottedEwma, Validation) {
  EXPECT_THROW(SlottedEwmaPredictor(config(0.0)), std::invalid_argument);
  EXPECT_THROW(SlottedEwmaPredictor(config(100.0, 0)), std::invalid_argument);
  EXPECT_THROW(SlottedEwmaPredictor(config(100.0, 4, 0.0)), std::invalid_argument);
  EXPECT_THROW(SlottedEwmaPredictor(config(100.0, 4, 1.5)), std::invalid_argument);
  EXPECT_THROW(SlottedEwmaPredictor(config(100.0, 4, 0.5, -1.0)),
               std::invalid_argument);
  SlottedEwmaPredictor p(config());
  EXPECT_THROW(p.observe(1.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(p.observe(0.0, 1.0, -2.0), std::invalid_argument);
  EXPECT_THROW((void)p.predict(5.0, 4.0), std::invalid_argument);
}

TEST(SlottedEwma, NameIsStable) {
  EXPECT_EQ(SlottedEwmaPredictor(config()).name(), "slotted-ewma");
}

}  // namespace
}  // namespace eadvfs::energy
