#include "energy/persistence_predictor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eadvfs::energy {
namespace {

TEST(PersistencePredictor, ReturnsPriorBeforeObservations) {
  PersistencePredictor p(2.0);
  EXPECT_DOUBLE_EQ(p.predict(0.0, 5.0), 10.0);
}

TEST(PersistencePredictor, TracksLastObservation) {
  PersistencePredictor p;
  p.observe(0.0, 1.0, 3.0);   // 3 W
  EXPECT_DOUBLE_EQ(p.predict(1.0, 3.0), 6.0);
  p.observe(1.0, 2.0, 0.5);   // 0.5 W
  EXPECT_DOUBLE_EQ(p.predict(2.0, 4.0), 1.0);
}

TEST(PersistencePredictor, RawModeForgetsHistoryInstantly) {
  PersistencePredictor p(0.0, 0.0);
  p.observe(0.0, 100.0, 800.0);  // long 8 W stretch
  p.observe(100.0, 101.0, 0.0);  // one dark step
  EXPECT_DOUBLE_EQ(p.last_power(), 0.0);
}

TEST(PersistencePredictor, SmoothingBlendsObservations) {
  PersistencePredictor p(0.0, 0.5);
  p.observe(0.0, 1.0, 4.0);  // first observation seeds directly: 4 W
  EXPECT_DOUBLE_EQ(p.last_power(), 4.0);
  p.observe(1.0, 2.0, 0.0);  // 0.5*4 + 0.5*0 = 2
  EXPECT_DOUBLE_EQ(p.last_power(), 2.0);
}

TEST(PersistencePredictor, ZeroLengthObservationIgnored) {
  PersistencePredictor p(1.5);
  p.observe(3.0, 3.0, 0.0);
  EXPECT_DOUBLE_EQ(p.last_power(), 1.5);
}

TEST(PersistencePredictor, EmptyWindowPredictsZero) {
  PersistencePredictor p(5.0);
  EXPECT_DOUBLE_EQ(p.predict(7.0, 7.0), 0.0);
}

TEST(PersistencePredictor, Validation) {
  EXPECT_THROW(PersistencePredictor(-1.0), std::invalid_argument);
  EXPECT_THROW(PersistencePredictor(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(PersistencePredictor(0.0, -0.1), std::invalid_argument);
  PersistencePredictor p;
  EXPECT_THROW(p.observe(1.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(p.observe(0.0, 1.0, -1.0), std::invalid_argument);
  EXPECT_THROW((void)p.predict(2.0, 1.0), std::invalid_argument);
}

TEST(PersistencePredictor, NameIsStable) {
  EXPECT_EQ(PersistencePredictor().name(), "persistence");
}

}  // namespace
}  // namespace eadvfs::energy
