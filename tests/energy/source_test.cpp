#include "energy/source.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/types.hpp"

namespace eadvfs::energy {
namespace {

TEST(ConstantSource, PowerIsConstant) {
  ConstantSource src(0.5);
  EXPECT_DOUBLE_EQ(src.power_at(0.0), 0.5);
  EXPECT_DOUBLE_EQ(src.power_at(1234.5), 0.5);
}

TEST(ConstantSource, PieceNeverEnds) {
  ConstantSource src(1.0);
  EXPECT_GE(src.piece_end(0.0), 1e250);
  EXPECT_GE(src.piece_end(9999.0), 1e250);
}

TEST(ConstantSource, ExactIntegral) {
  ConstantSource src(0.5);
  // The paper's §2 example: harvest from 0 to 16 at 0.5 is 8.
  EXPECT_DOUBLE_EQ(src.energy_between(0.0, 16.0), 8.0);
  EXPECT_DOUBLE_EQ(src.energy_between(16.0, 21.0), 2.5);
}

TEST(ConstantSource, EmptyIntervalIsZero) {
  ConstantSource src(2.0);
  EXPECT_DOUBLE_EQ(src.energy_between(5.0, 5.0), 0.0);
}

TEST(ConstantSource, RejectsNegativePower) {
  EXPECT_THROW(ConstantSource(-0.1), std::invalid_argument);
}

TEST(ConstantSource, ZeroPowerAllowed) {
  ConstantSource src(0.0);
  EXPECT_DOUBLE_EQ(src.energy_between(0.0, 100.0), 0.0);
}

TEST(EnergySource, IntegralRejectsReversedInterval) {
  ConstantSource src(1.0);
  EXPECT_THROW((void)src.energy_between(2.0, 1.0), std::invalid_argument);
}

TEST(ConstantSource, NameMentionsPower) {
  ConstantSource src(0.5);
  EXPECT_NE(src.name().find("0.5"), std::string::npos);
}

/// A source whose piece_end fails to advance (deliberately broken) must be
/// detected by energy_between instead of hanging the caller.
class BrokenSource final : public EnergySource {
 public:
  [[nodiscard]] Power power_at(Time) const override { return 1.0; }
  [[nodiscard]] Time piece_end(Time t) const override { return t; }  // bug
  [[nodiscard]] std::string name() const override { return "broken"; }
};

TEST(EnergySource, NonAdvancingPieceEndThrowsInsteadOfHanging) {
  BrokenSource src;
  EXPECT_THROW((void)src.energy_between(0.0, 1.0), std::logic_error);
}

}  // namespace
}  // namespace eadvfs::energy
