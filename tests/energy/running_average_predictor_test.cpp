#include "energy/running_average_predictor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eadvfs::energy {
namespace {

TEST(RunningAveragePredictor, StartsAtPrior) {
  RunningAveragePredictor p(3.0, 1.0);
  EXPECT_DOUBLE_EQ(p.estimate(), 3.0);
  EXPECT_DOUBLE_EQ(p.predict(0.0, 10.0), 30.0);
}

TEST(RunningAveragePredictor, DefaultPriorIsZero) {
  RunningAveragePredictor p;
  EXPECT_DOUBLE_EQ(p.predict(0.0, 100.0), 0.0);
}

TEST(RunningAveragePredictor, ConvergesToObservedMean) {
  RunningAveragePredictor p(0.0, 1.0);
  // 1000 time units at 4 W dwarf the prior weight of 1.
  p.observe(0.0, 1000.0, 4000.0);
  EXPECT_NEAR(p.estimate(), 4.0, 0.01);
}

TEST(RunningAveragePredictor, BlendsPriorAndObservation) {
  RunningAveragePredictor p(2.0, 10.0);
  p.observe(0.0, 10.0, 60.0);  // observed mean 6 over weight 10
  // (2*10 + 60) / (10 + 10) = 4.
  EXPECT_DOUBLE_EQ(p.estimate(), 4.0);
}

TEST(RunningAveragePredictor, AccumulatesMultipleSegments) {
  RunningAveragePredictor p(0.0, 0.0);
  p.observe(0.0, 2.0, 2.0);   // 1 W
  p.observe(2.0, 4.0, 10.0);  // 5 W
  EXPECT_DOUBLE_EQ(p.estimate(), 3.0);
  EXPECT_DOUBLE_EQ(p.predict(4.0, 6.0), 6.0);
}

TEST(RunningAveragePredictor, ZeroLengthObservationIsHarmless) {
  RunningAveragePredictor p(1.0, 1.0);
  p.observe(5.0, 5.0, 0.0);
  EXPECT_DOUBLE_EQ(p.estimate(), 1.0);
}

TEST(RunningAveragePredictor, ZeroPriorWeightIgnoresPriorAfterFirstData) {
  RunningAveragePredictor p(100.0, 0.0);
  EXPECT_DOUBLE_EQ(p.estimate(), 100.0);  // nothing observed yet
  p.observe(0.0, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(p.estimate(), 2.0);
}

TEST(RunningAveragePredictor, Validation) {
  EXPECT_THROW(RunningAveragePredictor(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(RunningAveragePredictor(1.0, -1.0), std::invalid_argument);
  RunningAveragePredictor p;
  EXPECT_THROW(p.observe(1.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(p.observe(0.0, 1.0, -1.0), std::invalid_argument);
  EXPECT_THROW((void)p.predict(1.0, 0.0), std::invalid_argument);
}

TEST(RunningAveragePredictor, NameIsStable) {
  EXPECT_EQ(RunningAveragePredictor().name(), "running-average");
}

}  // namespace
}  // namespace eadvfs::energy
