#include "energy/solar_source.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace eadvfs::energy {
namespace {

SolarSourceConfig small_config(std::uint64_t seed = 1) {
  SolarSourceConfig cfg;
  cfg.seed = seed;
  cfg.horizon = 2000.0;
  return cfg;
}

TEST(SolarSource, PowerIsNonNegative) {
  SolarSource src(small_config());
  for (Time t = 0.0; t < 2000.0; t += 3.7) EXPECT_GE(src.power_at(t), 0.0);
}

TEST(SolarSource, PowerBoundedByAmplitudeTimesNoise) {
  // |N| beyond 6 sigma is essentially impossible in 2000 samples.
  SolarSource src(small_config());
  for (Time t = 0.0; t < 2000.0; t += 1.0) EXPECT_LE(src.power_at(t), 60.0);
}

TEST(SolarSource, ConstantWithinAStep) {
  SolarSource src(small_config());
  EXPECT_DOUBLE_EQ(src.power_at(10.0), src.power_at(10.25));
  EXPECT_DOUBLE_EQ(src.power_at(10.0), src.power_at(10.999));
}

TEST(SolarSource, PieceEndIsNextStepBoundary) {
  SolarSource src(small_config());
  EXPECT_DOUBLE_EQ(src.piece_end(10.0), 11.0);
  EXPECT_DOUBLE_EQ(src.piece_end(10.5), 11.0);
}

TEST(SolarSource, PieceEndAlwaysAdvances) {
  SolarSource src(small_config());
  // Including awkward floating-point instants near boundaries.
  for (Time t : {0.0, 0.9999999999999999, 1.0, 690.8, 345.39999999999998,
                 1999.9999999999998}) {
    EXPECT_GT(src.piece_end(t), t) << "at t=" << t;
  }
}

TEST(SolarSource, DeterministicForSeed) {
  SolarSource a(small_config(99));
  SolarSource b(small_config(99));
  for (Time t = 0.0; t < 500.0; t += 0.5)
    EXPECT_DOUBLE_EQ(a.power_at(t), b.power_at(t));
}

TEST(SolarSource, DifferentSeedsDiffer) {
  SolarSource a(small_config(1));
  SolarSource b(small_config(2));
  int diff = 0;
  for (Time t = 0.5; t < 100.0; t += 1.0)
    if (a.power_at(t) != b.power_at(t)) ++diff;
  EXPECT_GT(diff, 90);
}

TEST(SolarSource, MeanPowerMatchesAnalyticValue) {
  // Mean of eq. 13 with |N|: 10 * sqrt(2/pi) / 2 ≈ 3.989.  Average over many
  // full envelope cycles to kill the cos² systematic.
  SolarSourceConfig cfg;
  cfg.seed = 5;
  cfg.horizon = 20'000.0;
  SolarSource src(cfg);
  const Time span = 14.0 * src.cycle_period();  // whole cycles only
  const double mean = src.energy_between(0.0, span) / span;
  EXPECT_NEAR(mean, SolarSource::analytic_mean_power(), 0.15);
}

TEST(SolarSource, AnalyticMeanFormula) {
  EXPECT_NEAR(SolarSource::analytic_mean_power(10.0),
              10.0 * std::sqrt(2.0 / 3.14159265358979) * 0.5, 1e-9);
}

TEST(SolarSource, CyclePeriodIs70PiSquared) {
  SolarSource src(small_config());
  EXPECT_NEAR(src.cycle_period(), 70.0 * 3.14159265358979 * 3.14159265358979,
              1e-6);
}

TEST(SolarSource, EnvelopeCreatesTroughs) {
  // Near t = cycle/2 the cos² envelope is ~0, so power must be tiny there
  // regardless of noise; near t = 0 it is ~1.
  SolarSourceConfig cfg = small_config(3);
  SolarSource src(cfg);
  const Time half = src.cycle_period() / 2.0;
  double trough_sum = 0.0, peak_sum = 0.0;
  for (int i = 0; i < 20; ++i) {
    trough_sum += src.power_at(half - 10.0 + i);
    peak_sum += src.power_at(static_cast<double>(i));
  }
  EXPECT_LT(trough_sum, peak_sum * 0.1);
}

TEST(SolarSource, WrapsBeyondPresampledHorizon) {
  SolarSource src(small_config(7));
  EXPECT_DOUBLE_EQ(src.power_at(0.5), src.power_at(2000.5));
}

TEST(SolarSource, RejectsBadConfig) {
  SolarSourceConfig bad;
  bad.amplitude = -1.0;
  EXPECT_THROW(SolarSource{bad}, std::invalid_argument);
  bad = SolarSourceConfig{};
  bad.step = 0.0;
  EXPECT_THROW(SolarSource{bad}, std::invalid_argument);
  bad = SolarSourceConfig{};
  bad.horizon = 0.5;  // shorter than one step
  EXPECT_THROW(SolarSource{bad}, std::invalid_argument);
  bad = SolarSourceConfig{};
  bad.cos_divisor = 0.0;
  EXPECT_THROW(SolarSource{bad}, std::invalid_argument);
}

TEST(SolarSource, NegativeTimeThrows) {
  SolarSource src(small_config());
  EXPECT_THROW((void)src.power_at(-1.0), std::invalid_argument);
}

TEST(SolarSource, IntegralMatchesManualStepSum) {
  SolarSource src(small_config(11));
  double manual = 0.0;
  for (int k = 10; k < 20; ++k)
    manual += src.power_at(static_cast<double>(k));
  EXPECT_NEAR(src.energy_between(10.0, 20.0), manual, 1e-9);
}

TEST(SolarSource, IntegralHandlesPartialSteps) {
  SolarSource src(small_config(13));
  const double full = src.energy_between(10.0, 11.0);
  const double halves =
      src.energy_between(10.0, 10.5) + src.energy_between(10.5, 11.0);
  EXPECT_NEAR(full, halves, 1e-12);
}

}  // namespace
}  // namespace eadvfs::energy
