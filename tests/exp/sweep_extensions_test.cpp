/// Tests for the experiment-harness extensions beyond the paper's setup:
/// custom frequency tables, switch overheads, execution-time models in the
/// miss-rate sweep, and the explicit-storage run variant.

#include <gtest/gtest.h>

#include <memory>

#include "energy/solar_source.hpp"
#include "exp/miss_rate_sweep.hpp"
#include "exp/setup.hpp"
#include "sched/factory.hpp"
#include "task/generator.hpp"
#include "util/rng.hpp"

namespace eadvfs::exp {
namespace {

MissRateSweepConfig small_config() {
  MissRateSweepConfig cfg;
  cfg.capacities = {60.0};
  cfg.schedulers = {"lsa", "ea-dvfs"};
  cfg.n_task_sets = 4;
  cfg.sim.horizon = 600.0;
  cfg.solar.horizon = 600.0;
  cfg.generator.target_utilization = 0.5;
  return cfg;
}

TEST(SweepExtensions, CustomFrequencyTableIsUsed) {
  // With a 2-point table EA-DVFS has far fewer stretch options; switch
  // counts and outcomes must differ from the 5-point default.
  auto base = small_config();
  const auto with_xscale = run_miss_rate_sweep(base);
  auto cfg = small_config();
  cfg.table = proc::FrequencyTable::two_speed(3.2);
  const auto with_two_speed = run_miss_rate_sweep(cfg);
  // LSA runs only at f_max: same miss rates (same max point, same power).
  EXPECT_DOUBLE_EQ(with_xscale.cell("lsa", 60.0).miss_rate.mean(),
                   with_two_speed.cell("lsa", 60.0).miss_rate.mean());
  // EA-DVFS must behave differently on a different menu.
  EXPECT_NE(with_xscale.cell("ea-dvfs", 60.0).busy_time.mean(),
            with_two_speed.cell("ea-dvfs", 60.0).busy_time.mean());
}

TEST(SweepExtensions, SwitchOverheadRaisesMissRates) {
  auto cheap = small_config();
  const auto free_switching = run_miss_rate_sweep(cheap);
  auto costly = small_config();
  costly.overhead = {0.5, 1.0};
  const auto paid_switching = run_miss_rate_sweep(costly);
  EXPECT_GE(paid_switching.cell("ea-dvfs", 60.0).miss_rate.mean(),
            free_switching.cell("ea-dvfs", 60.0).miss_rate.mean());
}

TEST(SweepExtensions, ExecutionModelReducesDemand) {
  auto full = small_config();
  const auto wcet_runs = run_miss_rate_sweep(full);
  auto early = small_config();
  early.execution.bcet_fraction = 0.25;
  const auto early_runs = run_miss_rate_sweep(early);
  // Less actual work -> less busy time and no more misses on average.
  EXPECT_LT(early_runs.cell("ea-dvfs", 60.0).busy_time.mean(),
            wcet_runs.cell("ea-dvfs", 60.0).busy_time.mean());
  EXPECT_LE(early_runs.cell("ea-dvfs", 60.0).miss_rate.mean(),
            wcet_runs.cell("ea-dvfs", 60.0).miss_rate.mean() + 1e-9);
}

TEST(RunOnceWithStorage, AppliesNonIdealities) {
  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = 0.4;
  task::TaskSetGenerator gen(gen_cfg);
  util::Xoshiro256ss rng(5);
  const task::TaskSet set = gen.generate(rng);
  energy::SolarSourceConfig solar;
  solar.seed = 5;
  solar.horizon = 600.0;
  const auto source = std::make_shared<const energy::SolarSource>(solar);
  sim::SimulationConfig cfg;
  cfg.horizon = 600.0;
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();

  auto run_with = [&](double efficiency, Power leakage) {
    energy::StorageConfig storage;
    storage.capacity = 80.0;
    storage.charge_efficiency = efficiency;
    storage.leakage = leakage;
    const auto scheduler = sched::make_scheduler("ea-dvfs");
    return run_once_with_storage(cfg, source, storage, table, *scheduler,
                                 "slotted-ewma", set);
  };
  const auto ideal = run_with(1.0, 0.0);
  const auto lossy = run_with(0.7, 0.1);
  EXPECT_GT(lossy.leaked, 0.0);
  EXPECT_DOUBLE_EQ(ideal.leaked, 0.0);
  EXPECT_LT(ideal.conservation_error(), 1e-5);
  EXPECT_LT(lossy.conservation_error(), 1e-5);
  // A lossy storage can only make things (weakly) worse.
  EXPECT_GE(lossy.jobs_missed, ideal.jobs_missed);
}

TEST(RunOnceWithStorage, PartialInitialCharge) {
  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = 0.3;
  task::TaskSetGenerator gen(gen_cfg);
  util::Xoshiro256ss rng(9);
  const task::TaskSet set = gen.generate(rng);
  const auto source = std::make_shared<const energy::ConstantSource>(0.0);
  sim::SimulationConfig cfg;
  cfg.horizon = 50.0;
  energy::StorageConfig storage;
  storage.capacity = 100.0;
  storage.initial = 5.0;
  const auto scheduler = sched::make_scheduler("edf");
  const auto result =
      run_once_with_storage(cfg, source, storage, proc::FrequencyTable::xscale(),
                            *scheduler, "pessimistic", set);
  EXPECT_DOUBLE_EQ(result.storage_initial, 5.0);
  EXPECT_LE(result.consumed, 5.0 + 1e-9);  // dark source: only the bank
}

}  // namespace
}  // namespace eadvfs::exp
