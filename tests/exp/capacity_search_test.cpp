#include "exp/capacity_search.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "exp/setup.hpp"
#include "sched/factory.hpp"
#include "task/generator.hpp"
#include "util/rng.hpp"

namespace eadvfs::exp {
namespace {

CapacitySearchConfig small_config(double u = 0.4) {
  CapacitySearchConfig cfg;
  cfg.n_task_sets = 3;
  cfg.capacity_hi = 5000.0;
  cfg.sim.horizon = 800.0;
  cfg.solar.horizon = 800.0;
  cfg.generator.target_utilization = u;
  return cfg;
}

task::TaskSet one_set(double u, std::uint64_t seed) {
  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = u;
  task::TaskSetGenerator gen(gen_cfg);
  util::Xoshiro256ss rng(seed);
  return gen.generate(rng);
}

std::shared_ptr<const energy::EnergySource> solar(std::uint64_t seed) {
  energy::SolarSourceConfig cfg;
  cfg.seed = seed;
  cfg.horizon = 800.0;
  return std::make_shared<const energy::SolarSource>(cfg);
}

TEST(FindMinCapacity, FoundCapacityAchievesZeroMiss) {
  const auto cfg = small_config();
  const auto set = one_set(0.4, 11);
  const auto source = solar(11);
  const double cmin = find_min_capacity(cfg, "ea-dvfs", set, source);
  ASSERT_GT(cmin, 0.0);
  // Verify: running at cmin is zero-miss...
  const auto scheduler = sched::make_scheduler("ea-dvfs");
  const auto at_cmin = run_once(cfg.sim, source, cmin,
                                proc::FrequencyTable::xscale(), *scheduler,
                                cfg.predictor, set);
  EXPECT_EQ(at_cmin.jobs_missed, 0u);
}

TEST(FindMinCapacity, SlightlySmallerCapacityMisses) {
  const auto cfg = small_config();
  const auto set = one_set(0.4, 11);
  const auto source = solar(11);
  const double cmin = find_min_capacity(cfg, "lsa", set, source);
  ASSERT_GT(cmin, cfg.capacity_lo * 1.5);  // non-trivial search
  const auto scheduler = sched::make_scheduler("lsa");
  const auto below = run_once(cfg.sim, source, cmin * 0.9,
                              proc::FrequencyTable::xscale(), *scheduler,
                              cfg.predictor, set);
  EXPECT_GT(below.jobs_missed, 0u);
}

TEST(FindMinCapacity, InfeasibleWorkloadReturnsNegative) {
  auto cfg = small_config();
  cfg.capacity_hi = 2.0;  // absurdly small bracket
  const auto set = one_set(0.8, 13);
  const double cmin = find_min_capacity(cfg, "lsa", set, solar(13));
  EXPECT_LT(cmin, 0.0);
}

TEST(RunCapacitySearch, ProducesStatsForBothSchedulers) {
  const auto result = run_capacity_search(small_config());
  ASSERT_EQ(result.cmin.size(), 2u);
  EXPECT_EQ(result.sets_evaluated + result.sets_skipped, 3u);
  if (result.sets_evaluated > 0) {
    EXPECT_GT(result.cmin[0].mean(), 0.0);
    EXPECT_GT(result.cmin[1].mean(), 0.0);
  }
}

TEST(RunCapacitySearch, LsaNeedsAtLeastAsMuchStorage) {
  // Paper Table 1: the ratio is >= 1 at every utilization.
  const auto result = run_capacity_search(small_config(0.4));
  if (result.sets_evaluated > 0) {
    EXPECT_GE(result.ratio_of_means(), 0.95);
    EXPECT_GE(result.ratio_first_over_second.mean(), 0.95);
  }
}

TEST(RunCapacitySearch, Deterministic) {
  const auto a = run_capacity_search(small_config());
  const auto b = run_capacity_search(small_config());
  EXPECT_EQ(a.sets_evaluated, b.sets_evaluated);
  if (a.sets_evaluated > 0) {
    EXPECT_DOUBLE_EQ(a.cmin[0].mean(), b.cmin[0].mean());
  }
}

TEST(RunCapacitySearch, Validation) {
  auto cfg = small_config();
  cfg.schedulers.clear();
  EXPECT_THROW((void)run_capacity_search(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.capacity_lo = 0.0;
  EXPECT_THROW((void)run_capacity_search(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.capacity_hi = cfg.capacity_lo;
  EXPECT_THROW((void)run_capacity_search(cfg), std::invalid_argument);
}

TEST(RatioOfMeans, EmptyIsZero) {
  CapacitySearchResult empty;
  EXPECT_DOUBLE_EQ(empty.ratio_of_means(), 0.0);
}

}  // namespace
}  // namespace eadvfs::exp
