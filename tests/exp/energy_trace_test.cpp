#include "exp/energy_trace_experiment.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eadvfs::exp {
namespace {

EnergyTraceConfig small_config() {
  EnergyTraceConfig cfg;
  cfg.capacities = {50.0, 150.0};
  cfg.schedulers = {"lsa", "ea-dvfs"};
  cfg.n_task_sets = 3;
  cfg.sample_interval = 100.0;
  cfg.sim.horizon = 600.0;
  cfg.solar.horizon = 600.0;
  cfg.generator.target_utilization = 0.4;
  return cfg;
}

TEST(EnergyTrace, OneCurvePerScheduler) {
  const auto result = run_energy_trace(small_config());
  ASSERT_EQ(result.curves.size(), 2u);
  EXPECT_EQ(result.curves[0].scheduler, "lsa");
  EXPECT_EQ(result.curves[1].scheduler, "ea-dvfs");
}

TEST(EnergyTrace, GridMatchesHorizonAndInterval) {
  const auto result = run_energy_trace(small_config());
  const auto& curve = result.curves[0];
  ASSERT_EQ(curve.times.size(), 7u);  // 0, 100, ..., 600
  EXPECT_DOUBLE_EQ(curve.times.front(), 0.0);
  EXPECT_DOUBLE_EQ(curve.times.back(), 600.0);
  EXPECT_EQ(curve.mean_normalized_level.size(), curve.times.size());
  EXPECT_EQ(curve.ci95.size(), curve.times.size());
}

TEST(EnergyTrace, StartsAtFullStorage) {
  const auto result = run_energy_trace(small_config());
  for (const auto& curve : result.curves)
    EXPECT_NEAR(curve.mean_normalized_level[0], 1.0, 1e-9);
}

TEST(EnergyTrace, LevelsAreNormalized) {
  const auto result = run_energy_trace(small_config());
  for (const auto& curve : result.curves) {
    for (double level : curve.mean_normalized_level) {
      EXPECT_GE(level, -1e-9);
      EXPECT_LE(level, 1.0 + 1e-9);
    }
  }
}

TEST(EnergyTrace, CurveLookup) {
  const auto result = run_energy_trace(small_config());
  EXPECT_EQ(result.curve("lsa").scheduler, "lsa");
  EXPECT_THROW((void)result.curve("edf"), std::out_of_range);
}

TEST(EnergyTrace, Deterministic) {
  const auto a = run_energy_trace(small_config());
  const auto b = run_energy_trace(small_config());
  for (std::size_t i = 0; i < a.curves[0].mean_normalized_level.size(); ++i)
    EXPECT_DOUBLE_EQ(a.curves[0].mean_normalized_level[i],
                     b.curves[0].mean_normalized_level[i]);
}

TEST(EnergyTrace, RejectsEmptyAxes) {
  auto cfg = small_config();
  cfg.schedulers.clear();
  EXPECT_THROW((void)run_energy_trace(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace eadvfs::exp
