#include "exp/fleet/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/fleet/artifact.hpp"
#include "exp/fleet/spec.hpp"
#include "util/rng.hpp"

namespace eadvfs::exp::fleet {
namespace {

namespace fs = std::filesystem;

// Small but non-trivial population: 23 devices over 5 shards (the last one
// short), short horizon so the whole fleet simulates in well under a second.
FleetSpec small_spec() {
  FleetSpec spec;
  spec.name = "test-fleet";
  spec.devices = 23;
  spec.shard_size = 5;
  spec.seed = 7;
  spec.horizon = 150.0;
  spec.schedulers = {"lsa", "ea-dvfs"};
  spec.predictors = {"slotted-ewma", "pessimistic"};
  spec.tasks = IntRange{2, 4};
  spec.utilization = RealRange{0.2, 0.6};
  spec.capacity = RealRange{25.0, 200.0};
  spec.panel_scale = RealRange{0.8, 1.5};
  spec.hist_bins = 10;
  return spec;
}

class FleetRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("eadvfs_fleet_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string slurp(const std::string& path) const {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  std::string dir_;
};

// --- spec ------------------------------------------------------------------

TEST(FleetSpec, DefaultsValidateAndShardCeilingDivision) {
  FleetSpec spec;
  EXPECT_NO_THROW(spec.validate());
  spec.devices = 23;
  spec.shard_size = 5;
  EXPECT_EQ(spec.shards(), 5u);
  EXPECT_EQ(spec.shard_begin(4), 20u);
  EXPECT_EQ(spec.shard_end(4), 23u);  // short last shard
}

TEST(FleetSpec, ValidateRejectsUnknownSchedulerWithSuggestion) {
  FleetSpec spec;
  spec.schedulers = {"ea-dfvs"};  // transposed
  try {
    spec.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("ea-dvfs"), std::string::npos)
        << error.what();
  }
}

TEST(FleetSpec, ParseJsonAppliesKeysAndRejectsUnknownOnes) {
  const FleetSpec spec = FleetSpec::parse_json(
      R"({"name": "pilot", "devices": 1000, "shard_size": 100,
          "seed": 9, "schedulers": ["lsa"], "tasks": [2, 6],
          "capacity": [10.0, 100.0], "fault_profiles": ["blackout:duty=0.3"],
          "fault_fraction": 0.25})");
  EXPECT_EQ(spec.name, "pilot");
  EXPECT_EQ(spec.devices, 1000u);
  EXPECT_EQ(spec.shards(), 10u);
  EXPECT_EQ(spec.schedulers, std::vector<std::string>{"lsa"});
  EXPECT_EQ(spec.tasks.lo, 2u);
  EXPECT_EQ(spec.tasks.hi, 6u);
  EXPECT_DOUBLE_EQ(spec.fault_fraction, 0.25);

  try {
    (void)FleetSpec::parse_json(R"({"shard_sise": 10})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("shard_size"), std::string::npos)
        << error.what();
  }
}

TEST(FleetSpec, CanonicalDescriptionCoversDeterminismRelevantFields) {
  FleetSpec a = small_spec();
  FleetSpec b = small_spec();
  EXPECT_EQ(a.canonical_description(), b.canonical_description());
  b.seed = 8;
  EXPECT_NE(a.canonical_description(), b.canonical_description());
  b = small_spec();
  b.shard_size = 6;  // resharding changes journal rows → must re-fingerprint
  EXPECT_NE(a.canonical_description(), b.canonical_description());
}

TEST(FleetSpec, FaultDrawIsAlwaysConsumedSoSamplesAreStreamStable) {
  FleetSpec without = small_spec();
  FleetSpec with = small_spec();
  with.fault_profiles = {"blackout"};
  with.fault_fraction = 1.0;
  util::Xoshiro256ss rng_a(123);
  util::Xoshiro256ss rng_b(123);
  const DeviceSample a = sample_device(without, rng_a);
  const DeviceSample b = sample_device(with, rng_b);
  // Turning faults on must not shift any other per-device draw.
  EXPECT_EQ(a.scheduler, b.scheduler);
  EXPECT_EQ(a.predictor, b.predictor);
  EXPECT_EQ(a.n_tasks, b.n_tasks);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  EXPECT_DOUBLE_EQ(a.capacity, b.capacity);
  EXPECT_DOUBLE_EQ(a.panel_scale, b.panel_scale);
  EXPECT_EQ(a.fault, DeviceSample::kNoFault);
  EXPECT_EQ(b.fault, 0u);
}

// --- artifact --------------------------------------------------------------

FleetArtifact tiny_artifact() {
  FleetArtifact artifact;
  artifact.spec = "fleet;name=tiny";
  artifact.fingerprint = 0xdeadbeefcafef00dULL;
  artifact.devices = 6;
  artifact.shards = 3;
  artifact.hist_lo = 0.0;
  artifact.hist_hi = 1.0;
  artifact.hist_bins = 2;
  artifact.columns = {"devices", "miss_rate.mean"};
  artifact.data = {{2.0, 2.0, 2.0}, {0.125, 0.25, 1e-300}};
  return artifact;
}

TEST(FleetArtifact, SerializeDeserializeRoundTripsExactly) {
  const FleetArtifact artifact = tiny_artifact();
  const std::string bytes = artifact.serialize();
  const FleetArtifact back = FleetArtifact::deserialize(bytes);
  EXPECT_EQ(back.spec, artifact.spec);
  EXPECT_EQ(back.fingerprint, artifact.fingerprint);
  EXPECT_EQ(back.devices, artifact.devices);
  EXPECT_EQ(back.shards, artifact.shards);
  EXPECT_EQ(back.hist_bins, artifact.hist_bins);
  EXPECT_EQ(back.columns, artifact.columns);
  EXPECT_EQ(back.data, artifact.data);  // bit-exact, including 1e-300
  // Re-serializing the parsed artifact reproduces the same bytes.
  EXPECT_EQ(back.serialize(), bytes);
}

TEST(FleetArtifact, DeserializeRejectsCorruptInput) {
  EXPECT_THROW((void)FleetArtifact::deserialize("short"), std::runtime_error);
  std::string bytes = tiny_artifact().serialize();
  bytes[0] = 'X';
  EXPECT_THROW((void)FleetArtifact::deserialize(bytes), std::runtime_error);
  // Truncated payload: header promises more column data than present.
  EXPECT_THROW(
      (void)FleetArtifact::deserialize(
          tiny_artifact().serialize().substr(0, bytes.size() - 8)),
      std::runtime_error);
}

TEST(FleetArtifact, ColumnLookupByName) {
  const FleetArtifact artifact = tiny_artifact();
  EXPECT_EQ(artifact.column("miss_rate.mean"), 1u);
  EXPECT_THROW((void)artifact.column("nope"), std::out_of_range);
}

// --- run_fleet -------------------------------------------------------------

TEST_F(FleetRunTest, RunCoversEveryDeviceAndPopulatesArtifact) {
  FleetConfig config;
  config.spec = small_spec();
  const FleetResult result = run_fleet(config);

  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.devices_simulated, config.spec.devices);
  EXPECT_EQ(result.metrics.miss_rate.count(), config.spec.devices);
  EXPECT_EQ(result.miss_rate_hist.total(), config.spec.devices);
  EXPECT_EQ(result.miss_rate_hist.nan(), 0u);
  EXPECT_GT(result.metrics.harvested.mean(), 0.0);
  EXPECT_GT(result.metrics.busy_time.mean(), 0.0);

  EXPECT_EQ(result.artifact.shards, config.spec.shards());
  EXPECT_EQ(result.artifact.columns.size(), fleet_row_width(config.spec));
  // The per-shard device column sums back to the population size.
  const std::vector<double>& devices =
      result.artifact.data[result.artifact.column("devices")];
  double total = 0.0;
  for (double d : devices) total += d;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(config.spec.devices));
}

TEST_F(FleetRunTest, ArtifactIsByteIdenticalAcrossJobCounts) {
  FleetConfig serial;
  serial.spec = small_spec();
  serial.parallel.jobs = 1;
  FleetConfig threaded = serial;
  threaded.parallel.jobs = 4;

  const FleetResult a = run_fleet(serial);
  const FleetResult b = run_fleet(threaded);
  ASSERT_TRUE(a.complete);
  ASSERT_TRUE(b.complete);
  EXPECT_EQ(a.artifact.serialize(), b.artifact.serialize());
  EXPECT_DOUBLE_EQ(a.metrics.miss_rate.mean(), b.metrics.miss_rate.mean());
  EXPECT_EQ(a.metrics.miss_rate.sum_squared_deviations(),
            b.metrics.miss_rate.sum_squared_deviations());
}

TEST_F(FleetRunTest, ResumeReplaysJournaledShardsByteIdentically) {
  FleetConfig config;
  config.spec = small_spec();
  config.checkpoint.dir = dir_;
  const FleetResult fresh = run_fleet(config);
  ASSERT_TRUE(fresh.complete);
  EXPECT_EQ(fresh.resumed, 0u);

  config.checkpoint.require_existing = true;
  const FleetResult resumed = run_fleet(config);
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed, config.spec.shards());
  EXPECT_EQ(resumed.artifact.serialize(), fresh.artifact.serialize());
}

TEST_F(FleetRunTest, PopulationIsIndependentOfShardSize) {
  // Device sub-seeds are keyed by global device id, so resharding changes
  // journal rows but not the simulated population: the merged statistics
  // must agree exactly.
  FleetConfig coarse;
  coarse.spec = small_spec();
  FleetConfig fine = coarse;
  fine.spec.shard_size = 1;

  const FleetResult a = run_fleet(coarse);
  const FleetResult b = run_fleet(fine);
  EXPECT_EQ(a.metrics.miss_rate.count(), b.metrics.miss_rate.count());
  EXPECT_DOUBLE_EQ(a.metrics.miss_rate.mean(), b.metrics.miss_rate.mean());
  EXPECT_DOUBLE_EQ(a.metrics.consumed.mean(), b.metrics.consumed.mean());
  EXPECT_EQ(a.miss_rate_hist.total(), b.miss_rate_hist.total());
  for (std::size_t bin = 0; bin < a.miss_rate_hist.bins(); ++bin)
    EXPECT_EQ(a.miss_rate_hist.count(bin), b.miss_rate_hist.count(bin));
}

TEST_F(FleetRunTest, ArtifactWriteReadAndCsvExport) {
  FleetConfig config;
  config.spec = small_spec();
  const FleetResult result = run_fleet(config);
  ASSERT_TRUE(result.complete);

  const std::string bin_path = dir_ + "/fleet.bin";
  const std::string csv_path = dir_ + "/fleet.csv";
  result.artifact.write(bin_path);
  result.artifact.export_csv(csv_path);

  EXPECT_EQ(slurp(bin_path), result.artifact.serialize());
  const FleetArtifact back = FleetArtifact::read(bin_path);
  EXPECT_EQ(back.data, result.artifact.data);

  const std::string csv = slurp(csv_path);
  EXPECT_EQ(csv.rfind("shard,devices,miss_rate.n,", 0), 0u) << csv;
  // One header + one row per shard.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            1 + config.spec.shards());
}

TEST_F(FleetRunTest, FaultyPopulationRunsAndStaysConservative) {
  FleetConfig config;
  config.spec = small_spec();
  config.spec.devices = 8;
  config.spec.shard_size = 4;
  config.spec.fault_profiles = {"blackout:duty=0.3,mean=40"};
  config.spec.fault_fraction = 0.5;
  const FleetResult result = run_fleet(config);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.devices_simulated, 8u);
}

}  // namespace
}  // namespace eadvfs::exp::fleet
