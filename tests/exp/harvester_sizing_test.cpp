#include "exp/harvester_sizing.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "energy/composite_source.hpp"
#include "exp/setup.hpp"
#include "sched/factory.hpp"
#include "task/generator.hpp"
#include "util/rng.hpp"

namespace eadvfs::exp {
namespace {

HarvesterSizingConfig small_config(double u = 0.4) {
  HarvesterSizingConfig cfg;
  cfg.n_task_sets = 3;
  cfg.capacity = 200.0;
  cfg.sim.horizon = 800.0;
  cfg.solar.horizon = 800.0;
  cfg.generator.target_utilization = u;
  return cfg;
}

task::TaskSet one_set(double u, std::uint64_t seed) {
  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = u;
  task::TaskSetGenerator gen(gen_cfg);
  util::Xoshiro256ss rng(seed);
  return gen.generate(rng);
}

std::shared_ptr<const energy::EnergySource> solar(std::uint64_t seed) {
  energy::SolarSourceConfig cfg;
  cfg.seed = seed;
  cfg.horizon = 800.0;
  return std::make_shared<const energy::SolarSource>(cfg);
}

TEST(FindMinHarvesterScale, FoundScaleAchievesZeroMiss) {
  const auto cfg = small_config();
  const auto set = one_set(0.4, 3);
  const auto base = solar(3);
  const double scale = find_min_harvester_scale(cfg, "ea-dvfs", set, base);
  ASSERT_GT(scale, 0.0);
  const auto scaled =
      std::make_shared<const energy::ScaledSource>(base, scale);
  const auto scheduler = sched::make_scheduler("ea-dvfs");
  const auto at_scale =
      run_once(cfg.sim, scaled, cfg.capacity, proc::FrequencyTable::xscale(),
               *scheduler, cfg.predictor, set);
  EXPECT_EQ(at_scale.jobs_missed, 0u);
}

TEST(FindMinHarvesterScale, BelowTheScaleMisses) {
  const auto cfg = small_config();
  const auto set = one_set(0.4, 3);
  const auto base = solar(3);
  const double scale = find_min_harvester_scale(cfg, "lsa", set, base);
  ASSERT_GT(scale, cfg.scale_lo * 2.0);  // non-trivial
  const auto scaled =
      std::make_shared<const energy::ScaledSource>(base, 0.9 * scale);
  const auto scheduler = sched::make_scheduler("lsa");
  const auto below =
      run_once(cfg.sim, scaled, cfg.capacity, proc::FrequencyTable::xscale(),
               *scheduler, cfg.predictor, set);
  EXPECT_GT(below.jobs_missed, 0u);
}

TEST(FindMinHarvesterScale, ImpossibleWorkloadReturnsNegative) {
  auto cfg = small_config(0.8);
  cfg.capacity = 3.0;       // no panel survives the night on this
  cfg.scale_hi = 5.0;
  const auto set = one_set(0.8, 5);
  EXPECT_LT(find_min_harvester_scale(cfg, "lsa", set, solar(5)), 0.0);
}

TEST(RunHarvesterSizing, LsaNeedsAtLeastAsBigAPanel) {
  const auto result = run_harvester_sizing(small_config());
  EXPECT_EQ(result.sets_evaluated + result.sets_skipped, 3u);
  if (result.sets_evaluated > 0) {
    EXPECT_GE(result.ratio_of_means(), 0.95);
    EXPECT_GE(result.ratio_first_over_second.mean(), 0.95);
  }
}

TEST(RunHarvesterSizing, Deterministic) {
  const auto a = run_harvester_sizing(small_config());
  const auto b = run_harvester_sizing(small_config());
  EXPECT_EQ(a.sets_evaluated, b.sets_evaluated);
  if (a.sets_evaluated > 0) {
    EXPECT_DOUBLE_EQ(a.min_scale[0].mean(), b.min_scale[0].mean());
  }
}

TEST(RunHarvesterSizing, Validation) {
  auto cfg = small_config();
  cfg.schedulers.clear();
  EXPECT_THROW((void)run_harvester_sizing(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.scale_lo = 0.0;
  EXPECT_THROW((void)run_harvester_sizing(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.scale_hi = cfg.scale_lo;
  EXPECT_THROW((void)run_harvester_sizing(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.capacity = 0.0;
  EXPECT_THROW((void)run_harvester_sizing(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace eadvfs::exp
