#include "exp/miss_rate_sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eadvfs::exp {
namespace {

MissRateSweepConfig small_config() {
  MissRateSweepConfig cfg;
  cfg.capacities = {40.0, 150.0};
  cfg.schedulers = {"lsa", "ea-dvfs"};
  cfg.n_task_sets = 4;
  cfg.sim.horizon = 800.0;
  cfg.solar.horizon = 800.0;
  cfg.generator.target_utilization = 0.4;
  return cfg;
}

TEST(MissRateSweep, ProducesOneCellPerSchedulerCapacityPair) {
  const auto result = run_miss_rate_sweep(small_config());
  EXPECT_EQ(result.cells.size(), 4u);
  for (const auto& cell : result.cells)
    EXPECT_EQ(cell.miss_rate.count(), 4u);
}

TEST(MissRateSweep, CellLookupWorks) {
  const auto result = run_miss_rate_sweep(small_config());
  const auto& cell = result.cell("ea-dvfs", 150.0);
  EXPECT_EQ(cell.scheduler, "ea-dvfs");
  EXPECT_DOUBLE_EQ(cell.capacity, 150.0);
  EXPECT_THROW((void)result.cell("nope", 150.0), std::out_of_range);
  EXPECT_THROW((void)result.cell("lsa", 999.0), std::out_of_range);
}

TEST(MissRateSweep, MissRatesAreValidProbabilities) {
  const auto result = run_miss_rate_sweep(small_config());
  for (const auto& cell : result.cells) {
    EXPECT_GE(cell.miss_rate.min(), 0.0);
    EXPECT_LE(cell.miss_rate.max(), 1.0);
  }
}

TEST(MissRateSweep, LargerCapacityNeverHurtsOnAverage) {
  const auto result = run_miss_rate_sweep(small_config());
  for (const auto& name : {"lsa", "ea-dvfs"}) {
    EXPECT_LE(result.cell(name, 150.0).miss_rate.mean(),
              result.cell(name, 40.0).miss_rate.mean() + 0.02)
        << name;
  }
}

TEST(MissRateSweep, DeterministicForFixedSeed) {
  const auto a = run_miss_rate_sweep(small_config());
  const auto b = run_miss_rate_sweep(small_config());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells[i].miss_rate.mean(), b.cells[i].miss_rate.mean());
  }
}

TEST(MissRateSweep, SeedChangesResults) {
  auto cfg = small_config();
  const auto a = run_miss_rate_sweep(cfg);
  cfg.seed = 777;
  const auto b = run_miss_rate_sweep(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.cells.size(); ++i)
    if (a.cells[i].miss_rate.mean() != b.cells[i].miss_rate.mean())
      any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(MissRateSweep, RejectsEmptyAxes) {
  auto cfg = small_config();
  cfg.capacities.clear();
  EXPECT_THROW((void)run_miss_rate_sweep(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.schedulers.clear();
  EXPECT_THROW((void)run_miss_rate_sweep(cfg), std::invalid_argument);
}

TEST(MissRateSweep, DiagnosticsArePopulated) {
  const auto result = run_miss_rate_sweep(small_config());
  // Someone must have been busy at some point.
  double total_busy = 0.0;
  for (const auto& cell : result.cells) total_busy += cell.busy_time.mean();
  EXPECT_GT(total_busy, 0.0);
}

}  // namespace
}  // namespace eadvfs::exp
