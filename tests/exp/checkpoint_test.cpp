#include "exp/checkpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace eadvfs::exp {
namespace {

namespace fs = std::filesystem;

ManifestInfo test_info(std::size_t replications = 4) {
  ManifestInfo info;
  info.experiment = "checkpoint-test";
  info.config = "checkpoint-test;seed=42;axis=1,2,3";
  info.seed = 42;
  info.replications = replications;
  info.jobs = 1;
  return info;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("eadvfs_ckpt_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] CheckpointConfig config(bool require_existing = false) const {
    CheckpointConfig cfg;
    cfg.dir = dir_;
    cfg.require_existing = require_existing;
    return cfg;
  }

  [[nodiscard]] std::string slurp(const std::string& path) const {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  std::string dir_;
};

TEST(Fingerprint, DiscriminatesAndIsStable) {
  const std::string canon = "fig8;seed=42;caps=25,50";
  EXPECT_EQ(fingerprint(canon), fingerprint(canon));
  EXPECT_NE(fingerprint(canon), fingerprint("fig8;seed=43;caps=25,50"));
  EXPECT_NE(fingerprint(""), fingerprint(" "));
}

TEST_F(CheckpointTest, FreshSessionWritesManifestAndEmptyJournal) {
  CheckpointSession session(config(), test_info());
  const std::string manifest = slurp(CheckpointSession::manifest_path(dir_));
  EXPECT_NE(manifest.find("experiment = checkpoint-test"), std::string::npos);
  EXPECT_NE(manifest.find("seed = 42"), std::string::npos);
  EXPECT_NE(manifest.find("replications = 4"), std::string::npos);
  EXPECT_NE(manifest.find("status = running"), std::string::npos);
  EXPECT_TRUE(session.completed().empty());
  EXPECT_TRUE(fs::exists(CheckpointSession::journal_path(dir_)));
}

TEST_F(CheckpointTest, JournalRoundTripsDoublesExactly) {
  // Bit-pattern serialization: values that decimal formatting mangles must
  // reload as the *same* IEEE-754 doubles, or resumed aggregates drift.
  const std::vector<double> values = {
      0.1,
      1.0 / 3.0,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      6.02214076e23,
  };
  {
    CheckpointSession session(config(), test_info());
    session.append(0, 1, values);
    session.append(2, 3, {42.0});
  }
  CheckpointSession session(config(), test_info());
  ASSERT_EQ(session.completed().size(), 2u);
  const JournalEntry& first = session.completed().at(0);
  EXPECT_EQ(first.attempts, 1u);
  ASSERT_EQ(first.values.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::signbit(first.values[i]), std::signbit(values[i]));
    EXPECT_EQ(first.values[i], values[i]) << "value " << i;
  }
  EXPECT_EQ(session.completed().at(2).attempts, 3u);
}

TEST_F(CheckpointTest, TornTailLineIsDropped) {
  {
    CheckpointSession session(config(), test_info());
    session.append(0, 1, {1.0});
    session.append(1, 1, {2.0});
  }
  {
    // Simulate SIGKILL mid-append: a record prefix with no trailing newline.
    std::ofstream journal(CheckpointSession::journal_path(dir_),
                          std::ios::app);
    journal << "R 2 1 1 deadbeefdeadbeef";
  }
  CheckpointSession session(config(), test_info());
  EXPECT_EQ(session.completed().size(), 2u);
  EXPECT_EQ(session.completed().count(2), 0u);
  // Rotation rewrote the journal without the torn tail.
  const std::string rotated = slurp(CheckpointSession::journal_path(dir_));
  EXPECT_EQ(rotated.find("deadbeef"), std::string::npos);
}

TEST_F(CheckpointTest, CorruptCompleteRecordIsAnError) {
  {
    CheckpointSession session(config(), test_info());
    session.append(0, 1, {1.0});
  }
  {
    std::ofstream journal(CheckpointSession::journal_path(dir_),
                          std::ios::app);
    journal << "R not-an-index 1 1 3ff0000000000000\n";
  }
  EXPECT_THROW(CheckpointSession(config(), test_info()), std::runtime_error);
}

TEST_F(CheckpointTest, MismatchedSeedRefusesToResume) {
  { CheckpointSession session(config(), test_info()); }
  ManifestInfo other = test_info();
  other.seed = 7;
  other.config = "checkpoint-test;seed=7;axis=1,2,3";
  EXPECT_THROW(CheckpointSession(config(), other),
               util::ManifestMismatchError);
}

TEST_F(CheckpointTest, MismatchedReplicationsRefusesToResume) {
  { CheckpointSession session(config(), test_info(4)); }
  EXPECT_THROW(CheckpointSession(config(), test_info(5)),
               util::ManifestMismatchError);
}

TEST_F(CheckpointTest, RequireExistingRejectsEmptyDirectory) {
  EXPECT_THROW(CheckpointSession(config(/*require_existing=*/true),
                                 test_info()),
               std::runtime_error);
}

TEST_F(CheckpointTest, CheckpointedMapRunsAllAndFinalizes) {
  ParallelConfig parallel;
  parallel.jobs = 2;
  const auto outcome = checkpointed_map(
      4, parallel, config(), test_info(), [](std::size_t i) {
        return std::vector<double>{static_cast<double>(i) * 1.5};
      });
  ASSERT_EQ(outcome.rows.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(outcome.rows[i].size(), 1u);
    EXPECT_DOUBLE_EQ(outcome.rows[i][0], static_cast<double>(i) * 1.5);
  }
  EXPECT_EQ(outcome.resumed, 0u);
  EXPECT_EQ(outcome.report.completed, 4u);
  EXPECT_NE(slurp(CheckpointSession::manifest_path(dir_))
                .find("status = complete"),
            std::string::npos);
}

TEST_F(CheckpointTest, ResumeRunsOnlyMissingIndicesAndMatchesCleanRun) {
  ParallelConfig parallel;
  parallel.jobs = 1;
  // First pass journals indices 0 and 2 only (simulating a partial run).
  {
    CheckpointSession session(config(), test_info());
    session.append(0, 1, {0.5});
    session.append(2, 1, {2.5});
  }
  std::vector<std::size_t> executed;
  const auto outcome = checkpointed_map(
      4, parallel, config(), test_info(), [&](std::size_t i) {
        executed.push_back(i);
        return std::vector<double>{static_cast<double>(i) + 0.5};
      });
  EXPECT_EQ(outcome.resumed, 2u);
  EXPECT_EQ(executed, (std::vector<std::size_t>{1, 3}));
  ASSERT_EQ(outcome.rows.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(outcome.rows[i][0], static_cast<double>(i) + 0.5);
  EXPECT_EQ(outcome.report.completed, 4u);  // resumed rows count too

  // Resuming a complete run is idempotent: nothing executes, rows identical.
  std::size_t calls = 0;
  const auto again = checkpointed_map(
      4, parallel, config(/*require_existing=*/true), test_info(),
      [&](std::size_t) -> std::vector<double> {
        ++calls;
        return {-1.0};
      });
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(again.resumed, 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(again.rows[i][0], outcome.rows[i][0]);
}

TEST_F(CheckpointTest, KeepGoingJournalsFailuresAndWritesPartialManifest) {
  ParallelConfig parallel;
  parallel.jobs = 2;
  parallel.keep_going = true;
  const auto outcome = checkpointed_map(
      5, parallel, config(), test_info(5), [](std::size_t i) {
        if (i == 3) throw std::runtime_error("replication 3 is cursed");
        return std::vector<double>{static_cast<double>(i)};
      });
  ASSERT_EQ(outcome.report.failures.size(), 1u);
  EXPECT_EQ(outcome.report.failures[0].index, 3u);
  EXPECT_TRUE(outcome.rows[3].empty());
  EXPECT_FALSE(outcome.rows[2].empty());
  const std::string manifest = slurp(CheckpointSession::manifest_path(dir_));
  EXPECT_NE(manifest.find("status = partial"), std::string::npos);
  EXPECT_NE(manifest.find("failed_replications = 3"), std::string::npos);

  // Failed indices are re-run on resume; success heals the manifest.
  const auto healed = checkpointed_map(
      5, parallel, config(/*require_existing=*/true), test_info(5),
      [](std::size_t i) {
        return std::vector<double>{static_cast<double>(i)};
      });
  EXPECT_TRUE(healed.report.failures.empty());
  EXPECT_FALSE(healed.rows[3].empty());
  EXPECT_EQ(healed.resumed, 4u);
  EXPECT_NE(slurp(CheckpointSession::manifest_path(dir_))
                .find("status = complete"),
            std::string::npos);
}

TEST_F(CheckpointTest, DisabledCheckpointDegradesToPlainMap) {
  ParallelConfig parallel;
  parallel.jobs = 2;
  CheckpointConfig disabled;  // empty dir
  const auto outcome = checkpointed_map(
      3, parallel, disabled, test_info(3), [](std::size_t i) {
        return std::vector<double>{static_cast<double>(i)};
      });
  ASSERT_EQ(outcome.rows.size(), 3u);
  EXPECT_EQ(outcome.resumed, 0u);
  EXPECT_FALSE(fs::exists(dir_));  // nothing written anywhere
}

TEST_F(CheckpointTest, InterruptedMapLeavesResumableState) {
  ParallelConfig parallel;
  parallel.jobs = 1;
  std::atomic<bool> cancel{false};
  parallel.cancel = &cancel;
  const auto partial = checkpointed_map(
      6, parallel, config(), test_info(6), [&](std::size_t i) {
        if (i == 2) cancel.store(true);
        return std::vector<double>{static_cast<double>(i)};
      });
  EXPECT_TRUE(partial.report.interrupted);
  EXPECT_LT(partial.report.completed, 6u);
  EXPECT_NE(slurp(CheckpointSession::manifest_path(dir_))
                .find("status = interrupted"),
            std::string::npos);

  parallel.cancel = nullptr;
  const auto resumed = checkpointed_map(
      6, parallel, config(/*require_existing=*/true), test_info(6),
      [](std::size_t i) { return std::vector<double>{static_cast<double>(i)}; });
  EXPECT_FALSE(resumed.report.interrupted);
  EXPECT_EQ(resumed.report.completed, 6u);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_DOUBLE_EQ(resumed.rows[i][0], static_cast<double>(i));
}

}  // namespace
}  // namespace eadvfs::exp
