#include "exp/predictor_error.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eadvfs::exp {
namespace {

PredictorErrorConfig small_config() {
  PredictorErrorConfig cfg;
  cfg.predictors = {"oracle", "slotted-ewma", "running-average", "pessimistic"};
  cfg.windows = {10.0, 100.0};
  cfg.n_sources = 3;
  cfg.horizon = 2500.0;
  cfg.query_interval = 25.0;
  return cfg;
}

TEST(PredictorError, OracleIsExact) {
  const auto result = run_predictor_error(small_config());
  for (Time w : {10.0, 100.0}) {
    EXPECT_NEAR(result.cell("oracle", w).absolute_error.mean(), 0.0, 1e-9);
    EXPECT_NEAR(result.cell("oracle", w).bias.mean(), 0.0, 1e-9);
  }
}

TEST(PredictorError, PessimisticBiasIsMinusOne) {
  // Predicting zero means (pred - actual)/scale averages to -actual/scale,
  // whose mean is -1 by the normalization choice (up to sampling noise).
  const auto result = run_predictor_error(small_config());
  EXPECT_NEAR(result.cell("pessimistic", 100.0).bias.mean(), -1.0, 0.15);
  EXPECT_GT(result.cell("pessimistic", 100.0).absolute_error.mean(), 0.5);
}

TEST(PredictorError, SlottedProfileBeatsRunningAverageAtTaskHorizons) {
  const auto result = run_predictor_error(small_config());
  EXPECT_LT(result.cell("slotted-ewma", 100.0).absolute_error.mean(),
            result.cell("running-average", 100.0).absolute_error.mean());
}

TEST(PredictorError, ErrorsShrinkWithHorizonForTheProfile) {
  // Longer windows average out the per-step noise for an unbiased profile.
  const auto result = run_predictor_error(small_config());
  EXPECT_LT(result.cell("slotted-ewma", 100.0).absolute_error.mean(),
            result.cell("slotted-ewma", 10.0).absolute_error.mean());
}

TEST(PredictorError, CellsCoverFullGrid) {
  const auto result = run_predictor_error(small_config());
  EXPECT_EQ(result.cells.size(), 4u * 2u);
  EXPECT_THROW((void)result.cell("psychic", 10.0), std::out_of_range);
  EXPECT_THROW((void)result.cell("oracle", 11.0), std::out_of_range);
}

TEST(PredictorError, Deterministic) {
  const auto a = run_predictor_error(small_config());
  const auto b = run_predictor_error(small_config());
  EXPECT_DOUBLE_EQ(a.cell("running-average", 10.0).absolute_error.mean(),
                   b.cell("running-average", 10.0).absolute_error.mean());
}

TEST(PredictorError, Validation) {
  auto cfg = small_config();
  cfg.predictors.clear();
  EXPECT_THROW((void)run_predictor_error(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.windows.clear();
  EXPECT_THROW((void)run_predictor_error(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.query_interval = 0.0;
  EXPECT_THROW((void)run_predictor_error(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace eadvfs::exp
