#include "exp/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/miss_rate_sweep.hpp"

namespace eadvfs::exp {
namespace {

ParallelConfig with_jobs(std::size_t jobs) {
  ParallelConfig cfg;
  cfg.jobs = jobs;
  return cfg;
}

TEST(ParseJobs, AcceptsPositiveValues) {
  EXPECT_EQ(parse_jobs(1), 1u);
  EXPECT_EQ(parse_jobs(8), 8u);
  EXPECT_EQ(parse_jobs(1000), 1000u);
}

TEST(ParseJobs, RejectsZeroAndNegative) {
  EXPECT_THROW((void)parse_jobs(0), std::invalid_argument);
  EXPECT_THROW((void)parse_jobs(-1), std::invalid_argument);
  EXPECT_THROW((void)parse_jobs(-42), std::invalid_argument);
}

TEST(HardwareJobs, NeverZero) { EXPECT_GE(hardware_jobs(), 1u); }

TEST(ParallelRunner, RejectsZeroJobs) {
  EXPECT_THROW(ParallelRunner(with_jobs(0)), std::invalid_argument);
}

TEST(ParallelRunner, MapsEveryIndexExactlyOnce) {
  const std::size_t count = 100;
  const auto results = parallel_map<std::size_t>(
      count, with_jobs(4), [](std::size_t i) { return i * 2; });
  ASSERT_EQ(results.size(), count);
  for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(results[i], i * 2);
}

TEST(ParallelRunner, HandlesMoreJobsThanWork) {
  const auto results = parallel_map<std::size_t>(
      3, with_jobs(8), [](std::size_t i) { return i + 10; });
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], 10u);
  EXPECT_EQ(results[1], 11u);
  EXPECT_EQ(results[2], 12u);
}

TEST(ParallelRunner, ZeroCountReturnsEmpty) {
  std::atomic<int> calls{0};
  ParallelRunner runner(with_jobs(4));
  runner.run(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  const auto results =
      parallel_map<int>(0, with_jobs(4), [](std::size_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(ParallelRunner, PropagatesTaskException) {
  ParallelRunner runner(with_jobs(4));
  try {
    runner.run(64, [](std::size_t i) {
      if (i == 17) throw std::runtime_error("boom at 17");
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 17");
  }
}

TEST(ParallelRunner, PropagatesInlineException) {
  ParallelRunner runner(with_jobs(1));
  EXPECT_THROW(
      runner.run(10, [](std::size_t i) {
        if (i == 3) throw std::runtime_error("inline boom");
      }),
      std::runtime_error);
}

TEST(ParallelRunner, LowestIndexFailureReportedFirst) {
  // Every index >= 5 fails.  Depending on dispatch timing one or several
  // failures are observed before the queue is cancelled; either way the
  // lowest observed index leads: a lone failure rethrows its original
  // exception, several surface as a CompositeRunError sorted by index
  // (supervision_test.cpp pins both shapes deterministically).
  ParallelRunner runner(with_jobs(8));
  try {
    runner.run(40, [](std::size_t i) {
      if (i >= 5) throw std::runtime_error("fail " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const util::CompositeRunError& e) {
    ASSERT_GE(e.failures().size(), 2u);
    std::size_t last = 0;
    for (const auto& failure : e.failures()) {
      EXPECT_GE(failure.index, 5u);
      EXPECT_GE(failure.index, last);
      EXPECT_EQ(failure.message, "fail " + std::to_string(failure.index));
      last = failure.index;
    }
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.rfind("fail ", 0), 0u) << what;
  }
}

TEST(ParallelRunner, ProgressReportsMonotonicallyToCompletion) {
  ParallelConfig cfg = with_jobs(3);
  cfg.progress_every = 2;
  std::vector<ParallelProgress> snapshots;
  cfg.progress = [&](const ParallelProgress& p) { snapshots.push_back(p); };
  ParallelRunner runner(cfg);
  runner.run(11, [](std::size_t) {});
  ASSERT_FALSE(snapshots.empty());
  std::size_t last = 0;
  for (const auto& p : snapshots) {
    EXPECT_EQ(p.total, 11u);
    EXPECT_GE(p.completed, last);
    EXPECT_LE(p.completed, p.total);
    last = p.completed;
  }
  EXPECT_EQ(snapshots.back().completed, 11u);
}

TEST(ParallelRunner, ProgressDisabledByDefault) {
  // progress_every == 0 with a callback installed: never invoked.
  ParallelConfig cfg = with_jobs(2);
  std::atomic<int> calls{0};
  cfg.progress = [&](const ParallelProgress&) { ++calls; };
  ParallelRunner runner(cfg);
  runner.run(10, [](std::size_t) {});
  EXPECT_EQ(calls.load(), 0);
}

TEST(WithDefaultProgress, KeepsUserCallback) {
  ParallelConfig cfg = with_jobs(1);
  std::atomic<int> calls{0};
  cfg.progress = [&](const ParallelProgress&) { ++calls; };
  cfg.progress_every = 1;
  const ParallelConfig out = with_default_progress(cfg, "label", 50);
  ParallelRunner runner(out);
  runner.run(3, [](std::size_t) {});
  EXPECT_EQ(calls.load(), 3);  // user callback and cadence survive
}

// The tentpole regression: a full experiment sweep must produce bit-identical
// statistics no matter how many workers execute the replications.
TEST(ParallelRunner, SweepResultsAreThreadCountInvariant) {
  MissRateSweepConfig cfg;
  cfg.capacities = {50.0, 100.0};
  cfg.schedulers = {"lsa", "ea-dvfs"};
  cfg.n_task_sets = 6;
  cfg.sim.horizon = 600.0;
  cfg.solar.horizon = 600.0;
  cfg.generator.target_utilization = 0.4;

  cfg.parallel.jobs = 1;
  const auto sequential = run_miss_rate_sweep(cfg);
  cfg.parallel.jobs = 8;
  const auto parallel = run_miss_rate_sweep(cfg);

  ASSERT_EQ(sequential.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < sequential.cells.size(); ++i) {
    const auto& a = sequential.cells[i];
    const auto& b = parallel.cells[i];
    EXPECT_EQ(a.scheduler, b.scheduler);
    EXPECT_DOUBLE_EQ(a.capacity, b.capacity);
    EXPECT_EQ(a.miss_rate.count(), b.miss_rate.count());
    // Bit-identical, not just close: aggregation replays records in
    // replication order, so the Welford streams match exactly.
    EXPECT_DOUBLE_EQ(a.miss_rate.mean(), b.miss_rate.mean());
    EXPECT_DOUBLE_EQ(a.miss_rate.stddev(), b.miss_rate.stddev());
    EXPECT_DOUBLE_EQ(a.stall_time.mean(), b.stall_time.mean());
    EXPECT_DOUBLE_EQ(a.busy_time.mean(), b.busy_time.mean());
    EXPECT_DOUBLE_EQ(a.frequency_switches.mean(),
                     b.frequency_switches.mean());
  }
}

}  // namespace
}  // namespace eadvfs::exp
