#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/parallel_runner.hpp"
#include "util/error.hpp"

/// Supervision-layer tests for ParallelRunner: bounded deterministic retries,
/// keep-going accounting, composite failure reporting, cooperative
/// cancellation, and the watchdog hook.  (The basic mapping/determinism tests
/// live in parallel_runner_test.cpp.)

namespace eadvfs::exp {
namespace {

ParallelConfig with_jobs(std::size_t jobs) {
  ParallelConfig cfg;
  cfg.jobs = jobs;
  return cfg;
}

TEST(ParseRetries, MapsRetriesToAttempts) {
  EXPECT_EQ(parse_retries(0), 1u);
  EXPECT_EQ(parse_retries(2), 3u);
  EXPECT_THROW((void)parse_retries(-1), std::invalid_argument);
}

TEST(ParseWatchdog, RejectsNegativeAndNonFinite) {
  EXPECT_DOUBLE_EQ(parse_watchdog_sec(0.0), 0.0);
  EXPECT_DOUBLE_EQ(parse_watchdog_sec(2.5), 2.5);
  EXPECT_THROW((void)parse_watchdog_sec(-1.0), std::invalid_argument);
  EXPECT_THROW((void)parse_watchdog_sec(
                   std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(Supervision, RetrySucceedsWithSameIndexAndRecordsAttempts) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    ParallelConfig cfg = with_jobs(jobs);
    cfg.max_attempts = 3;
    ParallelRunner runner(cfg);
    // Index 3 fails on its first two attempts, succeeds on the third.
    std::vector<std::atomic<int>> calls(8);
    const RunReport report = runner.run(8, [&](std::size_t i) {
      const int attempt = ++calls[i];
      if (i == 3 && attempt < 3)
        throw std::runtime_error("transient " + std::to_string(attempt));
    });
    EXPECT_EQ(report.completed, 8u) << "jobs=" << jobs;
    EXPECT_TRUE(report.failures.empty());
    EXPECT_FALSE(report.interrupted);
    ASSERT_EQ(report.retried.size(), 1u);
    EXPECT_EQ(report.retried[0].first, 3u);   // which replication
    EXPECT_EQ(report.retried[0].second, 3u);  // how many attempts
    EXPECT_EQ(calls[3].load(), 3);
  }
}

TEST(Supervision, RetriesAreBounded) {
  ParallelConfig cfg = with_jobs(1);
  cfg.max_attempts = 2;
  ParallelRunner runner(cfg);
  std::atomic<int> calls{0};
  EXPECT_THROW(runner.run(1,
                          [&](std::size_t) {
                            ++calls;
                            throw std::runtime_error("always fails");
                          }),
               std::runtime_error);
  EXPECT_EQ(calls.load(), 2);  // exactly max_attempts, not infinite
}

TEST(Supervision, KeepGoingRecordsFailuresAndFinishesTheRest) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    ParallelConfig cfg = with_jobs(jobs);
    cfg.keep_going = true;
    cfg.max_attempts = 2;
    ParallelRunner runner(cfg);
    const RunReport report = runner.run(10, [](std::size_t i) {
      if (i == 2 || i == 7)
        throw std::invalid_argument("bad replication " + std::to_string(i));
    });
    EXPECT_EQ(report.completed, 8u) << "jobs=" << jobs;
    EXPECT_FALSE(report.clean());
    ASSERT_EQ(report.failures.size(), 2u);
    EXPECT_EQ(report.failures[0].index, 2u);  // sorted ascending
    EXPECT_EQ(report.failures[0].attempts, 2u);
    EXPECT_NE(report.failures[0].message.find("bad replication 2"),
              std::string::npos);
    EXPECT_EQ(report.failures[1].index, 7u);
  }
}

TEST(Supervision, SingleFailureRethrowsTheOriginalExceptionType) {
  // Contract: with exactly one failure the original exception is rethrown
  // verbatim, so callers keep catching the precise type their task threw.
  ParallelRunner runner(with_jobs(4));
  EXPECT_THROW(runner.run(32,
                          [](std::size_t i) {
                            if (i == 9) throw std::out_of_range("only 9");
                          }),
               std::out_of_range);
}

TEST(Supervision, ConcurrentFailuresThrowCompositeListingAll) {
  // A start barrier guarantees all four replications are in flight before
  // any fails, so both failures are deterministically observed.
  ParallelConfig cfg = with_jobs(4);
  ParallelRunner runner(cfg);
  std::atomic<std::size_t> started{0};
  try {
    runner.run(4, [&](std::size_t i) {
      ++started;
      while (started.load() < 4) std::this_thread::yield();
      if (i >= 2) throw std::runtime_error("fail " + std::to_string(i));
    });
    FAIL() << "expected CompositeRunError";
  } catch (const util::CompositeRunError& error) {
    ASSERT_EQ(error.failures().size(), 2u);
    EXPECT_EQ(error.failures()[0].index, 2u);
    EXPECT_EQ(error.failures()[1].index, 3u);
    const std::string what = error.what();
    EXPECT_NE(what.find("fail 2"), std::string::npos);
    EXPECT_NE(what.find("fail 3"), std::string::npos);
  }
}

TEST(Supervision, CancelTokenStopsDispatchAndDrains) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}}) {
    std::atomic<bool> cancel{false};
    ParallelConfig cfg = with_jobs(jobs);
    cfg.cancel = &cancel;
    ParallelRunner runner(cfg);
    std::atomic<std::size_t> executed{0};
    const RunReport report = runner.run(100, [&](std::size_t i) {
      ++executed;
      if (i == 5) cancel.store(true);
    });
    EXPECT_TRUE(report.interrupted) << "jobs=" << jobs;
    EXPECT_TRUE(report.failures.empty());
    // Everything dispatched before the flag was drained to completion;
    // nothing new was started after it.
    EXPECT_EQ(report.completed, executed.load());
    EXPECT_LT(report.completed, 100u);
  }
}

TEST(Supervision, CancelBeforeStartRunsNothing) {
  std::atomic<bool> cancel{true};
  ParallelConfig cfg = with_jobs(4);
  cfg.cancel = &cancel;
  ParallelRunner runner(cfg);
  std::atomic<std::size_t> executed{0};
  const RunReport report = runner.run(16, [&](std::size_t) { ++executed; });
  EXPECT_TRUE(report.interrupted);
  EXPECT_EQ(executed.load(), 0u);
  EXPECT_EQ(report.completed, 0u);
}

TEST(Supervision, WatchdogHookFiresForTheHungReplication) {
  // The overridable abort hook (the default _Exit(7) is exercised end-to-end
  // by the crash_resume ctest script): index 1 hangs until the hook releases
  // it, proving detection names the right replication while others pass.
  ParallelConfig cfg = with_jobs(2);
  cfg.watchdog_sec = 0.05;
  std::atomic<bool> release{false};
  std::atomic<std::size_t> reported_index{999};
  cfg.watchdog_abort = [&](std::size_t index, double elapsed) {
    reported_index.store(index);
    EXPECT_GT(elapsed, 0.0);
    release.store(true);
  };
  ParallelRunner runner(cfg);
  const RunReport report = runner.run(4, [&](std::size_t i) {
    if (i == 1) {
      while (!release.load()) std::this_thread::sleep_for(
          std::chrono::milliseconds(1));
    }
  });
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(reported_index.load(), 1u);
}

TEST(Supervision, ParallelMapRequiresReportForKeepGoing) {
  ParallelConfig cfg = with_jobs(1);
  cfg.keep_going = true;
  // keep_going without a RunReport out-param would silently poison
  // aggregates with default-constructed rows; it is a programming error.
  EXPECT_THROW((void)parallel_map<int>(
                   4, cfg, [](std::size_t i) { return static_cast<int>(i); }),
               std::logic_error);
}

TEST(Supervision, ParallelMapReportsThroughOutParam) {
  ParallelConfig cfg = with_jobs(2);
  cfg.keep_going = true;
  RunReport report;
  const auto values = parallel_map<int>(
      6, cfg,
      [](std::size_t i) {
        if (i == 4) throw std::runtime_error("no value for 4");
        return static_cast<int>(i) * 10;
      },
      &report);
  ASSERT_EQ(values.size(), 6u);
  EXPECT_EQ(values[0], 0);
  EXPECT_EQ(values[3], 30);
  EXPECT_EQ(values[4], 0);  // default-constructed; report says why
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].index, 4u);
}

}  // namespace
}  // namespace eadvfs::exp
