#include "exp/setup.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "sched/factory.hpp"
#include "task/generator.hpp"
#include "util/rng.hpp"

namespace eadvfs::exp {
namespace {

std::shared_ptr<const energy::EnergySource> solar(std::uint64_t seed = 1) {
  energy::SolarSourceConfig cfg;
  cfg.seed = seed;
  cfg.horizon = 1000.0;
  return std::make_shared<const energy::SolarSource>(cfg);
}

TEST(MakePredictor, BuildsEveryNamedKind) {
  const auto source = solar();
  EXPECT_EQ(make_predictor("oracle", source)->name(), "oracle");
  EXPECT_EQ(make_predictor("slotted-ewma", source)->name(), "slotted-ewma");
  EXPECT_EQ(make_predictor("running-average", source)->name(),
            "running-average");
  EXPECT_NE(make_predictor("pessimistic", source)->name().find("constant"),
            std::string::npos);
  EXPECT_NE(make_predictor("constant:2.5", source)->name().find("2.5"),
            std::string::npos);
}

TEST(MakePredictor, ConstantParsesItsParameter) {
  const auto p = make_predictor("constant:1.5", solar());
  EXPECT_DOUBLE_EQ(p->predict(0.0, 4.0), 6.0);
}

TEST(MakePredictor, PessimisticPredictsZero) {
  const auto p = make_predictor("pessimistic", solar());
  EXPECT_DOUBLE_EQ(p->predict(0.0, 100.0), 0.0);
}

TEST(MakePredictor, SlottedEwmaAdoptsSolarCycle) {
  const auto source = solar();
  const auto p = make_predictor("slotted-ewma", source);
  // Can't peek at the cycle directly through the interface; at minimum the
  // construction path must succeed and predict sensibly.
  EXPECT_DOUBLE_EQ(p->predict(0.0, 0.0), 0.0);
}

TEST(MakePredictor, UnknownNameThrows) {
  EXPECT_THROW((void)make_predictor("psychic", solar()), std::invalid_argument);
}

TEST(DeriveSeeds, CountAndUniqueness) {
  const auto seeds = derive_seeds(42, 100);
  EXPECT_EQ(seeds.size(), 100u);
  const std::set<std::uint64_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 100u);
}

TEST(DeriveSeeds, DeterministicForMaster) {
  EXPECT_EQ(derive_seeds(7, 10), derive_seeds(7, 10));
  EXPECT_NE(derive_seeds(7, 10), derive_seeds(8, 10));
}

TEST(RunOnce, ProducesConsistentResult) {
  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = 0.4;
  task::TaskSetGenerator gen(gen_cfg);
  util::Xoshiro256ss rng(3);
  const task::TaskSet set = gen.generate(rng);

  sim::SimulationConfig cfg;
  cfg.horizon = 1000.0;
  const auto scheduler = sched::make_scheduler("ea-dvfs");
  const auto result =
      run_once(cfg, solar(), 200.0, proc::FrequencyTable::xscale(), *scheduler,
               "slotted-ewma", set);
  EXPECT_GT(result.jobs_released, 0u);
  EXPECT_LT(result.conservation_error(), 1e-5);
  EXPECT_NEAR(result.end_time, 1000.0, 1e-9);
}

TEST(RunOnce, IsDeterministic) {
  task::GeneratorConfig gen_cfg;
  gen_cfg.target_utilization = 0.5;
  task::TaskSetGenerator gen(gen_cfg);
  util::Xoshiro256ss rng(9);
  const task::TaskSet set = gen.generate(rng);

  sim::SimulationConfig cfg;
  cfg.horizon = 500.0;
  const auto source = solar(5);
  auto run = [&] {
    const auto scheduler = sched::make_scheduler("lsa");
    return run_once(cfg, source, 100.0, proc::FrequencyTable::xscale(),
                    *scheduler, "running-average", set);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.jobs_missed, b.jobs_missed);
  EXPECT_DOUBLE_EQ(a.storage_final, b.storage_final);
}

TEST(PredictorNames, ListedNamesAreNonEmpty) {
  EXPECT_FALSE(predictor_names().empty());
}

}  // namespace
}  // namespace eadvfs::exp
