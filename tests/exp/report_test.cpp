#include "exp/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"

namespace eadvfs::exp {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"capacity", "lsa", "ea-dvfs"});
  table.add_row({"200", "0.50", "0.20"});
  table.add_row({"5000", "0.01", "0.00"});
  const std::string text = table.render();
  EXPECT_NE(text.find("capacity"), std::string::npos);
  EXPECT_NE(text.find("0.50"), std::string::npos);
  EXPECT_NE(text.find("5000"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TextTable, NumericRowFormatting) {
  TextTable table({"label", "a", "b"});
  table.add_row("row", {1.23456, 2.0}, 2);
  const std::string text = table.render();
  EXPECT_NE(text.find("1.23"), std::string::npos);
  EXPECT_NE(text.find("2.00"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only-one"});
  EXPECT_NO_THROW((void)table.render());
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable table({"x", "yyyyyy"});
  table.add_row({"aaaaaaaa", "1"});
  const std::string text = table.render();
  std::istringstream lines(text);
  std::string header, sep, row;
  std::getline(lines, header);
  std::getline(lines, sep);
  std::getline(lines, row);
  EXPECT_EQ(header.size(), row.size());
}

TEST(TextTable, WritesCsv) {
  const std::string path = ::testing::TempDir() + "/eadvfs_report.csv";
  TextTable table({"h1", "h2"});
  table.add_row({"v1", "v,2"});
  table.write_csv(path);
  const auto rows = util::csv_read_file(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "v,2");
  std::remove(path.c_str());
}

TEST(TextTable, CsvToUnwritablePathDoesNotThrow) {
  TextTable table({"a"});
  table.add_row({"1"});
  EXPECT_NO_THROW(table.write_csv("/nonexistent/dir/file.csv"));
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.5, 2), "1.50");
  EXPECT_EQ(fmt(-0.125, 3), "-0.125");
  EXPECT_EQ(fmt(3.14159, 0), "3");
}

TEST(PrintBanner, ContainsAllParts) {
  std::ostringstream out;
  print_banner(out, "Figure 8", "EA-DVFS halves the miss rate",
               "U=0.4, 7 capacities");
  const std::string text = out.str();
  EXPECT_NE(text.find("Figure 8"), std::string::npos);
  EXPECT_NE(text.find("halves"), std::string::npos);
  EXPECT_NE(text.find("U=0.4"), std::string::npos);
}

TEST(OutputDir, HonoursEnvironmentVariable) {
  ::setenv("EADVFS_OUT_DIR", "/tmp/eadvfs_out", 1);
  EXPECT_EQ(output_dir(), "/tmp/eadvfs_out");
  ::unsetenv("EADVFS_OUT_DIR");
  EXPECT_EQ(output_dir(), ".");
}

}  // namespace
}  // namespace eadvfs::exp
