/// Regression tests for the three switch-overhead accounting bugs the audit
/// work flushed out of Engine::apply_switch_overhead:
///   1. storage leakage was not applied during a transition stall;
///   2. a zero-duration transition (time == 0, energy > 0) drew energy
///      without emitting any SegmentRecord, so the observer stream did not
///      balance;
///   3. a transition truncated by the horizon drew the *full* switch energy
///      instead of prorating it by the stalled fraction.
///
/// Bugs 1 and 3 are self-consistent (conservation holds either way), so the
/// auditor alone cannot see them — these tests pin the intended model
/// semantics directly.  Bug 2 is also covered by the auditor's continuity
/// and aggregate checks; the test here additionally pins the shape of the
/// instantaneous record.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "energy/predictor.hpp"
#include "energy/source.hpp"
#include "energy/storage.hpp"
#include "proc/processor.hpp"
#include "sched/edf_scheduler.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "../support/scenario.hpp"
#include "task/releaser.hpp"

namespace eadvfs {
namespace {

using test::job;

/// Leakage must accrue on *every* segment, including the transition stall.
/// One job on EDF forces exactly one switch (the processor boots at the
/// slowest point); with the storage nowhere near empty, the total leak over
/// the run must therefore be exactly leakage * horizon — a missing
/// `storage_.leak(dt)` on the stall path shows up as one stall's worth less.
TEST(SwitchOverhead, LeakageAccruesDuringTransitionStall) {
  test::Scenario s;
  s.jobs = {job(1, 0.0, 50.0, 5.0)};
  s.source = std::make_shared<energy::ConstantSource>(1.0);
  s.capacity = 1000.0;
  s.initial = 500.0;
  s.leakage = 0.01;
  s.overhead = {1.0, 0.5};
  s.config.horizon = 100.0;
  sched::EdfScheduler scheduler;
  const auto outcome = test::run_scenario(std::move(s), scheduler);

  EXPECT_GE(outcome.result.frequency_switches, 1u);
  EXPECT_NEAR(outcome.result.stall_time, 1.0, 1e-9);
  EXPECT_NEAR(outcome.result.leaked, 0.01 * 100.0, 1e-6);
}

/// A zero-duration transition still moves energy, so it must leave a record:
/// an instantaneous segment (start == end) carrying the draw in `consumed`
/// with zero power fields — otherwise the storage level jumps between
/// records and the stream no longer reproduces `result.consumed`.
TEST(SwitchOverhead, ZeroDurationTransitionEmitsInstantaneousRecord) {
  struct SegmentLog final : sim::SimObserver {
    std::vector<sim::SegmentRecord> segments;
    void on_segment(const sim::SegmentRecord& s) override {
      segments.push_back(s);
    }
  };

  sim::SimulationConfig config;
  config.horizon = 10.0;
  const auto source = std::make_shared<energy::ConstantSource>(0.0);
  energy::StorageConfig storage_cfg;
  storage_cfg.capacity = 100.0;
  storage_cfg.initial = 50.0;
  energy::EnergyStorage storage(storage_cfg);
  proc::Processor processor(proc::FrequencyTable::xscale(), {0.0, 0.5});
  energy::OraclePredictor predictor(source);
  sched::EdfScheduler scheduler;
  task::JobReleaser releaser(std::vector<task::Job>{job(1, 0.0, 8.0, 2.0)});

  sim::Engine engine(config, *source, storage, processor, predictor, scheduler,
                     releaser);
  sim::AuditObserver audit(
      sim::AuditConfig::for_run(config, storage, processor, scheduler));
  SegmentLog log;
  engine.observers().add(audit);
  engine.observers().add(log);
  const sim::SimulationResult result = engine.run();
  audit.finalize(result);
  EXPECT_TRUE(audit.ok()) << audit.report();

  const sim::SegmentRecord* transition = nullptr;
  for (const auto& seg : log.segments)
    if (seg.instantaneous()) transition = &seg;
  ASSERT_NE(transition, nullptr) << "no instantaneous record emitted";
  EXPECT_EQ(transition->start, 0.0);
  EXPECT_EQ(transition->end, 0.0);
  EXPECT_FALSE(transition->job.has_value());
  EXPECT_TRUE(transition->stalled);
  EXPECT_EQ(transition->harvest_power, 0.0);
  EXPECT_EQ(transition->consume_power, 0.0);
  EXPECT_NEAR(transition->consumed, 0.5, 1e-12);
  EXPECT_NEAR(transition->level_start - transition->level_end, 0.5, 1e-12);

  // Run at f_max: 2 work at 3.2 W = 6.4 J, plus the 0.5 J transition; no
  // time passes in the transition so stall_time stays zero.
  EXPECT_NEAR(result.consumed, 6.9, 1e-9);
  EXPECT_NEAR(result.stall_time, 0.0, 1e-12);
}

/// A transition cut short by the horizon only stalls for `dt` of its
/// nominal `overhead.time`, so it must only draw `dt / time` of the switch
/// energy.  Job arrives at t = 8 with a 5-unit transition and the horizon
/// at 10: 2/5 of the stall happens, so 2/5 of the 1 J must be drawn.
TEST(SwitchOverhead, HorizonTruncatedTransitionProratesEnergy) {
  test::Scenario s;
  s.jobs = {job(1, 8.0, 10.0, 1.0)};
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.capacity = 100.0;
  s.initial = 50.0;
  s.overhead = {5.0, 1.0};
  s.config.horizon = 10.0;
  sched::EdfScheduler scheduler;
  const auto outcome = test::run_scenario(std::move(s), scheduler);

  EXPECT_NEAR(outcome.result.stall_time, 2.0, 1e-9);
  EXPECT_NEAR(outcome.result.busy_time, 0.0, 1e-12);
  EXPECT_NEAR(outcome.result.consumed, 0.4, 1e-9);
  EXPECT_NEAR(outcome.result.storage_final, 49.6, 1e-9);
  EXPECT_EQ(outcome.result.jobs_unresolved, 1u);
}

}  // namespace
}  // namespace eadvfs
