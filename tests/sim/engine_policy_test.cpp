/// Engine/scheduler-contract tests: recheck instants, idle decisions with
/// wake-up bounds, EDF ordering of the ready view, and miss-policy corner
/// cases.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../support/scenario.hpp"
#include "sched/edf_scheduler.hpp"
#include "sim/engine.hpp"
#include "util/math.hpp"

namespace eadvfs::sim {
namespace {

using test::job;
using test::run_scenario;
using test::Scenario;

/// Records the context of every decide() call, then delegates to EDF.
class SpyScheduler final : public Scheduler {
 public:
  struct Snapshot {
    Time now;
    std::vector<task::JobId> ready_order;
    Energy stored;
  };

  Decision decide(const SchedulingContext& ctx) override {
    Snapshot snap;
    snap.now = ctx.now;
    snap.stored = ctx.stored;
    for (const auto& j : *ctx.ready) snap.ready_order.push_back(j.id);
    calls.push_back(std::move(snap));
    return inner.decide(ctx);
  }
  std::string name() const override { return "spy"; }

  std::vector<Snapshot> calls;
  sched::EdfScheduler inner;
};

TEST(EnginePolicy, ReadyViewIsEdfSorted) {
  Scenario s;
  s.jobs = {job(0, 0.0, 50.0, 1.0), job(1, 0.0, 10.0, 1.0),
            job(2, 0.0, 30.0, 1.0)};
  s.source = std::make_shared<energy::ConstantSource>(5.0);
  s.config.horizon = 60.0;
  SpyScheduler spy;
  (void)run_scenario(std::move(s), spy);
  ASSERT_FALSE(spy.calls.empty());
  const auto& order = spy.calls.front().ready_order;
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);  // deadline 10
  EXPECT_EQ(order[1], 2u);  // deadline 30
  EXPECT_EQ(order[2], 0u);  // deadline 50
}

TEST(EnginePolicy, SchedulerNotCalledWithEmptyReadySet) {
  Scenario s;
  s.jobs = {job(0, 10.0, 5.0, 1.0)};  // nothing ready before t=10
  s.source = std::make_shared<energy::ConstantSource>(5.0);
  s.config.horizon = 20.0;
  SpyScheduler spy;
  (void)run_scenario(std::move(s), spy);
  for (const auto& call : spy.calls) EXPECT_FALSE(call.ready_order.empty());
}

TEST(EnginePolicy, DecisionRecheckTriggersReDecision) {
  // A scheduler that asks to idle until t=3 even though a job is ready;
  // the engine must come back at ~3 and let it run then.
  class Procrastinator final : public Scheduler {
   public:
    Decision decide(const SchedulingContext& ctx) override {
      if (ctx.trace) ctx.trace->rule = "procrastinate-until-3";
      if (ctx.now < 3.0 - util::kEps) return Decision::idle_until(3.0);
      return Decision::run(ctx.edf_front().id, ctx.table->max_index());
    }
    std::string name() const override { return "procrastinator"; }
  } sched;

  Scenario s;
  s.jobs = {job(0, 0.0, 10.0, 1.0)};
  s.source = std::make_shared<energy::ConstantSource>(5.0);
  s.config.horizon = 20.0;
  const auto out = run_scenario(std::move(s), sched);
  EXPECT_EQ(out.result.jobs_completed, 1u);
  ASSERT_FALSE(out.schedule.slices().empty());
  EXPECT_NEAR(out.schedule.slices().front().start, 3.0, 1e-9);
}

TEST(EnginePolicy, StaleRecheckInstantIsIgnored) {
  // recheck_at == now must not wedge the engine in zero-length segments.
  class StaleRecheck final : public Scheduler {
   public:
    Decision decide(const SchedulingContext& ctx) override {
      if (ctx.trace) ctx.trace->rule = "stale-recheck";
      return Decision::run(ctx.edf_front().id, ctx.table->max_index(),
                           ctx.now);  // stale
    }
    std::string name() const override { return "stale"; }
  } sched;

  Scenario s;
  s.jobs = {job(0, 0.0, 10.0, 2.0)};
  s.source = std::make_shared<energy::ConstantSource>(5.0);
  s.config.horizon = 20.0;
  const auto out = run_scenario(std::move(s), sched);
  EXPECT_EQ(out.result.jobs_completed, 1u);
}

TEST(EnginePolicy, MissedJobStillCountedOncePerJob) {
  Scenario s;
  s.jobs = {job(0, 0.0, 2.0, 1.0)};
  s.source = std::make_shared<energy::ConstantSource>(0.2);
  s.initial = 0.0;
  s.config.horizon = 30.0;
  s.config.miss_policy = MissPolicy::kContinueLate;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_missed, 1u);  // exactly once
}

TEST(EnginePolicy, DeadlineOrderOfMissesIsChronological) {
  Scenario s;
  s.jobs = {job(0, 0.0, 2.0, 1.0), job(1, 0.0, 4.0, 1.0)};
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.initial = 0.0;
  s.config.horizon = 10.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  ASSERT_EQ(out.schedule.outcomes().size(), 2u);
  EXPECT_DOUBLE_EQ(out.schedule.outcomes()[0].time, 2.0);
  EXPECT_DOUBLE_EQ(out.schedule.outcomes()[1].time, 4.0);
  EXPECT_TRUE(out.schedule.outcomes()[0].missed);
  EXPECT_TRUE(out.schedule.outcomes()[1].missed);
}

TEST(EnginePolicy, SegmentsCoverTimelineWithoutGapsOrOverlap) {
  Scenario s;
  s.jobs = {job(0, 0.0, 10.0, 3.0), job(1, 2.0, 6.0, 1.0)};
  s.source = std::make_shared<energy::ConstantSource>(2.0);
  s.capacity = 20.0;
  s.config.horizon = 15.0;

  class SegmentAuditor final : public SimObserver {
   public:
    Time cursor = 0.0;
    void on_segment(const SegmentRecord& rec) override {
      EXPECT_NEAR(rec.start, cursor, 1e-9);
      EXPECT_GT(rec.end, rec.start);
      cursor = rec.end;
    }
  } auditor;

  auto source = s.source;
  energy::EnergyStorage storage = energy::EnergyStorage::ideal(s.capacity);
  proc::Processor processor(s.table);
  energy::OraclePredictor predictor(source);
  sched::EdfScheduler edf;
  task::JobReleaser releaser(s.jobs);
  Engine engine(s.config, *source, storage, processor, predictor, edf, releaser);
  engine.observers().add(auditor);
  (void)engine.run();
  EXPECT_NEAR(auditor.cursor, 15.0, 1e-9);
}

TEST(EnginePolicy, LevelsAreContinuousAcrossSegments) {
  Scenario s;
  s.jobs = {job(0, 0.0, 20.0, 5.0)};
  s.source = std::make_shared<energy::ConstantSource>(1.0);
  s.capacity = 12.0;
  s.initial = 6.0;
  s.config.horizon = 25.0;

  class ContinuityAuditor final : public SimObserver {
   public:
    bool first = true;
    Energy last_level = 0.0;
    void on_segment(const SegmentRecord& rec) override {
      if (!first) EXPECT_NEAR(rec.level_start, last_level, 1e-9);
      last_level = rec.level_end;
      first = false;
    }
  } auditor;

  auto source = s.source;
  energy::StorageConfig storage_cfg;
  storage_cfg.capacity = s.capacity;
  storage_cfg.initial = s.initial;
  energy::EnergyStorage storage(storage_cfg);
  proc::Processor processor(s.table);
  energy::OraclePredictor predictor(source);
  sched::EdfScheduler edf;
  task::JobReleaser releaser(s.jobs);
  Engine engine(s.config, *source, storage, processor, predictor, edf, releaser);
  engine.observers().add(auditor);
  (void)engine.run();
}

}  // namespace
}  // namespace eadvfs::sim
