#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eadvfs::sim {
namespace {

Event deadline(Time t, task::JobId job) {
  return {t, EventType::kDeadline, job, 0};
}

Event probe(Time t, std::uint64_t tag = 0) {
  return {t, EventType::kProbe, 0, tag};
}

TEST(EventQueue, EmptyQueueBehaviour) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_GE(q.next_time(), 1e250);
  EXPECT_THROW((void)q.peek(), std::logic_error);
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(deadline(30.0, 1));
  q.push(deadline(10.0, 2));
  q.push(deadline(20.0, 3));
  EXPECT_DOUBLE_EQ(q.pop().time, 10.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 20.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 30.0);
}

TEST(EventQueue, NextTimePeeksWithoutRemoving) {
  EventQueue q;
  q.push(deadline(5.0, 1));
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.peek().job, 1u);
}

TEST(EventQueue, TieBreakDeadlinesBeforeProbes) {
  EventQueue q;
  q.push(probe(7.0, 9));
  q.push(deadline(7.0, 4));
  EXPECT_EQ(q.pop().type, EventType::kDeadline);
  EXPECT_EQ(q.pop().type, EventType::kProbe);
}

TEST(EventQueue, TieBreakByJobIdIsDeterministic) {
  EventQueue q;
  q.push(deadline(7.0, 9));
  q.push(deadline(7.0, 2));
  EXPECT_EQ(q.pop().job, 2u);
  EXPECT_EQ(q.pop().job, 9u);
}

TEST(EventQueue, PopDueReturnsAllAtOrBeforeNow) {
  EventQueue q;
  q.push(deadline(1.0, 1));
  q.push(deadline(2.0, 2));
  q.push(deadline(3.0, 3));
  const auto due = q.pop_due(2.0);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].job, 1u);
  EXPECT_EQ(due[1].job, 2u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PopDueIsEpsilonTolerant) {
  EventQueue q;
  q.push(deadline(2.0 + 0.5e-9, 1));
  EXPECT_EQ(q.pop_due(2.0).size(), 1u);
}

TEST(EventQueue, PopDueOnEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.pop_due(100.0).empty());
}

TEST(EventQueue, ClearEmptiesQueue) {
  EventQueue q;
  q.push(deadline(1.0, 1));
  q.push(probe(2.0));
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StressOrderingWithManyEvents) {
  EventQueue q;
  for (int i = 999; i >= 0; --i)
    q.push(deadline(static_cast<double>(i % 100), static_cast<task::JobId>(i)));
  Time last = -1.0;
  while (!q.empty()) {
    const Event e = q.pop();
    EXPECT_GE(e.time, last);
    last = e.time;
  }
}

}  // namespace
}  // namespace eadvfs::sim
