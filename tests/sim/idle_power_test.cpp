/// Tests for the idle-power model: constant draw while not executing,
/// exact storage crossings on idle segments, and brownout accounting when
/// the harvest cannot even cover the idle draw.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "../support/scenario.hpp"
#include "sched/edf_scheduler.hpp"
#include "sim/engine.hpp"

namespace eadvfs::sim {
namespace {

using test::job;

SimulationResult run_idle_scenario(Power idle_power, Power harvest,
                                   Energy capacity, Energy initial,
                                   Time horizon,
                                   std::vector<task::Job> jobs = {},
                                   EnergyTraceRecorder* trace = nullptr) {
  auto source = std::make_shared<energy::ConstantSource>(harvest);
  energy::StorageConfig storage_cfg;
  storage_cfg.capacity = capacity;
  storage_cfg.initial = initial;
  energy::EnergyStorage storage(storage_cfg);
  proc::Processor processor(proc::FrequencyTable::xscale(), {}, idle_power);
  energy::OraclePredictor predictor(source);
  sched::EdfScheduler edf;
  task::JobReleaser releaser(std::move(jobs));
  SimulationConfig cfg;
  cfg.horizon = horizon;
  Engine engine(cfg, *source, storage, processor, predictor, edf, releaser);
  if (trace != nullptr) engine.observers().add(*trace);
  return engine.run();
}

TEST(IdlePower, DrainsStorageWhileIdle) {
  // No jobs, no harvest, idle draw 0.05: level falls 100 -> 95 over 100.
  const auto result = run_idle_scenario(0.05, 0.0, 200.0, 100.0, 100.0);
  EXPECT_NEAR(result.storage_final, 95.0, 1e-9);
  EXPECT_NEAR(result.consumed, 5.0, 1e-9);
  EXPECT_LT(result.conservation_error(), 1e-6);
  EXPECT_DOUBLE_EQ(result.brownout_time, 0.0);
}

TEST(IdlePower, ZeroIdlePowerMatchesPaperModel) {
  const auto result = run_idle_scenario(0.0, 0.0, 200.0, 100.0, 100.0);
  EXPECT_NEAR(result.storage_final, 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(result.consumed, 0.0);
}

TEST(IdlePower, HarvestAboveIdleDrawStillCharges) {
  // Net +0.15 from empty: level reaches 15 at t=100.
  const auto result = run_idle_scenario(0.05, 0.2, 200.0, 0.0, 100.0);
  EXPECT_NEAR(result.storage_final, 15.0, 1e-9);
  EXPECT_NEAR(result.consumed, 5.0, 1e-9);
  EXPECT_LT(result.conservation_error(), 1e-6);
}

TEST(IdlePower, BrownoutWhenHarvestBelowIdleDraw) {
  // Empty storage, harvest 0.01 < idle 0.05: the node browns out; it eats
  // the harvest directly and the level stays at zero.
  const auto result = run_idle_scenario(0.05, 0.01, 200.0, 0.0, 100.0);
  EXPECT_NEAR(result.storage_final, 0.0, 1e-9);
  EXPECT_NEAR(result.consumed, 1.0, 1e-9);  // exactly the harvested energy
  EXPECT_NEAR(result.brownout_time, 100.0, 1e-6);
  EXPECT_LT(result.conservation_error(), 1e-6);
}

TEST(IdlePower, DrainThenBrownoutCrossingIsExact) {
  // Level 2 draining at net 0.04 (idle 0.05, harvest 0.01): empty at t=50,
  // brownout for the remaining 50.
  EnergyTraceRecorder trace(10.0, 100.0);
  const auto result =
      run_idle_scenario(0.05, 0.01, 200.0, 2.0, 100.0, {}, &trace);
  EXPECT_NEAR(result.brownout_time, 50.0, 1e-6);
  EXPECT_NEAR(trace.levels()[3], 2.0 - 0.04 * 30.0, 1e-9);  // t=30
  EXPECT_NEAR(trace.levels()[5], 0.0, 1e-9);                // t=50
  EXPECT_NEAR(trace.levels()[8], 0.0, 1e-9);                // t=80
}

TEST(IdlePower, ChargedDuringExecutionGapsOnly) {
  // One short job at t=0; idle draw applies before/after, active power
  // applies during.  Job: 1 work at f_max -> [0,1) at 3.2 W; idle 0.1 W
  // for the remaining 9 units.
  std::vector<task::Job> jobs = {job(0, 0.0, 5.0, 1.0)};
  const auto result =
      run_idle_scenario(0.07, 0.0, 200.0, 100.0, 10.0, std::move(jobs));
  EXPECT_NEAR(result.consumed, 3.2 + 0.07 * 9.0, 1e-9);
  EXPECT_LT(result.conservation_error(), 1e-6);
}

TEST(IdlePower, ValidationRejectsNonsense) {
  EXPECT_THROW(proc::Processor(proc::FrequencyTable::xscale(), {}, -0.1),
               std::invalid_argument);
  // Idle draw above the slowest active point would mean "running is cheaper
  // than waiting" — reject as a configuration error.
  EXPECT_THROW(proc::Processor(proc::FrequencyTable::xscale(), {}, 0.09),
               std::invalid_argument);
}

TEST(IdlePower, StallSegmentsAlsoPayIdleDraw) {
  // A job that cannot run (empty storage, harvest below f_max demand but
  // above idle draw): the stall interval still consumes the idle power.
  std::vector<task::Job> jobs = {job(0, 0.0, 100.0, 50.0)};
  const auto result =
      run_idle_scenario(0.04, 0.05, 200.0, 0.0, 10.0, std::move(jobs));
  // Harvest 0.05, idle 0.04: net +0.01 while stalled; periodically the
  // engine re-tries (stall_wakeup) and burns the accumulated trickle on a
  // brief full-power burst.  All of it must balance.
  EXPECT_LT(result.conservation_error(), 1e-6);
  EXPECT_GT(result.stall_time, 0.0);
}

}  // namespace
}  // namespace eadvfs::sim
