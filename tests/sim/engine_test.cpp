#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "../support/scenario.hpp"
#include "sched/edf_scheduler.hpp"
#include "util/math.hpp"

namespace eadvfs::sim {
namespace {

using test::job;
using test::run_scenario;
using test::Scenario;

TEST(Engine, SingleJobCompletesAtFullSpeed) {
  Scenario s;
  s.jobs = {job(0, 0.0, 10.0, 4.0)};
  s.source = std::make_shared<energy::ConstantSource>(5.0);
  s.config.horizon = 20.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_released, 1u);
  EXPECT_EQ(out.result.jobs_completed, 1u);
  EXPECT_EQ(out.result.jobs_missed, 0u);
  EXPECT_NEAR(out.result.busy_time, 4.0, 1e-9);
  EXPECT_NEAR(out.result.work_completed, 4.0, 1e-9);
  // EDF runs at f_max: the completion slice ends at t = 4.
  ASSERT_FALSE(out.schedule.slices().empty());
  EXPECT_NEAR(out.schedule.slices().back().end, 4.0, 1e-9);
}

TEST(Engine, EdfPreemptsForEarlierDeadline) {
  Scenario s;
  // Long job with late deadline; short job arrives at t=2 with a tight one.
  s.jobs = {job(0, 0.0, 100.0, 10.0), job(1, 2.0, 3.0, 1.0)};
  s.source = std::make_shared<energy::ConstantSource>(5.0);
  s.config.horizon = 30.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_completed, 2u);
  // Job 1 must have executed in [2, 3] (preempting job 0).
  const auto slices = out.schedule.slices_of(1);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_NEAR(slices[0].start, 2.0, 1e-9);
  EXPECT_NEAR(slices[0].end, 3.0, 1e-9);
  // Job 0 resumes and finishes at 11 (10 work + 1 preempted).
  EXPECT_NEAR(out.schedule.slices_of(0).back().end, 11.0, 1e-9);
}

TEST(Engine, NoEnergyNoHarvestMeansMiss) {
  Scenario s;
  s.jobs = {job(0, 0.0, 5.0, 1.0)};
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.initial = 0.0;
  s.config.horizon = 10.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_missed, 1u);
  EXPECT_EQ(out.result.jobs_completed, 0u);
  EXPECT_NEAR(out.result.work_dropped, 1.0, 1e-9);
  EXPECT_GT(out.result.stall_time, 0.0);
  EXPECT_DOUBLE_EQ(out.result.busy_time, 0.0);
}

TEST(Engine, StallRecoversWhenHarvestAccumulates) {
  // 1 W harvest, empty storage, job needs f_max (3.2 W): the engine must
  // duty-cycle (stall, bank energy, burst) and still finish the job.
  Scenario s;
  s.jobs = {job(0, 0.0, 50.0, 4.0)};
  s.source = std::make_shared<energy::ConstantSource>(1.0);
  s.initial = 0.0;
  s.capacity = 100.0;
  s.config.horizon = 60.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_completed, 1u);
  EXPECT_GT(out.result.stall_time, 0.0);
  // Energy argument: 4 work at 3.2 W needs 12.8; at 1 W that takes >= 12.8
  // time units of harvesting, so completion cannot be before t = 12.8.
  const auto slices = out.schedule.slices_of(0);
  ASSERT_FALSE(slices.empty());
  EXPECT_GE(slices.back().end, 12.8 - 1e-6);
}

TEST(Engine, DropPolicyRemovesLateJob) {
  Scenario s;
  s.jobs = {job(0, 0.0, 2.0, 1.0)};
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.initial = 0.0;
  s.config.horizon = 10.0;
  s.config.miss_policy = MissPolicy::kDropAtDeadline;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_missed, 1u);
  // After the drop nothing remains to execute even after energy arrives.
  EXPECT_DOUBLE_EQ(out.result.work_completed, 0.0);
}

TEST(Engine, ContinuePolicyFinishesLate) {
  Scenario s;
  s.jobs = {job(0, 0.0, 2.0, 1.0)};
  // No energy until the storage bank fills from 1 W harvest.
  s.source = std::make_shared<energy::ConstantSource>(1.0);
  s.initial = 0.0;
  s.config.horizon = 30.0;
  s.config.miss_policy = MissPolicy::kContinueLate;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_missed, 1u);
  EXPECT_EQ(out.result.jobs_completed_late, 1u);
  EXPECT_EQ(out.result.jobs_completed, 0u);
  EXPECT_NEAR(out.result.work_completed, 1.0, 1e-9);
}

TEST(Engine, UnresolvedJobsAtHorizon) {
  Scenario s;
  s.jobs = {job(0, 0.0, 100.0, 50.0)};  // deadline beyond horizon
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.initial = 10.0;
  s.config.horizon = 10.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_unresolved, 1u);
  EXPECT_EQ(out.result.jobs_missed, 0u);
  EXPECT_DOUBLE_EQ(out.result.miss_rate(), 0.0);
}

TEST(Engine, CompletionExactlyAtDeadlineCountsOnTime) {
  Scenario s;
  s.jobs = {job(0, 0.0, 4.0, 4.0)};  // needs the whole window at f_max
  s.source = std::make_shared<energy::ConstantSource>(5.0);
  s.config.horizon = 10.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_completed, 1u);
  EXPECT_EQ(out.result.jobs_missed, 0u);
}

TEST(Engine, TimeAtOpTracksResidency) {
  Scenario s;
  s.jobs = {job(0, 0.0, 10.0, 2.0)};
  s.source = std::make_shared<energy::ConstantSource>(5.0);
  s.config.horizon = 10.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  ASSERT_EQ(out.result.time_at_op.size(), 5u);
  EXPECT_NEAR(out.result.time_at_op[4], 2.0, 1e-9);  // all time at f_max
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(out.result.time_at_op[i], 0.0);
}

TEST(Engine, ZeroWcetJobCompletesImmediately) {
  Scenario s;
  s.jobs = {job(0, 1.0, 5.0, 0.0)};
  s.source = std::make_shared<energy::ConstantSource>(1.0);
  s.config.horizon = 10.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_completed, 1u);
}

TEST(Engine, SwitchOverheadConsumesTimeAndEnergy) {
  Scenario s;
  s.jobs = {job(0, 0.0, 10.0, 2.0)};
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.capacity = 100.0;
  s.overhead = {0.5, 1.0};
  s.config.horizon = 10.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_completed, 1u);
  // One switch (slowest -> f_max) delays the start by 0.5.
  EXPECT_NEAR(out.schedule.slices_of(0).front().start, 0.5, 1e-9);
  // Consumption = 2 * 3.2 (execution) + 1.0 (transition).
  EXPECT_NEAR(out.result.consumed, 2.0 * 3.2 + 1.0, 1e-9);
  EXPECT_EQ(out.result.frequency_switches, 1u);
  EXPECT_NEAR(out.result.stall_time, 0.5, 1e-9);
}

/// Scheduler that returns a job id that is not ready — engine must reject.
class BogusScheduler final : public Scheduler {
 public:
  Decision decide(const SchedulingContext&) override {
    return Decision::run(9999, 0);
  }
  std::string name() const override { return "bogus"; }
};

TEST(Engine, RejectsDecisionForUnknownJob) {
  Scenario s;
  s.jobs = {job(0, 0.0, 10.0, 1.0)};
  s.source = std::make_shared<energy::ConstantSource>(1.0);
  s.config.horizon = 5.0;
  BogusScheduler bogus;
  EXPECT_THROW((void)run_scenario(std::move(s), bogus), std::logic_error);
}

TEST(Engine, RunIsSingleShot) {
  auto source = std::make_shared<energy::ConstantSource>(1.0);
  energy::EnergyStorage storage = energy::EnergyStorage::ideal(10.0);
  proc::Processor processor(proc::FrequencyTable::xscale());
  energy::OraclePredictor predictor(source);
  sched::EdfScheduler edf;
  task::JobReleaser releaser(std::vector<task::Job>{});
  SimulationConfig cfg;
  cfg.horizon = 1.0;
  Engine engine(cfg, *source, storage, processor, predictor, edf, releaser);
  (void)engine.run();
  EXPECT_THROW((void)engine.run(), std::logic_error);
}

TEST(Engine, ConfigValidation) {
  auto source = std::make_shared<energy::ConstantSource>(1.0);
  energy::EnergyStorage storage = energy::EnergyStorage::ideal(10.0);
  proc::Processor processor(proc::FrequencyTable::xscale());
  energy::OraclePredictor predictor(source);
  sched::EdfScheduler edf;
  task::JobReleaser releaser(std::vector<task::Job>{});
  SimulationConfig bad;
  bad.horizon = 0.0;
  EXPECT_THROW(Engine(bad, *source, storage, processor, predictor, edf, releaser),
               std::invalid_argument);
  bad = SimulationConfig{};
  bad.stall_wakeup = 0.0;
  EXPECT_THROW(Engine(bad, *source, storage, processor, predictor, edf, releaser),
               std::invalid_argument);
}

TEST(Engine, SegmentBudgetGuardFires) {
  Scenario s;
  s.task_set = task::TaskSet({[] {
    task::Task t;
    t.id = 0;
    t.period = 1.0;
    t.relative_deadline = 1.0;
    t.wcet = 0.5;
    return t;
  }()});
  s.source = std::make_shared<energy::ConstantSource>(5.0);
  s.config.horizon = 1000.0;
  s.config.max_segments = 10;  // absurdly small
  sched::EdfScheduler edf;
  EXPECT_THROW((void)run_scenario(std::move(s), edf), std::runtime_error);
}

}  // namespace
}  // namespace eadvfs::sim
