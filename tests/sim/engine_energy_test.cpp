/// Energy-physics tests for the engine: conservation, overflow, storage
/// crossings, and the paper's inequalities (1), (3), (4) observed end to end.

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"
#include "energy/running_average_predictor.hpp"
#include "energy/two_mode_source.hpp"
#include "sched/edf_scheduler.hpp"
#include "sim/engine.hpp"

namespace eadvfs::sim {
namespace {

using test::job;
using test::run_scenario;
using test::Scenario;

TEST(EngineEnergy, ConservationOnIdleSystem) {
  Scenario s;  // no jobs at all
  s.source = std::make_shared<energy::ConstantSource>(2.0);
  s.capacity = 1000.0;
  s.initial = 0.0;
  s.config.horizon = 100.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_NEAR(out.result.harvested, 200.0, 1e-9);
  EXPECT_NEAR(out.result.storage_final, 200.0, 1e-9);
  EXPECT_DOUBLE_EQ(out.result.consumed, 0.0);
  EXPECT_LT(out.result.conservation_error(), 1e-6);
  EXPECT_NEAR(out.result.idle_time, 100.0, 1e-9);
}

TEST(EngineEnergy, OverflowWhenStorageFull) {
  Scenario s;
  s.source = std::make_shared<energy::ConstantSource>(2.0);
  s.capacity = 50.0;
  s.initial = 0.0;
  s.config.horizon = 100.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  // Fills at t=25, then 75 time units of 2 W are discarded.
  EXPECT_NEAR(out.result.overflow, 150.0, 1e-9);
  EXPECT_NEAR(out.result.storage_final, 50.0, 1e-9);
  EXPECT_LT(out.result.conservation_error(), 1e-6);
}

TEST(EngineEnergy, StorageLevelNeverExceedsCapacity) {
  Scenario s;
  s.source = std::make_shared<energy::ConstantSource>(3.0);
  s.capacity = 10.0;
  s.initial = 0.0;
  s.config.horizon = 50.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  for (Energy level : out.energy_trace.levels()) {
    EXPECT_GE(level, -1e-9);               // paper: E_C >= 0
    EXPECT_LE(level, 10.0 + 1e-9);         // paper ineq. (1): E_C <= C
  }
}

TEST(EngineEnergy, TraceShowsExactFillInstant) {
  Scenario s;
  s.source = std::make_shared<energy::ConstantSource>(1.0);
  s.capacity = 10.0;
  s.initial = 0.0;
  s.config.horizon = 20.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  // Level ramps 0..10 over [0,10] then holds: sample grid is 1 time unit.
  EXPECT_NEAR(out.energy_trace.levels()[5], 5.0, 1e-9);
  EXPECT_NEAR(out.energy_trace.levels()[10], 10.0, 1e-9);
  EXPECT_NEAR(out.energy_trace.levels()[15], 10.0, 1e-9);
}

TEST(EngineEnergy, FullCrossingAccountsForChargeEfficiency) {
  // 2 W of harvest at 50% charge efficiency fills 10 J from empty at exactly
  // t = 10.  Regression caught by the differential oracle: the engine used
  // to predict the full crossing with the raw net power, ending the segment
  // at t = 5 with the storage only half full and then cascading into a
  // Zeno-like tail of shrinking segments — each one a spurious decision
  // point perturbing DVFS choices.
  Scenario s;
  s.source = std::make_shared<energy::ConstantSource>(2.0);
  s.capacity = 10.0;
  s.initial = 0.0;
  s.efficiency = 0.5;
  s.config.horizon = 20.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  // Exactly one charging segment [0, 10) and one saturated segment [10, 20).
  EXPECT_EQ(out.result.segments, 2u);
  EXPECT_NEAR(out.energy_trace.levels()[5], 5.0, 1e-9);
  EXPECT_NEAR(out.energy_trace.levels()[10], 10.0, 1e-9);
  // Conversion loss while charging (10 J) plus everything after saturation.
  EXPECT_NEAR(out.result.overflow, 30.0, 1e-9);
  EXPECT_LT(out.result.conservation_error(), 1e-6);
}

TEST(EngineEnergy, ConsumptionDrawsDownStorage) {
  Scenario s;
  s.jobs = {job(0, 0.0, 10.0, 2.0)};
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.capacity = 100.0;
  s.config.horizon = 10.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_NEAR(out.result.consumed, 6.4, 1e-9);  // 2 work * 3.2 W at f_max
  EXPECT_NEAR(out.result.storage_final, 100.0 - 6.4, 1e-9);
  EXPECT_LT(out.result.conservation_error(), 1e-6);
}

TEST(EngineEnergy, ExactStorageEmptyCrossing) {
  // Drain 3.2 W against 1.2 W harvest from level 4: empty at exactly t = 2.
  Scenario s;
  s.jobs = {job(0, 0.0, 100.0, 50.0)};  // long job, never finishes in horizon
  s.source = std::make_shared<energy::ConstantSource>(1.2);
  s.capacity = 100.0;
  s.initial = 4.0;
  s.config.horizon = 3.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  // Level at t=2 must be exactly 0 on the trace grid (samples each 1.0).
  EXPECT_NEAR(out.energy_trace.levels()[2], 0.0, 1e-9);
  EXPECT_GT(out.result.stall_time, 0.0);
}

TEST(EngineEnergy, HarvestPowersExecutionDirectlyWhenStorageEmpty) {
  // Harvest 0.5 W, storage empty, job at slowest point needs 0.08 W: the
  // processor can run straight off the harvester (net positive charge).
  Scenario s;
  s.jobs = {job(0, 0.0, 100.0, 10.0)};
  s.source = std::make_shared<energy::ConstantSource>(0.5);
  s.capacity = 50.0;
  s.initial = 0.0;
  s.table = proc::FrequencyTable(
      {{150, 0.15, 0.08}, {1000, 1.0, 3.2}});
  s.config.horizon = 60.0;

  // A scheduler that always picks the slowest point.
  class SlowestScheduler final : public Scheduler {
   public:
    Decision decide(const SchedulingContext& ctx) override {
      if (ctx.trace) ctx.trace->rule = "always-slowest";
      return Decision::run(ctx.edf_front().id, 0);
    }
    std::string name() const override { return "slowest"; }
  } slowest;

  const auto out = run_scenario(std::move(s), slowest);
  EXPECT_DOUBLE_EQ(out.result.stall_time, 0.0);
  EXPECT_GT(out.result.busy_time, 0.0);
  EXPECT_LT(out.result.conservation_error(), 1e-6);
}

TEST(EngineEnergy, TwoModeSourceConservation) {
  Scenario s;
  energy::TwoModeSourceConfig src_cfg;
  src_cfg.day_power = 4.0;
  src_cfg.night_power = 0.0;
  src_cfg.day_duration = 20.0;
  src_cfg.night_duration = 20.0;
  s.source = std::make_shared<energy::TwoModeSource>(src_cfg);
  s.jobs = {job(0, 0.0, 40.0, 8.0), job(1, 40.0, 40.0, 8.0)};
  s.capacity = 60.0;
  s.initial = 30.0;
  s.config.horizon = 80.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_NEAR(out.result.harvested, 4.0 * 40.0, 1e-9);
  EXPECT_LT(out.result.conservation_error(), 1e-6);
}

TEST(EngineEnergy, LeakageIsAccountedInConservation) {
  Scenario s;
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.capacity = 100.0;
  s.initial = 100.0;
  s.config.horizon = 10.0;
  sched::EdfScheduler edf;

  // Run with a leaky storage by constructing the engine manually.
  energy::StorageConfig storage_cfg;
  storage_cfg.capacity = 100.0;
  storage_cfg.leakage = 1.5;
  energy::EnergyStorage storage(storage_cfg);
  proc::Processor processor(proc::FrequencyTable::xscale());
  energy::OraclePredictor predictor(s.source);
  task::JobReleaser releaser(std::vector<task::Job>{});
  Engine engine(s.config, *s.source, storage, processor, predictor, edf,
                releaser);
  const SimulationResult result = engine.run();
  EXPECT_NEAR(result.leaked, 15.0, 1e-9);
  EXPECT_NEAR(result.storage_final, 85.0, 1e-9);
  EXPECT_LT(result.conservation_error(), 1e-6);
}

TEST(EngineEnergy, PredictorObservesGrossHarvest) {
  // Even with a full storage discarding everything, the predictor must see
  // the harvester's gross output, not the net-of-overflow amount.
  auto source = std::make_shared<energy::ConstantSource>(2.0);
  energy::EnergyStorage storage = energy::EnergyStorage::ideal(1.0);
  proc::Processor processor(proc::FrequencyTable::xscale());
  energy::RunningAveragePredictor predictor(0.0, 0.0);
  sched::EdfScheduler edf;
  task::JobReleaser releaser(std::vector<task::Job>{});
  SimulationConfig cfg;
  cfg.horizon = 50.0;
  Engine engine(cfg, *source, storage, processor, predictor, edf, releaser);
  (void)engine.run();
  EXPECT_NEAR(predictor.estimate(), 2.0, 1e-9);
}

}  // namespace
}  // namespace eadvfs::sim
