/// sim::ObserverSet — the engine's observer registry: borrowed and owned
/// registration, in-place construction, nullptr rejection, and dispatch in
/// registration order.  Also covers borrowed registration through the
/// engine's observers() front door (the former add_observer shim's job).

#include "sim/observer_set.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "energy/predictor.hpp"
#include "energy/source.hpp"
#include "energy/storage.hpp"
#include "proc/processor.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "task/releaser.hpp"

namespace eadvfs::sim {
namespace {

/// Appends its tag to a shared log on every hook, so dispatch order and
/// hook coverage are both visible.
class TaggedObserver final : public SimObserver {
 public:
  TaggedObserver(std::string tag, std::vector<std::string>& log)
      : tag_(std::move(tag)), log_(&log) {}

  void on_release(const task::Job&) override { log("release"); }
  void on_complete(const task::Job&, Time) override { log("complete"); }
  void on_miss(const task::Job&, Time) override { log("miss"); }
  void on_abort(const task::Job&, Time) override { log("abort"); }
  void on_segment(const SegmentRecord&) override { log("segment"); }
  void on_decision(const DecisionRecord&) override { log("decision"); }

 private:
  void log(const char* hook) { log_->push_back(tag_ + ":" + hook); }

  std::string tag_;
  std::vector<std::string>* log_;
};

TEST(ObserverSet, StartsEmpty) {
  ObserverSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
}

TEST(ObserverSet, BorrowedRegistrationDoesNotTakeOwnership) {
  std::vector<std::string> log;
  TaggedObserver a("a", log);
  ObserverSet set;
  set.add(a);
  EXPECT_EQ(set.size(), 1u);
  set.notify_segment(SegmentRecord{});
  EXPECT_EQ(log, (std::vector<std::string>{"a:segment"}));
}

TEST(ObserverSet, OwnedRegistrationKeepsObserverAlive) {
  std::vector<std::string> log;
  ObserverSet set;
  auto observer = std::make_unique<TaggedObserver>("owned", log);
  SimObserver& ref = set.add(std::move(observer));
  (void)ref;
  set.notify_decision(DecisionRecord{});
  EXPECT_EQ(log, (std::vector<std::string>{"owned:decision"}));
}

TEST(ObserverSet, AddRejectsNullptr) {
  ObserverSet set;
  EXPECT_THROW(set.add(std::unique_ptr<SimObserver>{}), std::invalid_argument);
  EXPECT_TRUE(set.empty());
}

TEST(ObserverSet, EmplaceReturnsTypedReference) {
  std::vector<std::string> log;
  ObserverSet set;
  TaggedObserver& ref = set.emplace<TaggedObserver>("e", log);
  (void)ref;  // typed: no cast needed to reach TaggedObserver members.
  EXPECT_EQ(set.size(), 1u);
  set.notify_release(task::Job{});
  EXPECT_EQ(log, (std::vector<std::string>{"e:release"}));
}

TEST(ObserverSet, DispatchesInRegistrationOrderAcrossStyles) {
  std::vector<std::string> log;
  TaggedObserver borrowed("first", log);
  ObserverSet set;
  set.add(borrowed);
  set.emplace<TaggedObserver>("second", log);
  set.add(std::make_unique<TaggedObserver>("third", log));
  set.notify_miss(task::Job{}, 1.0);
  EXPECT_EQ(log, (std::vector<std::string>{"first:miss", "second:miss",
                                           "third:miss"}));
}

TEST(ObserverSet, AllHooksReachEveryObserver) {
  std::vector<std::string> log;
  ObserverSet set;
  set.emplace<TaggedObserver>("o", log);
  set.notify_release(task::Job{});
  set.notify_complete(task::Job{}, 1.0);
  set.notify_miss(task::Job{}, 2.0);
  set.notify_abort(task::Job{}, 3.0);
  set.notify_segment(SegmentRecord{});
  set.notify_decision(DecisionRecord{});
  EXPECT_EQ(log, (std::vector<std::string>{"o:release", "o:complete", "o:miss",
                                           "o:abort", "o:segment",
                                           "o:decision"}));
}

TEST(EngineObservers, BorrowedRegistrationThroughObserverSet) {
  std::vector<std::string> log;
  TaggedObserver observer("borrowed", log);

  const energy::ConstantSource source(0.0);
  energy::StorageConfig storage_cfg;
  storage_cfg.capacity = 10.0;
  energy::EnergyStorage storage(storage_cfg);
  proc::Processor processor(proc::FrequencyTable::xscale());
  energy::ConstantPredictor predictor(0.0);
  const auto scheduler = sched::make_scheduler("edf");
  task::JobReleaser releaser(std::vector<task::Job>{});
  SimulationConfig config;
  config.horizon = 10.0;
  Engine engine(config, source, storage, processor, predictor, *scheduler,
                releaser);
  engine.observers().add(observer);
  EXPECT_EQ(engine.observers().size(), 1u);
  (void)engine.run();  // no jobs: nothing dispatched, but nothing crashes.
}

}  // namespace
}  // namespace eadvfs::sim
