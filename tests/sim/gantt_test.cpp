#include "sim/gantt.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"
#include "sched/factory.hpp"

namespace eadvfs::sim {
namespace {

using test::job;

SegmentRecord exec_segment(Time start, Time end, task::JobId id, std::size_t op) {
  SegmentRecord rec;
  rec.start = start;
  rec.end = end;
  rec.job = id;
  rec.op_index = op;
  return rec;
}

TEST(Gantt, RendersJobRowsWithOpGlyphs) {
  ScheduleRecorder rec;
  rec.on_segment(exec_segment(0.0, 5.0, 7, 0));
  rec.on_segment(exec_segment(5.0, 10.0, 8, 4));
  GanttOptions opts;
  opts.start = 0.0;
  opts.end = 10.0;
  opts.width = 10;
  const std::string art = render_gantt(rec, opts);
  EXPECT_NE(art.find("job   7 |00000     |"), std::string::npos) << art;
  EXPECT_NE(art.find("job   8 |     44444|"), std::string::npos) << art;
}

TEST(Gantt, AutoRangeCoversAllSlices) {
  ScheduleRecorder rec;
  rec.on_segment(exec_segment(2.0, 4.0, 1, 1));
  rec.on_segment(exec_segment(8.0, 12.0, 2, 2));
  const std::string art = render_gantt(rec);
  EXPECT_NE(art.find("t=[2, 12)"), std::string::npos) << art;
}

TEST(Gantt, ShowsOutcomesAndReleases) {
  ScheduleRecorder rec;
  task::Job j = job(3, 1.0, 9.0, 2.0);
  rec.on_release(j);
  rec.on_segment(exec_segment(1.0, 3.0, 3, 4));
  rec.on_complete(j, 3.0);
  task::Job dead = job(4, 0.0, 5.0, 2.0);
  rec.on_release(dead);
  rec.on_segment(exec_segment(3.0, 4.0, 4, 4));
  rec.on_miss(dead, 5.0);
  const std::string art = render_gantt(rec);
  EXPECT_NE(art.find("done@3"), std::string::npos) << art;
  EXPECT_NE(art.find("MISS@5"), std::string::npos) << art;
  EXPECT_NE(art.find("arr=1 dl=10"), std::string::npos) << art;
}

TEST(Gantt, DominantOpWinsTheBucket) {
  ScheduleRecorder rec;
  // Bucket [0,10): 3 units at op 1, 7 units at op 3 -> glyph '3'.
  rec.on_segment(exec_segment(0.0, 3.0, 1, 1));
  rec.on_segment(exec_segment(3.0, 10.0, 1, 3));
  GanttOptions opts;
  opts.start = 0.0;
  opts.end = 10.0;
  opts.width = 1;
  const std::string art = render_gantt(rec, opts);
  EXPECT_NE(art.find("|3|"), std::string::npos) << art;
}

TEST(Gantt, EmptyRecordingStillRenders) {
  ScheduleRecorder rec;
  const std::string art = render_gantt(rec);
  EXPECT_NE(art.find("t=["), std::string::npos);
}

TEST(Gantt, EndToEndFromEngineRun) {
  test::Scenario s;
  s.jobs = {job(0, 0.0, 16.0, 4.0), job(1, 5.0, 12.0, 1.5)};
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.capacity = 1000.0;
  s.initial = 32.0;
  s.table = proc::FrequencyTable({{250, 0.25, 1.0}, {1000, 1.0, 8.0}});
  s.config.horizon = 20.0;
  const auto scheduler = sched::make_scheduler("ea-dvfs");
  const auto out = test::run_scenario(std::move(s), *scheduler);
  GanttOptions opts;
  opts.start = 0.0;
  opts.end = 20.0;
  opts.width = 40;
  const std::string art = render_gantt(out.schedule, opts);
  // Both jobs appear, both complete (the §4.3 example).
  EXPECT_NE(art.find("job   0"), std::string::npos) << art;
  EXPECT_NE(art.find("job   1"), std::string::npos) << art;
  EXPECT_EQ(art.find("MISS"), std::string::npos) << art;
  // The stretched phase (op 0) and the full-speed phase (op 1) both show.
  EXPECT_NE(art.find('0'), std::string::npos);
  EXPECT_NE(art.find('1'), std::string::npos);
}

}  // namespace
}  // namespace eadvfs::sim
