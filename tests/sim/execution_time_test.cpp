/// Tests for the actual-vs-worst-case execution model (the slack that
/// dynamic policies can reclaim).

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"
#include "sched/edf_scheduler.hpp"
#include "sched/factory.hpp"
#include "task/releaser.hpp"

namespace eadvfs::sim {
namespace {

using test::job;
using test::run_scenario;
using test::Scenario;

task::Task periodic(task::TaskId id, Time period, Work wcet) {
  task::Task t;
  t.id = id;
  t.period = period;
  t.relative_deadline = period;
  t.wcet = wcet;
  return t;
}

TEST(ExecutionTimeModel, DefaultActualEqualsWcet) {
  task::JobReleaser releaser(task::TaskSet({periodic(0, 10, 2)}), 30.0);
  const auto jobs = releaser.release_due(0.0);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].actual_work, 2.0);
  EXPECT_DOUBLE_EQ(jobs[0].actual_remaining, 2.0);
}

TEST(ExecutionTimeModel, FractionBoundsActualWork) {
  task::ExecutionTimeModel model;
  model.bcet_fraction = 0.5;
  model.seed = 3;
  task::JobReleaser releaser(task::TaskSet({periodic(0, 10, 2)}), 500.0, model);
  while (!releaser.exhausted()) {
    for (const auto& j : releaser.release_due(releaser.next_arrival())) {
      EXPECT_GE(j.actual_work, 1.0 - 1e-12);
      EXPECT_LE(j.actual_work, 2.0 + 1e-12);
      EXPECT_DOUBLE_EQ(j.remaining, 2.0);  // budget still the WCET
    }
  }
}

TEST(ExecutionTimeModel, DrawsAreDeterministicPerSeed) {
  task::ExecutionTimeModel model;
  model.bcet_fraction = 0.25;
  model.seed = 9;
  auto collect = [&] {
    task::JobReleaser releaser(task::TaskSet({periodic(0, 10, 2)}), 200.0, model);
    std::vector<double> actuals;
    while (!releaser.exhausted())
      for (const auto& j : releaser.release_due(releaser.next_arrival()))
        actuals.push_back(j.actual_work);
    return actuals;
  };
  EXPECT_EQ(collect(), collect());
}

TEST(ExecutionTimeModel, InvalidFractionThrows) {
  task::ExecutionTimeModel model;
  model.bcet_fraction = 0.0;
  EXPECT_THROW(
      task::JobReleaser(task::TaskSet({periodic(0, 10, 2)}), 100.0, model),
      std::invalid_argument);
  model.bcet_fraction = 1.5;
  EXPECT_THROW(
      task::JobReleaser(task::TaskSet({periodic(0, 10, 2)}), 100.0, model),
      std::invalid_argument);
}

TEST(ExecutionTimeModel, ExplicitJobActualWorkRespected) {
  task::Job j = job(0, 0.0, 10.0, 4.0);
  j.actual_work = 1.0;
  task::JobReleaser releaser(std::vector<task::Job>{j});
  const auto released = releaser.release_due(0.0);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_DOUBLE_EQ(released[0].actual_work, 1.0);
  EXPECT_DOUBLE_EQ(released[0].remaining, 4.0);
}

TEST(ExecutionTimeModel, ExplicitJobActualAboveWcetRejected) {
  task::Job j = job(0, 0.0, 10.0, 4.0);
  j.actual_work = 5.0;
  EXPECT_THROW(task::JobReleaser{std::vector<task::Job>{j}},
               std::invalid_argument);
}

TEST(EngineWithActualTimes, JobCompletesWhenActualWorkDone) {
  Scenario s;
  task::Job j = job(0, 0.0, 10.0, 4.0);
  j.actual_work = 1.0;  // finishes at t=1 at full speed, not t=4
  s.jobs = {j};
  s.source = std::make_shared<energy::ConstantSource>(5.0);
  s.config.horizon = 15.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_completed, 1u);
  ASSERT_FALSE(out.schedule.slices().empty());
  EXPECT_NEAR(out.schedule.slices().back().end, 1.0, 1e-9);
  EXPECT_NEAR(out.result.work_completed, 1.0, 1e-9);
  EXPECT_NEAR(out.result.consumed, 3.2, 1e-9);  // 1 work at f_max
}

TEST(EngineWithActualTimes, EarlyCompletionFreesEnergyForSuccessor) {
  // Storage 9 with no harvest.  Two jobs with WCET 2 each would need
  // 2 * 2 * 3.2 = 12.8 > 9 at full speed; job 0 actually needs only 0.5,
  // so the pair needs 2.5 * 3.2 = 8 <= 9 and job 1 completes.
  Scenario s;
  task::Job j0 = job(0, 0.0, 5.0, 2.0);
  j0.actual_work = 0.5;
  task::Job j1 = job(1, 0.0, 10.0, 2.0);
  s.jobs = {j0, j1};
  s.source = std::make_shared<energy::ConstantSource>(0.0);
  s.capacity = 1000.0;
  s.initial = 9.0;
  s.config.horizon = 15.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_completed, 2u);
  EXPECT_NEAR(out.result.consumed, 2.5 * 3.2, 1e-9);
}

TEST(EngineWithActualTimes, EaDvfsReclaimsSlackIntoDeeperSlowdown) {
  // Same paired workload, run under EA-DVFS with bcet 0.5 vs 1.0: with
  // early completions the scheduler spends less energy overall.
  auto run_with = [](double bcet) {
    task::ExecutionTimeModel model;
    model.bcet_fraction = bcet;
    model.seed = 5;
    task::JobReleaser releaser(
        task::TaskSet({periodic(0, 20, 6), periodic(1, 30, 6)}), 600.0, model);
    auto source = std::make_shared<energy::ConstantSource>(2.0);
    energy::EnergyStorage storage = energy::EnergyStorage::ideal(40.0);
    proc::Processor processor(proc::FrequencyTable::xscale());
    energy::OraclePredictor predictor(source);
    const auto scheduler = sched::make_scheduler("ea-dvfs");
    SimulationConfig cfg;
    cfg.horizon = 600.0;
    Engine engine(cfg, *source, storage, processor, predictor, *scheduler,
                  releaser);
    return engine.run();
  };
  const auto full = run_with(1.0);
  const auto early = run_with(0.5);
  EXPECT_LT(early.consumed, full.consumed);
  EXPECT_LE(early.jobs_missed, full.jobs_missed);
}

TEST(EngineWithActualTimes, ConservationHoldsWithEarlyCompletions) {
  task::ExecutionTimeModel model;
  model.bcet_fraction = 0.3;
  model.seed = 21;
  task::JobReleaser releaser(
      task::TaskSet({periodic(0, 10, 3), periodic(1, 25, 5)}), 500.0, model);
  auto source = std::make_shared<energy::ConstantSource>(1.5);
  energy::EnergyStorage storage = energy::EnergyStorage::ideal(30.0);
  proc::Processor processor(proc::FrequencyTable::xscale());
  energy::OraclePredictor predictor(source);
  const auto scheduler = sched::make_scheduler("ea-dvfs");
  SimulationConfig cfg;
  cfg.horizon = 500.0;
  Engine engine(cfg, *source, storage, processor, predictor, *scheduler,
                releaser);
  const auto result = engine.run();
  EXPECT_LT(result.conservation_error(), 1e-6);
  EXPECT_EQ(result.jobs_released,
            result.jobs_completed + result.jobs_missed + result.jobs_unresolved);
}

}  // namespace
}  // namespace eadvfs::sim
