/// Preemption-chain and determinism edge cases for the engine.

#include <gtest/gtest.h>

#include <memory>

#include "../support/scenario.hpp"
#include "sched/edf_scheduler.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"

namespace eadvfs::sim {
namespace {

using test::job;
using test::run_scenario;
using test::Scenario;

TEST(EnginePreemption, NestedPreemptionChainUnwindsInOrder) {
  // Three jobs arriving with successively tighter deadlines: each preempts
  // the previous; completions unwind inner-first.
  Scenario s;
  s.jobs = {job(0, 0.0, 100.0, 10.0),  // outer
            job(1, 2.0, 20.0, 4.0),    // middle
            job(2, 3.0, 5.0, 1.0)};    // inner
  s.source = std::make_shared<energy::ConstantSource>(10.0);
  s.capacity = 1e6;
  s.config.horizon = 60.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_completed, 3u);
  // inner runs [3,4]; middle [2,3] and [4,7]; outer [0,2] and [7,15].
  const auto inner = out.schedule.slices_of(2);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_NEAR(inner[0].start, 3.0, 1e-9);
  EXPECT_NEAR(inner[0].end, 4.0, 1e-9);
  const auto middle = out.schedule.slices_of(1);
  ASSERT_EQ(middle.size(), 2u);
  EXPECT_NEAR(middle[1].end, 7.0, 1e-9);
  const auto outer = out.schedule.slices_of(0);
  ASSERT_EQ(outer.size(), 2u);
  EXPECT_NEAR(outer[1].end, 15.0, 1e-9);
}

TEST(EnginePreemption, PreemptedWorkIsNotLost) {
  Scenario s;
  s.jobs = {job(0, 0.0, 50.0, 5.0), job(1, 1.0, 3.0, 1.0)};
  s.source = std::make_shared<energy::ConstantSource>(10.0);
  s.capacity = 1e6;
  s.config.horizon = 30.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  // Job 0 executes 1 + 4 units (preempted for exactly 1 unit).
  EXPECT_NEAR(out.schedule.executed_time(0), 5.0, 1e-9);
  EXPECT_NEAR(out.schedule.slices_of(0).back().end, 6.0, 1e-9);
}

TEST(EnginePreemption, EqualDeadlinesDoNotThrash) {
  // Two jobs with identical absolute deadlines: the EDF tie-break (arrival,
  // then id) must hold one winner; the loser runs after it completes, not
  // interleaved.
  Scenario s;
  s.jobs = {job(0, 0.0, 10.0, 2.0), job(1, 0.0, 10.0, 2.0)};
  s.source = std::make_shared<energy::ConstantSource>(10.0);
  s.capacity = 1e6;
  s.config.horizon = 20.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_completed, 2u);
  ASSERT_EQ(out.schedule.slices().size(), 2u);
  EXPECT_EQ(out.schedule.slices()[0].job, 0u);  // earlier id wins the tie
  EXPECT_NEAR(out.schedule.slices()[0].end, 2.0, 1e-9);
  EXPECT_EQ(out.schedule.slices()[1].job, 1u);
}

TEST(EnginePreemption, ArrivalAtExactCompletionInstant) {
  // Job 1 arrives exactly when job 0 completes: no zero-length segment, no
  // double-execution.
  Scenario s;
  s.jobs = {job(0, 0.0, 10.0, 2.0), job(1, 2.0, 10.0, 1.0)};
  s.source = std::make_shared<energy::ConstantSource>(10.0);
  s.capacity = 1e6;
  s.config.horizon = 20.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  EXPECT_EQ(out.result.jobs_completed, 2u);
  EXPECT_NEAR(out.schedule.slices_of(1).front().start, 2.0, 1e-9);
}

TEST(EnginePreemption, EaDvfsPreemptionReplansAtArrival) {
  // EA-DVFS running job 0 stretched must re-decide when a tighter job
  // arrives, run it (possibly at another point), then return.
  Scenario s;
  s.jobs = {job(0, 0.0, 40.0, 4.0), job(1, 5.0, 6.0, 2.0)};
  s.source = std::make_shared<energy::ConstantSource>(0.3);
  s.capacity = 1000.0;
  s.initial = 12.0;
  s.config.horizon = 50.0;
  const auto scheduler = sched::make_scheduler("ea-dvfs");
  const auto out = run_scenario(std::move(s), *scheduler);
  EXPECT_EQ(out.result.jobs_missed, 0u);
  EXPECT_EQ(out.result.jobs_completed, 2u);
  // Job 1 executed entirely inside its [5, 11] window.
  for (const auto& slice : out.schedule.slices_of(1)) {
    EXPECT_GE(slice.start, 5.0 - 1e-9);
    EXPECT_LE(slice.end, 11.0 + 1e-9);
  }
}

TEST(EnginePreemption, ManyJobsSameInstantDeterministicOrder) {
  Scenario s;
  for (task::JobId i = 0; i < 8; ++i)
    s.jobs.push_back(job(i, 0.0, 100.0 - static_cast<double>(i), 1.0));
  s.source = std::make_shared<energy::ConstantSource>(10.0);
  s.capacity = 1e6;
  s.config.horizon = 30.0;
  sched::EdfScheduler edf;
  const auto out = run_scenario(std::move(s), edf);
  ASSERT_EQ(out.schedule.slices().size(), 8u);
  // Tightest deadline (highest id here) first.
  for (std::size_t k = 0; k < 8; ++k)
    EXPECT_EQ(out.schedule.slices()[k].job, 7u - k);
}

}  // namespace
}  // namespace eadvfs::sim
