/// Unit tests for the fault-injection subsystem (src/sim/fault): profile
/// parsing and validation, seeded schedule realization and its determinism
/// contract, the source/predictor decorators, the storage fault primitives,
/// and engine-level fault application with the auditor attached.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "energy/predictor.hpp"
#include "energy/source.hpp"
#include "energy/storage.hpp"
#include "proc/frequency_table.hpp"
#include "proc/processor.hpp"
#include "sched/factory.hpp"
#include "sim/config.hpp"
#include "sim/fault/faulted_predictor.hpp"
#include "sim/fault/faulted_source.hpp"
#include "sim/fault/profile.hpp"
#include "sim/fault/schedule.hpp"
#include "../support/scenario.hpp"

namespace eadvfs {
namespace {

using sim::fault::FaultEvent;
using sim::fault::FaultProfile;
using sim::fault::FaultSchedule;
using sim::fault::FaultedPredictor;
using sim::fault::FaultedSource;
using sim::fault::HarvestWindow;
using sim::fault::PredictorFaultModel;
using sim::fault::SwitchFault;
using test::job;
using test::run_scenario;
using test::Scenario;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------- profile

TEST(FaultProfile, DefaultIsInactive) {
  FaultProfile p;
  EXPECT_FALSE(p.any());
  EXPECT_EQ(p.describe(), "no faults");
}

TEST(FaultProfile, ParsePresets) {
  EXPECT_FALSE(FaultProfile::parse("none").any());
  const FaultProfile blackout = FaultProfile::parse("blackout");
  EXPECT_TRUE(blackout.affects_harvest());
  EXPECT_DOUBLE_EQ(blackout.harvest_scale, 0.0);
  const FaultProfile brownout = FaultProfile::parse("brownout");
  EXPECT_GT(brownout.harvest_scale, 0.0);
  EXPECT_TRUE(FaultProfile::parse("storage").affects_storage());
  EXPECT_TRUE(FaultProfile::parse("predictor").affects_predictor());
  EXPECT_TRUE(FaultProfile::parse("switch").affects_switches());
  const FaultProfile mixed = FaultProfile::parse("mixed");
  EXPECT_TRUE(mixed.affects_harvest());
  EXPECT_TRUE(mixed.affects_storage());
  EXPECT_TRUE(mixed.affects_predictor());
  EXPECT_TRUE(mixed.affects_switches());
}

TEST(FaultProfile, ParseKeyOverridesAndSeedPinning) {
  const FaultProfile p =
      FaultProfile::parse("blackout:duty=0.4,mean=250,seed=7");
  EXPECT_DOUBLE_EQ(p.harvest_duty, 0.4);
  EXPECT_DOUBLE_EQ(p.harvest_mean, 250.0);
  EXPECT_EQ(p.seed, 7u);
  EXPECT_TRUE(p.seed_provided);
  EXPECT_FALSE(FaultProfile::parse("blackout").seed_provided);
}

TEST(FaultProfile, ParseRejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultProfile::parse("bogus"), std::invalid_argument);
  EXPECT_THROW((void)FaultProfile::parse("blackout:dutty=0.4"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultProfile::parse("blackout:duty"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultProfile::parse("blackout:duty=abc"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultProfile::parse("blackout:seed=-3"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultProfile::parse("blackout:duty=1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultProfile::parse("switch:reject=0.7,stall=0.7"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultProfile::parse("switch:min-stall=0"),
               std::invalid_argument);
}

TEST(FaultProfile, ValidateRejectsNaN) {
  FaultProfile p = FaultProfile::parse("blackout");
  p.harvest_duty = kNaN;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = FaultProfile::parse("predictor");
  p.predict_bias = kNaN;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

// --------------------------------------------------------------- schedule

TEST(FaultSchedule, IsAPureFunctionOfProfileAndHorizon) {
  const FaultProfile p = FaultProfile::parse("mixed:seed=99");
  const FaultSchedule a(p, 10000.0);
  const FaultSchedule b(p, 10000.0);
  ASSERT_EQ(a.harvest_windows().size(), b.harvest_windows().size());
  for (std::size_t i = 0; i < a.harvest_windows().size(); ++i) {
    EXPECT_EQ(a.harvest_windows()[i].begin, b.harvest_windows()[i].begin);
    EXPECT_EQ(a.harvest_windows()[i].end, b.harvest_windows()[i].end);
  }
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
  }
  for (std::size_t attempt = 0; attempt < 100; ++attempt)
    EXPECT_EQ(static_cast<int>(a.switch_fault(attempt).kind),
              static_cast<int>(b.switch_fault(attempt).kind));
}

TEST(FaultSchedule, SeedChangesTheRealization) {
  const FaultSchedule a(FaultProfile::parse("blackout:seed=1"), 10000.0);
  const FaultSchedule b(FaultProfile::parse("blackout:seed=2"), 10000.0);
  ASSERT_FALSE(a.harvest_windows().empty());
  ASSERT_FALSE(b.harvest_windows().empty());
  bool differs = a.harvest_windows().size() != b.harvest_windows().size();
  for (std::size_t i = 0;
       !differs && i < a.harvest_windows().size(); ++i)
    differs = a.harvest_windows()[i].begin != b.harvest_windows()[i].begin;
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, WindowsAreSortedDisjointAndInsideHorizon) {
  const Time horizon = 5000.0;
  const FaultSchedule s(FaultProfile::parse("brownout:seed=3"), horizon);
  const auto& windows = s.harvest_windows();
  ASSERT_FALSE(windows.empty());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_LT(windows[i].begin, windows[i].end);
    EXPECT_GE(windows[i].begin, 0.0);
    EXPECT_LE(windows[i].end, horizon);
    if (i > 0) {
      EXPECT_GT(windows[i].begin, windows[i - 1].end);
    }
  }
  const auto& events = s.events();
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].time, events[i].time);
}

TEST(FaultSchedule, SwitchFaultExtremes) {
  const FaultSchedule reject(
      FaultProfile::parse("switch:reject=1,stall=0"), 1000.0);
  const FaultSchedule stall(
      FaultProfile::parse("switch:reject=0,stall=1"), 1000.0);
  const FaultSchedule clean(FaultProfile::parse("blackout"), 1000.0);
  for (std::size_t attempt = 0; attempt < 50; ++attempt) {
    EXPECT_EQ(static_cast<int>(reject.switch_fault(attempt).kind),
              static_cast<int>(SwitchFault::Kind::kReject));
    EXPECT_EQ(static_cast<int>(stall.switch_fault(attempt).kind),
              static_cast<int>(SwitchFault::Kind::kStall));
    EXPECT_EQ(static_cast<int>(clean.switch_fault(attempt).kind),
              static_cast<int>(SwitchFault::Kind::kNone));
  }
}

TEST(PredictorFaultModel, BiasOnlyIsExact) {
  PredictorFaultModel m;
  m.bias = 1.5;
  m.jitter = 0.0;
  m.slot = 50.0;
  m.seed = 11;
  for (Time t = 0.0; t < 1000.0; t += 37.0)
    EXPECT_DOUBLE_EQ(m.factor_at(t), 1.5);
}

TEST(PredictorFaultModel, JitterIsSlotConstantAndNonNegative) {
  PredictorFaultModel m;
  m.bias = 1.0;
  m.jitter = 0.8;
  m.slot = 50.0;
  m.seed = 11;
  bool saw_variation = false;
  for (Time slot_start = 0.0; slot_start < 2000.0; slot_start += 50.0) {
    const double f = m.factor_at(slot_start);
    EXPECT_GE(f, 0.0);
    EXPECT_DOUBLE_EQ(m.factor_at(slot_start + 49.0), f);
    if (std::abs(f - 1.0) > 0.01) saw_variation = true;
  }
  EXPECT_TRUE(saw_variation);
}

// -------------------------------------------------------------- decorators

TEST(FaultedSource, ScalesPowerInsideWindowsOnly) {
  auto inner = std::make_shared<energy::ConstantSource>(10.0);
  const FaultedSource src(inner, {{5.0, 10.0, 0.0}, {20.0, 25.0, 0.3}});
  EXPECT_DOUBLE_EQ(src.power_at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(src.power_at(5.0), 0.0);   // blackout
  EXPECT_DOUBLE_EQ(src.power_at(9.999), 0.0);
  EXPECT_DOUBLE_EQ(src.power_at(10.0), 10.0);
  EXPECT_DOUBLE_EQ(src.power_at(22.0), 3.0);  // brownout
  EXPECT_DOUBLE_EQ(src.power_at(30.0), 10.0);
}

TEST(FaultedSource, WindowEdgesArePieceBoundaries) {
  auto inner = std::make_shared<energy::ConstantSource>(10.0);
  const FaultedSource src(inner, {{5.0, 10.0, 0.0}});
  EXPECT_DOUBLE_EQ(src.piece_end(0.0), 5.0);
  EXPECT_DOUBLE_EQ(src.piece_end(5.0), 10.0);
  EXPECT_DOUBLE_EQ(src.piece_end(7.0), 10.0);
  // ConstantSource is one infinite piece, so after the last window the
  // piece never ends.
  EXPECT_GT(src.piece_end(10.0), 1e12);
  EXPECT_EQ(src.inner().get(), inner.get());
  EXPECT_NE(src.name().find("fault-windows"), std::string::npos);
}

TEST(FaultedSource, RejectsMalformedWindows) {
  auto inner = std::make_shared<energy::ConstantSource>(10.0);
  EXPECT_THROW(FaultedSource(inner, {{10.0, 5.0, 0.0}}),
               std::invalid_argument);  // begin after end
  EXPECT_THROW(FaultedSource(inner, {{0.0, 6.0, 0.0}, {5.0, 9.0, 0.0}}),
               std::invalid_argument);  // overlapping
  EXPECT_THROW(FaultedSource(inner, {{0.0, 5.0, 1.5}}),
               std::invalid_argument);  // scale >= 1
}

TEST(FaultedPredictor, ScalesPredictionsNotObservations) {
  PredictorFaultModel m;
  m.bias = 2.0;
  m.jitter = 0.0;
  m.slot = 50.0;
  FaultedPredictor p(std::make_unique<energy::ConstantPredictor>(3.0), m);
  EXPECT_DOUBLE_EQ(p.predict(0.0, 10.0), 60.0);  // 3 W * 10 s * bias 2
  p.observe(0.0, 10.0, 30.0);                    // passthrough, no effect
  EXPECT_DOUBLE_EQ(p.predict(0.0, 10.0), 60.0);
  EXPECT_NE(p.name().find("+error"), std::string::npos);
}

// ----------------------------------------------------------------- storage

TEST(StorageFaults, FaultDrainClampsToLevel) {
  energy::StorageConfig cfg;
  cfg.capacity = 100.0;
  cfg.initial = 40.0;
  energy::EnergyStorage storage(cfg);
  EXPECT_DOUBLE_EQ(storage.fault_drain(10.0), 10.0);
  EXPECT_DOUBLE_EQ(storage.level(), 30.0);
  EXPECT_DOUBLE_EQ(storage.fault_drain(1000.0), 30.0);  // clamped
  EXPECT_DOUBLE_EQ(storage.level(), 0.0);
  EXPECT_DOUBLE_EQ(storage.total_fault_drained(), 40.0);
}

TEST(StorageFaults, CapacityDerateSpillsExcessAndRestores) {
  energy::StorageConfig cfg;
  cfg.capacity = 100.0;
  cfg.initial = 90.0;
  energy::EnergyStorage storage(cfg);
  const Energy spilled = storage.set_capacity_derate(0.5);
  EXPECT_DOUBLE_EQ(storage.effective_capacity(), 50.0);
  EXPECT_DOUBLE_EQ(spilled, 40.0);  // 90 J squeezed into 50 J
  EXPECT_DOUBLE_EQ(storage.level(), 50.0);
  EXPECT_DOUBLE_EQ(storage.total_fault_drained(), 40.0);
  EXPECT_DOUBLE_EQ(storage.set_capacity_derate(1.0), 0.0);
  EXPECT_DOUBLE_EQ(storage.effective_capacity(), 100.0);
  EXPECT_DOUBLE_EQ(storage.level(), 50.0);  // spilled energy stays gone
  EXPECT_THROW((void)storage.set_capacity_derate(0.0), std::invalid_argument);
  EXPECT_THROW((void)storage.set_capacity_derate(1.5), std::invalid_argument);
}

// --------------------------------------------------- engine + audit + fault

TEST(EngineFaults, StorageDropsAreAppliedAuditedAndConserved) {
  const FaultProfile profile =
      FaultProfile::parse("storage:drops=6,drop-fraction=0.5,seed=5,derate=1,"
                          "derate-duty=0");
  const FaultSchedule schedule(profile, 100.0);

  Scenario s;
  s.jobs = {job(1, 0.0, 50.0, 10.0), job(2, 10.0, 80.0, 8.0)};
  s.source = std::make_shared<energy::ConstantSource>(2.0);
  s.capacity = 60.0;
  s.initial = 60.0;
  s.config.horizon = 100.0;
  s.faults = &schedule;
  const auto scheduler = sched::make_scheduler("edf");
  const auto outcome = run_scenario(std::move(s), *scheduler);

  EXPECT_GT(outcome.result.storage_faults_injected, 0u);
  EXPECT_GT(outcome.result.fault_drained, 0.0);
  EXPECT_NEAR(outcome.result.conservation_error(), 0.0, 1e-6);
  EXPECT_EQ(outcome.audit_violations, 0u);
}

TEST(EngineFaults, SwitchRejectionForcesReDecisionUnderAudit) {
  const FaultProfile profile =
      FaultProfile::parse("switch:reject=1,stall=0,min-stall=0.25");
  const FaultSchedule schedule(profile, 200.0);

  Scenario s;
  // EA-DVFS slows jobs with slack, so transitions away from the boot point
  // are requested — and every one of them is rejected here.
  s.jobs = {job(1, 0.0, 60.0, 5.0), job(2, 70.0, 60.0, 5.0)};
  s.source = std::make_shared<energy::ConstantSource>(1.0);
  s.capacity = 200.0;
  s.initial = 200.0;
  s.config.horizon = 200.0;
  s.faults = &schedule;
  const auto scheduler = sched::make_scheduler("ea-dvfs");
  const auto outcome = run_scenario(std::move(s), *scheduler);

  EXPECT_GT(outcome.result.switch_faults_injected, 0u);
  EXPECT_EQ(outcome.result.frequency_switches, 0u);  // every attempt rejected
  EXPECT_GT(outcome.result.stall_time, 0.0);         // min-stall per attempt
  EXPECT_EQ(outcome.audit_violations, 0u);
}

TEST(EngineFaults, DepletionPolicyAbortVsSuspend) {
  const auto build = [](sim::DepletionPolicy policy) {
    Scenario s;
    s.jobs = {job(1, 0.0, 50.0, 30.0)};  // needs 96 J at full speed, has 20 J
    s.source = std::make_shared<energy::ConstantSource>(0.0);
    s.capacity = 20.0;
    s.initial = 20.0;
    s.config.horizon = 100.0;
    s.config.depletion_policy = policy;
    return s;
  };

  const auto edf1 = sched::make_scheduler("edf");
  const auto aborted =
      run_scenario(build(sim::DepletionPolicy::kAbortAndCharge), *edf1);
  EXPECT_EQ(aborted.result.jobs_aborted, 1u);
  EXPECT_EQ(aborted.result.jobs_missed, 0u);  // killed by energy, not EDF
  EXPECT_EQ(aborted.result.suspensions, 0u);
  EXPECT_GT(aborted.result.work_dropped, 0.0);
  EXPECT_EQ(aborted.audit_violations, 0u);

  const auto edf2 = sched::make_scheduler("edf");
  const auto suspended =
      run_scenario(build(sim::DepletionPolicy::kSuspendAndResume), *edf2);
  EXPECT_EQ(suspended.result.jobs_aborted, 0u);
  EXPECT_GE(suspended.result.suspensions, 1u);
  EXPECT_EQ(suspended.result.jobs_missed, 1u);  // source is dead; job starves
  EXPECT_EQ(suspended.audit_violations, 0u);
}

// -------------------------------------------------- construction validation

TEST(ConstructionValidation, SimulationConfigRejectsBadValues) {
  sim::SimulationConfig cfg;
  cfg.horizon = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.horizon = kNaN;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.horizon = 100.0;
  cfg.stall_wakeup = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.stall_wakeup = 5.0;
  cfg.max_segments = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConstructionValidation, FrequencyTableRejectsNaNAndNonMonotone) {
  EXPECT_THROW(proc::FrequencyTable({{1000.0, kNaN, 3.0}}),
               std::invalid_argument);
  EXPECT_THROW(proc::FrequencyTable({{1000.0, 1.0, kNaN}}),
               std::invalid_argument);
  EXPECT_THROW(proc::FrequencyTable({{kNaN, 1.0, 3.0}}),
               std::invalid_argument);
  // Power must increase with speed.
  EXPECT_THROW(proc::FrequencyTable({{500.0, 0.5, 2.0}, {1000.0, 1.0, 1.0}}),
               std::invalid_argument);
}

TEST(ConstructionValidation, ProcessorRejectsNaN) {
  const proc::FrequencyTable table = proc::FrequencyTable::xscale();
  EXPECT_THROW(proc::Processor(table, {kNaN, 0.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(proc::Processor(table, {0.0, kNaN}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(proc::Processor(table, {}, kNaN), std::invalid_argument);
}

TEST(ConstructionValidation, StorageRejectsNaN) {
  energy::StorageConfig cfg;
  cfg.capacity = kNaN;
  EXPECT_THROW(energy::EnergyStorage{cfg}, std::invalid_argument);
  cfg.capacity = 100.0;
  cfg.leakage = kNaN;
  EXPECT_THROW(energy::EnergyStorage{cfg}, std::invalid_argument);
  cfg.leakage = 0.0;
  cfg.initial = kNaN;
  EXPECT_THROW(energy::EnergyStorage{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace eadvfs
